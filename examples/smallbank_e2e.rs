//! smallbank end-to-end: the paper's primary benchmark (§4.2) through
//! both validator implementations, with the §4.1 equivalence check.
//!
//! Run with: `cargo run -p examples --bin smallbank_e2e`

use std::collections::HashMap;

use bmac_core::{BMacPeer, BmacConfig};
use bmac_protocol::BmacSender;
use fabric_crypto::identity::{Msp, Role};
use fabric_node::network::FabricNetworkBuilder;
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_peer::{BlockProfile, SwValidatorModel};
use fabric_policy::parse;
use workload::{measure_profile, Driver, Smallbank, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Network with the smallbank chaincode under 2-of-2 endorsement.
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(8)
        .chaincode("smallbank", parse("2-outof-2 orgs")?)
        .build();
    net.install_chaincode(|| Box::new(Smallbank::new()));

    // Caliper-like driver: create accounts, then random operations.
    let mut driver = Driver::new(Workload::Smallbank, 16, 42);
    let setup_blocks = driver.prepare(&mut net)?;
    let work_blocks = driver.generate_blocks(&mut net, 4)?;
    println!(
        "generated {} setup + {} workload blocks ({} txs submitted)",
        setup_blocks.len(),
        work_blocks.len(),
        driver.counters().0
    );

    // Both peers validate the same stream.
    let mut msp = Msp::new(2);
    msp.issue(0, Role::Peer, 0)?;
    msp.issue(1, Role::Peer, 0)?;
    msp.issue(0, Role::Orderer, 0)?;
    msp.issue(0, Role::Client, 0)?;
    let policies: HashMap<String, fabric_policy::Policy> =
        [("smallbank".to_string(), parse("2-outof-2 orgs")?)]
            .into_iter()
            .collect();
    let sw = ValidatorPipeline::new(msp, policies, 8);

    let mut msp2 = Msp::new(2);
    msp2.issue(0, Role::Orderer, 0)?;
    let config = BmacConfig::from_yaml(
        "network:\n  orgs: 2\nchaincodes:\n  - name: smallbank\n    policy: 2-outof-2 orgs\narchitecture:\n  tx_validators: 8\n  engines_per_vscc: 2\n",
    )?;
    let mut bmac = BMacPeer::new(&config, msp2);
    let mut sender = BmacSender::new();

    let mut mismatches = 0;
    for block in setup_blocks.iter().chain(&work_blocks) {
        let sw_result = sw.validate_and_commit(block)?;
        let mut hw_records = Vec::new();
        for p in sender.send_block(block)? {
            hw_records.extend(bmac.ingest_wire(&p.encode()?, 0)?);
        }
        let hw = &hw_records[0];
        if hw.flags != sw_result.codes || hw.commit_hash != sw_result.commit_hash {
            mismatches += 1;
        }
        println!(
            "block {:>2}: {} txs, {} valid | sw {:>6} us | hw {:>6} us | hashes match: {}",
            sw_result.block_num,
            sw_result.codes.len(),
            sw_result.valid_count(),
            sw_result.timings.total_excl_ledger_us(),
            hw.hw_stats.map(|s| s.latency() / 1000).unwrap_or(0),
            hw.commit_hash == sw_result.commit_hash,
        );
    }
    println!("\nequivalence check (paper §4.1): {mismatches} mismatches");

    // Paper-scale throughput from the calibrated models, grounded in the
    // measured workload profile.
    let profile = measure_profile(&work_blocks);
    println!(
        "\nmeasured profile: {} B/envelope, {} endorsements, {}r{}w per tx",
        profile.tx_bytes, profile.endorsements_per_tx, profile.reads_per_tx, profile.writes_per_tx
    );
    let mut paper_scale = profile;
    paper_scale.num_txs = 250;
    let sw_tps = SwValidatorModel::new(16)
        .validate_block(&paper_scale)
        .throughput_tps(250);
    let hw_cfg = bmac_hw::HwModelConfig::new(bmac_hw::Geometry::new(16, 2));
    let hw_tps = bmac_hw::validate_block(&hw_cfg, &bmac_hw::HwWorkload::smallbank(250))
        .throughput_tps(250, &hw_cfg);
    println!("paper-scale model (block 250, 16 vCPUs/validators): sw {sw_tps:.0} tps, bmac {hw_tps:.0} tps ({:.1}x)", hw_tps / sw_tps);
    let _ = BlockProfile::smallbank(1);
    if mismatches > 0 {
        std::process::exit(1);
    }
    Ok(())
}
