//! Kill-any-node-under-load walkthrough: the `fabric-cluster` harness
//! end to end, narrated.
//!
//! A 3-peer cluster validates a smallbank stream fanned out by one
//! orderer over independently lossy links (5% loss, plus duplication,
//! reordering, corruption and lossy acks). Mid-stream, peer 1 is killed
//! at a packet boundary — its validator aborted without a final flush,
//! leaving a torn store tail — and rejoins 20 simulated milliseconds
//! later: crash recovery reopens the store to the longest durable
//! prefix, the stream resumes at that height, and the orderer opens a
//! fresh connection generation whose cursor rewinds to the recovered
//! block. The run ends with a divergence audit holding every peer
//! bit-identical to a serial-replay oracle.
//!
//! Run with: `cargo run --example cluster_kill_rejoin`

use fabric_cluster::{run, ClusterConfig, FaultPlan, KillPoint, LinkFaults};
use fabric_sim::{as_millis, MILLIS};
use workload::{StreamScenario, Workload};

fn main() {
    let scenario = StreamScenario {
        workload: Workload::Smallbank,
        accounts: 4,
        block_size: 3,
        num_blocks: 8,
        stale_commit_pct: 25,
        corrupt_sigs: 1,
        duplicate_txs: 1,
        seed: 777,
    };

    let root = std::env::temp_dir().join(format!("bmac-cluster-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = ClusterConfig::new(&root, scenario);

    // The fault plane: every link drops/mangles packets on its own
    // dice, and peer 1 dies under load and comes back.
    let plan = FaultPlan {
        default_link: LinkFaults {
            loss_pct: 5,
            dup_pct: 2,
            reorder_pct: 2,
            corrupt_pct: 2,
            feedback_loss_pct: 2,
            seed: 20_22,
            ..LinkFaults::default()
        },
        kills: vec![KillPoint {
            peer: 1,
            after_packets: 10,
            rejoin_after: Some(20 * MILLIS),
        }],
        ..FaultPlan::default()
    };

    println!(
        "running {} peers over lossy links; peer 1 will be killed after 10 packets\n",
        config.peers
    );
    let mut report = run(&config, &plan);

    for (i, peer) in report.peers.iter().enumerate() {
        println!(
            "peer {i}: alive={} height={}/{} rejoins={} audit={}",
            peer.alive,
            peer.height,
            report.blocks,
            peer.rejoins,
            match &peer.divergence {
                None => "bit-identical".to_string(),
                Some(d) => format!("DIVERGED: {d}"),
            }
        );
    }
    println!();
    for (i, link) in report.links.iter().enumerate() {
        println!(
            "link {i}: sent={} lost={} dup={} reordered={} fcs_drops={} | \
             retransmissions={} timeouts={} worst_episode={}/{}",
            link.tally.sent,
            link.tally.lost,
            link.tally.duplicated,
            link.tally.reordered,
            link.tally.fcs_drops,
            link.retransmissions,
            link.timeouts,
            link.max_episode_retransmissions,
            link.storm_cap,
        );
    }

    let p50 = report.delivery_latency_ms.percentile(50.0);
    let p99 = report.delivery_latency_ms.percentile(99.0);
    println!(
        "\ndelivery latency p50={p50:.3}ms p99={p99:.3}ms over {} block deliveries",
        report.blocks * config.peers as u64
    );
    for (i, t) in report.catchup.iter().enumerate() {
        println!(
            "rejoin {i}: caught back up to the tip {:.3}ms after restart",
            as_millis(*t)
        );
    }
    println!(
        "sim ran {:.3}ms across {} events",
        as_millis(report.sim_duration),
        report.events
    );

    report.assert_converged();
    assert!(report.within_storm_cap());
    println!("\nconverged: every peer bit-identical to the serial-replay oracle");

    let _ = std::fs::remove_dir_all(&root);
}
