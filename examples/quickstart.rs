//! Quickstart: one transaction through the whole system.
//!
//! Builds a two-organization Fabric network, submits an endorsed
//! transaction, cuts a block, sends it through the BMac protocol, and
//! validates it on the hardware-accelerated BMac peer.
//!
//! Run with: `cargo run -p examples --bin quickstart`

use bmac_core::{BMacPeer, BmacConfig};
use bmac_protocol::BmacSender;
use fabric_crypto::identity::{Msp, Role};
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_policy::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Fabric network: 2 orgs, 1 endorser each, single Raft orderer.
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(2)
        .chaincode("kv", parse("2-outof-2 orgs")?)
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));

    // 2. Clients submit transactions; the orderer cuts a block.
    net.submit_invocation(0, "kv", "put", &["hello".into(), "world".into()])?;
    let blocks =
        net.submit_invocation(0, "kv", "transfer", &["a".into(), "b".into(), "0".into()])?;
    let block = &blocks[0];
    println!(
        "orderer cut block {} with {} transactions",
        block.header.number,
        block.data.data.len()
    );

    // 3. A BMac peer configured from the YAML file of paper §3.5.
    let config = BmacConfig::from_yaml(
        "network:\n  orgs: 2\nchaincodes:\n  - name: kv\n    policy: 2-outof-2 orgs\narchitecture:\n  tx_validators: 8\n  engines_per_vscc: 2\n",
    )?;
    let mut msp = Msp::new(2);
    msp.issue(0, Role::Orderer, 0)?;
    let mut peer = BMacPeer::new(&config, msp);

    // 4. The orderer sends the block through the BMac protocol …
    let mut sender = BmacSender::new();
    let packets = sender.send_block(block)?;
    println!(
        "BMac protocol: {} packets, {} bytes on the wire ({}% saved vs Gossip)",
        packets.len(),
        sender.stats().bmac_wire_bytes,
        (sender.stats().savings() * 100.0) as u32
    );

    // 5. … and the peer validates it in (simulated) hardware.
    let mut committed = Vec::new();
    for p in packets {
        committed.extend(peer.ingest_wire(&p.encode()?, 0)?);
    }
    let record = &committed[0];
    println!(
        "block {}: valid={}, {}/{} transactions valid, hw latency {:.2} ms",
        record.block_num,
        record.block_valid,
        record.valid_count(),
        record.flags.len(),
        record
            .hw_stats
            .map(|s| s.latency() as f64 / 1e6)
            .unwrap_or(0.0),
    );
    println!(
        "peer state: hello = {:?}",
        String::from_utf8_lossy(&peer.state_db().get("hello").expect("committed").value)
    );
    println!("ledger height: {}", peer.ledger().height());
    Ok(())
}
