//! Incremental upgrade (paper §1 compatibility goal): a network where
//! one validator is software-only and another is a BMac peer. The
//! orderer sends every block via Gossip *and* the BMac protocol ("the
//! same orderer can send blocks to both software-only and BMac peers",
//! §3.5); both peers must agree on every validation decision.
//!
//! Run with: `cargo run -p examples --bin mixed_network_upgrade`

use std::collections::HashMap;

use bmac_core::{BMacPeer, BmacConfig};
use bmac_protocol::BmacSender;
use fabric_crypto::identity::{Msp, Role};
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_policy::parse;

fn make_msp() -> Msp {
    let mut msp = Msp::new(2);
    msp.issue(0, Role::Peer, 0).unwrap();
    msp.issue(1, Role::Peer, 0).unwrap();
    msp.issue(0, Role::Orderer, 0).unwrap();
    msp.issue(0, Role::Client, 0).unwrap();
    msp
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(4)
        .chaincode("kv", parse("2-outof-2 orgs")?)
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));

    // sw_validator peer (pre-upgrade) and BMac peer (upgraded).
    let policies: HashMap<String, fabric_policy::Policy> =
        [("kv".to_string(), parse("2-outof-2 orgs")?)]
            .into_iter()
            .collect();
    let sw_peer = ValidatorPipeline::new(make_msp(), policies, 8);
    let config = BmacConfig::from_yaml(
        "network:\n  orgs: 2\nchaincodes:\n  - name: kv\n    policy: 2-outof-2 orgs\n",
    )?;
    let mut bmac_peer = BMacPeer::new(&config, make_msp());
    let mut sender = BmacSender::new();

    for round in 0..3 {
        // Fill a block.
        let mut blocks = Vec::new();
        let mut i = 0;
        while blocks.is_empty() {
            blocks = net.submit_invocation(
                0,
                "kv",
                "put",
                &[format!("k{round}_{i}"), format!("{round}")],
            )?;
            i += 1;
        }
        let block = blocks.remove(0);

        // Dual dissemination: Gossip to the sw peer, BMac protocol to the
        // upgraded peer.
        let sw_result = sw_peer.validate_and_commit(&block)?;
        let mut hw_records = Vec::new();
        for p in sender.send_block(&block)? {
            hw_records.extend(bmac_peer.ingest_wire(&p.encode()?, 0)?);
        }
        let hw = &hw_records[0];
        let agree = sw_result.codes == hw.flags && sw_result.commit_hash == hw.commit_hash;
        println!(
            "block {}: sw {} valid, bmac {} valid, flags+commit-hash agree: {agree}",
            sw_result.block_num,
            sw_result.valid_count(),
            hw.valid_count(),
        );
        assert!(agree, "peers diverged");
    }
    println!("\nsw ledger height: {}", sw_peer.ledger().height());
    println!("bmac ledger height: {}", bmac_peer.ledger().height());
    println!("mixed network stays consistent: upgrade one peer at a time.");
    Ok(())
}
