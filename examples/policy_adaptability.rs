//! Adaptability (paper §3.3/§4.3): endorsement policies compiled to
//! combinational circuits, short-circuit evaluation, and choosing the
//! engine geometry for a policy mix.
//!
//! Run with: `cargo run -p examples --bin policy_adaptability`

use bmac_hw::{validate_block, Geometry, HwModelConfig, HwWorkload};
use fabric_crypto::identity::{NodeId, Role};
use fabric_policy::circuit::{PolicyStatus, ShortCircuitEvaluator};
use fabric_policy::{parse, PolicyCircuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile the paper's policies into circuits.
    for expr in [
        "2-outof-3 orgs",
        "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)",
    ] {
        let policy = parse(expr)?;
        let circuit = PolicyCircuit::compile(&policy);
        println!(
            "policy {expr:?}\n  -> {circuit}, min endorsements to satisfy: {}",
            policy.min_satisfying()
        );
    }

    // Short-circuit evaluation: 2of3 stops after two valid endorsements.
    let policy = parse("2-outof-3 orgs")?;
    let circuit = PolicyCircuit::compile(&policy);
    let mut sc = ShortCircuitEvaluator::new(&circuit, 3);
    let peer = |org| NodeId::new(org, Role::Peer, 0).unwrap();
    sc.record(peer(0), true);
    let status = sc.record(peer(1), true);
    println!(
        "\nshort-circuit: after 2 valid endorsements status = {status:?}; third endorsement skipped ({} verified)",
        sc.verified_count()
    );
    assert_eq!(status, PolicyStatus::Satisfied);

    // Geometry choice: "one should use 8x2 and 5x3 architectures for
    // applications using 2ofN and 3ofN policies, respectively" (§4.3).
    println!("\nthroughput by geometry (block 150):");
    for (name, ends, needed) in [("2of3", 3usize, 2usize), ("3of3", 3, 3)] {
        let mut w = HwWorkload::smallbank(150);
        w.endorsements_per_tx = ends;
        w.needed_endorsements = needed;
        for geometry in [Geometry::new(8, 2), Geometry::new(5, 3)] {
            let cfg = HwModelConfig::new(geometry);
            let tps = validate_block(&cfg, &w).throughput_tps(150, &cfg);
            println!("  {name} on {geometry}: {tps:.0} tps");
        }
    }
    println!("\n-> pick 8x2 for 2ofN policies, 5x3 for 3ofN policies.");
    Ok(())
}
