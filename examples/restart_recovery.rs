//! Restart + recovery walkthrough: the scenario a production peer lives
//! by — commit a smallbank stream durably, die mid-stream, come back,
//! recover, and resume exactly where the crash left the chain.
//!
//! 1. open a `FabricStore` and validate half the stream through a
//!    durable `StreamValidator` (every committed block journaled and
//!    appended to the segmented block store);
//! 2. simulate the crash: drop the peer and tear the tails of the block
//!    segment and the state journal at raw byte offsets;
//! 3. reopen: the min-rule recovers the longest consistent serial
//!    prefix, the ledger re-verifies the whole hash chain;
//! 4. resume: a fresh peer attaches mid-chain with
//!    `BmacReceiver::resuming_from(next_block)` and streams the rest,
//!    asserting tip-hash continuity and final-state equality with an
//!    uninterrupted serial replay.
//!
//! Run with: `cargo run --example restart_recovery`

use std::sync::Arc;

use bmac_protocol::{BmacReceiver, BmacSender};
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_peer::{StreamConfig, StreamValidator};
use fabric_store::{FabricStore, StoreConfig};
use workload::{StreamScenario, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = StreamScenario {
        workload: Workload::Smallbank,
        accounts: 4,
        block_size: 4,
        num_blocks: 8,
        stale_commit_pct: 25,
        corrupt_sigs: 1,
        duplicate_txs: 1,
        seed: 2026,
    };
    let generated = scenario.generate();
    let blocks = &generated.blocks;
    println!(
        "generated {} blocks ({} setup) of smallbank traffic",
        blocks.len(),
        generated.setup_blocks
    );

    // The uninterrupted oracle: a plain in-memory serial replay.
    let oracle = ValidatorPipeline::new(scenario.validator_msp(), scenario.policies(), 2);
    for block in blocks {
        oracle.validate_and_commit(block)?;
    }

    let root = std::env::temp_dir().join(format!("bmac-restart-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    // ~17 KiB blocks, 64 KiB segments: a handful of blocks per segment,
    // so the stream spans several segments and the crash lands in the
    // active one.
    let config = StoreConfig {
        group_commit: 4,
        segment_max_bytes: 64 * 1024,
        ..StoreConfig::default()
    };

    // ---- Session 1: durable peer, dies mid-stream -------------------
    let half = blocks.len() / 2;
    {
        let store = FabricStore::open(&root, config)?;
        let pipeline = Arc::new(ValidatorPipeline::with_storage(
            scenario.validator_msp(),
            scenario.policies(),
            2,
            8192,
            store.state_db(),
            store.ledger(),
        ));
        let stream = StreamValidator::new(Arc::clone(&pipeline), StreamConfig::default());
        let mut sender = BmacSender::new();
        let mut receiver = BmacReceiver::new();
        for block in &blocks[..half] {
            for packet in sender.send_block(block)? {
                for received in receiver.ingest(&packet.encode()?)? {
                    stream.push(received.block)?;
                }
            }
        }
        let report = stream.finish()?;
        println!(
            "session 1: committed {} blocks durably, then the peer dies",
            report.results.len()
        );
        store.checkpoint()?;
    }
    // The crash: tear raw bytes off the tails the peer was writing —
    // the active block segment (the highest-numbered one) and the
    // state journal.
    let mut torn_seg = None;
    for i in 0.. {
        let p = root.join(format!("blocks/seg-{i:05}.log"));
        if !p.exists() {
            break;
        }
        // The last non-empty segment: if the crash raced a segment
        // seal, the newest file may hold nothing yet.
        if std::fs::metadata(&p)?.len() > 0 {
            torn_seg = Some(p);
        }
    }
    for path in [
        torn_seg.expect("at least one segment"),
        root.join("journal.log"),
    ] {
        let len = std::fs::metadata(&path)?.len();
        let torn = len.saturating_sub(len / 10 + 3);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)?
            .set_len(torn)?;
        println!(
            "  crash tears {}: {len} -> {torn} bytes",
            path.file_name().unwrap().to_string_lossy()
        );
    }

    // ---- Session 2: reopen, recover, resume -------------------------
    let store = FabricStore::open(&root, config)?;
    let report = store.recovery();
    println!(
        "session 2: recovered {} of {} stored blocks \
         (checkpoint at {:?}, {} journal records replayed, {} trailing journal bytes dropped)",
        report.recovered_blocks,
        report.store_blocks_found,
        report.checkpoint_height.map(|h| h.block_num),
        report.journal_records_replayed,
        report.journal_truncated_bytes,
    );
    let next = store.ledger().next_block_number();
    assert!(next <= half as u64, "cannot recover blocks never committed");

    // Tip-hash continuity: the next block of the original stream chains
    // onto the recovered tip, so the resumed session extends the same
    // chain rather than forking a new one.
    let recovered_tip = store.ledger().tip_hash();
    assert_eq!(
        blocks[next as usize].header.previous_hash,
        recovered_tip.to_vec(),
        "block {next} must link to the recovered tip"
    );
    assert!(store.ledger().verify_chain().is_ok());

    let pipeline = Arc::new(ValidatorPipeline::with_storage(
        scenario.validator_msp(),
        scenario.policies(),
        2,
        8192,
        store.state_db(),
        store.ledger(),
    ));
    let stream = StreamValidator::new(Arc::clone(&pipeline), StreamConfig::default());
    let mut sender = BmacSender::new();
    // Attach mid-chain: the receiver's dedup window starts at the
    // recovered height instead of replaying the whole chain's ids.
    let mut receiver = BmacReceiver::resuming_from(next);
    for block in &blocks[next as usize..] {
        for packet in sender.send_block(block)? {
            for received in receiver.ingest(&packet.encode()?)? {
                stream.push(received.block)?;
            }
        }
    }
    let resumed = stream.finish()?;
    println!(
        "session 2: resumed blocks {}..{} through the stream validator",
        next,
        next as usize + resumed.results.len()
    );

    // The recovered-then-resumed peer is indistinguishable from one
    // that never crashed.
    assert_eq!(pipeline.ledger().height(), oracle.ledger().height());
    assert_eq!(
        pipeline.ledger().tip_commit_hash(),
        oracle.ledger().tip_commit_hash(),
        "commit-hash chain continuity across the restart"
    );
    assert_eq!(
        pipeline.state_db().snapshot(),
        oracle.state_db().snapshot(),
        "state equality with the uninterrupted replay"
    );
    println!(
        "tip commit hash matches the uninterrupted replay: {}",
        hex(&pipeline.ledger().tip_commit_hash())
    );

    std::fs::remove_dir_all(&root)?;
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
