//! Protocol inspector: dumps how a block is sectioned into BMac packets
//! (paper §3.2 / Figure 5a) — sections, annotations, identity stripping,
//! and the bandwidth comparison with Gossip.
//!
//! Run with: `cargo run -p examples --bin protocol_inspector`

use bmac_protocol::{Annotation, BmacSender, SectionType};
use fabric_node::chaincode::KvChaincode;
use fabric_node::gossip::gossip_wire_bytes;
use fabric_node::network::FabricNetworkBuilder;
use fabric_policy::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(3)
        .chaincode("kv", parse("2-outof-2 orgs")?)
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])?;
    net.submit_invocation(0, "kv", "put", &["b".into(), "2".into()])?;
    let block = net
        .submit_invocation(0, "kv", "put", &["c".into(), "3".into()])?
        .remove(0);
    let raw = block.marshal().len();

    let mut sender = BmacSender::new();
    let packets = sender.send_block(&block)?;
    println!(
        "block {} | {} txs | {} bytes marshaled",
        block.header.number,
        block.data.data.len(),
        raw
    );
    println!("{} packets:", packets.len());
    for p in &packets {
        let pointers = p
            .annotations
            .iter()
            .filter(|a| matches!(a, Annotation::Pointer { .. }))
            .count();
        let locators = p
            .annotations
            .iter()
            .filter(|a| matches!(a, Annotation::Locator { .. }))
            .count();
        let kind = match p.section {
            SectionType::Header => "header",
            SectionType::Transaction => "transaction",
            SectionType::Metadata => "metadata",
            SectionType::IdentitySync => "identity-sync",
        };
        println!(
            "  [{kind:>13}] index={:<3} payload={:>5} B  wire={:>5} B  pointers={pointers} locators={locators}",
            p.index,
            p.payload.len(),
            p.wire_bytes(),
        );
    }
    let stats = sender.stats();
    println!(
        "\nidentity bytes removed: {} ({:.0}% of the block)",
        stats.identity_bytes_removed,
        stats.identity_share() * 100.0
    );
    println!("BMac wire bytes: {}", stats.bmac_wire_bytes);
    println!(
        "Gossip wire bytes for the same block: {}",
        gossip_wire_bytes(raw)
    );
    println!("bandwidth savings: {:.0}%", stats.savings() * 100.0);
    Ok(())
}
