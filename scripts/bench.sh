#!/usr/bin/env bash
# Regenerates BENCH_validation.json (validation hot-path before/after
# numbers) at the repo root. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."
cargo run --release --bin bench_validation

# The JSON must carry every tracked section; a refactor that silently
# drops one would otherwise go unnoticed until the next perf review.
for section in single_thread field_backend_ab scalar_backend_ab pipeline \
               signature_cache block_stream durability statedb cluster admission \
               lock_contention; do
  grep -q "\"$section\"" BENCH_validation.json \
    || { echo "error: BENCH_validation.json lost the $section section" >&2; exit 1; }
done

# The admission section must be populated, not an empty stub: its
# latency percentiles are the mempool front-end's tracked numbers.
for key in admission_p50_us admission_p99_us dedup_hit_rate shed_rate \
           verify_pool_occupancy; do
  grep -q "\"$key\"" BENCH_validation.json \
    || { echo "error: admission section lost the $key metric" >&2; exit 1; }
done

# The statedb section must carry the sharded-vs-legacy A/B and its
# in-bench equivalence gate (identical state hashes on both backends).
for key in preload_keys preload_keys_per_s zipf_txs_per_s read_p50_us \
           read_p99_us backends_state_hash_equal; do
  grep -q "\"$key\"" BENCH_validation.json \
    || { echo "error: statedb section lost the $key metric" >&2; exit 1; }
done

# The lock_contention section must report real per-label accounting
# from the fabric-check instrumentation, not an empty stub.
for key in total_acquisitions contention_rate hold_mean_us; do
  grep -q "\"$key\"" BENCH_validation.json \
    || { echo "error: lock_contention section lost the $key metric" >&2; exit 1; }
done
grep -q '"statedb.shard"' BENCH_validation.json \
  || { echo "error: lock_contention section lost the statedb.shard lock" >&2; exit 1; }

echo
echo "BENCH_validation.json:"
cat BENCH_validation.json
