#!/usr/bin/env bash
# Regenerates BENCH_validation.json (validation hot-path before/after
# numbers) at the repo root. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."
cargo run --release --bin bench_validation
echo
echo "BENCH_validation.json:"
cat BENCH_validation.json
