//! Cross-checks between the detailed per-block hardware simulation and
//! the closed-form throughput model — the reproduction of the paper's
//! "performance reported by our simulator is always within 1% of actual
//! measurements" validation (§4.1), here between our two model layers.

use std::collections::HashMap;
use std::time::Instant;

use bmac_hw::processor::ProcessorConfig;
use bmac_hw::{validate_block, BMacMachine, Geometry, HwModelConfig, HwWorkload};
use bmac_protocol::BmacSender;
use fabric_crypto::identity::{Msp, Role};
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_peer::{BlockProfile, SwValidatorModel, ValidatorPipeline};
use fabric_policy::parse;
use fabric_sim::as_millis;
use workload::{Driver, Smallbank, Workload};

/// Runs `blocks` real blocks of `ntx` smallbank transactions through the
/// detailed machine and returns the mean block latency (ms).
fn detailed_latency_ms(ntx: usize, validators: usize, blocks: usize) -> f64 {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(ntx)
        .chaincode("smallbank", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(Smallbank::new()));
    let mut driver = Driver::new(Workload::Smallbank, 8, 5);
    let mut all = driver.prepare(&mut net).unwrap();
    all.extend(driver.generate_blocks(&mut net, blocks).unwrap());

    let policies: HashMap<String, fabric_policy::Policy> =
        [("smallbank".to_string(), parse("2-outof-2 orgs").unwrap())]
            .into_iter()
            .collect();
    let mut latencies = Vec::new();
    for block in all.iter().filter(|b| b.data.data.len() == ntx) {
        // Fresh machine per block: the closed-form model is the latency
        // of one block in isolation (queueing behind earlier blocks is a
        // throughput, not latency, effect).
        let mut machine = BMacMachine::new(
            ProcessorConfig::new(Geometry::new(validators, 2), 2),
            &policies,
        );
        let mut sender = BmacSender::new();
        for p in sender.send_block(block).unwrap() {
            machine.ingest_wire(&p.encode().unwrap(), 0).unwrap();
        }
        while let Some(result) = machine.get_block_data() {
            latencies.push(as_millis(result.stats.latency()));
        }
    }
    assert!(!latencies.is_empty(), "no full-size blocks were produced");
    latencies.iter().sum::<f64>() / latencies.len() as f64
}

#[test]
fn detailed_simulation_matches_closed_form_within_5pct() {
    for &(ntx, validators) in &[(8usize, 2usize), (12, 4), (16, 8)] {
        let detailed = detailed_latency_ms(ntx, validators, 2);
        let cfg = HwModelConfig::new(Geometry::new(validators, 2));
        let closed = as_millis(validate_block(&cfg, &HwWorkload::smallbank(ntx)).total);
        let rel = (detailed - closed).abs() / closed;
        assert!(
            rel < 0.05,
            "ntx={ntx} V={validators}: detailed {detailed:.3} ms vs closed-form {closed:.3} ms ({:.1}% apart)",
            rel * 100.0
        );
    }
}

/// Cross-checks `SwValidatorModel::validate_block_cached` against the
/// *measured* functional pipeline — the cache-model figure reproduction
/// left open by the ROADMAP. A block is signature-verified cold (empty
/// cache, hit rate 0) and then re-verified warm (identical triples, hit
/// rate 1); the measured cold/warm speedup must land in the same
/// ballpark as the model's 0%-vs-100%-hit-rate prediction.
///
/// Wall-clock on shared CI is noisy, so the band is deliberately wide
/// (one order of magnitude, checked on the log scale); the *exact*
/// parts — hit-rate accounting and verification counts — are asserted
/// tightly.
#[test]
fn cached_pipeline_speedup_matches_cache_model() {
    const NTX: usize = 100;
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(NTX)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while blocks.is_empty() {
        blocks.extend(
            net.submit_invocation(0, "kv", "put", &[format!("m{i}"), "1".into()])
                .unwrap(),
        );
        i += 1;
    }
    let mut msp = Msp::new(2);
    msp.issue(0, Role::Peer, 0).unwrap();
    msp.issue(1, Role::Peer, 0).unwrap();
    msp.issue(0, Role::Orderer, 0).unwrap();
    msp.issue(0, Role::Client, 0).unwrap();
    let mut policies = HashMap::new();
    policies.insert("kv".to_string(), parse("2-outof-2 orgs").unwrap());
    // One worker: the model's serial/parallel split is exact at W=1, so
    // host-vCPU availability cannot skew the comparison.
    let validator = ValidatorPipeline::new(msp, policies, 1);

    // Warm global crypto tables on a throwaway digest-level call first?
    // No — the cold pass *is* the measurement of interest, but the
    // process-wide comb table must not be billed to it. Touch it via a
    // signature that doesn't enter the cache.
    fabric_crypto::curve::mul_fixed_base(&fabric_crypto::U256::from_u64(3));

    let s0 = validator.sig_cache_stats();
    let t0 = Instant::now();
    validator.verify_block_signatures(&blocks[0]).unwrap();
    let cold_us = t0.elapsed().as_secs_f64() * 1e6;
    let s1 = validator.sig_cache_stats();
    let cold_verifications = validator.verifications();

    // Warm pass, repeated; take the fastest to shed scheduler noise.
    let mut warm_us = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        validator.verify_block_signatures(&blocks[0]).unwrap();
        warm_us = warm_us.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    let s2 = validator.sig_cache_stats();

    // Exact accounting: the cold pass misses every unique task, the
    // warm passes are pure hits, and no new ECDSA runs happen warm.
    assert_eq!(s1.hits - s0.hits, 0, "cold pass must not hit");
    assert!(s1.misses > s0.misses, "cold pass must record misses");
    assert_eq!(
        s2.misses, s1.misses,
        "warm replay must be fully served by the cache"
    );
    assert!(s2.hits > s1.hits);
    assert_eq!(
        validator.verifications(),
        cold_verifications,
        "warm replay must not reach the ECDSA engine"
    );
    let warm_probes = (s2.hits - s1.hits) + (s2.misses - s1.misses);
    let warm_hit_rate = (s2.hits - s1.hits) as f64 / warm_probes as f64;
    assert_eq!(warm_hit_rate, 1.0);

    // Model side: the same block shape at hit rates 0 and 1. The
    // measured path covers unmarshal + orderer check + verify/vscc, so
    // compare against that slice of the breakdown.
    let model = SwValidatorModel::new(1);
    let profile = BlockProfile::smallbank(NTX);
    let cold_model = model.validate_block_cached(&profile, 0.0);
    let warm_model = model.validate_block_cached(&profile, 1.0);
    let model_slice =
        |b: &fabric_peer::SwBreakdown| (b.unmarshal + b.block_verify + b.verify_vscc) as f64;
    let model_speedup = model_slice(&cold_model) / model_slice(&warm_model);
    let measured_speedup = cold_us / warm_us;

    assert!(
        measured_speedup > 1.5,
        "cache must speed up re-validation: cold {cold_us:.0} µs vs warm {warm_us:.0} µs"
    );
    assert!(model_speedup > 1.5, "model speedup {model_speedup:.2}");
    let log_gap = (measured_speedup / model_speedup).ln().abs();
    assert!(
        log_gap < 10.0f64.ln(),
        "model ({model_speedup:.2}x) and measured ({measured_speedup:.2}x) cached-vscc \
         speedups diverge by more than 10x (cold {cold_us:.0} µs, warm {warm_us:.0} µs)"
    );
}

#[test]
fn hardware_latency_scales_down_with_validators() {
    let l2 = detailed_latency_ms(16, 2, 1);
    let l8 = detailed_latency_ms(16, 8, 1);
    assert!(
        l8 < l2 * 0.55,
        "8 validators ({l8:.2} ms) should be well under half of 2 validators ({l2:.2} ms)"
    );
}
