//! Cross-checks between the detailed per-block hardware simulation and
//! the closed-form throughput model — the reproduction of the paper's
//! "performance reported by our simulator is always within 1% of actual
//! measurements" validation (§4.1), here between our two model layers.

use std::collections::HashMap;

use bmac_hw::processor::ProcessorConfig;
use bmac_hw::{validate_block, BMacMachine, Geometry, HwModelConfig, HwWorkload};
use bmac_protocol::BmacSender;
use fabric_node::network::FabricNetworkBuilder;
use fabric_policy::parse;
use fabric_sim::as_millis;
use workload::{Driver, Smallbank, Workload};

/// Runs `blocks` real blocks of `ntx` smallbank transactions through the
/// detailed machine and returns the mean block latency (ms).
fn detailed_latency_ms(ntx: usize, validators: usize, blocks: usize) -> f64 {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(ntx)
        .chaincode("smallbank", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(Smallbank::new()));
    let mut driver = Driver::new(Workload::Smallbank, 8, 5);
    let mut all = driver.prepare(&mut net).unwrap();
    all.extend(driver.generate_blocks(&mut net, blocks).unwrap());

    let policies: HashMap<String, fabric_policy::Policy> =
        [("smallbank".to_string(), parse("2-outof-2 orgs").unwrap())]
            .into_iter()
            .collect();
    let mut latencies = Vec::new();
    for block in all.iter().filter(|b| b.data.data.len() == ntx) {
        // Fresh machine per block: the closed-form model is the latency
        // of one block in isolation (queueing behind earlier blocks is a
        // throughput, not latency, effect).
        let mut machine = BMacMachine::new(
            ProcessorConfig::new(Geometry::new(validators, 2), 2),
            &policies,
        );
        let mut sender = BmacSender::new();
        for p in sender.send_block(block).unwrap() {
            machine.ingest_wire(&p.encode().unwrap(), 0).unwrap();
        }
        while let Some(result) = machine.get_block_data() {
            latencies.push(as_millis(result.stats.latency()));
        }
    }
    assert!(!latencies.is_empty(), "no full-size blocks were produced");
    latencies.iter().sum::<f64>() / latencies.len() as f64
}

#[test]
fn detailed_simulation_matches_closed_form_within_5pct() {
    for &(ntx, validators) in &[(8usize, 2usize), (12, 4), (16, 8)] {
        let detailed = detailed_latency_ms(ntx, validators, 2);
        let cfg = HwModelConfig::new(Geometry::new(validators, 2));
        let closed = as_millis(validate_block(&cfg, &HwWorkload::smallbank(ntx)).total);
        let rel = (detailed - closed).abs() / closed;
        assert!(
            rel < 0.05,
            "ntx={ntx} V={validators}: detailed {detailed:.3} ms vs closed-form {closed:.3} ms ({:.1}% apart)",
            rel * 100.0
        );
    }
}

#[test]
fn hardware_latency_scales_down_with_validators() {
    let l2 = detailed_latency_ms(16, 2, 1);
    let l8 = detailed_latency_ms(16, 8, 1);
    assert!(
        l8 < l2 * 0.55,
        "8 validators ({l8:.2} ms) should be well under half of 2 validators ({l2:.2} ms)"
    );
}
