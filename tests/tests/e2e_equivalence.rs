//! End-to-end equivalence between the software validator and the BMac
//! peer — the paper's §4.1 correctness methodology: "we compared block
//! and transactions' valid/invalid flags, and commit hash ... We did not
//! find any mismatches in our experiments."

use std::collections::HashMap;

use bmac_core::{BMacPeer, BmacConfig};
use bmac_protocol::BmacSender;
use fabric_crypto::identity::{Msp, Role};
use fabric_node::network::{FabricNetwork, FabricNetworkBuilder};
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_policy::parse;
use fabric_protos::messages::{Block, Envelope};
use workload::{Driver, Smallbank, Workload};

fn make_msp() -> Msp {
    let mut msp = Msp::new(2);
    msp.issue(0, Role::Peer, 0).unwrap();
    msp.issue(1, Role::Peer, 0).unwrap();
    msp.issue(0, Role::Orderer, 0).unwrap();
    msp.issue(0, Role::Client, 0).unwrap();
    msp
}

fn smallbank_net(block_size: usize) -> FabricNetwork {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(block_size)
        .chaincode("smallbank", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(Smallbank::new()));
    net
}

fn make_peers() -> (ValidatorPipeline, BMacPeer, BmacSender) {
    let policies: HashMap<String, fabric_policy::Policy> =
        [("smallbank".to_string(), parse("2-outof-2 orgs").unwrap())]
            .into_iter()
            .collect();
    let sw = ValidatorPipeline::new(make_msp(), policies, 4);
    let config = BmacConfig::from_yaml(
        "network:\n  orgs: 2\nchaincodes:\n  - name: smallbank\n    policy: 2-outof-2 orgs\n",
    )
    .unwrap();
    let bmac = BMacPeer::new(&config, make_msp());
    (sw, bmac, BmacSender::new())
}

fn validate_both(
    sw: &ValidatorPipeline,
    bmac: &mut BMacPeer,
    sender: &mut BmacSender,
    block: &Block,
) -> (
    Vec<fabric_ledger::TxValidationCode>,
    Vec<fabric_ledger::TxValidationCode>,
) {
    let sw_result = sw.validate_and_commit(block).unwrap();
    let mut hw_records = Vec::new();
    for p in sender.send_block(block).unwrap() {
        hw_records.extend(bmac.ingest_wire(&p.encode().unwrap(), 0).unwrap());
    }
    assert_eq!(hw_records.len(), 1, "one committed block per sent block");
    assert_eq!(
        sw_result.commit_hash, hw_records[0].commit_hash,
        "commit hashes agree"
    );
    (sw_result.codes, hw_records[0].flags.clone())
}

#[test]
fn driven_workload_produces_identical_results() {
    let mut net = smallbank_net(6);
    let mut driver = Driver::new(Workload::Smallbank, 10, 7);
    let (sw, mut bmac, mut sender) = make_peers();
    let mut blocks = driver.prepare(&mut net).unwrap();
    blocks.extend(driver.generate_blocks(&mut net, 4).unwrap());
    for block in &blocks {
        let (sw_codes, hw_flags) = validate_both(&sw, &mut bmac, &mut sender, block);
        assert_eq!(sw_codes, hw_flags, "block {}", block.header.number);
    }
    // State databases agree on every written key.
    let sw_db = sw.state_db();
    let hw_db = bmac.state_db();
    for i in 0..10 {
        let key = format!("acc{i}_checking");
        assert_eq!(
            sw_db.get(&key).map(|v| v.value),
            hw_db.get(&key).map(|v| v.value),
            "{key}"
        );
    }
}

#[test]
fn forged_client_signature_rejected_by_both() {
    let mut net = smallbank_net(2);
    let (sw, mut bmac, mut sender) = make_peers();
    net.submit_invocation(
        0,
        "smallbank",
        "create_account",
        &["a".into(), "1".into(), "1".into()],
    )
    .unwrap();
    let mut block = net
        .submit_invocation(
            0,
            "smallbank",
            "create_account",
            &["b".into(), "1".into(), "1".into()],
        )
        .unwrap()
        .remove(0);
    // Corrupt the second transaction's client signature (flip a byte in
    // the DER) and re-sign nothing: both peers must flag it.
    let mut env = Envelope::unmarshal(&block.data.data[1]).unwrap();
    let n = env.signature.len();
    env.signature[n - 1] ^= 0x01;
    block.data.data[1] = env.marshal();
    // Recompute data hash + orderer signature so only the tx is bad.
    let orderer = {
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Orderer, 0).unwrap()
    };
    let rebuilt = fabric_protos::txflow::build_block(
        block.header.number,
        &block.header.previous_hash,
        block.data.data.clone(),
        &orderer,
    );
    let (sw_codes, hw_flags) = validate_both(&sw, &mut bmac, &mut sender, &rebuilt);
    assert_eq!(sw_codes, hw_flags);
    assert!(sw_codes[0].is_valid());
    assert!(!sw_codes[1].is_valid());
}

#[test]
fn mvcc_conflicts_agree_between_peers() {
    let mut net = smallbank_net(2);
    let (sw, mut bmac, mut sender) = make_peers();
    // Two deposits to the same fresh account in one block: both endorsed
    // against version None; the second must MVCC-conflict on both peers.
    net.submit_invocation(
        0,
        "smallbank",
        "deposit_checking",
        &["x".into(), "5".into()],
    )
    .unwrap();
    let block = net
        .submit_invocation(
            0,
            "smallbank",
            "deposit_checking",
            &["x".into(), "7".into()],
        )
        .unwrap()
        .remove(0);
    let (sw_codes, hw_flags) = validate_both(&sw, &mut bmac, &mut sender, &block);
    assert_eq!(sw_codes, hw_flags);
    assert!(sw_codes[0].is_valid());
    assert_eq!(
        sw_codes[1],
        fabric_ledger::TxValidationCode::MvccReadConflict
    );
}

#[test]
fn ledgers_chain_identically_across_many_blocks() {
    let mut net = smallbank_net(3);
    let mut driver = Driver::new(Workload::Smallbank, 6, 21);
    let (sw, mut bmac, mut sender) = make_peers();
    let mut blocks = driver.prepare(&mut net).unwrap();
    blocks.extend(driver.generate_blocks(&mut net, 5).unwrap());
    for block in &blocks {
        validate_both(&sw, &mut bmac, &mut sender, block);
    }
    assert_eq!(sw.ledger().height(), bmac.ledger().height());
    assert_eq!(
        sw.ledger().tip_commit_hash(),
        bmac.ledger().tip_commit_hash()
    );
    assert!(sw.ledger().verify_chain().is_ok());
    assert!(bmac.ledger().verify_chain().is_ok());
}
