//! Ordering-service integration (multi-orderer Raft) and in-hardware
//! database capacity limits.

use bmac_core::{BMacPeer, BmacConfig};
use bmac_protocol::BmacSender;
use fabric_crypto::identity::{Msp, Role};
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_policy::parse;
use fabric_raft::cluster::Cluster;

#[test]
fn multi_orderer_network_produces_valid_blocks() {
    // 3-node Raft ordering service behind the network.
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(2)
        .orderer_cluster(3)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
        .unwrap();
    let blocks = net
        .submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
        .unwrap();
    assert_eq!(blocks.len(), 1);
    // Blocks from the Raft-ordered service validate on the BMac peer.
    let config = BmacConfig::from_yaml(
        "network:\n  orgs: 2\nchaincodes:\n  - name: kv\n    policy: 2-outof-2 orgs\n",
    )
    .unwrap();
    let mut msp = Msp::new(2);
    msp.issue(0, Role::Orderer, 0).unwrap();
    let mut peer = BMacPeer::new(&config, msp);
    let mut sender = BmacSender::new();
    let mut committed = Vec::new();
    for p in sender.send_block(&blocks[0]).unwrap() {
        committed.extend(peer.ingest_wire(&p.encode().unwrap(), 0).unwrap());
    }
    assert_eq!(committed[0].valid_count(), 2);
}

#[test]
fn raft_total_order_is_preserved_under_drops() {
    // Directly exercise the consensus substrate at a larger scale.
    let mut c = Cluster::new(5, 31337);
    c.set_drop_rate(0.1);
    c.run_until_leader(1000).expect("leader");
    for i in 0..20u8 {
        c.propose(vec![i]);
        for _ in 0..5 {
            c.round();
        }
    }
    for _ in 0..200 {
        c.round();
    }
    // Every node that committed anything committed a prefix of 0..20.
    for id in c.ids() {
        let committed = c.node_mut(id).take_committed();
        for (i, cmd) in committed.iter().enumerate() {
            assert_eq!(cmd, &vec![i as u8], "node {id} diverged at {i}");
        }
    }
}

#[test]
fn hw_database_capacity_limit_is_surfaced() {
    // A BMac architecture with a tiny database must report DbFull rather
    // than silently dropping writes.
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(1)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let config = BmacConfig::from_yaml(
        "network:\n  orgs: 2\nchaincodes:\n  - name: kv\n    policy: 2-outof-2 orgs\narchitecture:\n  db_capacity: 2\n",
    )
    .unwrap();
    let mut msp = Msp::new(2);
    msp.issue(0, Role::Orderer, 0).unwrap();
    let mut peer = BMacPeer::new(&config, msp);
    let mut sender = BmacSender::new();
    let mut saw_full = false;
    for i in 0..4 {
        let blocks = net
            .submit_invocation(0, "kv", "put", &[format!("key{i}"), "1".into()])
            .unwrap();
        for p in sender.send_block(&blocks[0]).unwrap() {
            match peer.ingest_wire(&p.encode().unwrap(), 0) {
                Ok(_) => {}
                Err(e) => {
                    assert!(e.to_string().contains("full"), "unexpected error {e}");
                    saw_full = true;
                }
            }
        }
        if saw_full {
            break;
        }
    }
    assert!(
        saw_full,
        "3rd distinct key must overflow a 2-entry database"
    );
}

#[test]
fn config_roundtrip_drives_architecture() {
    let config =
        BmacConfig::from_yaml("architecture:\n  tx_validators: 5\n  engines_per_vscc: 3\n")
            .unwrap();
    assert_eq!(config.geometry().to_string(), "5x3");
    let util = bmac_hw::utilization(config.geometry());
    assert!(
        (util.lut_pct - 25.4).abs() < 1.0,
        "5x3 LUT {}",
        util.lut_pct
    );
}
