//! Crash-recovery fault-injection harness for the durable store.
//!
//! The serial-equivalence bar of the streaming validator
//! (`stream_equivalence.rs`) extends here to restarts: **crash at any
//! byte offset, reopen, and the recovered ledger/state must equal the
//! exact serial prefix a replay would have committed** — bit-identical
//! validation flags, commit hashes, and state-database contents. The
//! harness drives:
//!
//! * truncation of the journal and of every block segment at a dense
//!   stride of byte offsets (including offset 0: an empty active
//!   segment, the torn-multi-segment-write case);
//! * randomized double crashes (journal *and* active segment truncated
//!   at independent offsets) over randomized scenarios, group-commit
//!   sizes and segment sizes, via proptest;
//! * fsync-free loss: committing without a final flush may lose the
//!   buffered tail but never breaks prefix equivalence;
//! * checkpoint faults: corrupted checkpoints fall back to full journal
//!   replay, checkpoints ahead of the store are discarded;
//! * a CRC-fixed bit flip inside a stored block (corruption framing
//!   cannot catch), rejected at reopen with the offending block number;
//! * journal record atomicity: truncation at every prefix length never
//!   yields a state mixing two batches;
//! * restart + resume: a recovered peer resumes the stream via
//!   `BmacReceiver::resuming_from` and converges to the full-chain
//!   state.
//!
//! Field/scalar backends: the CI matrix runs this harness on every
//! backend combination (the `recovery-gate` step).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use fabric_peer::pipeline::ValidatorPipeline;
use fabric_peer::{StreamConfig, StreamValidator, TxValidationCode};
use fabric_protos::messages::Block;
use fabric_statedb::VersionedValue;
use fabric_store::{FabricStore, StoreConfig, StoreOpenError};
use proptest::prelude::*;
use workload::{StreamScenario, Workload};

const SIG_CACHE: usize = 8192;

fn tempdir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "bmac-store-recovery-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn truncate_file(path: &Path, len: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(len).unwrap();
}

/// Block segment files under a store root, in index order.
fn segment_files(root: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(root.join("blocks"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segs.sort();
    segs
}

fn make_validator(scenario: &StreamScenario, store: &FabricStore) -> ValidatorPipeline {
    ValidatorPipeline::with_storage(
        scenario.validator_msp(),
        scenario.policies(),
        2,
        SIG_CACHE,
        store.state_db(),
        store.ledger(),
    )
}

/// The serial-replay oracle: after each block, the commit hash, flags,
/// and full state snapshot a correct peer must hold.
struct Reference {
    blocks: Vec<Block>,
    codes: Vec<Vec<TxValidationCode>>,
    commit_hashes: Vec<[u8; 32]>,
    /// `snapshots[j]` = state after committing blocks `0..j`.
    snapshots: Vec<Vec<(String, VersionedValue)>>,
}

fn reference(scenario: &StreamScenario) -> Reference {
    let generated = scenario.generate();
    let serial = ValidatorPipeline::new(scenario.validator_msp(), scenario.policies(), 2);
    let mut codes = Vec::new();
    let mut commit_hashes = Vec::new();
    let mut snapshots = vec![serial.state_db().snapshot()];
    for block in &generated.blocks {
        let r = serial.validate_and_commit(block).expect("serial replay");
        codes.push(r.codes.clone());
        commit_hashes.push(r.commit_hash);
        snapshots.push(serial.state_db().snapshot());
    }
    Reference {
        blocks: generated.blocks,
        codes,
        commit_hashes,
        snapshots,
    }
}

/// Commits the whole stream durably under `dir` (serial path), with an
/// optional checkpoint after `checkpoint_after` blocks, flushing at the
/// end unless `skip_final_flush`.
fn durable_commit(
    dir: &Path,
    scenario: &StreamScenario,
    reference: &Reference,
    config: StoreConfig,
    checkpoint_after: Option<usize>,
    skip_final_flush: bool,
) {
    let store = FabricStore::open(dir, config).unwrap();
    let validator = make_validator(scenario, &store);
    for (i, block) in reference.blocks.iter().enumerate() {
        let r = validator
            .validate_and_commit(block)
            .expect("durable commit");
        assert_eq!(
            r.commit_hash, reference.commit_hashes[i],
            "durable == serial"
        );
        if checkpoint_after == Some(i + 1) {
            store.checkpoint().unwrap();
        }
    }
    if !skip_final_flush {
        store.flush().unwrap();
    }
}

/// The central assertion: whatever prefix survived, it must be *a*
/// serial prefix — flags, commit hashes, chain, and state all agreeing
/// with the oracle at the recovered height. Returns the height.
fn assert_recovers_to_serial_prefix(dir: &Path, reference: &Reference) -> u64 {
    let store = FabricStore::open(dir, StoreConfig::default())
        .unwrap_or_else(|e| panic!("recovery must succeed after a crash, got {e}"));
    let ledger = store.ledger();
    let k = ledger.height();
    assert!(
        k <= reference.blocks.len() as u64,
        "cannot recover unseen blocks"
    );
    for n in 0..k {
        let cb = ledger.block(n).expect("recovered block readable");
        assert_eq!(cb.tx_filter, reference.codes[n as usize], "block {n} flags");
        assert_eq!(
            cb.commit_hash, reference.commit_hashes[n as usize],
            "block {n} commit hash"
        );
    }
    assert!(ledger.verify_chain().is_ok(), "recovered chain verifies");
    assert_eq!(
        store.state_db().snapshot(),
        reference.snapshots[k as usize],
        "recovered state == serial prefix state at height {k}"
    );
    k
}

fn small_scenario(seed: u64) -> StreamScenario {
    StreamScenario {
        workload: Workload::Smallbank,
        accounts: 3,
        block_size: 2,
        num_blocks: 6,
        stale_commit_pct: 30,
        corrupt_sigs: 1,
        duplicate_txs: 1,
        seed,
    }
}

/// Crash injected at a dense stride of byte offsets in the journal and
/// in every block segment — each truncation must recover to a serial
/// prefix. Small segments force multiple segments, so cuts land on
/// sealed/active boundaries (torn multi-segment writes) too.
#[test]
fn crash_at_any_offset_recovers_the_serial_prefix() {
    let scenario = small_scenario(77);
    let oracle = reference(&scenario);
    let dir = tempdir("matrix");
    durable_commit(
        &dir,
        &scenario,
        &oracle,
        StoreConfig {
            group_commit: 4,
            segment_max_bytes: 8 * 1024,
            ..StoreConfig::default()
        },
        Some(oracle.blocks.len() / 2),
        false,
    );

    let mut targets: Vec<PathBuf> = segment_files(&dir);
    targets.push(dir.join("journal.log"));
    assert!(
        targets.len() >= 3,
        "want multiple segments, got {targets:?}"
    );

    let mut shorter_seen = false;
    for target in &targets {
        let len = std::fs::metadata(target).unwrap().len();
        let step = (len / 23).max(1);
        let mut offsets: Vec<u64> = (0..len).step_by(step as usize).collect();
        offsets.push(len.saturating_sub(1));
        for cut in offsets {
            let crashed = tempdir("matrix-cut");
            copy_dir(&dir, &crashed);
            truncate_file(&crashed.join(target.strip_prefix(&dir).unwrap()), cut);
            let k = assert_recovers_to_serial_prefix(&crashed, &oracle);
            shorter_seen |= k < oracle.blocks.len() as u64;
            std::fs::remove_dir_all(&crashed).unwrap();
        }
    }
    assert!(shorter_seen, "the fault matrix never actually lost a block");
    // The untouched directory recovers the whole chain.
    let k = assert_recovers_to_serial_prefix(&dir, &oracle);
    assert_eq!(k, oracle.blocks.len() as u64);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// fsync-free semantics: dropping the peer without the final flush
/// loses exactly the buffered group tails — the recovered height is the
/// longest prefix both files' last group boundaries cover, and prefix
/// equivalence holds regardless.
#[test]
fn unflushed_tail_loss_stops_at_the_last_group_boundary() {
    let scenario = small_scenario(101);
    let oracle = reference(&scenario);
    let n = oracle.blocks.len();
    let valid_per_block: Vec<usize> = oracle
        .codes
        .iter()
        .map(|codes| codes.iter().filter(|c| c.is_valid()).count())
        .collect();
    for group in [1usize, 4] {
        let dir = tempdir("unflushed");
        durable_commit(
            &dir,
            &scenario,
            &oracle,
            StoreConfig {
                group_commit: group,
                ..StoreConfig::default()
            },
            None,
            true, // drop without flushing
        );
        let k = assert_recovers_to_serial_prefix(&dir, &oracle);
        // Both buffers flush at every `group`-th unit: block appends in
        // blocks, journal records in per-valid-tx applies. The recovered
        // height is exactly the longest prefix whose blocks all sit
        // below both last-flush boundaries.
        let total_records: usize = valid_per_block.iter().sum();
        let flushed_records = (total_records / group) * group;
        let flushed_blocks = (n / group) * group;
        let mut expected = 0u64;
        let mut cum_records = 0usize;
        for (i, v) in valid_per_block.iter().enumerate() {
            cum_records += v;
            if i < flushed_blocks && cum_records <= flushed_records {
                expected = i as u64 + 1;
            } else {
                break;
            }
        }
        assert_eq!(
            k, expected,
            "group={group}: recovered height vs group-boundary prediction"
        );
        if group == 1 {
            assert_eq!(k, n as u64, "group-commit 1 must lose nothing");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Checkpoint faults: a corrupt checkpoint falls back to full journal
/// replay; a checkpoint ahead of the (crashed) block store is
/// discarded. Both still recover serial prefixes.
#[test]
fn checkpoint_journal_disagreement_is_reconciled() {
    let scenario = small_scenario(303);
    let oracle = reference(&scenario);
    let dir = tempdir("ckpt");
    durable_commit(
        &dir,
        &scenario,
        &oracle,
        StoreConfig {
            group_commit: 2,
            segment_max_bytes: 8 * 1024,
            ..StoreConfig::default()
        },
        Some(oracle.blocks.len() - 1),
        false,
    );

    // (a) Bit-rotted checkpoint: discarded, full-journal replay matches.
    let rotted = tempdir("ckpt-rot");
    copy_dir(&dir, &rotted);
    let ckpt = rotted.join("checkpoint.bin");
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&ckpt, &bytes).unwrap();
    let store = FabricStore::open(&rotted, StoreConfig::default()).unwrap();
    assert!(
        store.recovery().checkpoint_discarded,
        "corrupt ckpt flagged"
    );
    drop(store);
    let k = assert_recovers_to_serial_prefix(&rotted, &oracle);
    assert_eq!(
        k,
        oracle.blocks.len() as u64,
        "journal replay covers everything"
    );
    std::fs::remove_dir_all(&rotted).unwrap();

    // (b) Checkpoint ahead of the store: crash the *block* files back to
    // a couple of segments while the checkpoint describes the full
    // chain. The checkpoint must be discarded, not rolled forward.
    let behind = tempdir("ckpt-ahead");
    copy_dir(&dir, &behind);
    let segs = segment_files(&behind);
    assert!(segs.len() >= 3);
    for seg in &segs[1..] {
        truncate_file(seg, 0);
    }
    let store = FabricStore::open(&behind, StoreConfig::default()).unwrap();
    assert!(
        store.recovery().checkpoint_discarded,
        "a checkpoint above the surviving store must be discarded"
    );
    drop(store);
    let k = assert_recovers_to_serial_prefix(&behind, &oracle);
    assert!(k < oracle.blocks.len() as u64);
    std::fs::remove_dir_all(&behind).unwrap();

    // (c) Journal crashed below the checkpoint: state recovers to the
    // snapshot exactly (the serial prefix at the checkpoint height).
    let jlost = tempdir("ckpt-jlost");
    copy_dir(&dir, &jlost);
    truncate_file(&jlost.join("journal.log"), 64);
    let store = FabricStore::open(&jlost, StoreConfig::default()).unwrap();
    let ck = store.recovery().checkpoint_height.expect("ckpt used");
    assert_eq!(store.ledger().height(), ck.block_num + 1);
    drop(store);
    assert_recovers_to_serial_prefix(&jlost, &oracle);
    std::fs::remove_dir_all(&jlost).unwrap();

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: a bit flip *inside a stored block's payload*, with the
/// record CRC recomputed so framing cannot catch it, must be rejected
/// at reopen by chain verification — naming the offending block.
#[test]
fn crc_fixed_bit_flip_is_rejected_with_the_block_number() {
    let scenario = small_scenario(505);
    let oracle = reference(&scenario);
    let dir = tempdir("bitflip");
    durable_commit(
        &dir,
        &scenario,
        &oracle,
        StoreConfig::default(),
        None,
        false,
    );

    // All blocks live in seg-00000 (default 4 MiB segments). Rewrite
    // the record of block 2 with one payload bit flipped and a *valid*
    // CRC.
    let seg = &segment_files(&dir)[0];
    let bytes = std::fs::read(seg).unwrap();
    let scan = fabric_store::frame::scan(&bytes);
    assert!(scan.records.len() > 3);
    let mut rewritten = Vec::new();
    for (i, (_, payload)) in scan.records.iter().enumerate() {
        let mut payload = payload.clone();
        if i == 2 {
            let mid = payload.len() / 2;
            payload[mid] ^= 0x04; // lands inside an envelope: data_hash breaks
        }
        rewritten.extend_from_slice(&fabric_store::frame::encode_record(&payload));
    }
    std::fs::write(seg, &rewritten).unwrap();

    match FabricStore::open(&dir, StoreConfig::default()) {
        Err(StoreOpenError::Chain { block }) | Err(StoreOpenError::CorruptBlock { block }) => {
            assert_eq!(block, 2, "corruption pinned to the flipped block");
        }
        Ok(_) => panic!("a tampered interior block must not recover"),
        Err(other) => panic!("wrong error class: {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: restart + resume. Crash mid-chain, reopen, and feed the
/// remaining blocks through a fresh `StreamValidator` fed by a
/// `BmacReceiver::resuming_from` at the recovered height — the final
/// state must equal the full serial replay, and the resumed chain must
/// link to the recovered tip.
#[test]
fn recovered_peer_resumes_the_stream_to_the_full_chain() {
    use bmac_protocol::{BmacReceiver, BmacSender};

    let scenario = small_scenario(707);
    let oracle = reference(&scenario);
    let dir = tempdir("resume");
    durable_commit(
        &dir,
        &scenario,
        &oracle,
        StoreConfig {
            group_commit: 2,
            segment_max_bytes: 8 * 1024,
            ..StoreConfig::default()
        },
        None,
        false,
    );

    // Crash: tear the tail of the last segment and the journal.
    let segs = segment_files(&dir);
    let last = segs.last().unwrap();
    let len = std::fs::metadata(last).unwrap().len();
    truncate_file(last, len * 2 / 3);
    let jlen = std::fs::metadata(dir.join("journal.log")).unwrap().len();
    truncate_file(&dir.join("journal.log"), jlen - 11);

    let store = FabricStore::open(&dir, StoreConfig::default()).unwrap();
    let k = store.ledger().height();
    assert!(k < oracle.blocks.len() as u64, "the crash lost something");
    let recovered_tip = store.ledger().tip_hash();
    assert_eq!(
        oracle.blocks[k as usize].header.previous_hash,
        recovered_tip.to_vec(),
        "next block links to the recovered tip"
    );

    // Resume: protocol receiver attaches mid-chain, stream starts at
    // the ledger's next block.
    let pipeline = Arc::new(make_validator(&scenario, &store));
    let stream = StreamValidator::new(Arc::clone(&pipeline), StreamConfig::default());
    let mut sender = BmacSender::new();
    let mut receiver = BmacReceiver::resuming_from(k);
    for block in &oracle.blocks[k as usize..] {
        for packet in sender.send_block(block).unwrap() {
            for received in receiver.ingest(&packet.encode().unwrap()).unwrap() {
                stream.push(received.block).unwrap();
            }
        }
    }
    let report = stream.finish().expect("resumed stream completes");
    assert_eq!(report.results.len(), oracle.blocks.len() - k as usize);

    let n = oracle.blocks.len();
    assert_eq!(
        pipeline.ledger().tip_commit_hash(),
        oracle.commit_hashes[n - 1],
        "resumed chain reaches the full-replay tip"
    );
    assert_eq!(pipeline.state_db().snapshot(), oracle.snapshots[n]);
    drop(pipeline);
    drop(store);
    // And the resumed chain is durable in turn.
    let k2 = assert_recovers_to_serial_prefix(&dir, &oracle);
    assert_eq!(k2, n as u64);
    std::fs::remove_dir_all(&dir).unwrap();
}

// Satellite: journal batch atomicity. Encoding a batch sequence and
// crash-truncating at *every* prefix length must always replay to the
// state of some whole-batch prefix — never a state mixing two batches.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn journal_truncation_is_atomic_at_batch_granularity(
        seed in any::<u64>(),
        nbatches in 1usize..6,
    ) {
        use fabric_statedb::{Height, StateDb, WriteBatch};
        use rand::{rngs::StdRng, Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(seed);
        // Batches deliberately collide on a small key space so mixing
        // two batches actually changes observable state.
        let mut batches: Vec<(WriteBatch, Height)> = Vec::new();
        for b in 0..nbatches {
            let mut batch = WriteBatch::new();
            for _ in 0..rng.gen_range(0..4usize) {
                let key = format!("k{}", rng.gen_range(0..3u8));
                if rng.gen_range(0..4u8) == 0 {
                    batch.delete(key);
                } else {
                    batch.put(key, vec![rng.gen_range(0..=255u8); rng.gen_range(1..9usize)]);
                }
            }
            batches.push((batch, Height::new(b as u64, 0)));
        }

        let stream: Vec<u8> = batches
            .iter()
            .flat_map(|(b, h)| {
                fabric_store::frame::encode_record(&fabric_store::journal::encode_batch(b, *h))
            })
            .collect();

        // Oracle states: after applying each whole-batch prefix.
        let prefix_state = |m: usize| {
            let db = StateDb::new();
            for (batch, height) in &batches[..m] {
                db.apply(batch, *height);
            }
            db.snapshot()
        };
        let oracles: Vec<_> = (0..=nbatches).map(prefix_state).collect();

        for cut in 0..=stream.len() {
            let scan = fabric_store::frame::scan(&stream[..cut]);
            prop_assert!(!matches!(scan.tail, fabric_store::frame::Tail::Corrupt { .. }));
            let m = scan.records.len();
            let db = StateDb::new();
            for (_, payload) in &scan.records {
                let (height, batch) = fabric_store::journal::decode_batch(payload)
                    .expect("CRC-valid record decodes");
                db.replay(&batch, height);
            }
            // The replayed state IS the m-batch prefix state: no torn
            // half-batch can ever have been applied.
            prop_assert_eq!(db.snapshot(), oracles[m].clone(), "cut={}, m={}", cut, m);
        }
    }
}

// Randomized double crashes over randomized scenarios and store
// configurations (the proptest arm of the acceptance criterion).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_double_crash_recovers_the_serial_prefix(
        seed in any::<u64>(),
        group in 1usize..9,
        tiny_segments in any::<bool>(),
        jcut_frac in 0.0f64..1.0,
        scut_frac in 0.0f64..1.0,
        checkpoint in any::<bool>(),
    ) {
        let scenario = StreamScenario {
            workload: Workload::Smallbank,
            accounts: 3,
            block_size: 2,
            num_blocks: 4,
            stale_commit_pct: 50,
            corrupt_sigs: 1,
            duplicate_txs: 0,
            seed,
        };
        let oracle = reference(&scenario);
        let dir = tempdir("double");
        durable_commit(
            &dir,
            &scenario,
            &oracle,
            StoreConfig {
                group_commit: group,
                segment_max_bytes: if tiny_segments { 4 * 1024 } else { 4 * 1024 * 1024 },
                ..StoreConfig::default()
            },
            checkpoint.then_some(oracle.blocks.len() / 2),
            false,
        );
        // Independent cuts in the journal and the last (active) segment:
        // crash ordering across two files guarantees nothing.
        let jpath = dir.join("journal.log");
        let jlen = std::fs::metadata(&jpath).unwrap().len();
        truncate_file(&jpath, (jlen as f64 * jcut_frac) as u64);
        let segs = segment_files(&dir);
        let last = segs.last().unwrap();
        let slen = std::fs::metadata(last).unwrap().len();
        truncate_file(last, (slen as f64 * scut_frac) as u64);

        assert_recovers_to_serial_prefix(&dir, &oracle);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Crash between the block-store append and the journal flush, at every
/// block boundary: commit a prefix of `p` blocks durably, then flush
/// only *one* side (or neither) before dropping every handle — the
/// torn-tail interleavings a crash can produce with the two files at
/// independent group-commit boundaries. Whatever the interleaving, the
/// min-rule must reconcile the pair to a serial prefix no longer than
/// what was committed.
#[test]
fn one_sided_flush_at_every_block_boundary_recovers_a_serial_prefix() {
    #[derive(Clone, Copy, Debug)]
    enum Crash {
        /// Neither file flushed: both tails torn.
        Neither,
        /// State journal flushed, block store buffered: journal ahead.
        JournalOnly,
        /// Block store flushed, journal buffered: ledger ahead.
        LedgerOnly,
    }
    let scenario = small_scenario(303);
    let oracle = reference(&scenario);
    let n = oracle.blocks.len();
    // group_commit 3 keeps a real buffered tail at most boundaries, so
    // the one-sided flush actually skews the two files.
    let config = StoreConfig {
        group_commit: 3,
        segment_max_bytes: 8 * 1024,
        ..StoreConfig::default()
    };
    let mut skew_seen = false;
    for p in 0..=n {
        for crash in [Crash::Neither, Crash::JournalOnly, Crash::LedgerOnly] {
            let dir = tempdir("one-sided");
            {
                let store = FabricStore::open(&dir, config).unwrap();
                let validator = make_validator(&scenario, &store);
                for block in &oracle.blocks[..p] {
                    validator
                        .validate_and_commit(block)
                        .expect("prefix commits");
                }
                match crash {
                    Crash::Neither => {}
                    Crash::JournalOnly => store.state_db().flush_journal(),
                    Crash::LedgerOnly => store.ledger().flush().unwrap(),
                }
                // Handles dropped without `store.flush()`: the crash.
            }
            let k = assert_recovers_to_serial_prefix(&dir, &oracle);
            assert!(
                k <= p as u64,
                "recovered {k} blocks but only {p} were committed ({crash:?})"
            );
            skew_seen |= k < p as u64;
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
    assert!(
        skew_seen,
        "the interleaving matrix never actually lost a buffered tail"
    );
}

/// Aborting (or plainly dropping) a mid-flight streaming session is a
/// crash: storage is deliberately not flushed, the tail is torn at
/// whatever group-commit boundaries the OS already has, and recovery
/// must land on a serial prefix no longer than what the sequencer had
/// committed at the instant of the abort.
#[test]
fn stream_abort_mid_flight_leaves_a_recoverable_torn_tail() {
    let scenario = small_scenario(404);
    let oracle = reference(&scenario);
    let n = oracle.blocks.len();
    let config = StoreConfig {
        group_commit: 2,
        segment_max_bytes: 8 * 1024,
        ..StoreConfig::default()
    };
    for (pushed, explicit_abort) in [(1, true), (n / 2, true), (n, true), (n, false)] {
        let dir = tempdir("stream-abort");
        let committed = {
            let store = FabricStore::open(&dir, config).unwrap();
            let validator = std::sync::Arc::new(make_validator(&scenario, &store));
            let stream = StreamValidator::new(validator, StreamConfig::default());
            for block in oracle.blocks.iter().take(pushed) {
                stream.push(block.clone()).unwrap();
            }
            if explicit_abort {
                stream.abort()
            } else {
                // Dropping an unfinished session must have the same
                // crash semantics as `abort`.
                drop(stream);
                usize::MAX
            }
        };
        let k = assert_recovers_to_serial_prefix(&dir, &oracle);
        assert!(k <= pushed as u64, "cannot recover unpushed blocks");
        if explicit_abort {
            assert!(
                k <= committed as u64,
                "recovered {k} blocks but the sequencer only committed {committed}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------
// State-backend cross-checks: the on-disk formats (journal, checkpoint,
// block store) are backend-independent, so any surviving prefix must
// recover to the SAME state whichever backend replays it — and a
// checkpoint written by one backend must restore into the other.
// ---------------------------------------------------------------------

use fabric_statedb::StateBackend;

/// Reopens the store pinned to `backend` and runs the full serial-prefix
/// audit, returning `(height, state hash, journal records replayed)`.
fn recover_with_backend(
    dir: &Path,
    reference: &Reference,
    backend: StateBackend,
) -> (u64, u64, usize) {
    let store = FabricStore::open(
        dir,
        StoreConfig {
            state_backend: backend,
            ..StoreConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("recovery on {backend} must succeed, got {e}"));
    assert_eq!(store.state_db().backend(), backend);
    let ledger = store.ledger();
    let k = ledger.height();
    for n in 0..k {
        let cb = ledger.block(n).expect("recovered block readable");
        assert_eq!(
            cb.commit_hash, reference.commit_hashes[n as usize],
            "block {n} commit hash ({backend})"
        );
    }
    assert_eq!(
        store.state_db().snapshot(),
        reference.snapshots[k as usize],
        "recovered state == serial prefix state at height {k} ({backend})"
    );
    (
        k,
        store.state_db().state_hash(),
        store.recovery().journal_records_replayed,
    )
}

/// The crash/truncation fault matrix of
/// `crash_at_any_offset_recovers_the_serial_prefix`, crossed with the
/// state backend: every journal truncation must recover to the same
/// serial prefix with bit-identical state hashes on sharded and legacy
/// replay (journal replay into sharded shards ≡ legacy replay).
#[test]
fn journal_truncation_recovers_identically_on_both_backends() {
    let scenario = small_scenario(505);
    let oracle = reference(&scenario);
    let dir = tempdir("backend-matrix");
    // Commit durably WITH the sharded backend: the journal under test
    // was produced through the commit-order mutex path.
    durable_commit(
        &dir,
        &scenario,
        &oracle,
        StoreConfig {
            group_commit: 4,
            segment_max_bytes: 8 * 1024,
            state_backend: StateBackend::Sharded,
        },
        Some(oracle.blocks.len() / 2),
        false,
    );

    let jpath = dir.join("journal.log");
    let jlen = std::fs::metadata(&jpath).unwrap().len();
    let step = (jlen / 11).max(1);
    let mut offsets: Vec<u64> = (0..jlen).step_by(step as usize).collect();
    offsets.push(jlen);
    for cut in offsets {
        let crashed = tempdir("backend-matrix-cut");
        copy_dir(&dir, &crashed);
        truncate_file(&crashed.join("journal.log"), cut);
        let (k_s, hash_s, replayed_s) =
            recover_with_backend(&crashed, &oracle, StateBackend::Sharded);
        let (k_l, hash_l, replayed_l) =
            recover_with_backend(&crashed, &oracle, StateBackend::Legacy);
        assert_eq!(k_s, k_l, "recovered heights diverge at cut {cut}");
        assert_eq!(hash_s, hash_l, "state hashes diverge at cut {cut}");
        assert_eq!(
            replayed_s, replayed_l,
            "replay record counts diverge at cut {cut}"
        );
        std::fs::remove_dir_all(&crashed).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Checkpoints round-trip across backends: a store committed and
/// checkpointed under one backend reopens under the other (snapshot
/// restore crosses the shard layout in both directions), recovering
/// the full serial state.
#[test]
fn checkpoint_restore_round_trips_across_backends() {
    for (writer, reader) in [
        (StateBackend::Sharded, StateBackend::Legacy),
        (StateBackend::Legacy, StateBackend::Sharded),
    ] {
        let scenario = small_scenario(606);
        let oracle = reference(&scenario);
        let dir = tempdir("backend-ckpt");
        durable_commit(
            &dir,
            &scenario,
            &oracle,
            StoreConfig {
                group_commit: 2,
                segment_max_bytes: 8 * 1024,
                state_backend: writer,
            },
            Some(oracle.blocks.len() - 1), // checkpoint near the tip
            false,
        );
        let (k, hash_reader, _) = recover_with_backend(&dir, &oracle, reader);
        assert_eq!(k, oracle.blocks.len() as u64, "{writer}->{reader}");
        // And back onto the writer backend for the hash comparison.
        let (_, hash_writer, _) = recover_with_backend(&dir, &oracle, writer);
        assert_eq!(
            hash_reader, hash_writer,
            "checkpoint written by {writer} diverges when restored by {reader}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
