//! Fault injection on the BMac protocol: loss, reordering, duplication,
//! corruption. The protocol has no retransmission (paper §5) — losses
//! must be *detected*, not silently absorbed.

use bmac_protocol::{BmacPacket, BmacReceiver, BmacSender, SectionType};
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_policy::parse;
use fabric_protos::messages::Block;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn one_block(ntx: usize) -> Block {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(ntx)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let mut blocks = Vec::new();
    let mut i = 0;
    while blocks.is_empty() {
        blocks = net
            .submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
            .unwrap();
        i += 1;
    }
    blocks.remove(0)
}

#[test]
fn duplicated_packets_are_harmless() {
    let block = one_block(4);
    let mut sender = BmacSender::new();
    let mut receiver = BmacReceiver::new();
    let packets = sender.send_block(&block).unwrap();
    let mut completed = 0;
    for p in &packets {
        let wire = p.encode().unwrap();
        completed += receiver.ingest(&wire).unwrap().len();
        // Deliver everything twice.
        completed += receiver.ingest(&wire).unwrap().len();
    }
    assert_eq!(completed, 1, "duplicates must not produce extra blocks");
}

#[test]
fn arbitrary_reordering_still_reconstructs() {
    let block = one_block(6);
    let mut sender = BmacSender::new();
    let packets = sender.send_block(&block).unwrap();
    let mut rng = StdRng::seed_from_u64(33);
    for _trial in 0..5 {
        let mut shuffled = packets.clone();
        shuffled.shuffle(&mut rng);
        let mut receiver = BmacReceiver::new();
        let mut got = None;
        for p in &shuffled {
            for b in receiver.ingest(&p.encode().unwrap()).unwrap() {
                got = Some(b);
            }
        }
        let got = got.expect("block completes under any packet order");
        assert_eq!(got.block.marshal(), block.marshal());
    }
}

#[test]
fn corrupted_payload_fails_signature_not_crash() {
    let block = one_block(2);
    let mut sender = BmacSender::new();
    let mut receiver = BmacReceiver::new();
    let packets = sender.send_block(&block).unwrap();
    let mut received = None;
    for p in packets {
        let mut wire = p.encode().unwrap();
        // Corrupt one byte in the middle of each transaction payload.
        if p.section == SectionType::Transaction {
            let n = wire.len();
            wire[n - 10] ^= 0xff;
        }
        match receiver.ingest(&wire) {
            Ok(blocks) => {
                for b in blocks {
                    received = Some(b);
                }
            }
            Err(_) => return, // structural decode failure is acceptable
        }
    }
    // If reconstruction survived, the signatures must NOT verify.
    if let Some(rb) = received {
        let decoded = fabric_protos::txflow::decode_block(&rb.block.marshal());
        if let Ok(decoded) = decoded {
            let any_valid = decoded.txs.iter().any(|tx| {
                tx.creator_cert
                    .public_key
                    .verify(&tx.signed_payload, &tx.client_signature)
                    .is_ok()
            });
            assert!(!any_valid, "corruption must invalidate signatures");
        }
    }
}

/// Applies a randomized delivery schedule — shuffling, duplication, and
/// an optional single drop — to one block's packets and returns what the
/// receiver produced plus whether it reported the block incomplete.
fn deliver_with_schedule(
    packets: &[BmacPacket],
    seed: u64,
    duplicate_every: Option<usize>,
    drop_index: Option<usize>,
) -> (BmacReceiver, Vec<Vec<u8>>) {
    let mut schedule: Vec<BmacPacket> = Vec::new();
    for (i, p) in packets.iter().enumerate() {
        if Some(i) == drop_index {
            continue;
        }
        schedule.push(p.clone());
        if let Some(k) = duplicate_every {
            if k > 0 && i % k == 0 {
                schedule.push(p.clone());
            }
        }
    }
    schedule.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut receiver = BmacReceiver::new();
    let mut completed = Vec::new();
    for p in &schedule {
        for b in receiver.ingest(&p.encode().unwrap()).unwrap() {
            completed.push(b.block.marshal());
        }
    }
    (receiver, completed)
}

proptest! {
    // Each case builds and packetizes a real block; a moderate case
    // count still sweeps hundreds of distinct schedules.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any order + any duplication with NO loss must reconstruct the
    /// exact block bytes exactly once.
    #[test]
    fn reordered_duplicated_lossless_delivery_is_byte_exact(
        ntx in 1usize..5,
        seed in any::<u64>(),
        duplicate_every in prop_oneof![Just(None), Just(Some(1)), Just(Some(2)), Just(Some(3))],
    ) {
        let block = one_block(ntx);
        let mut sender = BmacSender::new();
        let packets = sender.send_block(&block).unwrap();
        let (receiver, completed) =
            deliver_with_schedule(&packets, seed, duplicate_every, None);
        prop_assert_eq!(completed.len(), 1, "exactly one completion");
        prop_assert_eq!(&completed[0], &block.marshal(), "byte-exact reconstruction");
        prop_assert!(receiver.incomplete_blocks().is_empty());
    }

    /// Dropping any single section packet — under any reordering and
    /// duplication of the REST — must leave the block loudly incomplete:
    /// never a completion, never a silent pass. (Duplicates of the
    /// dropped packet itself are excluded: the protocol treats a
    /// duplicate as a retransmission, which genuinely repairs the loss.)
    #[test]
    fn any_single_loss_is_detected_never_absorbed(
        ntx in 1usize..4,
        seed in any::<u64>(),
        drop_selector in any::<u64>(),
    ) {
        let block = one_block(ntx);
        let mut sender = BmacSender::new();
        let packets = sender.send_block(&block).unwrap();
        // Only section packets are droppable here: identity syncs are
        // config-like state a real deployment pre-installs (and their
        // loss parks the block instead, covered below).
        let section_indexes: Vec<usize> = packets
            .iter()
            .enumerate()
            .filter(|(_, p)| p.section != SectionType::IdentitySync)
            .map(|(i, _)| i)
            .collect();
        let drop_index = section_indexes[(drop_selector % section_indexes.len() as u64) as usize];
        let (receiver, completed) =
            deliver_with_schedule(&packets, seed, None, Some(drop_index));
        prop_assert!(completed.is_empty(), "lost packet must not complete a block");
        prop_assert_eq!(
            receiver.incomplete_blocks(),
            vec![block.header.number],
            "loss must be observable"
        );
    }

    /// Losing an identity-sync packet parks every block that references
    /// the identity: no completion, and the block stays reported as
    /// incomplete (the detectable-loss guarantee, paper §5).
    #[test]
    fn lost_identity_sync_parks_dependent_blocks(
        ntx in 1usize..4,
        seed in any::<u64>(),
    ) {
        let block = one_block(ntx);
        let mut sender = BmacSender::new();
        let packets = sender.send_block(&block).unwrap();
        let sections: Vec<BmacPacket> = packets
            .iter()
            .filter(|p| p.section != SectionType::IdentitySync)
            .cloned()
            .collect();
        let (receiver, completed) = deliver_with_schedule(&sections, seed, Some(2), None);
        prop_assert!(completed.is_empty());
        prop_assert_eq!(receiver.incomplete_blocks(), vec![block.header.number]);
    }
}

#[test]
fn loss_rate_sweep_detects_all_incomplete_blocks() {
    let mut sender = BmacSender::new();
    let mut rng = StdRng::seed_from_u64(77);
    let blocks: Vec<Block> = (0..4)
        .map(|i| {
            let mut b = one_block(3);
            b.header.number = i;
            b
        })
        .collect();
    let mut receiver = BmacReceiver::new();
    let mut completed = Vec::new();
    for block in &blocks {
        for p in sender.send_block(block).unwrap() {
            // Drop 20% of section packets (never syncs, which a real
            // deployment would pre-install from the config file).
            if p.section != SectionType::IdentitySync && rand::Rng::gen_bool(&mut rng, 0.2) {
                continue;
            }
            for b in receiver.ingest(&p.encode().unwrap()).unwrap() {
                completed.push(b.block.header.number);
            }
        }
    }
    let incomplete = receiver.incomplete_blocks();
    // Every block is either completed or reported incomplete.
    for n in 0..4u64 {
        assert!(
            completed.contains(&n) || incomplete.contains(&n),
            "block {n} lost without detection"
        );
    }
    assert!(
        !incomplete.is_empty(),
        "20% loss certainly broke some block"
    );
}
