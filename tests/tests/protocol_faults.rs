//! Fault injection on the BMac protocol: loss, reordering, duplication,
//! corruption. The protocol has no retransmission (paper §5) — losses
//! must be *detected*, not silently absorbed.

use bmac_protocol::{BmacReceiver, BmacSender, SectionType};
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_policy::parse;
use fabric_protos::messages::Block;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn one_block(ntx: usize) -> Block {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(ntx)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let mut blocks = Vec::new();
    let mut i = 0;
    while blocks.is_empty() {
        blocks = net
            .submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
            .unwrap();
        i += 1;
    }
    blocks.remove(0)
}

#[test]
fn duplicated_packets_are_harmless() {
    let block = one_block(4);
    let mut sender = BmacSender::new();
    let mut receiver = BmacReceiver::new();
    let packets = sender.send_block(&block).unwrap();
    let mut completed = 0;
    for p in &packets {
        let wire = p.encode().unwrap();
        completed += receiver.ingest(&wire).unwrap().len();
        // Deliver everything twice.
        completed += receiver.ingest(&wire).unwrap().len();
    }
    assert_eq!(completed, 1, "duplicates must not produce extra blocks");
}

#[test]
fn arbitrary_reordering_still_reconstructs() {
    let block = one_block(6);
    let mut sender = BmacSender::new();
    let packets = sender.send_block(&block).unwrap();
    let mut rng = StdRng::seed_from_u64(33);
    for _trial in 0..5 {
        let mut shuffled = packets.clone();
        shuffled.shuffle(&mut rng);
        let mut receiver = BmacReceiver::new();
        let mut got = None;
        for p in &shuffled {
            for b in receiver.ingest(&p.encode().unwrap()).unwrap() {
                got = Some(b);
            }
        }
        let got = got.expect("block completes under any packet order");
        assert_eq!(got.block.marshal(), block.marshal());
    }
}

#[test]
fn corrupted_payload_fails_signature_not_crash() {
    let block = one_block(2);
    let mut sender = BmacSender::new();
    let mut receiver = BmacReceiver::new();
    let packets = sender.send_block(&block).unwrap();
    let mut received = None;
    for p in packets {
        let mut wire = p.encode().unwrap();
        // Corrupt one byte in the middle of each transaction payload.
        if p.section == SectionType::Transaction {
            let n = wire.len();
            wire[n - 10] ^= 0xff;
        }
        match receiver.ingest(&wire) {
            Ok(blocks) => {
                for b in blocks {
                    received = Some(b);
                }
            }
            Err(_) => return, // structural decode failure is acceptable
        }
    }
    // If reconstruction survived, the signatures must NOT verify.
    if let Some(rb) = received {
        let decoded = fabric_protos::txflow::decode_block(&rb.block.marshal());
        if let Ok(decoded) = decoded {
            let any_valid = decoded.txs.iter().any(|tx| {
                tx.creator_cert
                    .public_key
                    .verify(&tx.signed_payload, &tx.client_signature)
                    .is_ok()
            });
            assert!(!any_valid, "corruption must invalidate signatures");
        }
    }
}

#[test]
fn loss_rate_sweep_detects_all_incomplete_blocks() {
    let mut sender = BmacSender::new();
    let mut rng = StdRng::seed_from_u64(77);
    let blocks: Vec<Block> = (0..4)
        .map(|i| {
            let mut b = one_block(3);
            b.header.number = i;
            b
        })
        .collect();
    let mut receiver = BmacReceiver::new();
    let mut completed = Vec::new();
    for block in &blocks {
        for p in sender.send_block(block).unwrap() {
            // Drop 20% of section packets (never syncs, which a real
            // deployment would pre-install from the config file).
            if p.section != SectionType::IdentitySync && rand::Rng::gen_bool(&mut rng, 0.2) {
                continue;
            }
            for b in receiver.ingest(&p.encode().unwrap()).unwrap() {
                completed.push(b.block.header.number);
            }
        }
    }
    let incomplete = receiver.incomplete_blocks();
    // Every block is either completed or reported incomplete.
    for n in 0..4u64 {
        assert!(
            completed.contains(&n) || incomplete.contains(&n),
            "block {n} lost without detection"
        );
    }
    assert!(
        !incomplete.is_empty(),
        "20% loss certainly broke some block"
    );
}
