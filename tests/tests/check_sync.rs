//! Integration tests for the fabric-check lock-order/race analysis
//! layer wired through the parking_lot shim.
//!
//! Gated behind the `check-sync` feature so the default build (and the
//! default `cargo test` run) carries no instrumentation:
//!
//! ```text
//! cargo test -p bmac-integration-tests --features check-sync
//! ```
//!
//! The checker state (order graph, enable flag, seed) is process-wide,
//! so every test here serializes on one mutex and uses `test.`-prefixed
//! lock labels (exempt from the LOCK_ORDER.txt manifest) with names
//! unique to that test — the order graph accumulates edges for the
//! lifetime of the process.
#![cfg(feature = "check-sync")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric_statedb::{Height, JournalSink, ShardedStateDb, WriteBatch};
use parking_lot::Mutex;

/// Serializes tests in this binary: they all mutate the process-wide
/// checker (enable flag, seed, lock-order graph).
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn panic_text(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic>".to_string())
}

/// The deliberate ABBA fixture: establish `test.abba_a -> test.abba_b`,
/// then acquire in the reverse order. The checker must panic at the
/// moment the inverted edge is registered — before blocking, so this
/// runs deterministically on one thread — and the message must name
/// both conflicting acquisition sites.
#[test]
fn abba_inversion_panics_naming_both_sites() {
    let _serial = test_lock();
    fabric_check::enable();

    let a = Mutex::named("test.abba_a", ());
    let b = Mutex::named("test.abba_b", ());

    {
        let _ga = a.lock();
        let _gb = b.lock(); // records test.abba_a -> test.abba_b
    }

    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock(); // inversion: test.abba_b -> test.abba_a
    }))
    .expect_err("inverted acquisition order must panic under check-sync");

    let msg = panic_text(err);
    assert!(
        msg.contains("LOCK-ORDER INVERSION"),
        "unexpected panic: {msg}"
    );
    assert!(msg.contains("test.abba_a"), "missing first label: {msg}");
    assert!(msg.contains("test.abba_b"), "missing second label: {msg}");
    // Both stacks are rendered: the inverted acquisition and the
    // first-observed conflicting one.
    assert!(
        msg.contains("this acquisition") && msg.contains("conflicting prior acquisition"),
        "must render both acquisition sites: {msg}"
    );
}

/// A lock-order violation found under perturbation echoes the seed so
/// the schedule can be replayed exactly.
#[test]
fn perturbation_failure_echoes_replay_seed() {
    let _serial = test_lock();
    fabric_check::enable();
    fabric_check::set_seed(0xD00D_F00D);

    let a = Mutex::named("test.seed_a", ());
    let b = Mutex::named("test.seed_b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }))
    .expect_err("inversion must panic");
    let msg = panic_text(err);
    assert!(
        msg.contains(&format!("FABRIC_CHECK_SEED={}", 0xD00D_F00Du64)),
        "panic must echo the perturbation seed for replay: {msg}"
    );
    assert_eq!(fabric_check::current_seed(), 0xD00D_F00D);
    fabric_check::set_seed(0);
}

/// The perturbation decision stream is a pure function of (seed,
/// thread index): the same seed replays the same schedule and a
/// different seed genuinely perturbs it.
#[test]
fn perturbation_trace_replays_deterministically() {
    let _serial = test_lock();
    let t1 = fabric_check::perturb_trace(42, 0, 512);
    let t2 = fabric_check::perturb_trace(42, 0, 512);
    assert_eq!(t1, t2, "same seed + thread must replay identically");

    let other_seed = fabric_check::perturb_trace(43, 0, 512);
    assert_ne!(t1, other_seed, "different seed must perturb differently");
    let other_thread = fabric_check::perturb_trace(42, 1, 512);
    assert_ne!(t1, other_thread, "threads must not share one stream");
}

/// `holding()` tracks the shim guards of the calling thread only.
#[test]
fn holding_reflects_shim_guard_lifetime() {
    let _serial = test_lock();
    fabric_check::enable();
    let m = Mutex::named("test.holding_probe", ());
    assert!(!fabric_check::holding("test.holding_probe"));
    {
        let _g = m.lock();
        assert!(fabric_check::holding("test.holding_probe"));
        // Another thread holding nothing sees an empty stack.
        std::thread::scope(|s| {
            s.spawn(|| assert!(!fabric_check::holding("test.holding_probe")));
        });
    }
    assert!(!fabric_check::holding("test.holding_probe"));
}

/// Journal sink that checks the journal-order invariant from the
/// outside: every `record` call must arrive while the writer holds
/// `statedb.order`, and heights must arrive in apply order.
#[derive(Debug, Default)]
struct OrderProbe {
    records: std::sync::Mutex<Vec<Height>>,
    out_of_lock: AtomicU64,
}

impl JournalSink for OrderProbe {
    fn record(&self, _batch: &WriteBatch, height: Height) {
        if !fabric_check::holding("statedb.order") {
            self.out_of_lock.fetch_add(1, Ordering::Relaxed);
        }
        self.records
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(height);
    }

    fn flush(&self) {}
}

/// Shard-parallel `apply_block` (enough entries to cross the internal
/// parallel-apply threshold) must keep the journal-order invariant:
/// records are emitted under `statedb.order`, in exactly the order the
/// batches were applied.
#[test]
fn shard_parallel_apply_block_keeps_journal_order() {
    let _serial = test_lock();
    fabric_check::enable();

    let db = ShardedStateDb::with_shards(8);
    let probe = Arc::new(OrderProbe::default());
    db.attach_journal(probe.clone());

    // 4 blocks × 8 batches × 20 keys = 640 entries per block, well
    // past the 256-entry parallel-apply threshold.
    let mut expected = Vec::new();
    for block in 1..=4u64 {
        let mut batches = Vec::new();
        for tx in 0..8u64 {
            let mut batch = WriteBatch::new();
            for k in 0..20u64 {
                batch.put(
                    format!("key-{:02}-{:02}", (tx * 20 + k) % 59, k),
                    vec![block as u8, tx as u8, k as u8],
                );
            }
            let h = Height::new(block, tx);
            expected.push(h);
            batches.push((batch, h));
        }
        db.apply_block(&batches);
    }

    assert_eq!(
        probe.out_of_lock.load(Ordering::Relaxed),
        0,
        "journal records must be emitted under `statedb.order`"
    );
    let records = probe
        .records
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    assert_eq!(
        records, expected,
        "journal record order must equal apply order"
    );
    assert_eq!(db.tip_height(), Some(Height::new(4, 7)));
}

/// The statedb's declared lock edges hold under live checking while
/// readers, writers, and snapshot pins race — the manifest in
/// LOCK_ORDER.txt matches what the code actually does.
#[test]
fn statedb_concurrent_traffic_is_order_clean() {
    let _serial = test_lock();
    fabric_check::enable();

    let db = Arc::new(ShardedStateDb::with_shards(16));
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..32u64 {
                    let mut batch = WriteBatch::new();
                    batch.put(format!("w{w}-k{i}"), vec![w as u8, i as u8]);
                    db.apply(&batch, Height::new(w * 100 + i + 1, 0));
                }
            });
        }
        for _ in 0..2 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..64u64 {
                    let _ = db.get(&format!("w0-k{i}"));
                    let pin = db.pin();
                    let _ = pin.height();
                }
            });
        }
    });
    assert_eq!(db.len(), 4 * 32);
}
