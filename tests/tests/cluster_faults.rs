//! Closed-loop cluster fault matrix: kill-any-node-under-load.
//!
//! The `fabric-cluster` harness wires the whole stack together —
//! orderer → adaptive retransmission supervisor → lossy links → per-peer
//! Go-Back-N + BMac reassembly → durable streaming validators — and
//! this suite throws the fault plane at it:
//!
//! * the **acceptance scenario**: a 3-peer cluster under 5% per-link
//!   loss with one peer killed mid-block and rejoined, converging
//!   bit-identically to the serial-replay oracle, with the supervisor
//!   never exceeding its retransmission-storm cap;
//! * a **proptest scenario matrix** over random `(loss rate, kill
//!   point, rejoin delay, burst size)` tuples;
//! * **double-kill** and **kill-during-recovery** (the second crash
//!   lands while the peer is still catching up from the first);
//! * a peer that **stays dead** — the survivors still converge and the
//!   corpse's torn store still recovers to a serial prefix, after the
//!   circuit breaker declared it unreachable;
//! * **slow-follower stall** and **backpressure shedding** under a
//!   tiny backlog cap and burst traffic.
//!
//! Every scenario audits against the same oracle, on whichever
//! field/scalar backend pair the CI leg selects — the oracle and the
//! cluster compute over the same backends, so agreement is exercised on
//! all four legs.

use std::path::PathBuf;
use std::sync::OnceLock;

use fabric_cluster::{
    run_with_oracle, ClusterConfig, ClusterReport, FaultPlan, KillPoint, LinkFaults, SerialOracle,
    StallSpec,
};
use fabric_sim::MILLIS;
use fabric_store::FabricStore;
use proptest::prelude::*;
use workload::{StreamScenario, Workload};

fn tempdir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "bmac-cluster-faults-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The shared scenario: smallbank with hot keys, cross-block MVCC
/// conflicts, one corrupt signature and one duplicate tx, so the
/// validators have real per-tx flag diversity to agree on.
fn scenario() -> StreamScenario {
    StreamScenario {
        workload: Workload::Smallbank,
        accounts: 3,
        block_size: 2,
        num_blocks: 6,
        stale_commit_pct: 30,
        corrupt_sigs: 1,
        duplicate_txs: 1,
        seed: 4242,
    }
}

/// The serial-replay oracle is the expensive part (full ECDSA replay);
/// build it once and share it across every scenario in this file.
fn oracle() -> &'static SerialOracle {
    static ORACLE: OnceLock<SerialOracle> = OnceLock::new();
    ORACLE.get_or_init(|| SerialOracle::build(&scenario()))
}

fn config(root: &PathBuf) -> ClusterConfig {
    ClusterConfig::new(root, scenario())
}

fn check(report: &ClusterReport) {
    report.assert_converged();
    assert!(
        report.within_storm_cap(),
        "a stuck-base episode exceeded the storm cap: {:?}",
        report
            .links
            .iter()
            .map(|l| (l.max_episode_retransmissions, l.storm_cap))
            .collect::<Vec<_>>()
    );
}

/// The ISSUE's acceptance scenario: 3 peers, 5% per-link loss, one peer
/// killed mid-block under load and rejoined, bit-identical convergence.
#[test]
fn three_peers_five_pct_loss_kill_and_rejoin_converge() {
    let dir = tempdir("accept");
    let cfg = config(&dir);
    let plan = FaultPlan {
        default_link: LinkFaults::lossy(5, 99),
        // Kill peer 1 after 9 packets: with ~4 packets per block that
        // lands mid-block, well inside the stream.
        kills: vec![KillPoint {
            peer: 1,
            after_packets: 9,
            rejoin_after: Some(20 * MILLIS),
        }],
        ..FaultPlan::default()
    };
    let mut report = run_with_oracle(&cfg, &plan, oracle());
    check(&report);
    let killed = &report.peers[1];
    assert!(killed.alive && killed.rejoins == 1);
    assert_eq!(killed.height, report.blocks);
    assert!(
        report.total_retransmissions() > 0,
        "5% loss must exercise the ARQ"
    );
    assert!(!report.delivery_latency_ms.is_empty());
    let p50 = report.delivery_latency_ms.percentile(50.0);
    let p99 = report.delivery_latency_ms.percentile(99.0);
    assert!(p50 > 0.0 && p99 >= p50);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Double-kill: the same peer crashes twice (second life), each time
/// recovering from its torn store and catching back up.
#[test]
fn double_kill_same_peer_converges() {
    let dir = tempdir("double");
    let cfg = config(&dir);
    let plan = FaultPlan {
        default_link: LinkFaults::lossy(2, 7),
        kills: vec![
            KillPoint {
                peer: 0,
                after_packets: 6,
                rejoin_after: Some(15 * MILLIS),
            },
            KillPoint {
                peer: 0,
                after_packets: 8,
                rejoin_after: Some(15 * MILLIS),
            },
        ],
        ..FaultPlan::default()
    };
    let report = run_with_oracle(&cfg, &plan, oracle());
    check(&report);
    assert_eq!(report.peers[0].rejoins, 2);
    assert_eq!(report.peers[0].height, report.blocks);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill-during-recovery: the second crash lands almost immediately
/// after the rejoin, while the peer is still replaying catch-up
/// traffic — recovery of a store that was itself written by a recovery.
#[test]
fn kill_during_recovery_converges() {
    let dir = tempdir("kdr");
    let cfg = config(&dir);
    let plan = FaultPlan {
        kills: vec![
            KillPoint {
                peer: 2,
                after_packets: 10,
                rejoin_after: Some(5 * MILLIS),
            },
            // Dies again after only 2 catch-up packets of its new life.
            KillPoint {
                peer: 2,
                after_packets: 2,
                rejoin_after: Some(5 * MILLIS),
            },
        ],
        ..FaultPlan::default()
    };
    let report = run_with_oracle(&cfg, &plan, oracle());
    check(&report);
    assert_eq!(report.peers[2].rejoins, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A peer that never rejoins: the circuit breaker must declare it
/// unreachable (bounding the retransmission storm into the corpse), the
/// survivors converge to the full chain, and the corpse's torn store
/// still recovers to a serial prefix.
#[test]
fn peer_that_stays_dead_is_declared_unreachable_and_audits_as_prefix() {
    let dir = tempdir("dead");
    let cfg = config(&dir);
    let plan = FaultPlan {
        kills: vec![KillPoint {
            peer: 1,
            after_packets: 7,
            rejoin_after: None,
        }],
        ..FaultPlan::default()
    };
    let report = run_with_oracle(&cfg, &plan, oracle());
    check(&report);
    let dead = &report.peers[1];
    assert!(!dead.alive);
    assert!(dead.height <= report.blocks);
    assert_eq!(
        report.links[1].unreachable_events, 1,
        "the breaker must trip exactly once for the dead peer"
    );
    for (i, peer) in report.peers.iter().enumerate() {
        if i != 1 {
            assert!(peer.alive);
            assert_eq!(peer.height, report.blocks, "survivor {i} at full height");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Slow follower + burst traffic + a tiny backpressure cap: the orderer
/// must shed (defer) load at the source instead of queueing without
/// bound, and still converge once the stall lifts.
#[test]
fn stalled_follower_with_tiny_backlog_sheds_and_converges() {
    let dir = tempdir("stall");
    let mut cfg = config(&dir);
    cfg.burst = 3;
    cfg.max_backlog = 2;
    let plan = FaultPlan {
        stalls: vec![StallSpec {
            peer: 0,
            from: 0,
            until: 30 * MILLIS,
        }],
        ..FaultPlan::default()
    };
    let report = run_with_oracle(&cfg, &plan, oracle());
    check(&report);
    assert!(
        report.links.iter().any(|l| l.shed > 0),
        "burst through a 2-packet backlog cap must shed at the orderer"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Everything at once: loss + duplication + reordering + corruption on
/// every link, a mid-stream kill, and lossy feedback. The FCS framing
/// must keep corrupted packets out of the ARQ layer (they degrade to
/// loss) so reassembly never sees a mangled byte.
#[test]
fn combined_fault_soup_converges() {
    let dir = tempdir("soup");
    let cfg = config(&dir);
    let plan = FaultPlan {
        default_link: LinkFaults {
            loss_pct: 5,
            dup_pct: 5,
            reorder_pct: 5,
            corrupt_pct: 5,
            feedback_loss_pct: 5,
            seed: 1234,
            ..LinkFaults::default()
        },
        kills: vec![KillPoint {
            peer: 2,
            after_packets: 12,
            rejoin_after: Some(25 * MILLIS),
        }],
        ..FaultPlan::default()
    };
    let report = run_with_oracle(&cfg, &plan, oracle());
    check(&report);
    let corrupted: u64 = report.links.iter().map(|l| l.tally.corrupted).sum();
    let fcs_drops: u64 = report.links.iter().map(|l| l.tally.fcs_drops).sum();
    assert!(corrupted > 0, "corruption must actually fire");
    // Not every corrupted frame reaches the FCS check — some are
    // addressed to a connection that died in flight and are discarded
    // as stale — but the ones that do must all be caught there.
    assert!(fcs_drops > 0, "the FCS check must catch live corruption");
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The scenario matrix: random (loss rate, kill point, rejoin
    /// delay, burst size) tuples. Whatever the tuple, the cluster must
    /// converge bit-identically to the serial oracle and stay inside
    /// the storm cap.
    #[test]
    fn random_fault_tuples_converge(
        loss in 0u8..9,
        kill_after in 3u64..40,
        rejoin_ms in 4u64..40,
        burst in 1usize..4,
        seed in any::<u64>(),
    ) {
        let dir = tempdir("matrix");
        let mut cfg = config(&dir);
        cfg.burst = burst;
        let plan = FaultPlan {
            default_link: LinkFaults::lossy(loss, seed),
            kills: vec![KillPoint {
                peer: (seed % 3) as usize,
                after_packets: kill_after,
                rejoin_after: Some(rejoin_ms * MILLIS),
            }],
            ..FaultPlan::default()
        };
        let report = run_with_oracle(&cfg, &plan, oracle());
        check(&report);
        for peer in &report.peers {
            prop_assert!(peer.alive);
            prop_assert_eq!(peer.height, report.blocks);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The rejoined peer's store, reopened cold after the run, holds the
/// exact full chain — crash-rejoin leaves no residue that a fresh
/// recovery would trip over.
#[test]
fn rejoined_store_reopens_to_the_full_chain() {
    let dir = tempdir("reopen");
    let cfg = config(&dir);
    let plan = FaultPlan {
        kills: vec![KillPoint {
            peer: 0,
            after_packets: 8,
            rejoin_after: Some(10 * MILLIS),
        }],
        ..FaultPlan::default()
    };
    let report = run_with_oracle(&cfg, &plan, oracle());
    check(&report);
    let store = FabricStore::open(dir.join("peer-0"), cfg.store).unwrap();
    let h = oracle()
        .audit(&store.ledger(), &store.state_db(), true)
        .expect("cold reopen after rejoin audits clean");
    assert_eq!(h, report.blocks);
    std::fs::remove_dir_all(&dir).unwrap();
}
