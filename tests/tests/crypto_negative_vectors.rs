//! Wycheproof-style negative vectors for the ECDSA stack.
//!
//! Hand-rolled analogues of the classic Wycheproof test classes —
//! malformed DER, out-of-range scalars, wrong-curve points, signature
//! malleability — asserting that the optimized verification path and
//! the preserved seed (Shamir) path **reject identically**, whatever
//! base-field backend the process runs on. The CI matrix executes this
//! file once under Solinas and once under Montgomery, so a divergence
//! in either wiring fails a build.

use fabric_crypto::bigint::U256;
use fabric_crypto::curve::{p256, AffinePoint, PointError};
use fabric_crypto::der::{decode_signature, encode_signature, DerError};
use fabric_crypto::ecdsa::{EcdsaError, Signature, SigningKey, VerifyingKey};
use fabric_crypto::sha256::sha256;

fn test_key() -> SigningKey {
    SigningKey::from_seed(b"negative-vectors")
}

/// Asserts both verification paths produce the same accept/reject
/// verdict, and returns it.
fn paths_agree(vk: &VerifyingKey, digest: &[u8; 32], sig: &Signature) -> bool {
    let fast = vk.verify_prehashed(digest, sig);
    let shamir = vk.verify_prehashed_shamir(digest, sig);
    assert_eq!(
        fast.is_ok(),
        shamir.is_ok(),
        "fast ({fast:?}) and shamir ({shamir:?}) verdicts diverged for sig={sig:?}"
    );
    fast.is_ok()
}

#[test]
fn malformed_der_is_rejected() {
    let key = test_key();
    let good = encode_signature(&key.sign(b"der"));
    // (description, bytes, expected error)
    let vectors: Vec<(&str, Vec<u8>, DerError)> = vec![
        ("empty input", vec![], DerError::Truncated),
        ("lone sequence tag", vec![0x30], DerError::Truncated),
        (
            "wrong outer tag (SET)",
            vec![0x31, 0x06, 0x02, 0x01, 0x01, 0x02, 0x01, 0x01],
            DerError::UnexpectedTag {
                expected: 0x30,
                found: 0x31,
            },
        ),
        (
            "long-form length",
            vec![0x30, 0x81, 0x06, 0x02, 0x01, 0x01, 0x02, 0x01, 0x01],
            DerError::LongFormLength,
        ),
        (
            "declared length past end",
            vec![0x30, 0x20, 0x02, 0x01, 0x01],
            DerError::TrailingBytes, // header claims 0x20 body, input is 3
        ),
        (
            "empty integer",
            vec![0x30, 0x05, 0x02, 0x00, 0x02, 0x01, 0x01],
            DerError::EmptyInteger,
        ),
        (
            "negative integer",
            vec![0x30, 0x06, 0x02, 0x01, 0x80, 0x02, 0x01, 0x01],
            DerError::NegativeInteger,
        ),
        (
            "non-minimal zero padding",
            vec![0x30, 0x07, 0x02, 0x02, 0x00, 0x01, 0x02, 0x01, 0x01],
            DerError::NonMinimalInteger,
        ),
        (
            "integer wider than 256 bits",
            {
                // 0x00 pad is legal here (0xAA has the high bit set),
                // but the 33 digit bytes exceed 256 bits.
                let mut v = vec![0x30, 0x27, 0x02, 0x22, 0x00];
                v.extend_from_slice(&[0xAA; 33]);
                v.extend_from_slice(&[0x02, 0x01, 0x01]);
                v
            },
            DerError::IntegerTooLarge,
        ),
        (
            "missing s integer",
            vec![0x30, 0x03, 0x02, 0x01, 0x01],
            DerError::Truncated,
        ),
        (
            "trailing byte after sequence",
            {
                let mut v = good.clone();
                v.push(0x00);
                v
            },
            DerError::TrailingBytes,
        ),
    ];
    for (what, bytes, expect) in vectors {
        assert_eq!(decode_signature(&bytes), Err(expect), "{what}");
    }
    // Truncation at every byte boundary of a real signature.
    for cut in 0..good.len() {
        assert!(decode_signature(&good[..cut]).is_err(), "cut={cut}");
    }
    // The well-formed encoding still round-trips (sanity for the table).
    assert!(decode_signature(&good).is_ok());
}

#[test]
fn out_of_range_scalars_rejected_identically() {
    let key = test_key();
    let digest = sha256(b"range");
    let good = key.sign_prehashed(&digest);
    let n = p256().order;
    let bad_components: Vec<(&str, U256)> = vec![
        ("zero", U256::ZERO),
        ("the group order n", n),
        ("n + 1", n.wrapping_add(&U256::ONE)),
        ("2^256 - 1", U256::MAX),
    ];
    let vk = key.verifying_key();
    for (what, bad) in &bad_components {
        for (r, s) in [(*bad, good.s), (good.r, *bad)] {
            let sig = Signature { r, s };
            // Both paths must reject with the range error, before any
            // curve arithmetic happens.
            assert_eq!(
                vk.verify_prehashed(&digest, &sig),
                Err(EcdsaError::InvalidScalar),
                "fast path accepted {what}"
            );
            assert_eq!(
                vk.verify_prehashed_shamir(&digest, &sig),
                Err(EcdsaError::InvalidScalar),
                "shamir path accepted {what}"
            );
            // The raw wire decoding rejects the same values.
            let mut raw = [0u8; 64];
            raw[..32].copy_from_slice(&r.to_be_bytes());
            raw[32..].copy_from_slice(&s.to_be_bytes());
            assert_eq!(
                Signature::from_raw_bytes(&raw),
                Err(EcdsaError::InvalidScalar),
                "raw decode accepted {what}"
            );
        }
    }
}

#[test]
fn wrong_curve_points_are_rejected() {
    // secp256k1's generator: a perfectly valid point — on the wrong
    // curve.
    let k1_gx =
        U256::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798").unwrap();
    let k1_gy =
        U256::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8").unwrap();
    assert_eq!(
        AffinePoint::from_coords(&k1_gx, &k1_gy),
        Err(PointError::NotOnCurve)
    );

    // A coordinate at/above the field prime.
    let p = *p256().fp.modulus();
    let g = AffinePoint::generator();
    let gy = U256::from_be_bytes(&g.y_bytes());
    assert_eq!(
        AffinePoint::from_coords(&p, &gy),
        Err(PointError::OutOfRange)
    );

    // A tampered SEC1 encoding (off-curve y).
    let mut sec1 = g.to_sec1_bytes();
    sec1[64] ^= 0x01;
    assert_eq!(
        AffinePoint::from_sec1_bytes(&sec1),
        Err(PointError::NotOnCurve)
    );
    // Compressed/hybrid tags are not acceptable here.
    let mut tagged = g.to_sec1_bytes();
    for tag in [0x02, 0x03, 0x06, 0x00] {
        tagged[0] = tag;
        assert_eq!(
            AffinePoint::from_sec1_bytes(&tagged),
            Err(PointError::Encoding),
            "tag {tag:#x}"
        );
    }

    // The identity is not a valid verification key.
    assert!(VerifyingKey::from_point(AffinePoint::identity()).is_err());
}

#[test]
fn high_s_twin_treated_identically_by_both_paths() {
    // ECDSA signatures are malleable: (r, n − s) verifies whenever
    // (r, s) does. This library implements plain FIPS 186-4
    // verification (no low-s policy), so the twin must be *accepted* —
    // what matters for the differential guarantee is that both paths
    // and both field backends give the same answer, never a split
    // verdict an attacker could wedge a cache or consensus on.
    let key = test_key();
    let vk = key.verifying_key();
    let n = p256().order;
    for i in 0u8..8 {
        let digest = sha256(&[b"malleate".as_slice(), &[i]].concat());
        let sig = key.sign_prehashed(&digest);
        assert!(paths_agree(vk, &digest, &sig));
        let twin = Signature {
            r: sig.r,
            s: n.wrapping_sub(&sig.s),
        };
        assert_ne!(twin.s, sig.s);
        assert!(
            paths_agree(vk, &digest, &twin),
            "high-s twin must verify under plain ECDSA (case {i})"
        );
        // But the twin against a *different* digest still fails.
        let other = sha256(b"other message");
        assert!(!paths_agree(vk, &other, &twin));
    }
}

#[test]
fn swapped_and_crossed_components_rejected_identically() {
    let key = test_key();
    let vk = key.verifying_key();
    let d1 = sha256(b"first");
    let d2 = sha256(b"second");
    let s1 = key.sign_prehashed(&d1);
    let s2 = key.sign_prehashed(&d2);
    // r and s swapped within one signature.
    assert!(!paths_agree(vk, &d1, &Signature { r: s1.s, s: s1.r }));
    // Components crossed between two valid signatures.
    assert!(!paths_agree(vk, &d1, &Signature { r: s1.r, s: s2.s }));
    assert!(!paths_agree(vk, &d1, &Signature { r: s2.r, s: s1.s }));
    // A valid signature presented to the wrong key.
    let other = SigningKey::from_seed(b"some other identity");
    assert!(!paths_agree(other.verifying_key(), &d1, &s1));
}
