//! Admission idempotence: resubmission never changes what gets ordered.
//!
//! The mempool sits in front of ordering precisely so that client
//! retries, gossip echoes and replay attacks cannot alter the chain.
//! This suite pins that property end to end:
//!
//! * a **proptest matrix** over `(resubmission cadence, verify batch,
//!   worker count)` — every knob combination must order *exactly* the
//!   first occurrence of each validly-signed transaction of the
//!   generated stream, in admission order, with no duplicate tx id ever
//!   reaching a block (no double-commit) and no younger distinct
//!   transaction lost (no eviction by duplicates);
//! * the **kill+rejoin leg**: the mempool-fed stream driven through the
//!   full fault-plane cluster — a peer crashed mid-stream and rejoined
//!   from its torn store must still converge bit-identically to the
//!   serial oracle of the mempool-produced blocks;
//! * **cache sharing**: the verdicts the admission pool produced are
//!   hits, not re-verifications, for a committer wired to the same
//!   signature cache.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

use fabric_cluster::{
    mempool_feed_blocks, run, ClusterConfig, FaultPlan, KillPoint, MempoolFeed, OrderingMode,
    SerialOracle,
};
use fabric_mempool::{decode_admission, AdmitOutcome, Mempool, MempoolConfig, SignatureCache};
use fabric_sim::MILLIS;
use proptest::prelude::*;
use workload::{StreamScenario, Workload};

fn tempdir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "bmac-mempool-admission-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenario() -> StreamScenario {
    StreamScenario {
        workload: Workload::Smallbank,
        accounts: 3,
        block_size: 2,
        num_blocks: 5,
        stale_commit_pct: 25,
        corrupt_sigs: 2,
        duplicate_txs: 2,
        seed: 1717,
    }
}

/// The ground truth the feed must reproduce: the tx ids of the *first*
/// occurrence of every distinct, validly-signed envelope, in stream
/// order. (All copies of a tx id in a generated stream are verbatim,
/// so validity is a property of the id.)
fn expected_order(scenario: &StreamScenario) -> Vec<String> {
    let msp = scenario.validator_msp();
    let mut seen = HashSet::new();
    let mut order = Vec::new();
    for block in &scenario.generate().blocks {
        for env in &block.data.data {
            let tx = decode_admission(env).expect("generated envelopes decode");
            if !seen.insert(tx.tx_id.clone()) {
                continue;
            }
            let trusted = msp.validate(&tx.creator_cert).is_ok();
            let valid = trusted
                && tx
                    .creator_cert
                    .public_key
                    .verify_prehashed(&tx.payload_digest, &tx.client_signature)
                    .is_ok();
            if valid {
                order.push(tx.tx_id);
            }
        }
    }
    order
}

fn ordered_tx_ids(blocks: &[fabric_protos::messages::Block]) -> Vec<String> {
    blocks
        .iter()
        .flat_map(|b| &b.data.data)
        .map(|env| {
            decode_admission(env)
                .expect("ordered envelopes decode")
                .tx_id
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the resubmission cadence, batching granularity, or
    /// verify parallelism, the ordered stream is exactly the distinct
    /// valid transactions in first-arrival order.
    #[test]
    fn resubmission_never_changes_the_ordered_stream(
        resubmit_every in 1usize..5,
        verify_batch in 1usize..12,
        workers in 1usize..5,
    ) {
        let scenario = scenario();
        let feed = MempoolFeed {
            resubmit_every,
            verify_batch,
            mempool: MempoolConfig {
                verify_workers: workers,
                ..MempoolConfig::default()
            },
            ..MempoolFeed::default()
        };
        let outcome = mempool_feed_blocks(&scenario, &feed);
        let ordered = ordered_tx_ids(&outcome.blocks);

        // No double-commit: every ordered tx id is unique.
        let distinct: HashSet<&String> = ordered.iter().collect();
        prop_assert_eq!(distinct.len(), ordered.len(), "duplicate tx id ordered");

        // No loss, no reordering, no younger-transaction eviction:
        // the stream is exactly the expected first-occurrence order.
        prop_assert_eq!(ordered, expected_order(&scenario));

        // The duplicates really were presented (scenario replays plus
        // our resubmissions) and absorbed at admission.
        prop_assert!(outcome.stats.duplicates > 0);
        prop_assert_eq!(outcome.stats.shed, 0);
    }
}

/// The fault-plane leg: a mempool-fed cluster with a peer killed at a
/// packet boundary and rejoined from its torn store converges to the
/// serial oracle of the mempool-produced stream — admission idempotence
/// composes with crash recovery.
#[test]
fn mempool_fed_cluster_survives_kill_and_rejoin() {
    let dir = tempdir("kill-rejoin");
    let cfg = ClusterConfig {
        peers: 3,
        ordering: OrderingMode::MempoolFed(MempoolFeed::default()),
        ..ClusterConfig::new(&dir, scenario())
    };
    let plan = FaultPlan {
        kills: vec![KillPoint {
            peer: 1,
            after_packets: 7,
            rejoin_after: Some(20 * MILLIS),
        }],
        ..FaultPlan::default()
    };
    let report = run(&cfg, &plan);
    report.assert_converged();
    let killed = &report.peers[1];
    assert!(killed.alive, "the killed peer rejoined");
    assert_eq!(killed.rejoins, 1);
    assert_eq!(killed.height, report.blocks, "caught back up fully");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Resubmitting the *entire* stream a second time through the same
/// mempool orders nothing new: the replay window holds every recorded
/// transaction, so the chain a validator commits cannot be extended by
/// replays (the no-double-commit guarantee at the chain level).
#[test]
fn full_stream_replay_orders_nothing() {
    let scenario = scenario();
    let generated = scenario.generate();
    let mempool = Mempool::with_msp(
        MempoolConfig::default(),
        Arc::new(SignatureCache::new(4096)),
        Some(scenario.validator_msp()),
    );
    let mut first = 0u64;
    for env in generated.blocks.iter().flat_map(|b| &b.data.data) {
        if mempool.admit(env) == AdmitOutcome::Admitted {
            first += 1;
        }
    }
    mempool.verify_pending();
    let ordered_first = mempool.drain(usize::MAX).len();
    assert!(first > 0 && ordered_first > 0);

    // Replay the whole stream: every distinct id is now pending-free
    // and recorded (or was rejected as invalid, in which case its
    // replay is re-admitted and re-rejected — still never ordered).
    for env in generated.blocks.iter().flat_map(|b| &b.data.data) {
        let outcome = mempool.admit(env);
        assert_ne!(outcome, AdmitOutcome::Shed);
    }
    mempool.verify_pending();
    assert_eq!(
        mempool.drain(usize::MAX).len(),
        0,
        "a full replay must order zero transactions"
    );
    let stats = mempool.stats();
    assert_eq!(stats.drained as usize, ordered_first);
}

/// Cache sharing across the admission/commit boundary: a serial oracle
/// replay of the mempool-produced blocks, wired to the *same* signature
/// cache the admission pool filled, performs its client-signature
/// lookups as hits.
#[test]
fn admission_verdicts_are_shared_with_the_committer() {
    let scenario = scenario();
    let feed = MempoolFeed::default();
    let generated = scenario.generate();
    let cache = Arc::new(SignatureCache::new(8192));
    let mempool = Mempool::with_msp(
        feed.mempool,
        Arc::clone(&cache),
        Some(scenario.validator_msp()),
    );
    for env in generated.blocks.iter().flat_map(|b| &b.data.data) {
        mempool.admit(env);
    }
    mempool.verify_pending();
    assert!(cache.stats().misses > 0, "the pool did real ECDSA work");

    // Every ordered envelope's client-signature verdict is already in
    // the shared cache — the committer's vscc lookup is a pure hit.
    let before = cache.stats();
    for env in mempool.drain(usize::MAX) {
        let tx = decode_admission(&env).expect("ordered envelopes decode");
        assert_eq!(
            cache.get(&tx.cache_key),
            Some(true),
            "committer lookup missed for an ordered tx"
        );
    }
    let after = cache.stats();
    assert_eq!(
        after.misses, before.misses,
        "committer-side lookups must not fall through to re-verification"
    );
}

/// Oracle-level equivalence: the stream the feed produces validates and
/// audits exactly like any pregenerated stream (the mempool-fed blocks
/// are first-class citizens of the serial-equivalence harness).
#[test]
fn feed_blocks_audit_against_their_own_oracle() {
    let scenario = scenario();
    let outcome = mempool_feed_blocks(&scenario, &MempoolFeed::default());
    let oracle = SerialOracle::from_blocks(&scenario, outcome.blocks);
    assert_eq!(oracle.height() as usize, oracle.blocks.len());
    // Every ordered transaction carries a valid client signature, so no
    // block may flag BadSignature — the admission pool already ate them.
    for codes in &oracle.codes {
        for code in codes {
            assert_ne!(
                format!("{code:?}"),
                "BadSignature",
                "a bad signature leaked past admission"
            );
        }
    }
}
