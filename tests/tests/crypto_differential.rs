//! Differential test harness for the P-256 field backends.
//!
//! The convention this repo uses for every crypto fast path (see
//! `crates/fabric-crypto/README.md`): the optimized implementation is
//! pinned operation-by-operation against a preserved oracle on random,
//! boundary, and adversarial inputs — the same verify-both-ways
//! discipline Wycheproof-style suites apply to curve code.
//!
//! Two fast paths are cross-checked here, each against two independent
//! oracles (the generic Montgomery domain on the same modulus — the
//! seed implementation, still fully compiled — and plain 512-bit long
//! division from [`fabric_crypto::bigint`]):
//!
//! * the Solinas-form **base field** ([`fabric_crypto::fp256`], mod the
//!   prime `p`), introduced in PR 2;
//! * the Barrett-folded **scalar field** ([`fabric_crypto::fq256`], mod
//!   the group order `n`), introduced in PR 4 — same operations, biased
//!   toward near-`n` inputs where the quotient estimate saturates.
//!
//! On top of the field layer, full ECDSA sign→verify round-trips and
//! the fast-vs-Shamir verification agreement run on whichever backends
//! the process selected (`FABRIC_FIELD_BACKEND` ×
//! `FABRIC_SCALAR_BACKEND`); the CI matrix crosses all four
//! combinations, so every wiring stays green.

use fabric_crypto::bigint::{U256, U512};
use fabric_crypto::ecdsa::{Signature, SigningKey};
use fabric_crypto::fp256::{reduce_wide, Fp256};
use fabric_crypto::fq256::{reduce_wide_scalar, Fq256};
use fabric_crypto::mont::MontgomeryDomain;
use fabric_crypto::sha256::sha256;
use fabric_peer::SigCacheKey;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The Montgomery oracle on the P-256 prime, built once.
fn oracle() -> &'static MontgomeryDomain {
    static ORACLE: OnceLock<MontgomeryDomain> = OnceLock::new();
    ORACLE.get_or_init(|| MontgomeryDomain::new(Fp256::P))
}

/// The Montgomery oracle on the P-256 group order, built once — the
/// baseline the Barrett scalar field is pinned against.
fn scalar_oracle() -> &'static MontgomeryDomain {
    static ORACLE: OnceLock<MontgomeryDomain> = OnceLock::new();
    ORACLE.get_or_init(|| MontgomeryDomain::new(Fq256::N))
}

/// Field elements biased toward the places Solinas folding can go
/// wrong: zero, one, `p − k`, small values, sparse limb patterns, and
/// uniform randoms.
fn arb_fe() -> impl Strategy<Value = U256> {
    prop_oneof![
        any::<[u64; 4]>().prop_map(|l| U256(l).rem(&Fp256::P)),
        Just(U256::ZERO),
        Just(U256::ONE),
        Just(Fp256::P.wrapping_sub(&U256::ONE)),
        Just(Fp256::P.wrapping_sub(&U256::from_u64(2))),
        (1u64..4096).prop_map(|k| Fp256::P.wrapping_sub(&U256::from_u64(k))),
        (0u64..4096).prop_map(U256::from_u64),
        // Single hot limb (exercises word-shuffle edge lanes).
        (0usize..4, any::<u64>()).prop_map(|(i, l)| {
            let mut v = U256::ZERO;
            v.0[i] = l;
            v.rem(&Fp256::P)
        }),
    ]
}

/// Arbitrary 512-bit values, with the all-ones and single-hot-limb
/// extremes mixed in.
fn arb_wide() -> impl Strategy<Value = U512> {
    prop_oneof![
        any::<[u64; 8]>().prop_map(U512),
        Just(U512([u64::MAX; 8])),
        (0usize..8, any::<u64>()).prop_map(|(i, l)| {
            let mut v = U512::default();
            v.0[i] = l;
            v
        }),
        Just(Fp256::P.widening_mul(&Fp256::P)),
    ]
}

/// `x` in the Montgomery oracle's result space mapped back to canonical.
fn via_oracle(f: impl Fn(&MontgomeryDomain, U256, U256) -> U256, a: &U256, b: &U256) -> U256 {
    let m = oracle();
    m.from_mont(&f(m, m.to_mont(a), m.to_mont(b)))
}

/// Scalar-field elements biased toward the places the Barrett quotient
/// estimate can go wrong: zero, one, `n − k`, small values, sparse limb
/// patterns, and uniform randoms (the mod-`n` mirror of [`arb_fe`]).
fn arb_se() -> impl Strategy<Value = U256> {
    prop_oneof![
        any::<[u64; 4]>().prop_map(|l| U256(l).rem(&Fq256::N)),
        Just(U256::ZERO),
        Just(U256::ONE),
        Just(Fq256::N.wrapping_sub(&U256::ONE)),
        Just(Fq256::N.wrapping_sub(&U256::from_u64(2))),
        (1u64..4096).prop_map(|k| Fq256::N.wrapping_sub(&U256::from_u64(k))),
        (0u64..4096).prop_map(U256::from_u64),
        // Single hot limb (exercises the carry lanes of the fold).
        (0usize..4, any::<u64>()).prop_map(|(i, l)| {
            let mut v = U256::ZERO;
            v.0[i] = l;
            v.rem(&Fq256::N)
        }),
    ]
}

/// `x` through the scalar Montgomery oracle, mapped back to canonical.
fn via_scalar_oracle(
    f: impl Fn(&MontgomeryDomain, U256, U256) -> U256,
    a: &U256,
    b: &U256,
) -> U256 {
    let m = scalar_oracle();
    m.from_mont(&f(m, m.to_mont(a), m.to_mont(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn solinas_mul_matches_montgomery(a in arb_fe(), b in arb_fe()) {
        let sol = Fp256.mul(&a, &b);
        let mon = via_oracle(|m, x, y| m.mul(&x, &y), &a, &b);
        prop_assert_eq!(sol, mon);
        // And against the long-division oracle, independently.
        prop_assert_eq!(sol, a.widening_mul(&b).rem(&Fp256::P));
    }

    #[test]
    fn solinas_sqr_matches_montgomery(a in arb_fe()) {
        let sol = Fp256.sqr(&a);
        let mon = via_oracle(|m, x, _| m.sqr(&x), &a, &a);
        prop_assert_eq!(sol, mon);
        prop_assert_eq!(Fp256.sqr(&a), Fp256.mul(&a, &a));
    }

    #[test]
    fn solinas_add_sub_neg_match_montgomery(a in arb_fe(), b in arb_fe()) {
        prop_assert_eq!(Fp256.add(&a, &b), via_oracle(|m, x, y| m.add(&x, &y), &a, &b));
        prop_assert_eq!(Fp256.sub(&a, &b), via_oracle(|m, x, y| m.sub(&x, &y), &a, &b));
        let m = oracle();
        prop_assert_eq!(Fp256.neg(&a), m.from_mont(&m.neg(&m.to_mont(&a))));
        // Algebra: a + (−a) = 0, a − b = a + (−b).
        prop_assert!(Fp256.add(&a, &Fp256.neg(&a)).is_zero());
        prop_assert_eq!(Fp256.sub(&a, &b), Fp256.add(&a, &Fp256.neg(&b)));
    }

    #[test]
    fn solinas_inverse_matches_montgomery(a in arb_fe()) {
        let m = oracle();
        let sol = Fp256.inv(&a);
        let mon = m.inv(&m.to_mont(&a)).map(|i| m.from_mont(&i));
        prop_assert_eq!(sol, mon);
        prop_assert_eq!(sol, Fp256.inv_prime(&a));
        if let Some(inv) = sol {
            prop_assert_eq!(Fp256.mul(&a, &inv), U256::ONE);
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn solinas_batch_inverse_matches_individual(values in proptest::collection::vec(arb_fe(), 1..20)) {
        let mut batch = values.clone();
        let mask = Fp256.batch_inv(&mut batch);
        for i in 0..values.len() {
            if values[i].is_zero() {
                prop_assert!(!mask[i]);
                prop_assert!(batch[i].is_zero());
            } else {
                prop_assert!(mask[i]);
                prop_assert_eq!(Some(batch[i]), Fp256.inv(&values[i]));
            }
        }
    }

    #[test]
    fn solinas_reduction_matches_long_division(c in arb_wide()) {
        prop_assert_eq!(reduce_wide(&c), c.rem(&Fp256::P));
    }

    #[test]
    fn solinas_pow_matches_montgomery(a in arb_fe(), e in any::<u64>()) {
        let e = U256::from_u64(e);
        let m = oracle();
        prop_assert_eq!(
            Fp256.pow(&a, &e),
            m.from_mont(&m.pow(&m.to_mont(&a), &e))
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn barrett_scalar_mul_matches_montgomery(a in arb_se(), b in arb_se()) {
        let bar = Fq256.mul(&a, &b);
        let mon = via_scalar_oracle(|m, x, y| m.mul(&x, &y), &a, &b);
        prop_assert_eq!(bar, mon);
        // And against the long-division oracle, independently.
        prop_assert_eq!(bar, a.widening_mul(&b).rem(&Fq256::N));
    }

    #[test]
    fn barrett_scalar_sqr_matches_montgomery(a in arb_se()) {
        let bar = Fq256.sqr(&a);
        let mon = via_scalar_oracle(|m, x, _| m.sqr(&x), &a, &a);
        prop_assert_eq!(bar, mon);
        prop_assert_eq!(Fq256.sqr(&a), Fq256.mul(&a, &a));
    }

    #[test]
    fn barrett_scalar_add_sub_neg_match_montgomery(a in arb_se(), b in arb_se()) {
        prop_assert_eq!(Fq256.add(&a, &b), via_scalar_oracle(|m, x, y| m.add(&x, &y), &a, &b));
        prop_assert_eq!(Fq256.sub(&a, &b), via_scalar_oracle(|m, x, y| m.sub(&x, &y), &a, &b));
        let m = scalar_oracle();
        prop_assert_eq!(Fq256.neg(&a), m.from_mont(&m.neg(&m.to_mont(&a))));
        prop_assert!(Fq256.add(&a, &Fq256.neg(&a)).is_zero());
        prop_assert_eq!(Fq256.sub(&a, &b), Fq256.add(&a, &Fq256.neg(&b)));
    }

    #[test]
    fn barrett_scalar_inverse_matches_montgomery(a in arb_se()) {
        let m = scalar_oracle();
        let bar = Fq256.inv(&a);
        let mon = m.inv(&m.to_mont(&a)).map(|i| m.from_mont(&i));
        prop_assert_eq!(bar, mon);
        prop_assert_eq!(bar, Fq256.inv_prime(&a));
        if let Some(inv) = bar {
            prop_assert_eq!(Fq256.mul(&a, &inv), U256::ONE);
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn barrett_scalar_batch_inverse_matches_individual(values in proptest::collection::vec(arb_se(), 1..20)) {
        let mut batch = values.clone();
        let mask = Fq256.batch_inv(&mut batch);
        for i in 0..values.len() {
            if values[i].is_zero() {
                prop_assert!(!mask[i]);
                prop_assert!(batch[i].is_zero());
            } else {
                prop_assert!(mask[i]);
                prop_assert_eq!(Some(batch[i]), Fq256.inv(&values[i]));
            }
        }
    }

    #[test]
    fn barrett_scalar_reduction_matches_long_division(c in arb_wide()) {
        prop_assert_eq!(reduce_wide_scalar(&c), c.rem(&Fq256::N));
    }

    #[test]
    fn barrett_scalar_pow_matches_montgomery(a in arb_se(), e in any::<u64>()) {
        let e = U256::from_u64(e);
        let m = scalar_oracle();
        prop_assert_eq!(
            Fq256.pow(&a, &e),
            m.from_mont(&m.pow(&m.to_mont(&a), &e))
        );
    }
}

proptest! {
    // ECDSA-level agreement is slower per case; fewer, fatter cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sign_verify_roundtrip_on_random_keys(seed in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let key = SigningKey::from_seed(&seed);
        let digest = sha256(&msg);
        let sig = key.sign_prehashed(&digest);
        let vk = key.verifying_key();
        prop_assert!(vk.verify_prehashed(&digest, &sig).is_ok());
        prop_assert!(vk.verify_prehashed_shamir(&digest, &sig).is_ok());
    }

    #[test]
    fn fast_and_shamir_verify_agree_under_corruption(
        seed in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..128),
        corrupt_sig in any::<bool>(),
        corrupt_digest in any::<bool>(),
        flip in 0usize..512,
    ) {
        let key = SigningKey::from_seed(&seed);
        let mut digest = sha256(&msg);
        let mut sig = key.sign_prehashed(&digest);
        if corrupt_sig {
            let mut raw = sig.to_raw_bytes();
            raw[flip % 64] ^= 1 << (flip % 8);
            match Signature::from_raw_bytes(&raw) {
                Ok(s) => sig = s,
                Err(_) => return Ok(()), // out of range: rejected pre-curve on both paths
            }
        }
        if corrupt_digest {
            digest[flip % 32] ^= 1 << (flip % 8);
        }
        let vk = key.verifying_key();
        prop_assert_eq!(
            vk.verify_prehashed(&digest, &sig).is_ok(),
            vk.verify_prehashed_shamir(&digest, &sig).is_ok()
        );
    }

    /// The re-validation cache key is derived from *plain byte*
    /// encodings (SEC1 point, digest, raw `r‖s`), never from field
    /// representation residues — so a verdict cached under one backend
    /// means the same triple under the other. Recompute it from first
    /// principles and compare.
    #[test]
    fn sig_cache_key_is_backend_independent(seed in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let key = SigningKey::from_seed(&seed);
        let digest = sha256(&msg);
        let sig = key.sign_prehashed(&digest);
        let vk = key.verifying_key();
        let cache_key = SigCacheKey::compute(vk, &digest, &sig);
        let mut material = Vec::new();
        material.extend_from_slice(&vk.to_sec1_bytes()); // 04 ‖ canonical x ‖ canonical y
        material.extend_from_slice(&digest);
        material.extend_from_slice(&sig.to_raw_bytes()); // canonical r ‖ s
        prop_assert_eq!(cache_key, SigCacheKey::from_bytes(sha256(&material)));
    }
}

/// Directed boundary sweep for the scalar field: the exact values where
/// the Barrett quotient estimate and its correction loop can be off by
/// one — `n ± k`, powers of two at every limb boundary, and their
/// pairwise products.
#[test]
fn scalar_boundary_matrix_matches_oracle() {
    let n = Fq256::N;
    let mut edge = vec![U256::ZERO, U256::ONE, U256::from_u64(2)];
    for k in 1u64..=64 {
        edge.push(n.wrapping_sub(&U256::from_u64(k)));
        edge.push(U256::from_u64(k));
    }
    // Powers of two walk every limb boundary.
    for i in 0..256 {
        let mut v = U256::ZERO;
        v.0[i / 64] = 1 << (i % 64);
        edge.push(v.rem(&n));
    }
    let m = scalar_oracle();
    for a in &edge {
        for b in &edge {
            let bar = Fq256.mul(a, b);
            let mon = m.from_mont(&m.mul(&m.to_mont(a), &m.to_mont(b)));
            assert_eq!(bar, mon, "mul mismatch at a={a:?} b={b:?}");
        }
        assert_eq!(
            Fq256.sqr(a),
            m.from_mont(&m.sqr(&m.to_mont(a))),
            "sqr mismatch at a={a:?}"
        );
    }
}

/// Directed boundary sweep kept outside proptest so every case always
/// runs: the exact values where the nine-term fold wraps.
#[test]
fn field_boundary_matrix_matches_oracle() {
    let p = Fp256::P;
    let mut edge = vec![U256::ZERO, U256::ONE, U256::from_u64(2)];
    for k in 1u64..=64 {
        edge.push(p.wrapping_sub(&U256::from_u64(k)));
        edge.push(U256::from_u64(k));
    }
    // Powers of two walk every limb boundary.
    for i in 0..256 {
        let mut v = U256::ZERO;
        v.0[i / 64] = 1 << (i % 64);
        edge.push(v.rem(&p));
    }
    let m = oracle();
    for a in &edge {
        for b in &edge {
            let sol = Fp256.mul(a, b);
            let mon = m.from_mont(&m.mul(&m.to_mont(a), &m.to_mont(b)));
            assert_eq!(sol, mon, "mul mismatch at a={a:?} b={b:?}");
        }
        assert_eq!(
            Fp256.sqr(a),
            m.from_mont(&m.sqr(&m.to_mont(a))),
            "sqr mismatch at a={a:?}"
        );
    }
}
