//! Wycheproof-style edge vectors for the ECDSA *scalar* arithmetic.
//!
//! The Barrett scalar domain (PR 4) changes how every mod-`n` quantity
//! in verification is computed — `bits2int` folding of the digest,
//! `s⁻¹`, the `u1`/`u2` derivation — so this file pins the scalar
//! values where that arithmetic saturates: `r` or `s` at `n − 1`,
//! `s = 1` (whose inverse is the identity), and digests at or above `n`
//! (which `bits2int` must fold, not truncate).
//!
//! Every ECDSA-level vector is asserted identical on the optimized and
//! the preserved Shamir path; the CI matrix runs the file under all
//! four `FABRIC_SCALAR_BACKEND` × `FABRIC_FIELD_BACKEND` combinations,
//! so a verdict that depended on the backend would split a matrix leg.
//! The scalar-domain computations themselves (`u1`/`u2`, `s⁻¹`) are
//! additionally cross-checked *in-process* between the Barrett and
//! Montgomery [`ScalarDomain`]s, which are both always compiled.

use fabric_crypto::bigint::U256;
use fabric_crypto::curve::{mul_fixed_base, p256};
use fabric_crypto::ecdsa::{Signature, SigningKey, VerifyingKey};
use fabric_crypto::scalar::{ScalarBackend, ScalarDomain};
use fabric_crypto::sha256::sha256;

fn test_key() -> SigningKey {
    SigningKey::from_seed(b"scalar-edge-vectors")
}

/// Asserts both verification paths produce the same accept/reject
/// verdict, and returns it.
fn paths_agree(vk: &VerifyingKey, digest: &[u8; 32], sig: &Signature) -> bool {
    let fast = vk.verify_prehashed(digest, sig);
    let shamir = vk.verify_prehashed_shamir(digest, sig);
    assert_eq!(
        fast.is_ok(),
        shamir.is_ok(),
        "fast ({fast:?}) and shamir ({shamir:?}) verdicts diverged for sig={sig:?}"
    );
    fast.is_ok()
}

/// Forges a digest so that the deterministic nonce relation
/// `s = k⁻¹(z + r·d) mod n` lands exactly on the requested `s`:
/// `z = s·k − r·d mod n`. Returns the signature and the digest bytes.
///
/// This is how Wycheproof builds its `s = 1` / `s = n − 1` acceptance
/// vectors: the signature is *valid* by construction, with the edge
/// value in the scalar slot.
fn forge_signature_with_s(key: &SigningKey, k: &U256, s_target: &U256) -> (Signature, [u8; 32]) {
    let c = p256();
    let n = &c.order;
    let d = U256::from_be_bytes(&key.to_be_bytes());
    let point = mul_fixed_base(k).to_affine();
    let r = c.fp.from_repr(&point.x).reduce_once(n);
    assert!(!r.is_zero(), "pick a different k");
    // z = s·k − r·d (mod n), all canonical.
    let fd = ScalarDomain::p256_order(ScalarBackend::Barrett);
    let sk = fd.mul(s_target, &k.rem(n));
    let rd = fd.mul(&r, &d);
    let z = fd.sub(&sk, &rd);
    let sig = Signature { r, s: *s_target };
    (sig, z.to_be_bytes())
}

#[test]
fn s_equal_one_verifies_on_both_paths() {
    // s = 1 means s⁻¹ = 1: the inverse-identity case every inversion
    // kernel (single, Fermat, batched) must map through untouched.
    let key = test_key();
    let (sig, digest) = forge_signature_with_s(&key, &U256::from_u64(0xdead_beef), &U256::ONE);
    assert_eq!(sig.s, U256::ONE);
    assert!(
        paths_agree(key.verifying_key(), &digest, &sig),
        "forged s = 1 signature must verify"
    );
    // The batched inversion agrees on the identity too.
    let sinvs = fabric_crypto::ecdsa::batch_s_inverses(&[sig]);
    assert_eq!(sinvs[0], U256::ONE);
    assert!(key
        .verifying_key()
        .verify_prehashed_with_sinv(&digest, &sig, &sinvs[0])
        .is_ok());
}

#[test]
fn s_equal_n_minus_one_verifies_on_both_paths() {
    // n − 1 ≡ −1 is its own inverse: the largest admissible s, one
    // below the range check's rejection line.
    let key = test_key();
    let n = p256().order;
    let nm1 = n.wrapping_sub(&U256::ONE);
    let (sig, digest) = forge_signature_with_s(&key, &U256::from_u64(0xc0ff_ee11), &nm1);
    assert_eq!(sig.s, nm1);
    assert!(
        paths_agree(key.verifying_key(), &digest, &sig),
        "forged s = n − 1 signature must verify"
    );
    let sinvs = fabric_crypto::ecdsa::batch_s_inverses(&[sig]);
    assert_eq!(sinvs[0], nm1, "−1 is its own inverse");
}

#[test]
fn r_equal_n_minus_one_rejected_identically() {
    // No P-256 point has x ≡ n − 1 for the test nonces used here, so
    // this is a rejection vector: what matters is that the boundary r
    // passes the range check (it is < n) and both paths walk the full
    // curve arithmetic to the same verdict.
    let key = test_key();
    let digest = sha256(b"r at n-1");
    let good = key.sign_prehashed(&digest);
    let nm1 = p256().order.wrapping_sub(&U256::ONE);
    let sig = Signature { r: nm1, s: good.s };
    assert!(
        !paths_agree(key.verifying_key(), &digest, &sig),
        "r = n − 1 with an unrelated s must not verify"
    );
}

#[test]
fn digests_at_and_above_n_fold_identically() {
    // bits2int: a 256-bit digest ≥ n must be folded mod n, and any two
    // digests that differ by exactly n (as 256-bit integers) are the
    // *same* message to ECDSA. Sign the folded digest, then present the
    // unfolded twin: both paths must accept both forms.
    let key = test_key();
    let vk = key.verifying_key();
    let n = p256().order;
    for (what, z) in [
        ("z = 0 (digest = n folds to zero)", U256::ZERO),
        ("z = 1", U256::ONE),
        ("z = 2^256 − 1 − n", U256::MAX.wrapping_sub(&n)),
        (
            "z just below the fold window",
            U256::MAX.wrapping_sub(&n).wrapping_sub(&U256::from_u64(7)),
        ),
    ] {
        let folded = z.to_be_bytes();
        let (unfolded_v, carry) = z.overflowing_add(&n);
        assert!(!carry, "{what}: twin must fit in 256 bits");
        let unfolded = unfolded_v.to_be_bytes();
        let sig = key.sign_prehashed(&folded);
        assert!(paths_agree(vk, &folded, &sig), "{what}: folded digest");
        assert!(
            paths_agree(vk, &unfolded, &sig),
            "{what}: digest + n must verify identically (bits2int folding)"
        );
        // And signing the unfolded digest yields the identical signature.
        assert_eq!(
            key.sign_prehashed(&unfolded),
            sig,
            "{what}: RFC 6979 reduces the digest before the nonce"
        );
    }
    // The all-ones digest (the largest possible bits2int input).
    let max = [0xffu8; 32];
    let sig = key.sign_prehashed(&max);
    assert!(paths_agree(vk, &max, &sig), "all-ones digest");
}

/// The scalar edge values, crossed through both in-process
/// [`ScalarDomain`]s: `u1`/`u2` derivation and inversion must be
/// bit-identical between Barrett and Montgomery whatever the process
/// backend is.
#[test]
fn edge_scalars_agree_across_scalar_backends_in_process() {
    let bar = ScalarDomain::p256_order(ScalarBackend::Barrett);
    let mon = ScalarDomain::p256_order(ScalarBackend::Montgomery);
    let n = *bar.modulus();
    let nm1 = n.wrapping_sub(&U256::ONE);
    let edge = [
        U256::ONE,
        U256::from_u64(2),
        nm1,
        n.wrapping_sub(&U256::from_u64(2)),
        U256::MAX.rem(&n),
        U256([0, 0, 0, 1 << 63]).rem(&n),
    ];
    for s in &edge {
        // s⁻¹ through each backend, canonical at the boundary.
        let inv_bar = bar.from_repr(&bar.inv(&bar.to_repr(s)).unwrap());
        let inv_mon = mon.from_repr(&mon.inv(&mon.to_repr(s)).unwrap());
        assert_eq!(inv_bar, inv_mon, "s⁻¹ diverged for s={s:?}");
        for z in &edge {
            for r in &edge {
                // u1 = z·s⁻¹, u2 = r·s⁻¹ — the exact per-signature flow.
                let u_bar = (
                    bar.from_repr(&bar.mul(&bar.to_repr(z), &bar.to_repr(&inv_bar))),
                    bar.from_repr(&bar.mul(&bar.to_repr(r), &bar.to_repr(&inv_bar))),
                );
                let u_mon = (
                    mon.from_repr(&mon.mul(&mon.to_repr(z), &mon.to_repr(&inv_mon))),
                    mon.from_repr(&mon.mul(&mon.to_repr(r), &mon.to_repr(&inv_mon))),
                );
                assert_eq!(u_bar, u_mon, "u1/u2 diverged at z={z:?} r={r:?} s={s:?}");
            }
        }
    }
    // Batched inversion over the whole edge set, both backends.
    let mut vals_bar: Vec<U256> = edge.iter().map(|v| bar.to_repr(v)).collect();
    let mut vals_mon: Vec<U256> = edge.iter().map(|v| mon.to_repr(v)).collect();
    assert_eq!(bar.batch_inv(&mut vals_bar), mon.batch_inv(&mut vals_mon));
    for (b, m) in vals_bar.iter().zip(&vals_mon) {
        assert_eq!(bar.from_repr(b), mon.from_repr(m));
    }
}
