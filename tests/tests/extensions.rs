//! Tests for the paper's §5 extensions: partial reconfiguration of the
//! policy evaluator, Go-Back-N over real block traffic, and the tiered
//! database under a validator workload.

use std::collections::HashMap;

use bmac_hw::processor::ProcessorConfig;
use bmac_hw::{BMacMachine, Geometry};
use bmac_protocol::retransmit::{GoBackNReceiver, GoBackNSender};
use bmac_protocol::{BmacReceiver, BmacSender};
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::{FabricNetwork, FabricNetworkBuilder};
use fabric_policy::parse;

fn kv_net(orgs: u8, policy: &str, block_size: usize) -> FabricNetwork {
    let mut net = FabricNetworkBuilder::new()
        .orgs(orgs)
        .block_size(block_size)
        .chaincode("kv", parse(policy).unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    net
}

#[test]
fn policy_update_without_restart_changes_decisions() {
    // Start with a 1of2 policy in hardware; the 1-endorsement txs the
    // network produces under 1of2 endorsement selection satisfy it.
    let mut net = kv_net(2, "2-outof-2 orgs", 1);
    let mut policies: HashMap<String, fabric_policy::Policy> =
        [("kv".to_string(), parse("2-outof-2 orgs").unwrap())]
            .into_iter()
            .collect();
    let mut machine = BMacMachine::new(ProcessorConfig::new(Geometry::new(4, 2), 2), &policies);
    let mut sender = BmacSender::new();

    let block = net
        .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
        .unwrap()
        .remove(0);
    for p in sender.send_block(&block).unwrap() {
        machine.ingest_wire(&p.encode().unwrap(), 0).unwrap();
    }
    let r1 = machine.get_block_data().unwrap();
    assert_eq!(r1.valid_count(), 1, "2of2 satisfied by two endorsements");

    // Chaincode upgrade: policy becomes Org1.admin-only, which the
    // peer-signed endorsements cannot satisfy. Partial reconfiguration:
    // no machine restart, identity cache and db preserved.
    policies.insert("kv".to_string(), parse("Org1.admin").unwrap());
    machine.update_policies(&policies);
    net.commit_to_endorsers(0, &[(0, vec![("a".into(), b"1".to_vec())])]);
    let block2 = net
        .submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
        .unwrap()
        .remove(0);
    for p in sender.send_block(&block2).unwrap() {
        machine.ingest_wire(&p.encode().unwrap(), 0).unwrap();
    }
    let r2 = machine.get_block_data().unwrap();
    assert_eq!(
        r2.valid_count(),
        0,
        "admin-only policy rejects peer endorsements"
    );
    // The identity cache survived: no re-sync was needed (block2's
    // packets contained no IdentitySync for already-known nodes).
}

#[test]
fn go_back_n_carries_real_blocks_over_lossy_link() {
    let mut net = kv_net(2, "2-outof-2 orgs", 3);
    let mut bsender = BmacSender::new();
    let mut breceiver = BmacReceiver::new();
    let mut gbn_tx = GoBackNSender::new(4);
    let mut gbn_rx = GoBackNReceiver::new();

    net.submit_invocation(0, "kv", "put", &["a".into(), "1".into()])
        .unwrap();
    net.submit_invocation(0, "kv", "put", &["b".into(), "2".into()])
        .unwrap();
    let block = net
        .submit_invocation(0, "kv", "put", &["c".into(), "3".into()])
        .unwrap()
        .remove(0);

    // Enqueue all BMac packets into the GBN sender.
    let mut channel: std::collections::VecDeque<Vec<u8>> = Default::default();
    for p in bsender.send_block(&block).unwrap() {
        channel.extend(gbn_tx.send(p.encode().unwrap()));
    }
    // Lossy link: drop every 4th packet on its first try.
    let mut step = 0usize;
    let mut completed = 0;
    let mut rounds = 0;
    while (gbn_tx.in_flight() > 0 || !channel.is_empty()) && rounds < 100 {
        rounds += 1;
        while let Some(wire) = channel.pop_front() {
            step += 1;
            if step.is_multiple_of(4) && step < 40 {
                continue; // drop
            }
            let (inner, fb) = gbn_rx.on_wire(&wire).unwrap();
            if let Some(inner) = inner {
                completed += breceiver.ingest(&inner).unwrap().len();
            }
            channel.extend(gbn_tx.on_feedback(fb));
        }
        if gbn_tx.in_flight() > 0 {
            channel.extend(gbn_tx.on_timeout());
        }
    }
    assert_eq!(completed, 1, "block reassembles despite losses");
    assert!(
        gbn_tx.retransmissions() > 0,
        "losses actually triggered GBN"
    );
    assert!(breceiver.incomplete_blocks().is_empty());
}
