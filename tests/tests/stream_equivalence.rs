//! Serial-equivalence harness for the streaming validator.
//!
//! The Blockchain Machine's pipelined block processor must not change
//! *what* is validated, only *when*: the paper's §4.1 methodology
//! compared valid/invalid flags and commit hashes between the baseline
//! and accelerated peers and "did not find any mismatches". This harness
//! holds `fabric_peer::stream` to the same bar against the serial
//! `validate_and_commit` path, on randomized multi-block streams with
//! cross-block MVCC conflicts, invalid signatures, and duplicate tx ids,
//! generated from both the smallbank (hot-key) and DRM (wide-keyspace)
//! workloads, pushed in randomized arrival order.
//!
//! Every case asserts bit-identical:
//! * per-block validation flags (including `block_valid`),
//! * per-block commit hashes,
//! * final state-database contents (keys, values, versions),
//! * ledger height and tip commit hash.

use std::collections::HashMap;
use std::sync::Arc;

use bmac_protocol::{BmacReceiver, BmacSender};
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_peer::{BlockValidationResult, StreamConfig, StreamValidator};
use fabric_policy::Policy;
use fabric_protos::messages::Block;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use workload::{StreamScenario, Workload};

fn make_validator(scenario: &StreamScenario, workers: usize) -> ValidatorPipeline {
    let policies: HashMap<String, Policy> = scenario.policies();
    ValidatorPipeline::new(scenario.validator_msp(), policies, workers)
}

fn serial_replay(
    scenario: &StreamScenario,
    blocks: &[Block],
) -> (ValidatorPipeline, Vec<BlockValidationResult>) {
    let validator = make_validator(scenario, 2);
    let results = blocks
        .iter()
        .map(|b| {
            validator
                .validate_and_commit(b)
                .expect("serial replay of a generated stream cannot fail structurally")
        })
        .collect();
    (validator, results)
}

/// Asserts the streaming run agrees with the serial replay on flags,
/// hashes, and final state.
fn assert_equivalent(
    serial: &ValidatorPipeline,
    serial_results: &[BlockValidationResult],
    stream: &ValidatorPipeline,
    stream_results: &[BlockValidationResult],
) {
    assert_eq!(serial_results.len(), stream_results.len(), "block count");
    for (s, t) in serial_results.iter().zip(stream_results) {
        assert_eq!(s.block_num, t.block_num);
        assert_eq!(
            s.block_valid, t.block_valid,
            "block {} validity",
            s.block_num
        );
        assert_eq!(s.codes, t.codes, "block {} flags", s.block_num);
        assert_eq!(s.tx_ids, t.tx_ids, "block {} tx ids", s.block_num);
        assert_eq!(
            s.commit_hash, t.commit_hash,
            "block {} commit hash",
            s.block_num
        );
    }
    assert_eq!(
        serial.state_db().snapshot(),
        stream.state_db().snapshot(),
        "final state database contents"
    );
    assert_eq!(serial.ledger().height(), stream.ledger().height());
    assert_eq!(
        serial.ledger().tip_commit_hash(),
        stream.ledger().tip_commit_hash()
    );
    assert!(stream.ledger().verify_chain().is_ok());
}

fn scenario_strategy() -> impl Strategy<Value = (StreamScenario, usize, u64)> {
    (
        // 0 => smallbank hot-key (2–3 accounts: every tx collides),
        // 1 => drm wide-keyspace (8–12 contents, fresh license keys).
        0usize..2,
        2usize..4,
        1usize..4, // block_size
        3usize..6, // num_blocks
        prop_oneof![Just(0u8), Just(50u8), Just(100u8)],
        0usize..3,    // corrupt_sigs
        0usize..3,    // duplicate_txs
        any::<u64>(), // scenario seed
        1usize..4,    // verify lanes
        any::<u64>(), // push-order shuffle seed
    )
        .prop_map(
            |(kind, acc, block_size, num_blocks, stale, corrupt, dup, seed, lanes, shuffle)| {
                let (workload, accounts) = if kind == 0 {
                    (Workload::Smallbank, acc) // 2–3 accounts: hot keys
                } else {
                    (Workload::Drm, acc * 4) // 8–12 contents: wide keyspace
                };
                (
                    StreamScenario {
                        workload,
                        accounts,
                        block_size,
                        num_blocks,
                        stale_commit_pct: stale,
                        corrupt_sigs: corrupt,
                        duplicate_txs: dup,
                        seed,
                    },
                    lanes,
                    shuffle,
                )
            },
        )
}

proptest! {
    // Each case builds a network and does real ECDSA for every
    // signature in the stream; a handful of cases already covers both
    // workload regimes × fault mix × lane counts on both field backends
    // (CI matrix).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn streaming_is_serially_equivalent((scenario, lanes, shuffle_seed) in scenario_strategy()) {
        let generated = scenario.generate();
        let (serial, serial_results) = serial_replay(&scenario, &generated.blocks);

        let pipeline = Arc::new(make_validator(&scenario, 2));
        let stream = StreamValidator::new(
            Arc::clone(&pipeline),
            StreamConfig { verify_lanes: lanes, max_in_flight: lanes + 2 },
        );
        // Randomized arrival order: the reorder buffer must restore
        // block order before MVCC sees anything.
        let mut arrival: Vec<Block> = generated.blocks.clone();
        arrival.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        for block in arrival {
            stream.push(block).unwrap();
        }
        let report = stream.finish().expect("stream completes");
        assert_equivalent(&serial, &serial_results, &pipeline, &report.results);

        // The harness itself must have exercised real per-block work.
        prop_assert_eq!(report.stats.blocks, generated.blocks.len());
        prop_assert!(report.stats.makespan_us > 0);
    }
}

/// The network-attached ingestion path of the paper: blocks leave the
/// orderer as BMac packets, are reassembled by the protocol receiver
/// (completing out of order under interleaving), and feed the stream —
/// and the result is still bit-identical to the serial replay.
#[test]
fn bmac_receiver_feed_is_serially_equivalent() {
    let scenario = StreamScenario {
        workload: Workload::Smallbank,
        accounts: 3,
        block_size: 2,
        num_blocks: 4,
        stale_commit_pct: 40,
        corrupt_sigs: 1,
        duplicate_txs: 1,
        seed: 20260729,
    };
    let generated = scenario.generate();
    let (serial, serial_results) = serial_replay(&scenario, &generated.blocks);

    // Packetize every block, then interleave packets round-robin across
    // blocks so completions arrive out of order at the receiver.
    let mut sender = BmacSender::new();
    let mut per_block: Vec<Vec<bmac_protocol::BmacPacket>> = generated
        .blocks
        .iter()
        .map(|b| sender.send_block(b).unwrap())
        .collect();
    let mut schedule = Vec::new();
    while per_block.iter().any(|p| !p.is_empty()) {
        for packets in per_block.iter_mut() {
            if !packets.is_empty() {
                schedule.push(packets.remove(0));
            }
        }
    }

    let pipeline = Arc::new(make_validator(&scenario, 2));
    let stream = StreamValidator::new(Arc::clone(&pipeline), StreamConfig::default());
    let mut receiver = BmacReceiver::new();
    let mut completed = 0usize;
    for packet in schedule {
        for received in receiver.ingest(&packet.encode().unwrap()).unwrap() {
            // Byte-exact reassembly is a precondition for equivalence.
            let original = &generated.blocks[received.block.header.number as usize];
            assert_eq!(received.block.marshal(), original.marshal());
            stream.push(received.block).unwrap();
            completed += 1;
        }
    }
    assert_eq!(completed, generated.blocks.len(), "every block reassembled");
    let report = stream.finish().expect("stream completes");
    assert_equivalent(&serial, &serial_results, &pipeline, &report.results);
}

/// Deterministic regression: a valid cross-block read-your-writes chain
/// must NOT be flagged by the stream (guards against MVCC running ahead
/// of commit), and a stale chain must be flagged exactly like serial.
#[test]
fn cross_block_dependency_and_conflict_regimes() {
    for stale_pct in [0u8, 100u8] {
        let scenario = StreamScenario {
            workload: Workload::Smallbank,
            accounts: 2, // maximally hot keys
            block_size: 1,
            num_blocks: 5,
            stale_commit_pct: stale_pct,
            corrupt_sigs: 0,
            duplicate_txs: 0,
            seed: 42,
        };
        let generated = scenario.generate();
        let (serial, serial_results) = serial_replay(&scenario, &generated.blocks);
        let pipeline = Arc::new(make_validator(&scenario, 2));
        let report = StreamValidator::run(
            Arc::clone(&pipeline),
            StreamConfig {
                verify_lanes: 3,
                max_in_flight: 5,
            },
            generated.blocks.clone(),
        )
        .expect("stream completes");
        assert_equivalent(&serial, &serial_results, &pipeline, &report.results);

        let workload_results = &report.results[generated.setup_blocks..];
        let conflicts: usize = workload_results
            .iter()
            .flat_map(|r| &r.codes)
            .filter(|c| **c == fabric_peer::TxValidationCode::MvccReadConflict)
            .count();
        if stale_pct == 0 {
            assert_eq!(conflicts, 0, "fresh endorsements must all commit");
        } else {
            assert!(
                conflicts > 0,
                "fully stale endorsements on hot keys must conflict somewhere"
            );
        }
    }
}
