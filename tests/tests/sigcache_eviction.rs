//! Eviction-safety and accounting tests for the sharded LRU signature
//! cache.
//!
//! The cache stores *verdicts*, including negative ones, so the one
//! security property that matters under churn is: an invalid signature
//! must never surface as valid — not after eviction, not after
//! re-insert, not after any interleaving of the two. These tests drive
//! the cache far past capacity and assert that invariant, plus the
//! hit/miss accounting that `BENCH_validation.json` reports (each probe
//! increments exactly one counter; per-pass rates are derived from
//! stats deltas, never double-counted).

use fabric_crypto::ecdsa::{Signature, SigningKey};
use fabric_crypto::sha256::sha256;
use fabric_crypto::VerifyingKey;
use fabric_peer::{SigCacheKey, SignatureCache};

/// A (key, digest, signature) triple whose signature is *invalid* for
/// the digest (signed over a different message).
fn invalid_triple(tag: u8) -> (VerifyingKey, [u8; 32], Signature) {
    let key = SigningKey::from_seed(&[b'e', b'v', tag]);
    let digest = sha256(&[tag, 0xAA]);
    let sig = key.sign_prehashed(&sha256(&[tag, 0xBB])); // wrong message
    let vk = key.verifying_key().clone();
    assert!(vk.verify_prehashed(&digest, &sig).is_err());
    (vk, digest, sig)
}

/// Re-derives the cache verdict the way the validator pipeline does:
/// consult the cache, fall back to real verification, insert.
fn lookup_or_verify(
    cache: &SignatureCache,
    vk: &VerifyingKey,
    digest: &[u8; 32],
    sig: &Signature,
) -> bool {
    let key = SigCacheKey::compute(vk, digest, sig);
    if let Some(verdict) = cache.get(&key) {
        return verdict;
    }
    let valid = vk.verify_prehashed(digest, sig).is_ok();
    cache.insert(key, valid);
    valid
}

#[test]
fn evicted_invalid_verdict_never_resurfaces_as_valid() {
    // Capacity 16 → one entry per shard: every insert into a shard
    // evicts whatever was there, the most hostile configuration.
    let cache = SignatureCache::new(16);
    let (vk, digest, sig) = invalid_triple(1);
    let key = SigCacheKey::compute(&vk, &digest, &sig);

    assert!(!lookup_or_verify(&cache, &vk, &digest, &sig));
    assert_eq!(cache.get(&key), Some(false));

    // Churn the cache far past capacity, several times over, with
    // interleaved probes of the invalid triple. The probe may miss
    // (evicted) or hit `false`; it must never hit `true`, and the
    // pipeline-style re-derivation must keep answering "invalid".
    for round in 0u32..10 {
        for i in 0..64u32 {
            let filler = SigCacheKey::from_bytes(sha256(&(round * 1000 + i).to_be_bytes()));
            cache.insert(filler, true); // plausible: most real traffic is valid
        }
        match cache.get(&key) {
            None | Some(false) => {}
            Some(true) => panic!("invalid signature reported valid after eviction (round {round})"),
        }
        assert!(
            !lookup_or_verify(&cache, &vk, &digest, &sig),
            "re-derived verdict flipped to valid (round {round})"
        );
    }
}

#[test]
fn verdicts_do_not_leak_across_triples_under_churn() {
    let cache = SignatureCache::new(16);
    // Cache a *valid* triple and an *invalid* one, then churn. Whatever
    // survives, each triple's re-derived verdict must stay its own.
    let signer = SigningKey::from_seed(b"leak-check");
    let good_digest = sha256(b"good");
    let good_sig = signer.sign_prehashed(&good_digest);
    let good_vk = signer.verifying_key().clone();
    let (bad_vk, bad_digest, bad_sig) = invalid_triple(7);

    for i in 0..500u32 {
        let filler = SigCacheKey::from_bytes(sha256(&i.to_be_bytes()));
        cache.insert(filler, i % 2 == 0);
        if i % 50 == 0 {
            assert!(lookup_or_verify(&cache, &good_vk, &good_digest, &good_sig));
            assert!(!lookup_or_verify(&cache, &bad_vk, &bad_digest, &bad_sig));
        }
    }
    let stats = cache.stats();
    assert!(stats.entries <= stats.capacity, "{stats:?}");
}

#[test]
fn every_probe_increments_exactly_one_counter() {
    let cache = SignatureCache::new(64);
    let keys: Vec<SigCacheKey> = (0..100u32)
        .map(|i| SigCacheKey::from_bytes(sha256(&i.to_be_bytes())))
        .collect();
    let mut expected_probes = 0u64;
    for (i, k) in keys.iter().enumerate() {
        cache.get(k); // miss
        expected_probes += 1;
        cache.insert(*k, true);
        if i % 3 == 0 {
            cache.get(k); // hit (just inserted, still resident)
            expected_probes += 1;
        }
    }
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        expected_probes,
        "hit/miss accounting must be one increment per probe, {stats:?}"
    );
    assert!(stats.hits >= 1 && stats.misses >= keys.len() as u64);
    let rate = stats.hit_rate();
    assert_eq!(rate, stats.hits as f64 / expected_probes as f64);
}

/// Per-pass hit rates are stats *deltas*, which is what the benchmark
/// reports: a cold pass is all misses, a warm replay of the same
/// probes is all hits — the cumulative 0.5 is the blend of the two,
/// not a double-count.
#[test]
fn per_pass_hit_rates_derive_from_stats_deltas() {
    let cache = SignatureCache::new(1024);
    let keys: Vec<SigCacheKey> = (0..50u32)
        .map(|i| SigCacheKey::from_bytes(sha256(&[b'p', i as u8])))
        .collect();

    let s0 = cache.stats();
    for k in &keys {
        if cache.get(k).is_none() {
            cache.insert(*k, true);
        }
    }
    let s1 = cache.stats();
    for k in &keys {
        assert_eq!(cache.get(k), Some(true));
    }
    let s2 = cache.stats();

    let cold_hits = s1.hits - s0.hits;
    let cold_misses = s1.misses - s0.misses;
    let warm_hits = s2.hits - s1.hits;
    let warm_misses = s2.misses - s1.misses;
    assert_eq!((cold_hits, cold_misses), (0, keys.len() as u64));
    assert_eq!((warm_hits, warm_misses), (keys.len() as u64, 0));
    // The cumulative rate blends the passes to exactly 1/2 — the
    // "suspicious 0.500" the benchmark used to print. The per-pass
    // rates are the meaningful ones.
    assert_eq!(s2.hit_rate(), 0.5);
    assert_eq!(warm_hits as f64 / (warm_hits + warm_misses) as f64, 1.0);
}
