//! Differential-oracle gate for the sharded MVCC state database.
//!
//! The legacy single-map `StateDb` is trivially correct and stays
//! compiled (`StateBackend::Legacy`); this harness holds the sharded
//! backend to **bit-identical** results against it — state hashes,
//! MVCC conflict flags, range scans, snapshots, pinned reads — over
//! randomized batch workloads, including the awkward cases the issue
//! calls out: empty batches, the same key written twice in one batch,
//! the `Height(0,0)` version boundary, and non-monotone heights.
//!
//! Also here: the journal record-order == apply-order regression (the
//! per-shard locking scheme must not let a parallel block commit
//! reorder its write-ahead records) and the concurrency soak — reader
//! threads pinning height snapshots while a committer applies blocks
//! must never observe a torn batch or a height they weren't pinned to.

use std::sync::Arc;

use fabric_statedb::{Height, JournalSink, StateBackend, StateDb, VersionedValue, WriteBatch};
use proptest::prelude::*;

/// One randomized state operation.
#[derive(Debug, Clone)]
enum Op {
    /// Apply a batch of (key, put-or-delete) at a height.
    Apply(Vec<(String, Option<Vec<u8>>)>, Height),
    /// Apply a whole block of per-tx batches at one block number.
    ApplyBlock(Vec<Vec<(String, Option<Vec<u8>>)>>, u64),
    /// Point-read a key on both backends and compare.
    Get(String),
    /// Range scan `[start, end)` on both and compare.
    Range(String, String),
    /// Full snapshot + state hash comparison.
    Snapshot,
}

/// Small key pool so batches collide: collisions are where version
/// chains, last-write-wins, and MVCC disagree first if anything is
/// wrong.
fn arb_key() -> impl Strategy<Value = String> {
    // `acct`-style plus short raw keys; both shard differently.
    prop_oneof![
        (0u8..20).prop_map(|i| format!("k{i:02}")),
        "[a-d]{1,2}".prop_map(|s| s),
    ]
}

fn arb_value() -> impl Strategy<Value = Option<Vec<u8>>> {
    // Branch repetition stands in for weights (the offline proptest
    // shim's prop_oneof! is unweighted): ~3 puts per delete.
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..8).prop_map(Some),
        proptest::collection::vec(any::<u8>(), 0..8).prop_map(Some),
        proptest::collection::vec(any::<u8>(), 0..8).prop_map(Some),
        Just(None), // delete
    ]
}

fn arb_height() -> impl Strategy<Value = Height> {
    // Includes the (0,0) boundary and deliberately NON-monotone values:
    // both backends must agree on high-water tip semantics regardless.
    (0u64..6, 0u64..4).prop_map(|(b, t)| Height::new(b, t))
}

fn arb_batch() -> impl Strategy<Value = Vec<(String, Option<Vec<u8>>)>> {
    // 0..: empty batches included. Same key twice in a batch happens
    // naturally with a 24-key pool and up to 8 entries.
    proptest::collection::vec((arb_key(), arb_value()), 0..8)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_batch(), arb_height()).prop_map(|(b, h)| Op::Apply(b, h)),
        (arb_batch(), arb_height()).prop_map(|(b, h)| Op::Apply(b, h)),
        (arb_batch(), arb_height()).prop_map(|(b, h)| Op::Apply(b, h)),
        (proptest::collection::vec(arb_batch(), 1..5), 0u64..6)
            .prop_map(|(bs, n)| Op::ApplyBlock(bs, n)),
        (proptest::collection::vec(arb_batch(), 1..5), 0u64..6)
            .prop_map(|(bs, n)| Op::ApplyBlock(bs, n)),
        arb_key().prop_map(Op::Get),
        arb_key().prop_map(Op::Get),
        (arb_key(), arb_key()).prop_map(|(a, b)| {
            if a <= b {
                Op::Range(a, b)
            } else {
                Op::Range(b, a)
            }
        }),
        Just(Op::Snapshot),
    ]
}

fn to_batch(entries: &[(String, Option<Vec<u8>>)]) -> WriteBatch {
    entries.iter().cloned().collect()
}

/// Runs one op sequence on a legacy/subject pair, asserting step-wise
/// equivalence. `subject` is usually sharded, but the harness is
/// backend-agnostic (shard-count independence reuses it).
fn run_differential(ops: &[Op], subject: StateDb) -> Result<(), TestCaseError> {
    let legacy = StateDb::with_backend(StateBackend::Legacy);
    for op in ops {
        match op {
            Op::Apply(entries, height) => {
                let batch = to_batch(entries);
                legacy.apply(&batch, *height);
                subject.apply(&batch, *height);
            }
            Op::ApplyBlock(batches, block_num) => {
                let block: Vec<(WriteBatch, Height)> = batches
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (to_batch(b), Height::new(*block_num, i as u64)))
                    .collect();
                legacy.apply_block(&block);
                subject.apply_block(&block);
            }
            Op::Get(key) => {
                prop_assert_eq!(legacy.get(key), subject.get(key), "get({})", key);
                prop_assert_eq!(legacy.get_version(key), subject.get_version(key));
            }
            Op::Range(start, end) => {
                prop_assert_eq!(
                    legacy.range(start, end),
                    subject.range(start, end),
                    "range({}, {})",
                    start,
                    end
                );
            }
            Op::Snapshot => {
                prop_assert_eq!(legacy.snapshot(), subject.snapshot());
                prop_assert_eq!(legacy.state_hash(), subject.state_hash());
            }
        }
        // Invariants cheap enough to hold after EVERY op.
        prop_assert_eq!(legacy.tip_height(), subject.tip_height());
        prop_assert_eq!(legacy.len(), subject.len());
    }
    // Final bit-identical closing comparison: contents, hash, and the
    // MVCC verdict for every key either backend has ever seen.
    prop_assert_eq!(legacy.snapshot(), subject.snapshot());
    prop_assert_eq!(legacy.state_hash(), subject.state_hash());
    let probes: Vec<(String, Option<Height>)> = legacy
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k, Some(v.version)))
        .collect();
    prop_assert!(
        subject.mvcc_validate(&probes),
        "current versions must validate"
    );
    for (key, expected) in &probes {
        let stale = Some(Height::new(u64::MAX, u64::MAX));
        prop_assert_eq!(
            legacy.mvcc_validate(&[(key.clone(), stale)]),
            subject.mvcc_validate(&[(key.clone(), stale)])
        );
        prop_assert_eq!(
            legacy.mvcc_validate(&[(key.clone(), None)]),
            subject.mvcc_validate(&[(key.clone(), None)])
        );
        let _ = expected;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core gate: randomized apply/get/range/snapshot interleavings
    /// are bit-identical across backends.
    #[test]
    fn sharded_matches_legacy_on_random_interleavings(
        ops in proptest::collection::vec(arb_op(), 1..40)
    ) {
        run_differential(&ops, StateDb::with_backend(StateBackend::Sharded))?;
    }

    /// Shard-count independence: the keyspace partition is an
    /// implementation detail — 1, 5, and 16 shards all match the oracle
    /// (and hence each other) on the same op tape.
    #[test]
    fn shard_count_does_not_change_semantics(
        ops in proptest::collection::vec(arb_op(), 1..20),
        shards in prop_oneof![Just(1usize), Just(5), Just(16)],
    ) {
        run_differential(&ops, StateDb::sharded_with_shards(shards))?;
    }

    /// Pinned snapshots: the legacy pin materializes the whole map up
    /// front (ground truth by construction); the sharded pin resolves
    /// version chains lazily. Pins taken at random points must agree on
    /// every read for the rest of their life.
    #[test]
    fn pinned_snapshots_match_materialized_oracle(
        segments in proptest::collection::vec(
            proptest::collection::vec((arb_batch(), arb_height()), 0..5),
            1..5
        ),
    ) {
        let legacy = StateDb::with_backend(StateBackend::Legacy);
        let sharded = StateDb::with_backend(StateBackend::Sharded);
        let mut pins = Vec::new();
        for segment in &segments {
            // Pin both backends at this point in the tape...
            pins.push((legacy.pin(), sharded.pin()));
            // ...then keep committing.
            for (entries, height) in segment {
                let batch = to_batch(entries);
                legacy.apply(&batch, *height);
                sharded.apply(&batch, *height);
            }
        }
        for (lp, sp) in &pins {
            prop_assert_eq!(lp.height(), sp.height());
            prop_assert_eq!(lp.snapshot(), sp.snapshot());
            for k in ["k00", "k05", "k19", "a", "dd"] {
                prop_assert_eq!(lp.get(k), sp.get(k), "pinned get({})", k);
            }
            prop_assert_eq!(lp.range("a", "k10"), sp.range("a", "k10"));
        }
        // Live views also still agree after all that pinning.
        prop_assert_eq!(legacy.state_hash(), sharded.state_hash());
    }

    /// `from_snapshot` round-trips across backends: a dump taken from
    /// either restores into either, preserving contents, tip, and hash.
    #[test]
    fn snapshot_restore_crosses_backends(
        ops in proptest::collection::vec((arb_batch(), arb_height()), 1..15),
    ) {
        let src = StateDb::with_backend(StateBackend::Sharded);
        for (entries, height) in &ops {
            src.apply(&to_batch(entries), *height);
        }
        let dump = src.snapshot();
        let tip = src.tip_height();
        for backend in [StateBackend::Legacy, StateBackend::Sharded] {
            let restored = StateDb::from_snapshot_with_backend(backend, dump.clone(), tip);
            prop_assert_eq!(restored.snapshot(), dump.clone());
            prop_assert_eq!(restored.tip_height(), tip);
            prop_assert_eq!(restored.state_hash(), src.state_hash());
        }
    }

    /// Chunked snapshots on a quiescent store are exact and identical
    /// across backends for any chunk size.
    #[test]
    fn quiescent_snapshot_chunks_agree(
        ops in proptest::collection::vec((arb_batch(), arb_height()), 1..10),
        chunk in 1usize..40,
    ) {
        let legacy = StateDb::with_backend(StateBackend::Legacy);
        let sharded = StateDb::with_backend(StateBackend::Sharded);
        for (entries, height) in &ops {
            let batch = to_batch(entries);
            legacy.apply(&batch, *height);
            sharded.apply(&batch, *height);
        }
        let l: Vec<_> = legacy.snapshot_chunks(chunk).flatten().collect();
        let s: Vec<_> = sharded.snapshot_chunks(chunk).flatten().collect();
        prop_assert_eq!(&l, &s);
        prop_assert_eq!(l, legacy.snapshot());
    }
}

// ---------------------------------------------------------------------
// Journal ordering: record order == apply order, even when the sharded
// backend fans a block out over shards in parallel.
// ---------------------------------------------------------------------

/// One journaled record: the batch's entries (owned) plus its height.
type JournaledBatch = (Vec<(String, Option<Vec<u8>>)>, Height);

#[derive(Debug, Default)]
struct RecordingSink {
    records: parking_lot::Mutex<Vec<JournaledBatch>>,
}

impl JournalSink for RecordingSink {
    fn record(&self, batch: &WriteBatch, height: Height) {
        self.records.lock().push((
            batch
                .iter()
                .map(|(k, v)| (k.to_string(), v.map(|b| b.to_vec())))
                .collect(),
            height,
        ));
    }

    fn flush(&self) {}
}

/// A block big enough to clear the sharded backend's parallel-apply
/// threshold (256 entries), with per-tx batches and some empty write
/// sets mixed in.
fn wide_block(block_num: u64, txs: u64, writes_per_tx: u64) -> Vec<(WriteBatch, Height)> {
    (0..txs)
        .map(|tx| {
            let mut b = WriteBatch::new();
            if tx % 7 != 3 {
                for w in 0..writes_per_tx {
                    b.put(
                        format!("key{:04}", (tx * 31 + w * 17) % 500),
                        vec![block_num as u8, tx as u8, w as u8],
                    );
                }
            }
            (b, Height::new(block_num, tx))
        })
        .collect()
}

#[test]
fn journal_order_is_apply_order_under_parallel_commit() {
    for backend in [StateBackend::Legacy, StateBackend::Sharded] {
        let db = StateDb::with_backend(backend);
        let sink = Arc::new(RecordingSink::default());
        db.attach_journal(sink.clone());
        let mut expected = Vec::new();
        for block_num in 0..6u64 {
            let block = wide_block(block_num, 40, 8); // 40*8 >> 256
            for (b, h) in &block {
                expected.push((
                    b.iter()
                        .map(|(k, v)| (k.to_string(), v.map(|x| x.to_vec())))
                        .collect::<Vec<_>>(),
                    *h,
                ));
            }
            db.apply_block(&block);
        }
        let records = sink.records.lock().clone();
        assert_eq!(
            records, expected,
            "{backend}: journal records must be the batches in exact commit order"
        );
        // Determinism closure: replaying the journal into fresh stores
        // of BOTH backends reproduces the state bit-for-bit.
        let src_hash = db.state_hash();
        for replay_backend in [StateBackend::Legacy, StateBackend::Sharded] {
            let replayed = StateDb::with_backend(replay_backend);
            for (entries, height) in &records {
                let batch: WriteBatch = entries.iter().cloned().collect();
                replayed.replay(&batch, *height);
            }
            assert_eq!(
                replayed.state_hash(),
                src_hash,
                "replay {replay_backend} of a {backend} journal diverged"
            );
            assert_eq!(replayed.tip_height(), db.tip_height());
        }
    }
}

#[test]
fn replay_never_rejournals_on_either_backend() {
    for backend in [StateBackend::Legacy, StateBackend::Sharded] {
        let db = StateDb::with_backend(backend);
        let sink = Arc::new(RecordingSink::default());
        db.attach_journal(sink.clone());
        let mut b = WriteBatch::new();
        b.put("k", vec![1]);
        db.replay(&b, Height::new(1, 0));
        assert!(sink.records.lock().is_empty(), "{backend}");
        db.apply(&b, Height::new(2, 0));
        assert_eq!(sink.records.lock().len(), 1, "{backend}");
    }
}

// ---------------------------------------------------------------------
// Concurrency soak: pinned readers vs a committing writer.
// ---------------------------------------------------------------------

/// The committer writes ALL of `k0..k7` in every block, each value the
/// block number — so any reader observing two keys from different
/// blocks has seen a torn commit, and any reader observing a block
/// newer than its pin has escaped its snapshot.
///
/// Atomicity granularity differs by design: the sharded backend's
/// `apply_block` publishes a whole block of per-tx batches as one
/// visibility step, so its leg commits per-tx batches; the legacy
/// store is only atomic per *batch* (a pin can land between a block's
/// batches), so its leg packs each block into one batch.
#[test]
fn soak_pinned_readers_never_see_torn_or_future_state() {
    const KEYS: usize = 8;
    const BLOCKS: u64 = 400;
    const READERS: usize = 4;

    for backend in [StateBackend::Sharded, StateBackend::Legacy] {
        let db = StateDb::with_backend(backend);
        // Block 0: seed every key so readers always find all 8.
        let mut seed = WriteBatch::new();
        for k in 0..KEYS {
            seed.put(format!("k{k}"), 0u64.to_le_bytes().to_vec());
        }
        db.apply(&seed, Height::new(0, 0));

        std::thread::scope(|scope| {
            let committer = {
                let db = db.clone();
                scope.spawn(move || {
                    for block in 1..=BLOCKS {
                        let batches: Vec<(WriteBatch, Height)> = match backend {
                            // Per-tx batches: each tx writes one key,
                            // the block is only consistent as a whole.
                            StateBackend::Sharded => (0..KEYS)
                                .map(|k| {
                                    let mut b = WriteBatch::new();
                                    b.put(format!("k{k}"), block.to_le_bytes().to_vec());
                                    (b, Height::new(block, k as u64))
                                })
                                .collect(),
                            // One batch per block: the legacy
                            // atomicity unit.
                            StateBackend::Legacy => {
                                let mut b = WriteBatch::new();
                                for k in 0..KEYS {
                                    b.put(format!("k{k}"), block.to_le_bytes().to_vec());
                                }
                                vec![(b, Height::new(block, 0))]
                            }
                        };
                        db.apply_block(&batches);
                    }
                })
            };
            for _ in 0..READERS {
                let db = db.clone();
                scope.spawn(move || {
                    let mut last_pin_block = 0u64;
                    loop {
                        let pin = db.pin();
                        let pin_height = pin.height().expect("seeded store has a tip");
                        let pin_block = pin_height.block_num;
                        assert!(
                            pin_block >= last_pin_block,
                            "pins moved backwards: {last_pin_block} -> {pin_block}"
                        );
                        last_pin_block = pin_block;
                        // Read every key through the pin: all 8 must
                        // decode to the SAME block number, equal to the
                        // pinned block.
                        let blocks: Vec<u64> = (0..KEYS)
                            .map(|k| {
                                let v = pin
                                    .get(&format!("k{k}"))
                                    .expect("seeded key vanished from pinned view");
                                u64::from_le_bytes(v.value.as_slice().try_into().unwrap())
                            })
                            .collect();
                        for (k, b) in blocks.iter().enumerate() {
                            assert_eq!(
                                *b, pin_block,
                                "torn read at pin {pin_block}: k{k} shows block {b} \
                                 (full view: {blocks:?})"
                            );
                        }
                        // Range through the pin agrees with point reads.
                        let ranged = pin.range("k", "l");
                        assert_eq!(ranged.len(), KEYS);
                        for (_, v) in &ranged {
                            let b = u64::from_le_bytes(v.value.as_slice().try_into().unwrap());
                            assert_eq!(b, pin_block, "torn range at pin {pin_block}");
                        }
                        if pin_block >= BLOCKS {
                            break;
                        }
                    }
                });
            }
            committer.join().unwrap();
        });

        // Soak epilogue: final state is the last block everywhere, and
        // pruning kept chains bounded (no pin outlives the scope).
        let final_tx = match backend {
            StateBackend::Sharded => KEYS as u64 - 1,
            StateBackend::Legacy => 0,
        };
        let final_pin = db.pin();
        assert_eq!(final_pin.height(), Some(Height::new(BLOCKS, final_tx)));
        for k in 0..KEYS {
            let v = db.get(&format!("k{k}")).unwrap();
            assert_eq!(
                u64::from_le_bytes(v.value.as_slice().try_into().unwrap()),
                BLOCKS,
                "{backend}"
            );
        }
    }
}

/// Live (unpinned) reads under commit load: never torn below batch
/// granularity — a key is always one of the committed values, never a
/// mix — and `len` stays exact.
#[test]
fn soak_live_reads_are_always_committed_values() {
    let db = StateDb::with_backend(StateBackend::Sharded);
    let mut seed = WriteBatch::new();
    seed.put("x", 0u64.to_le_bytes().to_vec());
    db.apply(&seed, Height::new(0, 0));

    std::thread::scope(|scope| {
        let writer = {
            let db = db.clone();
            scope.spawn(move || {
                for block in 1..=2_000u64 {
                    let mut b = WriteBatch::new();
                    b.put("x", block.to_le_bytes().to_vec());
                    db.apply(&b, Height::new(block, 0));
                }
            })
        };
        for _ in 0..3 {
            let db = db.clone();
            scope.spawn(move || {
                let mut last = 0u64;
                loop {
                    let v = db.get("x").expect("x always present");
                    let seen = u64::from_le_bytes(v.value.as_slice().try_into().unwrap());
                    assert_eq!(v.version, Height::new(seen, 0), "value/version torn");
                    assert!(seen >= last, "reads moved backwards: {last} -> {seen}");
                    last = seen;
                    if seen >= 2_000 {
                        break;
                    }
                }
            });
        }
        writer.join().unwrap();
    });
    assert_eq!(db.len(), 1);
}

// ---------------------------------------------------------------------
// Targeted regression cases the fuzzers found interesting spots around.
// ---------------------------------------------------------------------

/// `Height(0,0)` is a real version, not a sentinel: both backends must
/// treat a write at the origin as present and MVCC-comparable.
#[test]
fn version_boundary_zero_zero_is_identical() {
    let legacy = StateDb::with_backend(StateBackend::Legacy);
    let sharded = StateDb::with_backend(StateBackend::Sharded);
    for db in [&legacy, &sharded] {
        let mut b = WriteBatch::new();
        b.put("origin", vec![]);
        db.apply(&b, Height::new(0, 0));
    }
    assert_eq!(legacy.get("origin"), sharded.get("origin"));
    assert_eq!(
        legacy.get("origin"),
        Some(VersionedValue {
            value: vec![],
            version: Height::new(0, 0)
        })
    );
    assert_eq!(legacy.tip_height(), sharded.tip_height());
    for db in [&legacy, &sharded] {
        assert!(db.mvcc_validate(&[("origin".into(), Some(Height::new(0, 0)))]));
        assert!(!db.mvcc_validate(&[("origin".into(), None)]));
    }
    assert_eq!(legacy.state_hash(), sharded.state_hash());
}

/// Empty batches advance the tip but change nothing — identically.
#[test]
fn empty_batches_are_identical() {
    let legacy = StateDb::with_backend(StateBackend::Legacy);
    let sharded = StateDb::with_backend(StateBackend::Sharded);
    for db in [&legacy, &sharded] {
        db.apply(&WriteBatch::new(), Height::new(3, 2));
        db.apply_block(&[
            (WriteBatch::new(), Height::new(4, 0)),
            (WriteBatch::new(), Height::new(4, 1)),
        ]);
    }
    assert_eq!(legacy.tip_height(), Some(Height::new(4, 1)));
    assert_eq!(legacy.tip_height(), sharded.tip_height());
    assert_eq!(legacy.state_hash(), sharded.state_hash());
    assert_eq!(legacy.len(), 0);
    assert_eq!(sharded.len(), 0);
}

/// Same key twice in one batch: strict last-op-wins, including
/// put-then-delete and delete-then-put, identically on both backends.
#[test]
fn same_key_twice_in_batch_is_identical() {
    let legacy = StateDb::with_backend(StateBackend::Legacy);
    let sharded = StateDb::with_backend(StateBackend::Sharded);
    for db in [&legacy, &sharded] {
        let mut b = WriteBatch::new();
        b.put("k", vec![1]);
        b.put("k", vec![2]);
        db.apply(&b, Height::new(1, 0));
        let mut b2 = WriteBatch::new();
        b2.put("k", vec![3]);
        b2.delete("k");
        db.apply(&b2, Height::new(2, 0));
        let mut b3 = WriteBatch::new();
        b3.delete("k");
        b3.put("k", vec![4]);
        db.apply(&b3, Height::new(3, 0));
    }
    assert_eq!(legacy.get("k"), sharded.get("k"));
    assert_eq!(legacy.get("k").unwrap().value, vec![4]);
    assert_eq!(legacy.state_hash(), sharded.state_hash());
}
