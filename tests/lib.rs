//! Integration test package; all tests live under `tests/`.
