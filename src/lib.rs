//! Workspace façade for the Blockchain Machine reproduction.
//!
//! This crate exists to host the runnable `examples/` and to re-export
//! the workspace's main entry points under one name. The real code lives
//! in the `crates/` members:
//!
//! * [`fabric_crypto`] — ECDSA P-256 / SHA-256 substrate with the
//!   precomputed fixed-base, wNAF, and batch-inversion fast paths;
//! * [`fabric_peer`] — software validator pipeline (parallel vscc,
//!   signature cache) and calibrated performance model;
//! * [`bmac_core`] / `bmac_hw` / `bmac_protocol` — the hardware
//!   Blockchain Machine simulation and its network protocol;
//! * `fabric_node`, `fabric_policy`, `fabric_protos`, `fabric_statedb`,
//!   `fabric_ledger`, `fabric_raft`, `fabric_sim`, `workload` —
//!   supporting network, policy, wire-format, state, and workload crates.

pub use bmac_core;
pub use bmac_hw;
pub use bmac_protocol;
pub use fabric_crypto;
pub use fabric_mempool;
pub use fabric_node;
pub use fabric_peer;
pub use fabric_policy;
pub use fabric_protos;
pub use fabric_raft;
pub use fabric_sim;
pub use workload;
