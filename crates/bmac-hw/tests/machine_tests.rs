//! Direct tests of the BMacMachine: identity trust anchors, reg_map
//! queueing, protocol traffic accounting, and timing monotonicity.

use std::collections::HashMap;

use bmac_hw::processor::ProcessorConfig;
use bmac_hw::{BMacMachine, Geometry, MachineError};
use bmac_protocol::BmacSender;
use fabric_crypto::identity::CertificateAuthority;
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::{FabricNetwork, FabricNetworkBuilder};
use fabric_policy::parse;
use fabric_protos::messages::Block;

fn kv_net(block_size: usize) -> FabricNetwork {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(block_size)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    net
}

fn policies() -> HashMap<String, fabric_policy::Policy> {
    [("kv".to_string(), parse("2-outof-2 orgs").unwrap())]
        .into_iter()
        .collect()
}

fn machine() -> BMacMachine {
    BMacMachine::new(ProcessorConfig::new(Geometry::new(4, 2), 2), &policies())
}

fn one_block(net: &mut FabricNetwork, key: &str) -> Block {
    let mut blocks = Vec::new();
    let mut i = 0;
    while blocks.is_empty() {
        blocks = net
            .submit_invocation(0, "kv", "put", &[format!("{key}{i}"), "1".into()])
            .unwrap();
        i += 1;
    }
    blocks.remove(0)
}

#[test]
fn trust_anchors_accept_chained_identities() {
    let mut net = kv_net(1);
    let mut m = machine();
    // The network's orgs are deterministic; rebuild their CA keys.
    let cas = vec![
        CertificateAuthority::new(0).public_key().clone(),
        CertificateAuthority::new(1).public_key().clone(),
    ];
    m.set_trust_anchors(cas);
    let block = one_block(&mut net, "a");
    let mut sender = BmacSender::new();
    for p in sender.send_block(&block).unwrap() {
        m.ingest_wire(&p.encode().unwrap(), 0).unwrap();
    }
    assert_eq!(m.blocks_processed(), 1);
    assert!(
        m.key_count() >= 4,
        "client, 2 endorsers, orderer registered"
    );
}

#[test]
fn trust_anchors_reject_foreign_identities() {
    let mut net = kv_net(1);
    let mut m = machine();
    // Trust only a CA that issued none of the network's identities.
    let foreign = CertificateAuthority::new(9);
    m.set_trust_anchors(vec![foreign.public_key().clone()]);
    let block = one_block(&mut net, "a");
    let mut sender = BmacSender::new();
    let mut rejected = false;
    for p in sender.send_block(&block).unwrap() {
        if let Err(MachineError::BadIdentity(_)) = m.ingest_wire(&p.encode().unwrap(), 0) {
            rejected = true;
        }
    }
    assert!(rejected, "identity syncs must fail the chain check");
    assert_eq!(m.blocks_processed(), 0);
}

#[test]
fn reg_map_queues_results_until_read() {
    let mut net = kv_net(1);
    let mut m = machine();
    let mut sender = BmacSender::new();
    let b0 = one_block(&mut net, "a");
    net.commit_to_endorsers(0, &[(0, vec![])]);
    let mut b1 = one_block(&mut net, "b");
    b1.header.previous_hash = fabric_protos::txflow::block_header_hash(&b0.header).to_vec();
    for block in [&b0, &b1] {
        for p in sender.send_block(block).unwrap() {
            m.ingest_wire(&p.encode().unwrap(), 0).unwrap();
        }
    }
    assert_eq!(m.pending_results(), 2);
    let r0 = m.get_block_data().unwrap();
    let r1 = m.get_block_data().unwrap();
    assert_eq!(r0.block_num, 0);
    assert_eq!(r1.block_num, 1);
    assert!(m.get_block_data().is_none());
}

#[test]
fn results_publish_in_fifo_order_with_monotonic_time() {
    let mut net = kv_net(2);
    let mut m = machine();
    let mut sender = BmacSender::new();
    let mut last_published = 0;
    for round in 0..3 {
        let block = {
            net.submit_invocation(0, "kv", "put", &[format!("x{round}"), "1".into()])
                .unwrap();
            net.submit_invocation(0, "kv", "put", &[format!("y{round}"), "1".into()])
                .unwrap()
                .remove(0)
        };
        for p in sender.send_block(&block).unwrap() {
            m.ingest_wire(&p.encode().unwrap(), 0).unwrap();
        }
        let r = m.get_block_data().unwrap();
        assert!(
            r.stats.published > last_published,
            "block {round} published at {} <= {last_published}",
            r.stats.published
        );
        last_published = r.stats.published;
    }
}

#[test]
fn non_bmac_traffic_is_ignored_without_error() {
    let mut m = machine();
    m.ingest_wire(&[0u8; 64], 0).unwrap();
    assert_eq!(
        m.traffic().0,
        0,
        "non-BMac packets are not counted as BMac traffic"
    );
}

#[test]
fn traffic_accounting_counts_bmac_bytes() {
    let mut net = kv_net(1);
    let mut m = machine();
    let mut sender = BmacSender::new();
    let block = one_block(&mut net, "a");
    let mut expected_bytes = 0u64;
    for p in sender.send_block(&block).unwrap() {
        let wire = p.encode().unwrap();
        expected_bytes += wire.len() as u64;
        m.ingest_wire(&wire, 0).unwrap();
    }
    let (packets, bytes) = m.traffic();
    assert!(packets >= 3, "header + tx + metadata at least");
    assert_eq!(bytes, expected_bytes);
}

#[test]
fn later_arrival_time_delays_processing() {
    let mut net = kv_net(1);
    let mut sender = BmacSender::new();
    let block = one_block(&mut net, "a");
    let wires: Vec<Vec<u8>> = sender
        .send_block(&block)
        .unwrap()
        .iter()
        .map(|p| p.encode().unwrap())
        .collect();
    let mut m_early = machine();
    let mut m_late = machine();
    for w in &wires {
        m_early.ingest_wire(w, 0).unwrap();
        m_late.ingest_wire(w, 5_000_000).unwrap(); // 5 ms later
    }
    let early = m_early.get_block_data().unwrap();
    let late = m_late.get_block_data().unwrap();
    assert!(late.stats.published > early.stats.published + 4_000_000);
    // Latency itself is arrival-invariant.
    assert_eq!(early.stats.latency(), late.stats.latency());
}
