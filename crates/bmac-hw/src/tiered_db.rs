//! Tiered state database: in-hardware cache + host-resident store
//! (paper §5 extension).
//!
//! "One option is to use in-hardware database for small amount of
//! actively accessed data, while keeping a persistent database on the
//! host CPU. ... increased database access latencies over PCIe in
//! tx_mvcc_commit stage (when a larger database is kept on the host)
//! could still be hidden by ecdsa_engine latency from tx_vscc stage."
//!
//! [`TieredStateDb`] implements exactly that: a bounded BRAM-class cache
//! in front of an unbounded host [`StateDb`], with LRU eviction and a
//! PCIe round-trip charge on misses. The latency accounting feeds the
//! `tx_mvcc_commit` stage so the hiding claim is testable (see
//! `hiding_claim_holds` below and the ablations harness).

use std::collections::VecDeque;

use fabric_sim::{SimTime, MICROS};
use fabric_statedb::{BoundedStateDb, Height, StateDb, VersionedValue, WriteBatch};

use crate::timing::HW_DB_ACCESS;

/// One PCIe round trip from the card to host memory (~1 µs class for a
/// small DMA read on a Gen3 x16 link).
pub const PCIE_ROUND_TRIP: SimTime = MICROS;

/// Access statistics of the tiered store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TieredStats {
    /// Reads served from the in-hardware cache.
    pub cache_hits: u64,
    /// Reads that went to the host over PCIe.
    pub cache_misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Total simulated time spent in database accesses.
    pub access_time: SimTime,
}

impl TieredStats {
    /// Cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

/// The tiered database.
#[derive(Debug)]
pub struct TieredStateDb {
    cache: BoundedStateDb,
    /// LRU order of cached keys (front = coldest).
    lru: VecDeque<String>,
    host: StateDb,
    stats: TieredStats,
}

impl TieredStateDb {
    /// Creates a tiered store with an in-hardware cache of
    /// `cache_capacity` entries over the given host database.
    pub fn new(cache_capacity: usize, host: StateDb) -> Self {
        TieredStateDb {
            cache: BoundedStateDb::new(cache_capacity),
            lru: VecDeque::new(),
            host,
            stats: TieredStats::default(),
        }
    }

    /// Reads a value, returning it with the simulated access latency.
    pub fn get(&mut self, key: &str) -> (Option<VersionedValue>, SimTime) {
        if let Ok(Some(v)) = self.cache.get(key) {
            self.stats.cache_hits += 1;
            self.stats.access_time += HW_DB_ACCESS;
            self.touch(key);
            return (Some(v), HW_DB_ACCESS);
        }
        // Miss: fetch from host over PCIe and install in the cache.
        self.stats.cache_misses += 1;
        let latency = HW_DB_ACCESS + PCIE_ROUND_TRIP;
        self.stats.access_time += latency;
        let value = self.host.get(key);
        if let Some(v) = &value {
            self.install(key, v.clone());
        }
        (value, latency)
    }

    /// Reads just the version.
    pub fn get_version(&mut self, key: &str) -> (Option<Height>, SimTime) {
        let (v, lat) = self.get(key);
        (v.map(|v| v.version), lat)
    }

    /// Writes a value (write-through: cache + host), returning latency.
    pub fn put(&mut self, key: &str, value: Vec<u8>, version: Height) -> SimTime {
        let mut batch = WriteBatch::new();
        batch.put(key.to_string(), value.clone());
        self.host.apply(&batch, version);
        self.install(key, VersionedValue { value, version });
        // Write-through posts to PCIe asynchronously; the stage only pays
        // the BRAM write.
        self.stats.access_time += HW_DB_ACCESS;
        HW_DB_ACCESS
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> TieredStats {
        self.stats
    }

    /// Number of entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    /// The host-side database handle.
    pub fn host(&self) -> StateDb {
        self.host.clone()
    }

    fn install(&mut self, key: &str, value: VersionedValue) {
        loop {
            match self.cache.put(key, value.value.clone(), value.version) {
                Ok(()) => break,
                Err(_) => {
                    // Evict the coldest entry and retry.
                    let Some(cold) = self.lru.pop_front() else {
                        return; // cache capacity zero: host-only mode
                    };
                    self.evict(&cold);
                }
            }
        }
        self.touch(key);
    }

    fn evict(&mut self, key: &str) {
        // BoundedStateDb has no remove; rebuild without the key. The
        // simulated hardware frees the slot; host remains authoritative.
        let mut fresh = BoundedStateDb::new(self.cache.capacity());
        // Collect survivors from the LRU list (they are exactly the live
        // cache keys).
        for k in self.lru.iter() {
            if k != key {
                if let Ok(Some(v)) = self.cache.get(k) {
                    let _ = fresh.put(k, v.value, v.version);
                }
            }
        }
        self.cache = fresh;
        self.lru.retain(|k| k != key);
        self.stats.evictions += 1;
    }

    fn touch(&mut self, key: &str) {
        self.lru.retain(|k| k != key);
        self.lru.push_back(key.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::ECDSA_ENGINE_LATENCY;

    fn seeded_host(keys: usize) -> StateDb {
        let host = StateDb::new();
        let mut batch = WriteBatch::new();
        for i in 0..keys {
            batch.put(format!("k{i}"), vec![i as u8]);
        }
        host.apply(&batch, Height::new(1, 0));
        host
    }

    #[test]
    fn hit_after_miss() {
        let mut db = TieredStateDb::new(4, seeded_host(10));
        let (v, lat_miss) = db.get("k1");
        assert!(v.is_some());
        assert!(lat_miss >= PCIE_ROUND_TRIP);
        let (_, lat_hit) = db.get("k1");
        assert!(lat_hit < PCIE_ROUND_TRIP);
        assert_eq!(db.stats().cache_hits, 1);
        assert_eq!(db.stats().cache_misses, 1);
    }

    #[test]
    fn lru_eviction_keeps_hot_keys() {
        let mut db = TieredStateDb::new(2, seeded_host(10));
        db.get("k0");
        db.get("k1");
        db.get("k0"); // k0 hot
        db.get("k2"); // evicts k1 (coldest)
        assert_eq!(db.stats().evictions, 1);
        let hits_before = db.stats().cache_hits;
        db.get("k0");
        assert_eq!(db.stats().cache_hits, hits_before + 1, "k0 stayed cached");
        let misses_before = db.stats().cache_misses;
        db.get("k1");
        assert_eq!(db.stats().cache_misses, misses_before + 1, "k1 was evicted");
    }

    #[test]
    fn writes_are_write_through() {
        let mut db = TieredStateDb::new(4, seeded_host(2));
        db.put("new", vec![9], Height::new(2, 0));
        // Host sees it immediately.
        assert_eq!(db.host().get("new").unwrap().value, vec![9]);
        // And it is cached.
        let (_, lat) = db.get("new");
        assert!(lat < PCIE_ROUND_TRIP);
    }

    #[test]
    fn working_set_larger_than_cache_still_correct() {
        let mut db = TieredStateDb::new(3, seeded_host(20));
        for round in 0..3 {
            for i in 0..20 {
                let (v, _) = db.get(&format!("k{i}"));
                assert_eq!(v.unwrap().value, vec![i as u8], "round {round} key {i}");
            }
        }
        assert!(db.stats().evictions > 0);
        assert!(db.cached_entries() <= 3);
    }

    #[test]
    fn hiding_claim_holds() {
        // §5: PCIe misses in tx_mvcc_commit stay hidden behind the
        // tx_vscc engine latency. Worst case: every access misses.
        let rw_per_tx = 4u64;
        let worst_case_db_time = rw_per_tx * (HW_DB_ACCESS + PCIE_ROUND_TRIP);
        assert!(
            worst_case_db_time * 10 < ECDSA_ENGINE_LATENCY,
            "PCIe-tier misses ({worst_case_db_time} ns) must stay far below one engine pass"
        );
    }

    #[test]
    fn zero_capacity_degrades_to_host_only() {
        let mut db = TieredStateDb::new(0, seeded_host(3));
        let (v, lat) = db.get("k0");
        assert!(v.is_some());
        assert!(lat >= PCIE_ROUND_TRIP);
        let (_, lat2) = db.get("k0");
        assert!(lat2 >= PCIE_ROUND_TRIP, "nothing can be cached");
    }
}
