//! The block_processor: integrated block-level and transaction-level
//! pipeline (paper §3.3, Figure 6).
//!
//! Functional behaviour and timing are simulated together: every ECDSA
//! verification is *actually performed* (with the keys extracted from
//! the identity cache), the endorsement policy is evaluated on the
//! compiled combinational circuit with short-circuit evaluation, and
//! MVCC/commit run against the bounded in-hardware key-value store —
//! while the event clocks advance per the module latencies in
//! [`crate::timing`]. This mirrors how the paper validated functional
//! equivalence (identical valid/invalid flags and commit hash, §4.1)
//! alongside performance.

use std::collections::HashMap;

use bmac_protocol::receiver::{ExtractedTx, ReceivedBlock, VerificationRequest};
use fabric_crypto::identity::NodeId;
use fabric_crypto::VerifyingKey;
use fabric_ledger::TxValidationCode;
use fabric_policy::circuit::{PolicyStatus, ShortCircuitEvaluator};
use fabric_policy::{Policy, PolicyCircuit};
use fabric_sim::SimTime;
use fabric_statedb::{BoundedStateDb, Height};

use crate::resources::Geometry;
use crate::timing::{
    ECDSA_ENGINE_LATENCY, HW_DB_ACCESS, MVCC_FIXED, RESULT_PUBLISH, SCHEDULE_LATENCY,
};

/// Configuration of the block_processor.
#[derive(Debug, Clone)]
pub struct ProcessorConfig {
    /// Architecture geometry (tx_validators × engines).
    pub geometry: Geometry,
    /// Short-circuit endorsement evaluation (§3.3).
    pub short_circuit: bool,
    /// Early-abort conditions along the pipeline (§3.3: "skip a
    /// transaction as soon as it becomes invalid").
    pub early_abort: bool,
    /// In-hardware database capacity.
    pub db_capacity: usize,
    /// Number of organizations (register-file width).
    pub num_orgs: usize,
}

impl ProcessorConfig {
    /// Paper defaults for a geometry: short-circuit and early-abort on,
    /// 8192-entry database.
    pub fn new(geometry: Geometry, num_orgs: usize) -> Self {
        ProcessorConfig {
            geometry,
            short_circuit: true,
            early_abort: true,
            db_capacity: fabric_statedb::HW_DB_DEFAULT_CAPACITY,
            num_orgs,
        }
    }
}

/// Per-block timing statistics collected by the `block_monitor` and
/// exposed through `reg_map` (§3.4: "block statistics").
#[derive(Debug, Clone, Copy, Default)]
pub struct HwBlockStats {
    /// When the block's data was fully available to the processor.
    pub data_ready: SimTime,
    /// block_verify completion.
    pub block_verified: SimTime,
    /// Last tx_vscc completion.
    pub vscc_done: SimTime,
    /// Last tx_mvcc_commit completion.
    pub mvcc_done: SimTime,
    /// Result published to reg_map.
    pub published: SimTime,
    /// ECDSA verifications actually executed.
    pub verifications: u64,
    /// Endorsement verifications skipped by short-circuit evaluation.
    pub skipped_verifications: u64,
    /// In-hardware database reads issued.
    pub db_reads: u64,
    /// In-hardware database writes issued.
    pub db_writes: u64,
}

impl HwBlockStats {
    /// Total in-hardware validation latency for this block.
    pub fn latency(&self) -> SimTime {
        self.published.saturating_sub(self.data_ready)
    }
}

/// The validation result published via `reg_map` (§3.4: "block number,
/// block valid/invalid status, number of transactions in the block,
/// transactions' valid/invalid flags, and block statistics").
#[derive(Debug, Clone)]
pub struct HwBlockResult {
    /// Block number.
    pub block_num: u64,
    /// Orderer-signature validity.
    pub block_valid: bool,
    /// Per-transaction flags, in order.
    pub flags: Vec<TxValidationCode>,
    /// Timing statistics.
    pub stats: HwBlockStats,
}

impl HwBlockResult {
    /// Number of valid transactions.
    pub fn valid_count(&self) -> usize {
        self.flags.iter().filter(|f| f.is_valid()).count()
    }
}

/// Errors from processing.
#[derive(Debug)]
pub enum ProcessError {
    /// A verification request referenced a key id the processor does not
    /// know (identity cache desync).
    UnknownKey(u16),
    /// The in-hardware database is full.
    DbFull,
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::UnknownKey(id) => write!(f, "no public key for id {id:#06x}"),
            ProcessError::DbFull => write!(f, "in-hardware state database is full"),
        }
    }
}

impl std::error::Error for ProcessError {}

/// The block_processor simulation.
#[derive(Debug)]
pub struct BlockProcessor {
    config: ProcessorConfig,
    circuits: HashMap<String, (Policy, PolicyCircuit)>,
    db: BoundedStateDb,
    // Engine clocks (persist across blocks: the hardware never resets).
    block_verify_free: SimTime,
    validate_free: SimTime,
    verify_free: Vec<SimTime>,
    vscc_free: Vec<SimTime>,
    mvcc_free: SimTime,
    blocks_processed: u64,
}

impl BlockProcessor {
    /// Creates a processor with compiled policy circuits for each
    /// chaincode (the `ends_policy_evaluator` generation of §3.5).
    pub fn new(config: ProcessorConfig, policies: &HashMap<String, Policy>) -> Self {
        let circuits = policies
            .iter()
            .map(|(name, p)| (name.clone(), (p.clone(), PolicyCircuit::compile(p))))
            .collect();
        let v = config.geometry.tx_validators.max(1);
        BlockProcessor {
            db: BoundedStateDb::new(config.db_capacity),
            circuits,
            block_verify_free: 0,
            validate_free: 0,
            verify_free: vec![0; v],
            vscc_free: vec![0; v],
            mvcc_free: 0,
            blocks_processed: 0,
            config,
        }
    }

    /// The in-hardware database (e.g. for equivalence checks).
    pub fn db(&mut self) -> &mut BoundedStateDb {
        &mut self.db
    }

    /// Recompiles the policy circuits in place (partial reconfiguration,
    /// paper §5): timing state and database contents are untouched.
    pub fn update_policies(&mut self, policies: &HashMap<String, Policy>) {
        self.circuits = policies
            .iter()
            .map(|(name, p)| (name.clone(), (p.clone(), PolicyCircuit::compile(p))))
            .collect();
    }

    /// Blocks processed so far.
    pub fn blocks_processed(&self) -> u64 {
        self.blocks_processed
    }

    /// Processes one reassembled block: functional validation plus
    /// timing. `keys` maps 16-bit ids to public keys (the DataProcessor's
    /// X.509 key extraction output); `ready` is when the block's data
    /// became available from the protocol_processor.
    ///
    /// # Errors
    ///
    /// [`ProcessError::UnknownKey`] if a signer id has no registered key.
    pub fn process_block(
        &mut self,
        rb: &ReceivedBlock,
        keys: &HashMap<u16, VerifyingKey>,
        ready: SimTime,
    ) -> Result<HwBlockResult, ProcessError> {
        let mut stats = HwBlockStats {
            data_ready: ready,
            ..Default::default()
        };
        let t = ECDSA_ENGINE_LATENCY;

        // --- Stage 1: block_verify (dedicated engine).
        let bv_start = ready.max(self.block_verify_free);
        let bv_end = bv_start + t;
        self.block_verify_free = bv_end;
        stats.verifications += 1;
        let block_valid = self.check(&rb.block_verification, keys)?;
        stats.block_verified = bv_end;

        // --- Stage 2: block_validate (one block at a time in the stage).
        let vstart = bv_end.max(self.validate_free);

        // tx_verify + tx_vscc per transaction, scheduled by tx_scheduler
        // onto the first free tx_verify instance.
        let n = rb.txs.len();
        let mut vscc_end = vec![0u64; n];
        // Pre-MVCC outcome per transaction (precise codes so the
        // software-combined transactions filter — and hence the commit
        // hash — matches the software peer exactly).
        let mut tx_code = vec![TxValidationCode::Valid; n];
        for (i, tx) in rb.txs.iter().enumerate() {
            // Pick the validator whose verify engine frees first.
            let v = (0..self.verify_free.len())
                .min_by_key(|&v| self.verify_free[v].max(vstart))
                .expect("at least one validator");
            let vs = vstart.max(self.verify_free[v]) + SCHEDULE_LATENCY;
            let (valid_so_far, ve) = if !block_valid && self.config.early_abort {
                // Skip: the block is already invalid (§3.3 tx_verify skip).
                tx_code[i] = TxValidationCode::BadSignature;
                (false, vs)
            } else {
                stats.verifications += 1;
                let ok = self.check(&tx.client, keys)?;
                if !ok {
                    tx_code[i] = TxValidationCode::BadSignature;
                }
                (ok, vs + t)
            };
            self.verify_free[v] = ve;

            // tx_vscc: waves of endorsement verifications on this
            // validator's engines with short-circuit evaluation.
            let ss = ve.max(self.vscc_free[v]);
            let (ok, waves, executed, skipped) = self.run_vscc(tx, keys, valid_so_far)?;
            stats.verifications += executed;
            stats.skipped_verifications += skipped;
            let se = ss + waves * t;
            self.vscc_free[v] = se;
            vscc_end[i] = se;
            if valid_so_far && !ok {
                tx_code[i] = TxValidationCode::EndorsementPolicyFailure;
            }
        }

        // tx_collector: in-order hand-off to tx_mvcc_commit.
        let mut flags = Vec::with_capacity(n);
        let mut collected = vstart;
        for (i, tx) in rb.txs.iter().enumerate() {
            collected = collected.max(vscc_end[i]);
            let m_start = collected.max(self.mvcc_free);
            let mut m_end = m_start + MVCC_FIXED;
            if tx_code[i] != TxValidationCode::Valid {
                // Early abort: both mvcc and commit skipped (§3.3).
                flags.push(tx_code[i]);
                self.mvcc_free = m_start;
                continue;
            }
            // MVCC: read each key, compare versions.
            let mut conflict = false;
            for (key, expected) in &tx.reads {
                stats.db_reads += 1;
                m_end += HW_DB_ACCESS;
                let current = self
                    .db
                    .get_version(key)
                    .expect("sequential mvcc stage never sees locks");
                let expected = expected.map(|v| Height::new(v.block_num, v.tx_num));
                if current != expected {
                    conflict = true;
                }
            }
            if conflict {
                flags.push(TxValidationCode::MvccReadConflict);
                self.mvcc_free = m_end;
                continue;
            }
            // Commit: write each entry with its created version.
            for (key, value) in &tx.writes {
                stats.db_writes += 1;
                m_end += HW_DB_ACCESS;
                self.db
                    .put(
                        key,
                        value.clone(),
                        Height::new(rb.block.header.number, i as u64),
                    )
                    .map_err(|_| ProcessError::DbFull)?;
            }
            flags.push(TxValidationCode::Valid);
            self.mvcc_free = m_end;
        }
        stats.vscc_done = vscc_end.iter().copied().max().unwrap_or(vstart);
        stats.mvcc_done = self.mvcc_free.max(stats.vscc_done);
        stats.published = stats.mvcc_done + RESULT_PUBLISH;
        self.validate_free = stats.published;
        self.blocks_processed += 1;

        Ok(HwBlockResult {
            block_num: rb.block.header.number,
            block_valid,
            flags,
            stats,
        })
    }

    /// tx_vscc: issues endorsement verifications in waves of `E` engines;
    /// the ends_scheduler stops as soon as the policy circuit is
    /// satisfied (short-circuit) or endorsements are exhausted. Returns
    /// `(policy_satisfied, waves, executed, skipped)`.
    fn run_vscc(
        &self,
        tx: &ExtractedTx,
        keys: &HashMap<u16, VerifyingKey>,
        valid_so_far: bool,
    ) -> Result<(bool, u64, u64, u64), ProcessError> {
        if !valid_so_far && self.config.early_abort {
            // Endorsements discarded (§3.3).
            return Ok((false, 0, 0, tx.endorsements.len() as u64));
        }
        let Some((_, circuit)) = self.circuits.get(&tx.chaincode) else {
            return Ok((false, 0, 0, tx.endorsements.len() as u64));
        };
        let e = self.config.geometry.engines_per_vscc.max(1);
        let mut sc = ShortCircuitEvaluator::new(circuit, self.config.num_orgs);
        let mut waves = 0u64;
        let mut executed = 0u64;
        let mut idx = 0usize;
        let mut satisfied = false;
        while idx < tx.endorsements.len() {
            if satisfied && self.config.short_circuit {
                break;
            }
            waves += 1;
            let wave_end = (idx + e).min(tx.endorsements.len());
            for req in &tx.endorsements[idx..wave_end] {
                executed += 1;
                let ok = self.check(req, keys)?;
                let endorser = NodeId::decode(req.signer_id)
                    .map_err(|_| ProcessError::UnknownKey(req.signer_id))?;
                if sc.record(endorser, ok) == PolicyStatus::Satisfied {
                    satisfied = true;
                }
            }
            idx = wave_end;
        }
        let skipped = (tx.endorsements.len() - idx) as u64;
        let ok = valid_so_far && (satisfied || sc.status() == PolicyStatus::Satisfied);
        Ok((ok, waves, executed, skipped))
    }

    /// One ecdsa_engine invocation: functional verification of a request
    /// against the registered key.
    fn check(
        &self,
        req: &VerificationRequest,
        keys: &HashMap<u16, VerifyingKey>,
    ) -> Result<bool, ProcessError> {
        let key = keys
            .get(&req.signer_id)
            .ok_or(ProcessError::UnknownKey(req.signer_id))?;
        Ok(key.verify_prehashed(&req.digest, &req.signature).is_ok())
    }
}
