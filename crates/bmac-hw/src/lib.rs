//! Discrete-event simulator of the Blockchain Machine FPGA accelerator.
//!
//! The paper's hardware (Xilinx Alveo U250 + OpenNIC) is reproduced as a
//! simulation that executes the *real functional logic* — actual ECDSA
//! verification with extracted keys, compiled policy circuits with
//! short-circuit evaluation, MVCC against the bounded in-hardware store —
//! under modeled latencies (250 MHz clock, 360 µs ecdsa_engine, 11 Gbps
//! protocol_processor). This follows the paper's own methodology: its
//! evaluation beyond 16 tx_validators came from "a high-level simulator
//! ... always within 1% of actual measurements" (§4.1).
//!
//! * [`timing`] — the latency constants;
//! * [`resources`] — the Table-1 FPGA utilization model;
//! * [`throughput`] — the closed-form steady-state model for sweeps;
//! * [`processor`] — the detailed functional+timed block_processor;
//! * [`machine`] — the full card: protocol_processor + processor +
//!   reg_map, with `GetBlockData()` semantics.

#![warn(missing_docs)]

pub mod machine;
pub mod processor;
pub mod resources;
pub mod throughput;
pub mod tiered_db;
pub mod timing;

pub use machine::{BMacMachine, MachineError};
pub use processor::{BlockProcessor, HwBlockResult, HwBlockStats, ProcessorConfig};
pub use resources::{utilization, Geometry, Utilization};
pub use throughput::{validate_block, HwBreakdown, HwModelConfig, HwWorkload};
pub use tiered_db::{TieredStateDb, TieredStats};
