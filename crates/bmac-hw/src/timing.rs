//! Hardware timing constants for the Blockchain Machine simulator.
//!
//! All values are taken from the paper: 250 MHz target clock (§4.1),
//! ~360 µs per ECDSA verification ("an ecdsa_engine takes much longer
//! (∼360us per verification \[28\]) than the rest of the operations (tens
//! of us)", §4.3), and an 11 Gbps protocol_processor line rate
//! (Figure 9a's table). The non-crypto module latencies are in the
//! "tens of µs" band the paper describes; their exact values are
//! invisible in the results because the ecdsa_engine dominates.

use fabric_sim::{SimTime, MICROS};

/// FPGA clock frequency (MHz), §4.1.
pub const CLOCK_MHZ: u64 = 250;

/// One clock cycle in [`SimTime`] units (4 ns at 250 MHz).
pub const CYCLE: SimTime = 1_000 / CLOCK_MHZ;

/// ECDSA verification latency of one engine (§4.3: ~360 µs).
pub const ECDSA_ENGINE_LATENCY: SimTime = 360 * MICROS;

/// protocol_processor sustained line rate in bits/second (Figure 9a:
/// "capable of processing incoming data up to a rate of 11Gbps").
pub const PROTOCOL_LINE_RATE_BPS: u64 = 11_000_000_000;

/// Fixed per-packet latency through the protocol_processor module chain
/// (PacketProcessor → DataInserter → DataExtractor/DataProcessor/
/// HashCalculator → DataWriter), cut-through.
pub const PACKET_LATENCY: SimTime = 2 * MICROS;

/// tx_scheduler dispatch latency per transaction.
pub const SCHEDULE_LATENCY: SimTime = CYCLE * 4;

/// In-hardware database access latency per read/write (BRAM/URAM port).
pub const HW_DB_ACCESS: SimTime = CYCLE * 50; // 200 ns

/// Fixed per-transaction latency of the tx_mvcc_commit stage.
pub const MVCC_FIXED: SimTime = 2 * MICROS;

/// res_fifo + reg_map publication latency per block.
pub const RESULT_PUBLISH: SimTime = MICROS;

/// Serialization time of `bytes` through the protocol_processor at line
/// rate.
pub fn protocol_processing_time(bytes: usize) -> SimTime {
    (bytes as u128 * 8 * fabric_sim::SECONDS as u128 / PROTOCOL_LINE_RATE_BPS as u128) as SimTime
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_4ns() {
        assert_eq!(CYCLE, 4);
    }

    #[test]
    fn engine_latency_dominates_other_modules() {
        for other in [
            PACKET_LATENCY,
            SCHEDULE_LATENCY,
            HW_DB_ACCESS,
            MVCC_FIXED,
            RESULT_PUBLISH,
        ] {
            assert!(ECDSA_ENGINE_LATENCY > 10 * other);
        }
    }

    #[test]
    fn line_rate_processing() {
        // 11 Gbps: 1375 bytes in 1 us.
        assert_eq!(protocol_processing_time(1375), MICROS);
        // Paper: >= 996,000 tps at ~1,380-byte tx sections.
        let tx_bytes = 1380;
        let tps = fabric_sim::SECONDS / protocol_processing_time(tx_bytes);
        assert!(tps > 990_000, "protocol processor tps {tps}");
    }
}
