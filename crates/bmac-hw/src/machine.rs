//! The Blockchain Machine: protocol_processor + block_processor + reg_map.
//!
//! Top-level simulation of the FPGA card (paper Figure 4a): Ethernet
//! packets come in, the protocol_processor classifies and parses them
//! (timing per [`crate::timing`]), identities synchronize the key
//! registry, reassembled blocks stream into the
//! [`processor::BlockProcessor`](crate::processor::BlockProcessor) — and results are
//! published through the `reg_map` for the host CPU to read with
//! `GetBlockData()`.

use std::collections::{HashMap, VecDeque};

use bmac_protocol::packet::{BmacPacket, PacketError, SectionType};
use bmac_protocol::receiver::{BmacReceiver, ReceiveError, ReceivedBlock};
use fabric_crypto::identity::Certificate;
use fabric_crypto::VerifyingKey;
use fabric_policy::Policy;
use fabric_protos::messages::SerializedIdentity;
use fabric_sim::SimTime;

use crate::processor::{BlockProcessor, HwBlockResult, ProcessError, ProcessorConfig};
use crate::timing::{protocol_processing_time, PACKET_LATENCY};

/// Errors surfaced by the machine.
#[derive(Debug)]
pub enum MachineError {
    /// Protocol-level receive failure.
    Receive(ReceiveError),
    /// Packet decode failure.
    Packet(PacketError),
    /// Block processing failure.
    Process(ProcessError),
    /// An identity-sync certificate failed to parse or chain.
    BadIdentity(&'static str),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Receive(e) => write!(f, "receive: {e}"),
            MachineError::Packet(e) => write!(f, "packet: {e}"),
            MachineError::Process(e) => write!(f, "process: {e}"),
            MachineError::BadIdentity(why) => write!(f, "bad identity sync: {why}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// The simulated FPGA card.
#[derive(Debug)]
pub struct BMacMachine {
    receiver: BmacReceiver,
    keys: HashMap<u16, VerifyingKey>,
    ca_keys: Vec<VerifyingKey>,
    processor: BlockProcessor,
    /// reg_map result queue: results wait here until the CPU reads them
    /// ("a mechanism to block writing of new data to the registers until
    /// the previous data has been read", §3.4). Each result keeps its
    /// reassembled block so the host software can ledger-commit it.
    results: VecDeque<(HwBlockResult, ReceivedBlock)>,
    /// protocol_processor availability (packets stream through at line
    /// rate, cut-through).
    protocol_free: SimTime,
    packets_seen: u64,
    bytes_seen: u64,
}

impl BMacMachine {
    /// Builds the machine from a processor configuration and the
    /// chaincode endorsement policies (compiled into circuits at
    /// generation time, §3.5).
    pub fn new(config: ProcessorConfig, policies: &HashMap<String, Policy>) -> Self {
        BMacMachine {
            receiver: BmacReceiver::new(),
            keys: HashMap::new(),
            ca_keys: Vec::new(),
            processor: BlockProcessor::new(config, policies),
            results: VecDeque::new(),
            protocol_free: 0,
            packets_seen: 0,
            bytes_seen: 0,
        }
    }

    /// Installs CA trust anchors: identity syncs must then chain to one
    /// of them or be rejected.
    pub fn set_trust_anchors(&mut self, cas: Vec<VerifyingKey>) {
        self.ca_keys = cas;
    }

    /// Registered public keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Ingests one wire packet arriving at `arrival`. Completed blocks
    /// are processed immediately and queued for [`Self::get_block_data`].
    ///
    /// # Errors
    ///
    /// [`MachineError`] on protocol or processing failures; non-BMac
    /// packets are forwarded silently.
    pub fn ingest_wire(&mut self, wire: &[u8], arrival: SimTime) -> Result<(), MachineError> {
        let packet = match BmacPacket::decode(wire) {
            Ok(p) => p,
            Err(PacketError::NotBmac) => return Ok(()), // forwarded to host
            Err(e) => return Err(MachineError::Packet(e)),
        };
        // Cut-through timing: the packet streams at line rate once the
        // processor is free.
        let start = arrival.max(self.protocol_free);
        let done = start + protocol_processing_time(wire.len()) + PACKET_LATENCY;
        self.protocol_free = done - PACKET_LATENCY;
        self.packets_seen += 1;
        self.bytes_seen += wire.len() as u64;

        if packet.section == SectionType::IdentitySync {
            self.register_identity(&packet)?;
        }
        let completed = self
            .receiver
            .ingest_packet(packet, wire.len())
            .map_err(MachineError::Receive)?;
        for block in completed {
            let result = self
                .processor
                .process_block(&block, &self.keys, done)
                .map_err(MachineError::Process)?;
            self.results.push_back((result, block));
        }
        Ok(())
    }

    /// The host-side `GetBlockData()`: pops the oldest published result.
    pub fn get_block_data(&mut self) -> Option<HwBlockResult> {
        self.results.pop_front().map(|(r, _)| r)
    }

    /// `GetBlockData()` variant that also hands back the reassembled
    /// block, which the host needs for the ledger commit ("the software
    /// reads validation result of the block from hardware, and combines
    /// it with the original block", §3.4).
    pub fn get_block_data_full(&mut self) -> Option<(HwBlockResult, ReceivedBlock)> {
        self.results.pop_front()
    }

    /// Pending results not yet read by the CPU.
    pub fn pending_results(&self) -> usize {
        self.results.len()
    }

    /// Blocks processed by the block_processor.
    pub fn blocks_processed(&self) -> u64 {
        self.processor.blocks_processed()
    }

    /// `(packets, bytes)` seen by the protocol_processor.
    pub fn traffic(&self) -> (u64, u64) {
        (self.packets_seen, self.bytes_seen)
    }

    /// Access to the processor (tests compare database contents).
    pub fn processor_mut(&mut self) -> &mut BlockProcessor {
        &mut self.processor
    }

    /// Incomplete blocks at the receiver (lost packets).
    pub fn incomplete_blocks(&self) -> Vec<u64> {
        self.receiver.incomplete_blocks()
    }

    /// Regenerates the `ends_policy_evaluator` circuits for a new
    /// chaincode/policy set without restarting the peer — the paper's §5
    /// partial-reconfiguration enhancement ("reprogram only the
    /// endorsement policy evaluator module"). Engine clocks, the
    /// identity cache and the in-hardware database are preserved.
    pub fn update_policies(&mut self, policies: &HashMap<String, Policy>) {
        self.processor.update_policies(policies);
    }

    fn register_identity(&mut self, packet: &BmacPacket) -> Result<(), MachineError> {
        let si = SerializedIdentity::unmarshal(&packet.payload)
            .map_err(|_| MachineError::BadIdentity("unparsable SerializedIdentity"))?;
        let cert = Certificate::from_bytes(&si.id_bytes)
            .map_err(|_| MachineError::BadIdentity("unparsable certificate"))?;
        if !self.ca_keys.is_empty()
            && !self
                .ca_keys
                .iter()
                .any(|ca| cert.verify_issued_by(ca).is_ok())
        {
            return Err(MachineError::BadIdentity(
                "certificate does not chain to a CA",
            ));
        }
        if cert.node_id.encode() != packet.index {
            return Err(MachineError::BadIdentity(
                "sync id does not match certificate",
            ));
        }
        self.keys.insert(packet.index, cert.public_key);
        Ok(())
    }
}
