//! FPGA resource-utilization model (Table 1 of the paper).
//!
//! Calibrated against the five architectures the paper reports for the
//! Xilinx Alveo U250 (LUT 20.9–43.3%, FF 6.9–10.3%, BRAM 13.1% flat):
//! utilization is an affine function of the number of tx_validators and
//! the total ecdsa_engine count, on top of a fixed base (OpenNIC shell,
//! protocol_processor, in-hardware database). The model reproduces the
//! paper's table within a few tenths of a percent and extrapolates to
//! larger architectures (the §4.3 "choose larger FPGAs" projection).

/// A BMac architecture geometry: `V` tx_validators, each with `E`
/// ecdsa_engines in its tx_vscc stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Parallel tx_validator instances (tx_verify + tx_vscc pairs).
    pub tx_validators: usize,
    /// ecdsa_engine instances per tx_vscc stage.
    pub engines_per_vscc: usize,
}

impl Geometry {
    /// Creates a geometry, e.g. `Geometry::new(8, 2)` for the paper's
    /// "8x2".
    pub fn new(tx_validators: usize, engines_per_vscc: usize) -> Self {
        Geometry {
            tx_validators,
            engines_per_vscc,
        }
    }

    /// Total ecdsa_engine instances: one per tx_verify, `E` per tx_vscc,
    /// plus the dedicated block_verify engine.
    pub fn total_engines(&self) -> usize {
        self.tx_validators * (1 + self.engines_per_vscc) + 1
    }
}

impl std::fmt::Display for Geometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.tx_validators, self.engines_per_vscc)
    }
}

/// Resource utilization as percentages of the Alveo U250.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// LUT / LUTRAM share.
    pub lut_pct: f64,
    /// Flip-flop share.
    pub ff_pct: f64,
    /// BRAM / URAM share (dominated by the 8192-entry database and the
    /// FIFOs — independent of validator count).
    pub bram_pct: f64,
    /// Gigabit transceivers (network interface, constant).
    pub gt_pct: f64,
    /// Global clock buffers (constant).
    pub bufg_pct: f64,
    /// Mixed-mode clock managers (constant).
    pub mmcm_pct: f64,
    /// PCIe hard blocks (constant).
    pub pcie_pct: f64,
}

/// Model coefficients (percent of U250 resources).
const LUT_BASE: f64 = 12.78;
const LUT_PER_VALIDATOR: f64 = 0.34;
const LUT_PER_ENGINE: f64 = 0.52;
const FF_BASE: f64 = 5.62;
const FF_PER_VALIDATOR: f64 = 0.02;
const FF_PER_ENGINE: f64 = 0.09;
const BRAM_PCT: f64 = 13.1;

/// Estimates utilization for a geometry (Table 1 model).
pub fn utilization(geometry: Geometry) -> Utilization {
    let v = geometry.tx_validators as f64;
    let e = geometry.total_engines() as f64;
    Utilization {
        lut_pct: LUT_BASE + LUT_PER_VALIDATOR * v + LUT_PER_ENGINE * e,
        ff_pct: FF_BASE + FF_PER_VALIDATOR * v + FF_PER_ENGINE * e,
        bram_pct: BRAM_PCT,
        gt_pct: 83.3,
        bufg_pct: 2.2,
        mmcm_pct: 6.3,
        pcie_pct: 25.0,
    }
}

/// The largest geometry that fits the U250 at a given LUT budget
/// (defaults to 90% to leave routing headroom), holding `engines_per_vscc`
/// fixed — the paper's "extra FPGA resources available can be used to
/// ... add more ecdsa_engine instances" observation.
pub fn max_validators_within(lut_budget_pct: f64, engines_per_vscc: usize) -> usize {
    let mut v = 1;
    while utilization(Geometry::new(v + 1, engines_per_vscc)).lut_pct <= lut_budget_pct {
        v += 1;
    }
    v
}

/// The paper's Table 1 reference points (architecture, LUT%, FF%, BRAM%).
pub const PAPER_TABLE1: [(Geometry, f64, f64, f64); 5] = [
    (
        Geometry {
            tx_validators: 4,
            engines_per_vscc: 2,
        },
        20.9,
        6.9,
        13.1,
    ),
    (
        Geometry {
            tx_validators: 5,
            engines_per_vscc: 3,
        },
        25.4,
        7.3,
        13.1,
    ),
    (
        Geometry {
            tx_validators: 8,
            engines_per_vscc: 2,
        },
        28.5,
        8.0,
        13.1,
    ),
    (
        Geometry {
            tx_validators: 12,
            engines_per_vscc: 2,
        },
        35.8,
        9.1,
        13.1,
    ),
    (
        Geometry {
            tx_validators: 16,
            engines_per_vscc: 2,
        },
        43.3,
        10.3,
        13.1,
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_counts() {
        assert_eq!(Geometry::new(4, 2).total_engines(), 13);
        assert_eq!(Geometry::new(5, 3).total_engines(), 21);
        assert_eq!(Geometry::new(16, 2).total_engines(), 49);
    }

    #[test]
    fn model_matches_paper_table1_within_tolerance() {
        for (g, lut, ff, bram) in PAPER_TABLE1 {
            let u = utilization(g);
            assert!(
                (u.lut_pct - lut).abs() < 0.8,
                "{g}: LUT model {:.1} vs paper {lut}",
                u.lut_pct
            );
            assert!(
                (u.ff_pct - ff).abs() < 0.6,
                "{g}: FF model {:.1} vs paper {ff}",
                u.ff_pct
            );
            assert_eq!(u.bram_pct, bram, "{g}: BRAM");
        }
    }

    #[test]
    fn largest_architecture_fits_under_half() {
        // "Even the largest BMac architecture 16x2 uses less than half of
        // the FPGA resources."
        let u = utilization(Geometry::new(16, 2));
        assert!(u.lut_pct < 50.0);
        assert!(u.ff_pct < 50.0);
        assert!(u.bram_pct < 50.0);
    }

    #[test]
    fn headroom_supports_the_projection() {
        // The §4.3 projection needs ~50 validators; a larger budget than
        // the U250's 90% would be required, but well over 16 must fit.
        let max = max_validators_within(90.0, 2);
        assert!(max > 16, "U250 head-room allows {max} validators");
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(Geometry::new(8, 2).to_string(), "8x2");
        assert_eq!(Geometry::new(5, 3).to_string(), "5x3");
    }
}
