//! Closed-form steady-state performance model of the block_processor.
//!
//! This is the reproduction of the paper's own "high-level simulator for
//! BMac architecture" (§4.1), used for the paper-scale sweeps in the
//! figure harness and for geometries beyond what the detailed per-block
//! simulation needs. The detailed simulator in [`crate::processor`] and
//! this model agree on block latency (see the cross-check test in the
//! integration suite).
//!
//! Model (validated against every BMac number the paper reports):
//!
//! * Each tx_validator is a 2-stage pipe: tx_verify (1 engine, 360 µs)
//!   feeding tx_vscc (`E` engines). A transaction needs
//!   `rounds = ceil(needed / E)` sequential engine waves in tx_vscc,
//!   where `needed` is the number of endorsement verifications actually
//!   issued — `min_satisfying` of the policy under short-circuit
//!   evaluation (§3.3), or all endorsements without it.
//! * Per-validator issue interval: `max(t_verify, rounds × t_engine)`.
//! * Block latency = block_verify + pipeline fill + steady drain +
//!   mvcc/commit tail (hidden under vscc latency unless database work
//!   exceeds the engine time — the Figure 12c observation).

use fabric_policy::Policy;
use fabric_sim::{throughput_per_sec, SimTime};

use crate::resources::Geometry;
use crate::timing::{
    protocol_processing_time, ECDSA_ENGINE_LATENCY, HW_DB_ACCESS, MVCC_FIXED, PACKET_LATENCY,
    RESULT_PUBLISH,
};

/// Workload parameters for the closed-form model.
#[derive(Debug, Clone, Copy)]
pub struct HwWorkload {
    /// Transactions per block.
    pub num_txs: usize,
    /// Endorsements carried per transaction.
    pub endorsements_per_tx: usize,
    /// Endorsement verifications needed to satisfy the policy in the
    /// common all-valid case (`Policy::min_satisfying`).
    pub needed_endorsements: usize,
    /// Database reads per transaction.
    pub reads_per_tx: usize,
    /// Database writes per transaction.
    pub writes_per_tx: usize,
    /// Bytes of one identity-stripped transaction section on the wire
    /// (sets the protocol_processor time; ~900 B for smallbank under the
    /// BMac protocol).
    pub tx_section_bytes: usize,
}

impl HwWorkload {
    /// Builds a workload from a policy (taking `min_satisfying` and the
    /// per-org endorsement count from the policy principals).
    pub fn from_policy(num_txs: usize, policy: &Policy, reads: usize, writes: usize) -> Self {
        HwWorkload {
            num_txs,
            endorsements_per_tx: policy.principals().len(),
            needed_endorsements: policy.min_satisfying(),
            reads_per_tx: reads,
            writes_per_tx: writes,
            tx_section_bytes: 900,
        }
    }

    /// smallbank under the default 2-of-2 policy.
    pub fn smallbank(num_txs: usize) -> Self {
        HwWorkload {
            num_txs,
            endorsements_per_tx: 2,
            needed_endorsements: 2,
            reads_per_tx: 2,
            writes_per_tx: 2,
            tx_section_bytes: 900,
        }
    }

    /// drm under the default 2-of-2 policy (fewer db accesses).
    pub fn drm(num_txs: usize) -> Self {
        HwWorkload {
            num_txs,
            endorsements_per_tx: 2,
            needed_endorsements: 2,
            reads_per_tx: 1,
            writes_per_tx: 1,
            tx_section_bytes: 850,
        }
    }
}

/// Ablation/configuration switches of the hardware model.
#[derive(Debug, Clone, Copy)]
pub struct HwModelConfig {
    /// Architecture geometry.
    pub geometry: Geometry,
    /// Short-circuit endorsement evaluation (§3.3). Disabling verifies
    /// all endorsements like software (ablation 1 of DESIGN.md).
    pub short_circuit: bool,
    /// Overlap hardware validation of block n+1 with software ledger
    /// commit of block n (§3.1). Disabling serializes them.
    pub overlap_commit: bool,
    /// Software-side ledger commit time per block (only matters when
    /// `overlap_commit` is false).
    pub ledger_commit: SimTime,
}

impl HwModelConfig {
    /// The paper's default configuration for a geometry.
    pub fn new(geometry: Geometry) -> Self {
        HwModelConfig {
            geometry,
            short_circuit: true,
            overlap_commit: true,
            ledger_commit: 3 * fabric_sim::MILLIS,
        }
    }
}

/// Latency breakdown of one block through the hardware.
#[derive(Debug, Clone, Copy)]
pub struct HwBreakdown {
    /// protocol_processor time for the block's sections (overlapped with
    /// arrival; reported for Figure 10's "<0.2 ms" comparison).
    pub protocol: SimTime,
    /// block_verify stage.
    pub block_verify: SimTime,
    /// tx_verify + tx_vscc drain (the dominant term).
    pub validate: SimTime,
    /// mvcc/commit tail beyond the vscc drain (usually ~0: hidden).
    pub mvcc_tail: SimTime,
    /// Total block validation latency (block_verify + validate + tail +
    /// result publication).
    pub total: SimTime,
    /// Endorsement verifications issued per transaction (shows the
    /// short-circuit effect).
    pub verifications_per_tx: usize,
}

impl HwBreakdown {
    /// Steady-state commit throughput for a stream of such blocks.
    pub fn throughput_tps(&self, num_txs: usize, config: &HwModelConfig) -> f64 {
        let mut period = self.total;
        if !config.overlap_commit {
            period += config.ledger_commit;
        }
        throughput_per_sec(num_txs as u64, period)
    }
}

/// Computes the hardware latency breakdown for a workload.
pub fn validate_block(config: &HwModelConfig, w: &HwWorkload) -> HwBreakdown {
    let t = ECDSA_ENGINE_LATENCY;
    let v = config.geometry.tx_validators.max(1);
    let e = config.geometry.engines_per_vscc.max(1);
    // Endorsements actually verified per tx.
    let issued = if config.short_circuit {
        w.needed_endorsements.min(w.endorsements_per_tx)
    } else {
        w.endorsements_per_tx
    };
    // Sequential engine waves in tx_vscc.
    let rounds = issued.div_ceil(e).max(1);
    // Per-validator issue interval: the slower of the two pipe stages.
    let interval = t.max(rounds as u64 * t);
    // Transactions per validator (max over validators).
    let per_validator = w.num_txs.div_ceil(v);
    // Drain: first tx leaves vscc after verify + vscc; subsequent txs at
    // `interval` spacing on each validator.
    let validate = t + rounds as u64 * t + (per_validator.saturating_sub(1)) as u64 * interval;
    // mvcc/commit: sequential per tx; hidden while shorter than the
    // inter-completion gap (Figure 12c).
    let db_per_tx = MVCC_FIXED + (w.reads_per_tx + w.writes_per_tx) as u64 * HW_DB_ACCESS;
    let completion_gap = interval / v.min(w.num_txs.max(1)) as u64;
    let mvcc_tail = if db_per_tx > completion_gap {
        (db_per_tx - completion_gap) * w.num_txs as u64
    } else {
        db_per_tx // only the last transaction's commit peeks out
    };
    // Cut-through protocol processing: the block's sections stream at
    // the 11 Gbps line rate; per-packet latencies overlap.
    let protocol = protocol_processing_time(w.num_txs * w.tx_section_bytes + 1024) + PACKET_LATENCY;
    let block_verify = t;
    let total = block_verify + validate + mvcc_tail + RESULT_PUBLISH;
    HwBreakdown {
        protocol,
        block_verify,
        validate,
        mvcc_tail,
        total,
        verifications_per_tx: issued + 1, // + client signature
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_sim::{as_millis, MILLIS};

    fn tput(v: usize, e: usize, w: HwWorkload) -> f64 {
        let config = HwModelConfig::new(Geometry::new(v, e));
        validate_block(&config, &w).throughput_tps(w.num_txs, &config)
    }

    #[test]
    fn fig11_bmac_block250_4_to_16_validators() {
        // Paper: 10,700 tps (4 validators) -> 38,400 tps (16 validators).
        let t4 = tput(4, 2, HwWorkload::smallbank(250));
        let t16 = tput(16, 2, HwWorkload::smallbank(250));
        assert!(
            (t4 - 10_700.0).abs() / 10_700.0 < 0.05,
            "4 validators: {t4}"
        );
        assert!(
            (t16 - 38_400.0).abs() / 38_400.0 < 0.08,
            "16 validators: {t16}"
        );
        // "throughput of BMac peer increases by 3.6x with 4 to 16".
        let scaling = t16 / t4;
        assert!((3.2..4.0).contains(&scaling), "scaling {scaling}");
    }

    #[test]
    fn peak_throughput_matches_68900() {
        // Paper: "up to 68,900 tps with block latency of 3.63ms"
        // (32 validators, block 250 reproduce both numbers).
        let config = HwModelConfig::new(Geometry::new(32, 2));
        let b = validate_block(&config, &HwWorkload::smallbank(250));
        let lat_ms = as_millis(b.total);
        let tps = b.throughput_tps(250, &config);
        assert!((3.3..3.9).contains(&lat_ms), "latency {lat_ms} ms");
        assert!((tps - 68_900.0).abs() / 68_900.0 < 0.05, "tps {tps}");
    }

    #[test]
    fn projection_100k_and_150k() {
        // §4.3: ~100,000 tps at 50 validators/block 250; ~150,000 tps at
        // 80 validators/block 500.
        let t50 = tput(50, 2, HwWorkload::smallbank(250));
        let t80 = tput(80, 2, HwWorkload::smallbank(500));
        assert!(
            (t50 - 100_000.0).abs() / 100_000.0 < 0.05,
            "50 validators {t50}"
        );
        assert!(
            (t80 - 150_000.0).abs() / 150_000.0 < 0.05,
            "80 validators {t80}"
        );
    }

    #[test]
    fn fig10_block200_8validators_latency() {
        // Paper: block validation improved to 9.7 ms.
        let config = HwModelConfig::new(Geometry::new(8, 2));
        let b = validate_block(&config, &HwWorkload::smallbank(200));
        let ms = as_millis(b.total);
        assert!((9.2..10.2).contains(&ms), "block 200 latency {ms} ms");
    }

    #[test]
    fn fig12a_short_circuit_2of3_vs_3of3() {
        // Paper: 19,800 tps with 2of3 vs 10,400 tps with 3of3 (8x2,
        // block 150).
        let mut w = HwWorkload::smallbank(150);
        w.endorsements_per_tx = 3;
        w.needed_endorsements = 2; // 2of3
        let t_2of3 = tput(8, 2, w);
        w.needed_endorsements = 3; // 3of3
        let t_3of3 = tput(8, 2, w);
        assert!((t_2of3 - 19_800.0).abs() / 19_800.0 < 0.06, "2of3 {t_2of3}");
        assert!((t_3of3 - 10_400.0).abs() / 10_400.0 < 0.06, "3of3 {t_3of3}");
    }

    #[test]
    fn fig12b_geometry_tradeoff() {
        // Paper: 8x2 beats 5x3 by ~52% on 2of3; 5x3 beats 8x2 by ~25% on
        // 3of3.
        let mut w = HwWorkload::smallbank(150);
        w.endorsements_per_tx = 3;
        w.needed_endorsements = 2;
        let r_2of3 = tput(8, 2, w) / tput(5, 3, w);
        assert!((1.4..1.65).contains(&r_2of3), "8x2/5x3 on 2of3 = {r_2of3}");
        w.needed_endorsements = 3;
        let r_3of3 = tput(5, 3, w) / tput(8, 2, w);
        assert!((1.15..1.4).contains(&r_3of3), "5x3/8x2 on 3of3 = {r_3of3}");
    }

    #[test]
    fn fig12c_database_work_is_hidden() {
        // Paper: BMac throughput unchanged as rw set grows (hidden by
        // tx_vscc latency).
        let base = tput(8, 2, HwWorkload::smallbank(150));
        let mut heavy = HwWorkload::smallbank(150);
        heavy.reads_per_tx = 8;
        heavy.writes_per_tx = 8;
        let t_heavy = tput(8, 2, heavy);
        assert!(
            (base - t_heavy).abs() / base < 0.02,
            "db work visible: {base} vs {t_heavy}"
        );
    }

    #[test]
    fn short_circuit_ablation_doubles_vscc_rounds() {
        let mut config = HwModelConfig::new(Geometry::new(8, 2));
        let mut w = HwWorkload::smallbank(150);
        w.endorsements_per_tx = 3;
        w.needed_endorsements = 2;
        let with_sc = validate_block(&config, &w);
        config.short_circuit = false;
        let without = validate_block(&config, &w);
        assert!(without.total > with_sc.total);
        assert_eq!(with_sc.verifications_per_tx, 3); // client + 2
        assert_eq!(without.verifications_per_tx, 4); // client + all 3
    }

    #[test]
    fn overlap_ablation_adds_ledger_commit() {
        let mut config = HwModelConfig::new(Geometry::new(8, 2));
        config.ledger_commit = 5 * MILLIS;
        let w = HwWorkload::smallbank(150);
        let overlapped = validate_block(&config, &w).throughput_tps(150, &config);
        config.overlap_commit = false;
        let serialized = validate_block(&config, &w).throughput_tps(150, &config);
        assert!(overlapped > serialized * 1.3);
    }

    #[test]
    fn fig13_drm_equals_smallbank_for_hardware() {
        // "throughput of BMac peer is very similar to smallbank because
        // its dominated by vscc latency".
        let s = tput(8, 2, HwWorkload::smallbank(150));
        let d = tput(8, 2, HwWorkload::drm(150));
        assert!((s - d).abs() / s < 0.02);
    }
}
