//! Shared harness for the figure/table reproduction binaries.
//!
//! Each `src/bin/figNN_*.rs` binary regenerates one table or figure from
//! the paper's evaluation section, printing the same rows/series the
//! paper reports plus a paper-vs-measured shape comparison. This module
//! provides the table formatting, the shape-check bookkeeping, and the
//! end-to-end block transmission model used by Figure 9b.

#![warn(missing_docs)]

use std::fmt::Display;

use fabric_sim::{NetLink, Samples, SimTime, MICROS, MILLIS};

/// Prints a section header.
pub fn heading(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints an aligned table.
pub fn table<H: Display, C: Display>(headers: &[H], rows: &[Vec<C>]) {
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    // Size columns over headers AND rows: a row wider than the header
    // extends `widths` (previously extra cells were clamped to the last
    // header column's width, silently misaligning — and an empty header
    // list would have panicked on `widths.len() - 1`).
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        if row.len() > widths.len() {
            widths.resize(row.len(), 0);
        }
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", line.trim_end());
    };
    fmt_row(&headers);
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    println!("{}", "-".repeat(total));
    for row in &rows {
        fmt_row(row);
    }
}

/// One paper-vs-measured shape check.
#[derive(Debug)]
pub struct ShapeCheck {
    /// What is being compared.
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured/modeled value.
    pub measured: f64,
    /// Acceptable relative deviation for a pass.
    pub tolerance: f64,
    /// When true, only a measured value *below* `paper × (1 - tolerance)`
    /// fails — for "at least X" claims like "improved by ~40x".
    pub one_sided: bool,
}

impl ShapeCheck {
    /// Creates a two-sided check.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64, tolerance: f64) -> Self {
        ShapeCheck {
            metric: metric.into(),
            paper,
            measured,
            tolerance,
            one_sided: false,
        }
    }

    /// Creates a one-sided check: passes when `measured` meets or beats
    /// `paper` (within tolerance below it).
    pub fn at_least(metric: impl Into<String>, paper: f64, measured: f64, tolerance: f64) -> Self {
        ShapeCheck {
            metric: metric.into(),
            paper,
            measured,
            tolerance,
            one_sided: true,
        }
    }

    /// Whether the measured value is within tolerance.
    pub fn passes(&self) -> bool {
        if self.paper == 0.0 {
            return self.measured == 0.0;
        }
        let rel = (self.measured - self.paper) / self.paper;
        if self.one_sided {
            rel >= -self.tolerance
        } else {
            rel.abs() <= self.tolerance
        }
    }
}

/// Prints a list of shape checks and returns how many failed.
pub fn report_checks(checks: &[ShapeCheck]) -> usize {
    heading("paper-vs-measured shape checks");
    let rows: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                c.metric.clone(),
                format!("{:.1}", c.paper),
                format!("{:.1}", c.measured),
                format!("{:+.1}%", (c.measured - c.paper) / c.paper * 100.0),
                if c.passes() {
                    "ok".into()
                } else {
                    "DEVIATES".into()
                },
            ]
        })
        .collect();
    table(&["metric", "paper", "measured", "delta", "status"], &rows);
    checks.iter().filter(|c| !c.passes()).count()
}

/// End-to-end block transmission model for Figure 9b.
///
/// Both paths share the same software base cost (orderer handoff, OS and
/// scheduling jitter); they differ in wire time (Gossip's TCP framing vs
/// BMac's stripped sections) and receive-side processing (full protobuf
/// unmarshal + TCP reassembly vs cut-through hardware parsing).
#[derive(Debug)]
pub struct TransmissionModel {
    /// Deterministic software base latency.
    pub base: SimTime,
    /// Mean of the exponential jitter component.
    pub jitter_mean: SimTime,
}

impl Default for TransmissionModel {
    fn default() -> Self {
        TransmissionModel {
            base: 9 * MILLIS,
            jitter_mean: 3 * MILLIS,
        }
    }
}

impl TransmissionModel {
    /// Samples an end-to-end Gossip transmission (ms) for a block of
    /// `block_bytes`, using `u ∈ (0,1]` as the jitter variate.
    pub fn gossip_ms(&self, block_bytes: usize, unmarshal: SimTime, u: f64) -> f64 {
        let mut link = NetLink::gigabit();
        let wire = fabric_node::gossip::gossip_transmit(&mut link, 0, block_bytes);
        let jitter = (-(u.max(1e-9)).ln() * self.jitter_mean as f64) as SimTime;
        fabric_sim::as_millis(self.base + jitter + wire + unmarshal)
    }

    /// Samples an end-to-end BMac transmission (ms) for the protocol's
    /// wire bytes.
    pub fn bmac_ms(&self, bmac_wire_bytes: usize, u: f64) -> f64 {
        let mut link = NetLink::gigabit();
        let wire = link.transmit(0, bmac_wire_bytes);
        let jitter = (-(u.max(1e-9)).ln() * self.jitter_mean as f64) as SimTime;
        // Hardware parse: cut-through, sub-200 µs for any block.
        fabric_sim::as_millis(self.base + jitter + wire + 150 * MICROS)
    }
}

/// Builds a CDF summary string (p50/p95/p99) from samples.
pub fn cdf_summary(samples: &mut Samples) -> String {
    format!(
        "p50={:.1}ms p95={:.1}ms p99={:.1}ms (n={})",
        samples.percentile(50.0),
        samples.percentile(95.0),
        samples.percentile(99.0),
        samples.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_handles_ragged_rows() {
        // Rows wider than the header (and an empty header list) used to
        // misalign or panic; both must render cleanly now.
        table(
            &["a", "b"],
            &[
                vec![
                    "1".to_string(),
                    "2".to_string(),
                    "extra-wide-cell".to_string(),
                ],
                vec!["x".to_string()],
            ],
        );
        table::<&str, String>(&[], &[vec!["only".to_string(), "cells".to_string()]]);
    }

    #[test]
    fn shape_check_passes_within_tolerance() {
        assert!(ShapeCheck::new("x", 100.0, 105.0, 0.10).passes());
        assert!(!ShapeCheck::new("x", 100.0, 125.0, 0.10).passes());
    }

    #[test]
    fn transmission_model_orders_paths() {
        let m = TransmissionModel::default();
        // Same jitter variate: BMac must beat Gossip for the same block.
        let gossip = m.gossip_ms(500_000, 6 * MILLIS, 0.5);
        let bmac = m.bmac_ms(120_000, 0.5);
        assert!(bmac < gossip);
    }
}
