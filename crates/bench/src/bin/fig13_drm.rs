//! Figure 13: drm benchmark results.

use bmac_bench::{heading, report_checks, table, ShapeCheck};
use bmac_hw::{validate_block, Geometry, HwModelConfig, HwWorkload};
use fabric_peer::{BlockProfile, SwValidatorModel};

fn main() {
    heading("Figure 13: drm vs smallbank throughput (tps)");
    let mut rows = Vec::new();
    let mut pairs = Vec::new();
    for &(block, par) in &[(100usize, 8usize), (150, 8), (250, 8), (250, 16)] {
        let sw_small = SwValidatorModel::new(par)
            .validate_block(&BlockProfile::smallbank(block))
            .throughput_tps(block);
        let sw_drm = SwValidatorModel::new(par)
            .validate_block(&BlockProfile::drm(block))
            .throughput_tps(block);
        let cfg = HwModelConfig::new(Geometry::new(par, 2));
        let hw_small =
            validate_block(&cfg, &HwWorkload::smallbank(block)).throughput_tps(block, &cfg);
        let hw_drm = validate_block(&cfg, &HwWorkload::drm(block)).throughput_tps(block, &cfg);
        pairs.push((sw_small, sw_drm, hw_small, hw_drm));
        rows.push(vec![
            format!("{block}"),
            format!("{par}"),
            format!("{:.0}", sw_small),
            format!("{:.0}", sw_drm),
            format!("{:.0}", hw_small),
            format!("{:.0}", hw_drm),
        ]);
    }
    table(
        &[
            "block",
            "vCPUs/validators",
            "sw smallbank",
            "sw drm",
            "bmac smallbank",
            "bmac drm",
        ],
        &rows,
    );

    let (sw_small, sw_drm, hw_small, hw_drm) = pairs[1]; // block 150, 8
    let checks = vec![
        ShapeCheck::new(
            "sw drm faster than smallbank (ratio > 1)",
            1.05,
            sw_drm / sw_small,
            0.1,
        ),
        ShapeCheck::new(
            "bmac drm == smallbank (vscc-bound; ratio 1.0)",
            1.0,
            hw_drm / hw_small,
            0.02,
        ),
    ];
    let failed = report_checks(&checks);
    std::process::exit(failed as i32);
}
