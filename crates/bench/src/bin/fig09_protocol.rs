//! Figure 9: BMac protocol performance.
//!
//! (a) Network bandwidth of Gossip vs BMac as endorsements per
//! transaction grow (functional measurement with real blocks through the
//! real sender), plus the protocol_processor rate table.
//! (b) CDF of end-to-end block transmission time.

use bmac_bench::{cdf_summary, heading, report_checks, table, ShapeCheck, TransmissionModel};
use bmac_protocol::BmacSender;
use fabric_node::chaincode::KvChaincode;
use fabric_node::gossip::gossip_wire_bytes;
use fabric_node::network::FabricNetworkBuilder;
use fabric_policy::Policy;
use fabric_sim::{Samples, MILLIS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds sample blocks with `ends` endorsements per tx and measures the
/// steady-state (identities already synced) wire costs.
fn measure(ends: usize, txs_per_block: usize, blocks: usize) -> (f64, f64, f64, f64) {
    let mut net = FabricNetworkBuilder::new()
        .orgs(ends as u8)
        .block_size(txs_per_block)
        .chaincode("kv", Policy::k_out_of_n_orgs(ends, ends))
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let mut sender = BmacSender::new();
    let mut gossip_total = 0usize;
    let mut bmac_total = 0usize;
    let mut block_bytes_total = 0usize;
    let mut produced = 0usize;
    let mut i = 0usize;
    while produced < blocks {
        let cut = net
            .submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
            .expect("submit");
        i += 1;
        for block in cut {
            let packets = sender.send_block(&block).expect("send");
            // Steady state: skip sync packets from the first block.
            let bmac: usize = packets
                .iter()
                .filter(|p| p.section != bmac_protocol::SectionType::IdentitySync)
                .map(|p| p.wire_bytes())
                .sum();
            let raw = block.marshal().len();
            if produced > 0 {
                gossip_total += gossip_wire_bytes(raw);
                bmac_total += bmac;
                block_bytes_total += raw;
            }
            produced += 1;
        }
    }
    let n = (produced - 1).max(1) as f64;
    let stats = sender.stats();
    (
        gossip_total as f64 / n,
        bmac_total as f64 / n,
        block_bytes_total as f64 / n,
        stats.identity_share(),
    )
}

fn main() {
    let txs = 20; // scaled-down blocks; per-tx ratios are size-invariant
    heading("Figure 9a: block bytes on the wire, Gossip vs BMac protocol");
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut identity_share_max: f64 = 0.0;
    for ends in 1..=4 {
        let (gossip, bmac, raw, ident_share) = measure(ends, txs, 3);
        let ratio = gossip / bmac;
        let savings = 100.0 * (1.0 - bmac / gossip);
        ratios.push(ratio);
        identity_share_max = identity_share_max.max(ident_share);
        rows.push(vec![
            format!("{ends}"),
            format!("{:.1} KB", gossip / 1024.0),
            format!("{:.1} KB", bmac / 1024.0),
            format!("{:.1}x", ratio),
            format!("{:.0}%", savings),
            format!("{:.0}%", ident_share * 100.0),
        ]);
        let _ = raw;
    }
    table(
        &[
            "ends/tx",
            "gossip wire",
            "bmac wire",
            "ratio",
            "savings",
            "identity share",
        ],
        &rows,
    );

    heading("protocol_processor rate (11 Gbps line rate)");
    let mut rows = Vec::new();
    for ends in 1..=4 {
        let (_, bmac, _, _) = measure(ends, txs, 2);
        let tx_bytes = bmac / txs as f64;
        let tps = 11e9 / 8.0 / tx_bytes;
        rows.push(vec![
            format!("{ends}"),
            format!("{:.0} B", tx_bytes),
            format!("{:.0} tps", tps),
        ]);
    }
    table(&["ends/tx", "tx section bytes", "max rate"], &rows);

    heading("Figure 9b: CDF of end-to-end block transmission (150-tx blocks)");
    let model = TransmissionModel::default();
    let (_, bmac_per_block, raw_per_block, _) = measure(2, txs, 3);
    // Scale the 20-tx sample to a 150-tx block.
    let scale = 150.0 / txs as f64;
    let gossip_block = (raw_per_block * scale) as usize;
    let bmac_block = (bmac_per_block * scale) as usize;
    let unmarshal = (150 * 36 + (gossip_block / 1024) * 3) as u64 * fabric_sim::MICROS;
    let mut rng = StdRng::seed_from_u64(99);
    let mut gossip_samples = Samples::new();
    let mut bmac_samples = Samples::new();
    for _ in 0..500 {
        let u: f64 = rng.gen();
        gossip_samples.add(model.gossip_ms(gossip_block, unmarshal, u));
        let u: f64 = rng.gen();
        bmac_samples.add(model.bmac_ms(bmac_block, u));
    }
    println!("gossip: {}", cdf_summary(&mut gossip_samples));
    println!("bmac:   {}", cdf_summary(&mut bmac_samples));
    let g95 = gossip_samples.percentile(95.0);
    let b95 = bmac_samples.percentile(95.0);
    println!("p95 reduction: {:.0}%", (1.0 - b95 / g95) * 100.0);
    let _ = MILLIS;

    // Our synthetic envelopes carry slightly less non-identity overhead
    // than real Fabric's, so identity stripping saves even more than the
    // paper measured: the claims are one-sided ("at least as small").
    let checks = vec![
        ShapeCheck::at_least("wire ratio at 1 end (paper 3.4x)", 3.4, ratios[0], 0.15),
        ShapeCheck::at_least("wire ratio at 4 ends (paper 5.3x)", 5.3, ratios[3], 0.15),
        ShapeCheck::new(
            "identity share of block (paper >=73%)",
            73.0,
            identity_share_max * 100.0,
            0.25,
        ),
        ShapeCheck::new(
            "p95 latency reduction (paper ~30%)",
            30.0,
            (1.0 - b95 / g95) * 100.0,
            0.5,
        ),
        ShapeCheck::new(
            "ratio grows with endorsements (ratio4/ratio1 > 1)",
            1.4,
            ratios[3] / ratios[0],
            0.4,
        ),
    ];
    let failed = report_checks(&checks);
    std::process::exit(failed as i32);
}
