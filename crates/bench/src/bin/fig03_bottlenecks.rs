//! Figure 3: validator peer bottleneck analysis.
//!
//! Reproduces (a) the profile of the most time-consuming operations and
//! (b) the coarse-grained breakdown of block validation, as block size
//! and vCPU count vary (paper §2.1.3).

use bmac_bench::{heading, report_checks, table, ShapeCheck};
use fabric_peer::{BlockProfile, SwValidatorModel};
use fabric_sim::as_millis;

fn main() {
    heading("Figure 3a: profile of validator operations (% of CPU time)");
    let mut rows = Vec::new();
    for &(block_size, vcpus) in &[
        (50usize, 4usize),
        (50, 8),
        (100, 8),
        (200, 4),
        (200, 8),
        (200, 16),
    ] {
        let model = SwValidatorModel::new(vcpus);
        let p = model.cpu_profile(&BlockProfile::smallbank(block_size));
        rows.push(vec![
            format!("{block_size}"),
            format!("{vcpus}"),
            format!("{:.1}%", p.share(p.ecdsa)),
            format!("{:.1}%", p.share(p.sha256)),
            format!("{:.1}%", p.share(p.unmarshal)),
            format!("{:.1}%", p.share(p.statedb)),
            format!("{:.1}%", p.share(p.ledger)),
            format!("{:.1}%", p.share(p.other)),
        ]);
    }
    table(
        &[
            "block",
            "vCPUs",
            "ecdsa_verify",
            "sha256",
            "unmarshal",
            "statedb",
            "ledger",
            "other",
        ],
        &rows,
    );

    heading("Figure 3b: block validation breakdown (ms)");
    let mut rows = Vec::new();
    for &(block_size, vcpus) in &[
        (50usize, 4usize),
        (100, 4),
        (200, 4),
        (50, 8),
        (100, 8),
        (200, 8),
        (200, 16),
    ] {
        let model = SwValidatorModel::new(vcpus);
        let b = model.validate_block(&BlockProfile::smallbank(block_size));
        rows.push(vec![
            format!("{block_size}"),
            format!("{vcpus}"),
            format!("{:.1}", as_millis(b.unmarshal)),
            format!("{:.1}", as_millis(b.block_verify + b.verify_vscc)),
            format!("{:.1}", as_millis(b.mvcc + b.statedb_commit)),
            format!("{:.1}", as_millis(b.ledger)),
            format!("{:.1}", as_millis(b.total_excl_ledger())),
        ]);
    }
    table(
        &[
            "block",
            "vCPUs",
            "unmarshal",
            "verify_vscc",
            "statedb/mvcc",
            "ledger",
            "total(excl ledger)",
        ],
        &rows,
    );

    // Shape checks against §2.1.3's observations (block 200, 8 vCPUs).
    let model = SwValidatorModel::new(8);
    let profile = model.cpu_profile(&BlockProfile::smallbank(200));
    let b = model.validate_block(&BlockProfile::smallbank(200));
    let statedb_share = as_millis(b.mvcc + b.statedb_commit) / as_millis(b.total_excl_ledger());
    let checks = vec![
        ShapeCheck::new(
            "ecdsa_verify share (%, ~40)",
            40.0,
            profile.share(profile.ecdsa),
            0.25,
        ),
        ShapeCheck::new(
            "sha256 share (%, ~10)",
            10.0,
            profile.share(profile.sha256),
            0.35,
        ),
        ShapeCheck::new(
            "unmarshal share (%, ~10)",
            10.0,
            profile.share(profile.unmarshal),
            0.5,
        ),
        ShapeCheck::new(
            "statedb share of validation (%, 10-20)",
            15.0,
            statedb_share * 100.0,
            0.5,
        ),
    ];
    let failed = report_checks(&checks);
    std::process::exit(failed as i32);
}
