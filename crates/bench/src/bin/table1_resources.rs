//! Table 1: FPGA resource utilization of BMac architectures.

use bmac_bench::{heading, report_checks, table, ShapeCheck};
use bmac_hw::resources::{max_validators_within, utilization, Geometry, PAPER_TABLE1};

fn main() {
    heading("Table 1: hardware utilization of BMac architectures (Alveo U250)");
    let mut rows = Vec::new();
    for (g, _, _, _) in PAPER_TABLE1 {
        let u = utilization(g);
        rows.push(vec![
            g.to_string(),
            format!("{:.1}%", u.lut_pct),
            format!("{:.1}%", u.ff_pct),
            format!("{:.1}%", u.bram_pct),
            format!("{:.1}%", u.gt_pct),
            format!("{:.1}%", u.pcie_pct),
        ]);
    }
    table(
        &["arch", "LUT/LUTRAM", "FF", "BRAM/URAM", "GT", "PCIe"],
        &rows,
    );

    heading("extrapolation beyond the paper (same model)");
    let mut rows = Vec::new();
    for v in [24usize, 32, 50] {
        let u = utilization(Geometry::new(v, 2));
        rows.push(vec![
            format!("{v}x2"),
            format!("{:.1}%", u.lut_pct),
            format!("{:.1}%", u.ff_pct),
        ]);
    }
    table(&["arch", "LUT", "FF"], &rows);
    println!(
        "\nmax tx_validators within 90% LUT budget (E=2): {}",
        max_validators_within(90.0, 2)
    );

    let mut checks = Vec::new();
    for (g, lut, ff, _) in PAPER_TABLE1 {
        let u = utilization(g);
        checks.push(ShapeCheck::new(format!("{g} LUT%"), lut, u.lut_pct, 0.05));
        checks.push(ShapeCheck::new(format!("{g} FF%"), ff, u.ff_pct, 0.08));
    }
    let failed = report_checks(&checks);
    std::process::exit(failed as i32);
}
