//! Figure 10: breakdown of block validation, sw_validator vs BMac peer.

use bmac_bench::{heading, report_checks, table, ShapeCheck};
use bmac_hw::{validate_block, Geometry, HwModelConfig, HwWorkload};
use fabric_peer::{BlockProfile, SwValidatorModel};
use fabric_sim::as_millis;

fn main() {
    heading("Figure 10: block validation breakdown, sw_validator vs BMac (ms)");
    let mut rows = Vec::new();
    let mut sw200_8 = None;
    let mut hw200_8 = None;
    for &(block, par) in &[(100usize, 4usize), (100, 8), (200, 4), (200, 8)] {
        let sw = SwValidatorModel::new(par).validate_block(&BlockProfile::smallbank(block));
        let hw_cfg = HwModelConfig::new(Geometry::new(par, 2));
        let hw = validate_block(&hw_cfg, &HwWorkload::smallbank(block));
        if (block, par) == (200, 8) {
            sw200_8 = Some(sw);
            hw200_8 = Some(hw);
        }
        rows.push(vec![
            format!("{block}"),
            format!("{par}"),
            format!("{:.1}", as_millis(sw.unmarshal)),
            format!("{:.1}", as_millis(sw.total_excl_ledger() - sw.unmarshal)),
            format!("{:.1}", as_millis(sw.total_excl_ledger())),
            format!("{:.3}", as_millis(hw.protocol)),
            format!("{:.1}", as_millis(hw.total)),
            format!(
                "{:.1}x",
                as_millis(sw.total_excl_ledger()) / as_millis(hw.total)
            ),
        ]);
    }
    table(
        &[
            "block",
            "vCPUs/validators",
            "sw unmarshal",
            "sw validation",
            "sw total",
            "hw protocol",
            "hw total",
            "speedup",
        ],
        &rows,
    );

    let sw = sw200_8.expect("row computed");
    let hw = hw200_8.expect("row computed");
    let unmarshal_speedup = as_millis(sw.unmarshal) / as_millis(hw.protocol);
    let validation_speedup =
        as_millis(sw.total_excl_ledger() - sw.unmarshal) / as_millis(hw.total - hw.protocol);
    let overall = as_millis(sw.total_excl_ledger()) / as_millis(hw.total);
    println!();
    println!("block 200 / 8 vCPUs-validators:");
    println!("  unmarshal -> protocol_processor: {unmarshal_speedup:.0}x (paper ~40x, <0.2 ms)");
    println!("  block validation: {validation_speedup:.1}x (paper ~3.7x: 35.9 -> 9.7 ms)");
    println!("  overall: {overall:.1}x (paper 4.4x)");

    let checks = vec![
        // One-sided: the paper claims "less than 0.2 ms" / "~40x".
        ShapeCheck::at_least(
            "hw protocol under 0.2ms (margin)",
            1.0,
            0.2 / as_millis(hw.protocol).max(1e-6),
            0.0,
        ),
        ShapeCheck::new(
            "sw unmarshal ms (paper ~8)",
            8.0,
            as_millis(sw.unmarshal),
            0.3,
        ),
        ShapeCheck::new(
            "sw block validation ms (paper 35.9)",
            35.9,
            as_millis(sw.total_excl_ledger() - sw.unmarshal),
            0.2,
        ),
        ShapeCheck::new(
            "hw block validation ms (paper 9.7)",
            9.7,
            as_millis(hw.total),
            0.1,
        ),
        ShapeCheck::new(
            "validation speedup (paper 3.7x)",
            3.7,
            validation_speedup,
            0.2,
        ),
        ShapeCheck::new("overall speedup (paper 4.4x)", 4.4, overall, 0.2),
        ShapeCheck::at_least(
            "unmarshal speedup (paper ~40x)",
            40.0,
            unmarshal_speedup,
            0.1,
        ),
    ];
    let failed = report_checks(&checks);
    std::process::exit(failed as i32);
}
