//! Figure 11: smallbank commit throughput across block sizes and
//! vCPUs/tx_validators, plus the §4.3 simulator projection
//! (`--projection`).

use bmac_bench::{heading, report_checks, table, ShapeCheck};
use bmac_hw::{validate_block, Geometry, HwModelConfig, HwWorkload};
use fabric_peer::{BlockProfile, SwValidatorModel};
use fabric_sim::as_millis;

fn sw_tps(block: usize, vcpus: usize) -> f64 {
    SwValidatorModel::new(vcpus)
        .validate_block(&BlockProfile::smallbank(block))
        .throughput_tps(block)
}

fn hw_tps(block: usize, validators: usize) -> f64 {
    let cfg = HwModelConfig::new(Geometry::new(validators, 2));
    validate_block(&cfg, &HwWorkload::smallbank(block)).throughput_tps(block, &cfg)
}

fn main() {
    let projection = std::env::args().any(|a| a == "--projection");

    heading("Figure 11: smallbank commit throughput (tps)");
    let blocks = [50usize, 100, 150, 200, 250];
    let parallel = [4usize, 8, 16];
    let mut rows = Vec::new();
    for &b in &blocks {
        let mut row = vec![format!("{b}")];
        for &p in &parallel {
            row.push(format!("{:.0}", sw_tps(b, p)));
        }
        for &p in &parallel {
            row.push(format!("{:.0}", hw_tps(b, p)));
        }
        rows.push(row);
    }
    table(
        &[
            "block",
            "sw 4vCPU",
            "sw 8vCPU",
            "sw 16vCPU",
            "bmac 4tv",
            "bmac 8tv",
            "bmac 16tv",
        ],
        &rows,
    );

    let sw4 = sw_tps(250, 4);
    let sw16 = sw_tps(250, 16);
    let hw4 = hw_tps(250, 4);
    let hw16 = hw_tps(250, 16);
    let hw32 = hw_tps(250, 32);
    println!();
    println!(
        "BMac 4 validators vs sw 16 vCPUs: {:.1}x (paper ~2x)",
        hw4 / sw16
    );
    println!(
        "peak (32 validators, block 250): {:.0} tps (paper 68,900)",
        hw32
    );
    println!(
        "speedup vs 16-vCPU software: {:.1}x (paper ~12x)",
        hw32 / sw16
    );

    if projection {
        heading("simulator projection beyond 16 tx_validators (paper §4.3)");
        let mut rows = Vec::new();
        for &(v, b) in &[(32usize, 250usize), (50, 250), (64, 500), (80, 500)] {
            let cfg = HwModelConfig::new(Geometry::new(v, 2));
            let r = validate_block(&cfg, &HwWorkload::smallbank(b));
            rows.push(vec![
                format!("{v}"),
                format!("{b}"),
                format!("{:.0}", r.throughput_tps(b, &cfg)),
                format!("{:.2}", as_millis(r.total)),
            ]);
        }
        table(
            &["tx_validators", "block", "tps", "block latency (ms)"],
            &rows,
        );
    }

    let checks = vec![
        ShapeCheck::new(
            "sw tps, block 250, 4 vCPUs (paper 3,900)",
            3_900.0,
            sw4,
            0.15,
        ),
        ShapeCheck::new(
            "sw tps, block 250, 16 vCPUs (paper 5,600)",
            5_600.0,
            sw16,
            0.15,
        ),
        ShapeCheck::new("sw scaling 4->16 vCPUs (paper 1.5x)", 1.5, sw16 / sw4, 0.15),
        ShapeCheck::new(
            "bmac tps, block 250, 4 validators (paper 10,700)",
            10_700.0,
            hw4,
            0.05,
        ),
        ShapeCheck::new(
            "bmac tps, block 250, 16 validators (paper 38,400)",
            38_400.0,
            hw16,
            0.08,
        ),
        ShapeCheck::new("bmac scaling 4->16 (paper 3.6x)", 3.6, hw16 / hw4, 0.1),
        ShapeCheck::new("bmac4 / sw16 (paper ~2x)", 2.0, hw4 / sw16, 0.1),
        ShapeCheck::new("peak tps (paper 68,900)", 68_900.0, hw32, 0.05),
        ShapeCheck::new("peak speedup vs sw (paper ~12x)", 12.0, hw32 / sw16, 0.12),
        ShapeCheck::new(
            "projection 50 validators (paper ~100k)",
            100_000.0,
            hw_tps(250, 50),
            0.05,
        ),
        ShapeCheck::new(
            "projection 80 validators block 500 (paper ~150k)",
            150_000.0,
            hw_tps(500, 80),
            0.05,
        ),
    ];
    let failed = report_checks(&checks);
    std::process::exit(failed as i32);
}
