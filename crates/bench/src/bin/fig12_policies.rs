//! Figure 12: adaptability — endorsement policies, engine geometry, and
//! database request scaling (`--rw`).

use bmac_bench::{heading, report_checks, table, ShapeCheck};
use bmac_hw::{validate_block, Geometry, HwModelConfig, HwWorkload};
use fabric_peer::{BlockProfile, SwValidatorModel};
use fabric_policy::parse;

const BLOCK: usize = 150;

fn sw_policy_tps(ends: usize, extra_visits: usize) -> f64 {
    let mut p = BlockProfile::smallbank(BLOCK);
    p.endorsements_per_tx = ends;
    p.needed_endorsements = ends;
    p.policy_extra_visits = extra_visits;
    SwValidatorModel::new(8)
        .validate_block(&p)
        .throughput_tps(BLOCK)
}

fn hw_policy_tps(v: usize, e: usize, ends: usize, needed: usize) -> f64 {
    let mut w = HwWorkload::smallbank(BLOCK);
    w.endorsements_per_tx = ends;
    w.needed_endorsements = needed;
    let cfg = HwModelConfig::new(Geometry::new(v, e));
    validate_block(&cfg, &w).throughput_tps(BLOCK, &cfg)
}

fn main() {
    let rw_mode = std::env::args().any(|a| a == "--rw");

    heading("Figure 12a: throughput vs endorsement policy (block 150, 8 vCPUs/validators)");
    // (label, endorsements carried, needed under short-circuit)
    let policies = [
        ("1of1", 1usize, 1usize),
        ("1of2", 2, 1),
        ("2of2", 2, 2),
        ("2of3", 3, 2),
        ("3of3", 3, 3),
        ("2of4", 4, 2),
        ("3of4", 4, 3),
        ("4of4", 4, 4),
    ];
    let mut rows = Vec::new();
    for (label, ends, needed) in policies {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", sw_policy_tps(ends, 0)),
            format!("{:.0}", hw_policy_tps(8, 2, ends, needed)),
        ]);
    }
    table(&["policy", "sw_validator tps", "bmac 8x2 tps"], &rows);

    heading("Figure 12b: engine geometry 8x2 vs 5x3, and the complex policy");
    let mut rows = Vec::new();
    for (label, ends, needed) in [("2of3", 3usize, 2usize), ("3of3", 3, 3), ("3of4", 4, 3)] {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", hw_policy_tps(8, 2, ends, needed)),
            format!("{:.0}", hw_policy_tps(5, 3, ends, needed)),
        ]);
    }
    table(&["policy", "bmac 8x2", "bmac 5x3"], &rows);
    // The complex OR-of-ANDs policy over 4 orgs: min 2 endorsements.
    let complex =
        parse("(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)")
            .expect("paper policy parses");
    let complex_visits = 11; // extra sequential sub-expression visits vs native k-of-n
    let sw_complex = sw_policy_tps(4, complex_visits);
    let hw_complex = hw_policy_tps(8, 2, 4, complex.min_satisfying());
    println!();
    println!("complex policy \"(Org1 & Org2) | ... | (Org3 & Org4)\":");
    println!("  sw_validator: {sw_complex:.0} tps (paper ~2,700: sequential sub-expressions)");
    println!("  bmac 8x2:     {hw_complex:.0} tps (paper ~19,800: combinational circuit)");

    let ratio_2of3 = hw_policy_tps(8, 2, 3, 2) / hw_policy_tps(5, 3, 3, 2);
    let ratio_3of3 = hw_policy_tps(5, 3, 3, 3) / hw_policy_tps(8, 2, 3, 3);

    let mut checks = vec![
        ShapeCheck::new(
            "sw 3of3 vs 2of2 drop (paper 13.5%)",
            13.5,
            (1.0 - sw_policy_tps(3, 0) / sw_policy_tps(2, 0)) * 100.0,
            0.45,
        ),
        ShapeCheck::new(
            "sw 2of3 == 3of3 (verifies all; ratio 1.0)",
            1.0,
            sw_policy_tps(3, 0) / sw_policy_tps(3, 0),
            0.01,
        ),
        ShapeCheck::new(
            "bmac 2of3 tps (paper 19,800)",
            19_800.0,
            hw_policy_tps(8, 2, 3, 2),
            0.06,
        ),
        ShapeCheck::new(
            "bmac 3of3 tps (paper 10,400)",
            10_400.0,
            hw_policy_tps(8, 2, 3, 3),
            0.06,
        ),
        ShapeCheck::new("8x2 over 5x3 on 2of3 (paper +52%)", 1.52, ratio_2of3, 0.08),
        ShapeCheck::new("5x3 over 8x2 on 3of3 (paper +25%)", 1.25, ratio_3of3, 0.08),
        ShapeCheck::new(
            "sw complex policy tps (paper ~2,700)",
            2_700.0,
            sw_complex,
            0.15,
        ),
        ShapeCheck::new(
            "bmac complex == 2of4 (paper 19,800)",
            19_800.0,
            hw_complex,
            0.06,
        ),
    ];

    if rw_mode {
        heading("Figure 12c: split payment, varying database requests (rw)");
        let mut rows = Vec::new();
        let mut hw_series = Vec::new();
        let mut sw_series = Vec::new();
        for rw in [2usize, 3, 4, 5] {
            let mut p = BlockProfile::smallbank(BLOCK);
            p.reads_per_tx = rw;
            p.writes_per_tx = rw;
            let sw = SwValidatorModel::new(8)
                .validate_block(&p)
                .throughput_tps(BLOCK);
            let mut w = HwWorkload::smallbank(BLOCK);
            w.reads_per_tx = rw;
            w.writes_per_tx = rw;
            let cfg = HwModelConfig::new(Geometry::new(8, 2));
            let hw = validate_block(&cfg, &w).throughput_tps(BLOCK, &cfg);
            hw_series.push(hw);
            sw_series.push(sw);
            rows.push(vec![
                format!("{rw}r{rw}w"),
                format!("{:.0}", sw),
                format!("{:.0}", hw),
            ]);
        }
        table(&["rw per tx", "sw_validator tps", "bmac 8x2 tps"], &rows);
        checks.push(ShapeCheck::new(
            "bmac flat under rw growth (ratio first/last)",
            1.0,
            hw_series[0] / hw_series[3],
            0.03,
        ));
        checks.push(ShapeCheck::new(
            "sw drops under rw growth (paper ~16% total)",
            16.0,
            (1.0 - sw_series[3] / sw_series[0]) * 100.0,
            0.45,
        ));
    }

    let failed = report_checks(&checks);
    std::process::exit(failed as i32);
}
