//! Ablation studies for the design choices DESIGN.md calls out:
//! short-circuit evaluation, early abort, hw/sw commit overlap,
//! identity removal, engine geometry, and the §5 tiered database.

use bmac_bench::{heading, report_checks, table, ShapeCheck};
use bmac_hw::tiered_db::TieredStateDb;
use bmac_hw::{validate_block, Geometry, HwModelConfig, HwWorkload};
use bmac_protocol::BmacSender;
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_policy::Policy;
use fabric_statedb::{Height, StateDb, WriteBatch};

const BLOCK: usize = 150;

fn tps(config: &HwModelConfig, w: &HwWorkload) -> f64 {
    validate_block(config, w).throughput_tps(w.num_txs, config)
}

fn main() {
    // --- Ablation 1: short-circuit evaluation (paper §3.3).
    heading("ablation: short-circuit endorsement evaluation (2of3, 8x2)");
    let mut w = HwWorkload::smallbank(BLOCK);
    w.endorsements_per_tx = 3;
    w.needed_endorsements = 2;
    let mut cfg = HwModelConfig::new(Geometry::new(8, 2));
    let with_sc = tps(&cfg, &w);
    cfg.short_circuit = false;
    let without_sc = tps(&cfg, &w);
    table(
        &["config", "tps"],
        &[
            vec!["short-circuit on".to_string(), format!("{with_sc:.0}")],
            vec!["short-circuit off".to_string(), format!("{without_sc:.0}")],
        ],
    );

    // --- Ablation 2: hw/sw overlap of validation and ledger commit.
    heading("ablation: overlap of hw validation with sw ledger commit");
    let w = HwWorkload::smallbank(BLOCK);
    let mut cfg = HwModelConfig::new(Geometry::new(8, 2));
    let overlapped = tps(&cfg, &w);
    cfg.overlap_commit = false;
    let serialized = tps(&cfg, &w);
    table(
        &["config", "tps"],
        &[
            vec!["overlapped (paper)".to_string(), format!("{overlapped:.0}")],
            vec!["serialized".to_string(), format!("{serialized:.0}")],
        ],
    );

    // --- Ablation 3: identity removal in the protocol.
    heading("ablation: identity removal (protocol wire bytes, 10-tx block)");
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(10)
        .chaincode("kv", Policy::k_out_of_n_orgs(2, 2))
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let mut blocks = Vec::new();
    let mut i = 0;
    while blocks.is_empty() {
        blocks = net
            .submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
            .unwrap();
        i += 1;
    }
    let block = blocks.remove(0);
    let mut sender = BmacSender::new();
    sender.send_block(&block).unwrap();
    let stats = sender.stats();
    let without_removal = stats.bmac_wire_bytes + stats.identity_bytes_removed;
    table(
        &["config", "wire bytes"],
        &[
            vec![
                "identities removed (paper)".to_string(),
                format!("{}", stats.bmac_wire_bytes),
            ],
            vec!["identities kept".to_string(), format!("{without_removal}")],
        ],
    );

    // --- Ablation 4: engine geometry sweep at equal engine budget.
    heading("ablation: geometry sweep (~16 vscc engines, 3-endorsement workload)");
    let mut rows = Vec::new();
    let mut w3 = HwWorkload::smallbank(BLOCK);
    w3.endorsements_per_tx = 3;
    w3.needed_endorsements = 3;
    for (v, e) in [(16usize, 1usize), (8, 2), (5, 3), (4, 4)] {
        let cfg = HwModelConfig::new(Geometry::new(v, e));
        rows.push(vec![
            format!("{v}x{e}"),
            format!("{}", v * e),
            format!("{:.0}", tps(&cfg, &w3)),
        ]);
    }
    table(&["geometry", "vscc engines", "tps (3of3)"], &rows);

    // --- Ablation 5: tiered database hit rates under skewed access.
    heading("ablation: tiered in-hardware cache over host database (\u{a7}5)");
    let host = StateDb::new();
    let mut batch = WriteBatch::new();
    for k in 0..4096 {
        batch.put(format!("key{k}"), vec![1]);
    }
    host.apply(&batch, Height::new(1, 0));
    let mut rows = Vec::new();
    for cache in [64usize, 512, 4096] {
        let mut tiered = TieredStateDb::new(cache, host.clone());
        // Zipf-ish skew: 90% of accesses to 10% of keys.
        for round in 0..4096usize {
            let key = if round % 10 < 9 {
                format!("key{}", round % 410)
            } else {
                format!("key{}", (round * 7) % 4096)
            };
            tiered.get(&key);
        }
        let s = tiered.stats();
        rows.push(vec![
            format!("{cache}"),
            format!("{:.1}%", s.hit_rate() * 100.0),
            format!("{}", s.evictions),
        ]);
    }
    table(&["cache entries", "hit rate", "evictions"], &rows);

    let checks = vec![
        ShapeCheck::new(
            "short-circuit gain on 2of3 (paper 19,800/10,400)",
            19_800.0 / 10_400.0,
            with_sc / without_sc,
            0.1,
        ),
        ShapeCheck::at_least("overlap gain (>1.2x)", 1.2, overlapped / serialized, 0.0),
        ShapeCheck::at_least(
            "identity removal saves >=3x wire",
            3.0,
            without_removal as f64 / stats.bmac_wire_bytes as f64,
            0.0,
        ),
    ];
    let failed = report_checks(&checks);
    std::process::exit(failed as i32);
}
