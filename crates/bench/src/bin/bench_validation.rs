//! Validation hot-path benchmark: before/after numbers for the
//! verify/vscc overhaul, emitted as `BENCH_validation.json`.
//!
//! Measures, on real blocks with real cryptography:
//!
//! * single-thread `verify_prehashed`: the preserved seed path
//!   (bit-serial Shamir + Fermat inversions) versus the optimized path
//!   (fixed-base comb + split wNAF + binary/batched inversion +
//!   projective x-check), plus the batched-inversion variant and
//!   signing;
//! * the **field-backend A/B**: the Solinas P-256 base field against
//!   the Montgomery oracle — field-multiply latency in-process (both
//!   backends are always compiled) and the full `verify_prehashed`
//!   latency via a re-exec of this binary with `FABRIC_FIELD_BACKEND`
//!   flipped (the curve tables bind to one backend per process);
//! * the functional pipeline on a 100-tx smallbank-shaped block:
//!   per-stage µs, blocks/s, sigs/s, for 1/2/4 vscc workers (wall-clock
//!   scaling depends on host vCPUs, recorded alongside), with the
//!   paper-calibrated model's makespan scaling as the
//!   hardware-independent reference;
//! * the signature cache: underlying verifications and *per-pass* hit
//!   rates (stats deltas — the cumulative rate blends the cold and warm
//!   passes to an uninformative 0.5) when an identical block is
//!   re-verified.
//!
//! Run via `scripts/bench.sh` (or `cargo run --release --bin
//! bench_validation`); the JSON lands in the repo root so the perf
//! trajectory is tracked from PR to PR.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use bmac_bench::{heading, table};
use fabric_crypto::bigint::U256;
use fabric_crypto::ecdsa::{batch_s_inverses, SigningKey};
use fabric_crypto::fp256::Fp256;
use fabric_crypto::identity::{Msp, Role};
use fabric_crypto::mont::MontgomeryDomain;
use fabric_crypto::sha256::sha256;
use fabric_crypto::Signature;
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_peer::{BlockProfile, SwValidatorModel};
use fabric_policy::parse;

const BLOCK_TXS: usize = 100;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    // Child mode for the cross-backend A/B: measure the single-thread
    // numbers under whatever FABRIC_FIELD_BACKEND the parent set, print
    // one JSON line on stdout, exit.
    if std::env::args().any(|a| a == "--single-thread-json") {
        let m = measure_single_thread(true);
        println!("{}", m.to_json().finish_inline());
        return;
    }

    let backend = fabric_crypto::curve::p256().fp.backend();
    let scalar_backend = fabric_crypto::curve::p256().fn_.backend();
    let mut json = JsonObject::new();
    json.raw("generated_by", "\"bench_validation\"");
    json.raw("field_backend", &format!("\"{}\"", backend.name()));
    json.raw("scalar_backend", &format!("\"{}\"", scalar_backend.name()));
    json.number(
        "host_cpus",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as f64,
    );

    // One single-thread measurement feeds both the seed-vs-fast report
    // and the backend A/B: the two sections must quote the same
    // verify_fast_us for this process.
    let single = measure_single_thread(false);
    json.object("single_thread", report_single_thread(&single));

    json.object("field_backend_ab", bench_field_backends(&single));

    json.object("scalar_backend_ab", bench_scalar_backends(&single));

    let (pipeline, cache) = bench_pipeline();
    json.object("pipeline", pipeline);
    json.object("signature_cache", cache);

    json.object("block_stream", bench_block_stream());

    json.object("durability", bench_durability());

    json.object("statedb", bench_statedb());

    json.object("cluster", bench_cluster());

    json.object("admission", bench_admission());

    json.object("lock_contention", bench_lock_contention());

    let path = out_path();
    std::fs::write(&path, json.finish()).expect("write BENCH_validation.json");
    println!("\nwrote {}", path.display());
}

/// Raw single-thread measurements, independent of reporting.
struct SingleThread {
    seed_us: f64,
    fast_us: f64,
    batched_us: f64,
    sign_us: f64,
}

impl SingleThread {
    fn to_json(&self) -> JsonObject {
        let mut o = JsonObject::new();
        o.raw(
            "field_backend",
            &format!("\"{}\"", fabric_crypto::curve::p256().fp.backend().name()),
        );
        o.raw(
            "scalar_backend",
            &format!("\"{}\"", fabric_crypto::curve::p256().fn_.backend().name()),
        );
        o.number("verify_seed_us", self.seed_us);
        o.number("verify_fast_us", self.fast_us);
        o.number("verify_fast_batched_us", self.batched_us);
        o.number("sign_us", self.sign_us);
        o.number("verify_speedup", self.seed_us / self.fast_us);
        o.number("verify_speedup_batched", self.seed_us / self.batched_us);
        o
    }
}

/// Times the seed/fast/batched verify paths and signing on one thread.
/// `quiet` suppresses the human-readable table (child-process mode).
fn measure_single_thread(quiet: bool) -> SingleThread {
    if !quiet {
        heading("single-thread ECDSA: seed path vs optimized path");
    }
    let key = SigningKey::from_seed(b"bench_validation");
    let vk = key.verifying_key();

    // A block's worth of distinct signatures: every path cycles the same
    // workload so cache effects (the 590 KiB comb table, wNAF tables)
    // are charged equally.
    let digests: Vec<[u8; 32]> = (0..100u32).map(|i| sha256(&i.to_be_bytes())).collect();
    let sigs: Vec<Signature> = digests.iter().map(|d| key.sign_prehashed(d)).collect();

    // Warm up both paths (fixed-base table, per-key table).
    vk.verify_prehashed(&digests[0], &sigs[0]).unwrap();
    vk.verify_prehashed_shamir(&digests[0], &sigs[0]).unwrap();

    let mut cursor = 0usize;
    let next = |cursor: &mut usize| {
        *cursor = (*cursor + 1) % sigs.len();
        *cursor
    };
    let seed_us = time_us(200, || {
        let i = next(&mut cursor);
        vk.verify_prehashed_shamir(&digests[i], &sigs[i]).unwrap()
    });
    let fast_us = time_us(200, || {
        let i = next(&mut cursor);
        vk.verify_prehashed(&digests[i], &sigs[i]).unwrap()
    });
    let sign_us = time_us(200, || {
        let i = next(&mut cursor);
        let _ = key.sign_prehashed(&digests[i]);
    });

    // Batched: amortize s-inverses over a block of signatures.
    let t0 = Instant::now();
    let reps = 5;
    for _ in 0..reps {
        let sinvs = batch_s_inverses(&sigs);
        for ((sig, digest), sinv) in sigs.iter().zip(&digests).zip(&sinvs) {
            vk.verify_prehashed_with_sinv(digest, sig, sinv).unwrap();
        }
    }
    let batched_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * sigs.len()) as f64;

    SingleThread {
        seed_us,
        fast_us,
        batched_us,
        sign_us,
    }
}

/// Seed-vs-fast single-thread report over an existing measurement.
fn report_single_thread(m: &SingleThread) -> JsonObject {
    let speedup = m.seed_us / m.fast_us;
    table(
        &["path", "µs/op", "speedup vs seed"],
        &[
            vec![
                "verify (seed: shamir+fermat)".to_string(),
                format!("{:.1}", m.seed_us),
                "1.00x".into(),
            ],
            vec![
                "verify (fixed-base + wNAF)".to_string(),
                format!("{:.1}", m.fast_us),
                format!("{speedup:.2}x"),
            ],
            vec![
                "verify (batched s⁻¹)".to_string(),
                format!("{:.1}", m.batched_us),
                format!("{:.2}x", m.seed_us / m.batched_us),
            ],
            vec![
                "sign (fixed-base comb)".to_string(),
                format!("{:.1}", m.sign_us),
                String::new(),
            ],
        ],
    );
    assert!(
        speedup >= 2.0,
        "single-thread verify speedup regressed below 2x: {speedup:.2}x"
    );
    m.to_json()
}

/// The Solinas-vs-Montgomery base-field A/B, reusing this process's
/// single-thread measurement for the active side.
///
/// Field-multiply latency runs in-process (both implementations are
/// always compiled); the end-to-end `verify_prehashed` comparison
/// re-execs this binary with `FABRIC_FIELD_BACKEND` flipped, because
/// the curve's precomputed tables bind the process to one backend. The
/// child echoes which backend it actually ran, and a mismatch discards
/// the measurement instead of mislabeling it.
fn bench_field_backends(active_measurement: &SingleThread) -> JsonObject {
    heading("P-256 base field: Solinas vs Montgomery");
    let active = fabric_crypto::curve::p256().fp.backend();

    // In-process field-multiply chain (serial dependency, like the
    // point-arithmetic hot loops).
    let f = Fp256;
    let mont = MontgomeryDomain::new(Fp256::P);
    let a =
        U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296").unwrap();
    let b =
        U256::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5").unwrap();
    const N: u32 = 1_000_000;
    let mut x = a;
    let sol_ns = time_us(N, || x = f.mul(&x, &b)) * 1e3;
    let am = mont.to_mont(&a);
    let bm = mont.to_mont(&b);
    let mut y = am;
    let mon_ns = time_us(N, || y = mont.mul(&y, &bm)) * 1e3;
    std::hint::black_box((x, y));

    // Full-verify A/B: re-exec with the other backend forced.
    let other = match active {
        fabric_crypto::FieldBackend::Solinas => fabric_crypto::FieldBackend::Montgomery,
        fabric_crypto::FieldBackend::Montgomery => fabric_crypto::FieldBackend::Solinas,
    };
    let active_verify_us = active_measurement.fast_us;
    let other_verify_us = std::env::current_exe()
        .ok()
        .and_then(|exe| {
            std::process::Command::new(exe)
                .arg("--single-thread-json")
                .env("FABRIC_FIELD_BACKEND", other.name())
                .output()
                .ok()
        })
        .filter(|out| out.status.success())
        .and_then(|out| {
            let text = String::from_utf8_lossy(&out.stdout).into_owned();
            // The child echoes its backend; trust the echo, not the
            // request, so a build that pins backends differently can
            // never mislabel the baseline column.
            let reported = format!("\"field_backend\": \"{}\"", other.name());
            if !text.contains(&reported) {
                eprintln!(
                    "warning: A/B child did not run the {other} backend (output: {})",
                    text.trim()
                );
                return None;
            }
            json_number(&text, "verify_fast_us")
        });

    let mut o = JsonObject::new();
    o.raw("active", &format!("\"{}\"", active.name()));
    o.raw("baseline", &format!("\"{}\"", other.name()));
    o.number("field_mul_solinas_ns", sol_ns);
    o.number("field_mul_montgomery_ns", mon_ns);
    o.number("field_mul_speedup", mon_ns / sol_ns);
    o.number("verify_fast_us_active", active_verify_us);
    let mut rows = vec![
        vec![
            "field mul (solinas)".to_string(),
            format!("{sol_ns:.1} ns"),
            format!("{:.2}x vs montgomery", mon_ns / sol_ns),
        ],
        vec![
            "field mul (montgomery)".to_string(),
            format!("{mon_ns:.1} ns"),
            "1.00x".into(),
        ],
        vec![
            format!("verify ({})", active.name()),
            format!("{active_verify_us:.1} µs"),
            String::new(),
        ],
    ];
    match other_verify_us {
        Some(other_us) => {
            o.number(&format!("verify_fast_us_{}", other.name()), other_us);
            // Report "speedup of the active backend over the baseline":
            // with Solinas active this is the headline Solinas gain.
            o.number(
                "verify_speedup_active_vs_baseline",
                other_us / active_verify_us,
            );
            rows.push(vec![
                format!("verify ({})", other.name()),
                format!("{other_us:.1} µs"),
                format!("{:.2}x slower-path baseline", other_us / active_verify_us),
            ]);
        }
        None => {
            // Re-exec can fail in exotic sandboxes; record that rather
            // than fabricating a number.
            o.raw("verify_fast_us_baseline_unavailable", "true");
            eprintln!("warning: could not re-exec for the {other} baseline measurement");
        }
    }
    table(&["measurement", "latency", "ratio"], &rows);
    o
}

/// The Barrett-vs-Montgomery scalar-field (mod `n`) A/B.
///
/// The operation measured in-process is the one the ECDSA scalar flow
/// actually performs through the representation-neutral API: a
/// **canonical-in, canonical-out** modular multiply (`to_repr` → `mul`
/// → `from_repr`). Under Barrett the conversions are no-ops and the
/// cost is one Barrett reduction; under Montgomery each crossing is a
/// REDC multiply, which is exactly the overhead the Barrett domain
/// removes from `bits2int`/`u1`/`u2`/`s⁻¹` per signature. The
/// steady-state *resident* Montgomery multiply (operands already in
/// Montgomery form) is reported alongside for honesty — REDC wins that
/// shape, but the ECDSA flow never stays resident long enough to
/// benefit. The end-to-end `verify_prehashed` comparison re-execs this
/// binary with `FABRIC_SCALAR_BACKEND` flipped, as for the base field.
fn bench_scalar_backends(active_measurement: &SingleThread) -> JsonObject {
    use fabric_crypto::fq256::Fq256;
    use fabric_crypto::scalar::{ScalarBackend, ScalarDomain};

    heading("P-256 scalar field (mod n): Barrett vs Montgomery");
    let active = fabric_crypto::curve::p256().fn_.backend();

    let bar = ScalarDomain::p256_order(ScalarBackend::Barrett);
    let mon = ScalarDomain::p256_order(ScalarBackend::Montgomery);
    let n = Fq256::N;
    let a = U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
        .unwrap()
        .rem(&n);
    let b = U256::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
        .unwrap()
        .rem(&n);
    const N_ITERS: u32 = 1_000_000;
    // Canonical-in/canonical-out chain, serial dependency (the shape of
    // u1/u2 derivation on values arriving from wire bytes).
    let mut x = a;
    let bar_ns = time_us(N_ITERS, || {
        x = bar.from_repr(&bar.mul(&bar.to_repr(&x), &bar.to_repr(&b)));
    }) * 1e3;
    let mut y = a;
    let mon_ns = time_us(N_ITERS, || {
        y = mon.from_repr(&mon.mul(&mon.to_repr(&y), &mon.to_repr(&b)));
    }) * 1e3;
    assert_eq!(x, y, "backends must agree on the multiply chain");
    // Steady-state resident multiply (both operands stay in Montgomery
    // form): REDC's best case, reported as context.
    let bm = mon.to_repr(&b);
    let mut z = mon.to_repr(&a);
    let mon_resident_ns = time_us(N_ITERS, || z = mon.mul(&z, &bm)) * 1e3;
    std::hint::black_box((x, y, z));
    // Per-signature s⁻¹ (single, not batched): Euclid either way, but
    // the Montgomery path brackets it with two domain crossings.
    const INV_ITERS: u32 = 20_000;
    let mut acc = a;
    let bar_inv_ns = time_us(INV_ITERS, || {
        acc = bar.from_repr(&bar.inv(&bar.to_repr(&acc)).unwrap());
        acc.0[0] |= 1; // keep the chain nonzero
    }) * 1e3;
    let mut acc2 = a;
    let mon_inv_ns = time_us(INV_ITERS, || {
        acc2 = mon.from_repr(&mon.inv(&mon.to_repr(&acc2)).unwrap());
        acc2.0[0] |= 1;
    }) * 1e3;
    std::hint::black_box((acc, acc2));

    let mul_speedup = mon_ns / bar_ns;
    assert!(
        mul_speedup >= 1.2,
        "Barrett canonical mod-n mul regressed below 1.2x vs Montgomery: {mul_speedup:.2}x"
    );

    // Full-verify A/B: the scalar stage is well under 1% of a verify,
    // so comparing this process's earlier measurement against one fresh
    // child would drown the effect in scheduling noise. Re-exec *both*
    // backends back-to-back under the same conditions instead; the
    // parent's number is only the fallback if the children fail.
    let other = match active {
        ScalarBackend::Barrett => ScalarBackend::Montgomery,
        ScalarBackend::Montgomery => ScalarBackend::Barrett,
    };
    let reexec_verify_us = |backend: ScalarBackend| {
        std::env::current_exe()
            .ok()
            .and_then(|exe| {
                std::process::Command::new(exe)
                    .arg("--single-thread-json")
                    .env("FABRIC_SCALAR_BACKEND", backend.name())
                    .output()
                    .ok()
            })
            .filter(|out| out.status.success())
            .and_then(|out| {
                let text = String::from_utf8_lossy(&out.stdout).into_owned();
                let reported = format!("\"scalar_backend\": \"{}\"", backend.name());
                if !text.contains(&reported) {
                    eprintln!(
                        "warning: A/B child did not run the {backend} scalar backend \
                         (output: {})",
                        text.trim()
                    );
                    return None;
                }
                json_number(&text, "verify_fast_us")
            })
    };
    // Three alternating samples per backend, keeping the per-backend
    // minimum: host scheduling noise only ever adds latency, so the min
    // is the robust estimator for a sub-1% effect on a busy CI box.
    let mut active_samples: Vec<f64> = Vec::new();
    let mut other_samples: Vec<f64> = Vec::new();
    for _ in 0..3 {
        active_samples.extend(reexec_verify_us(active));
        other_samples.extend(reexec_verify_us(other));
    }
    let min_of = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let active_verify_us = if active_samples.is_empty() {
        active_measurement.fast_us
    } else {
        min_of(&active_samples)
    };
    let other_verify_us = (!other_samples.is_empty()).then(|| min_of(&other_samples));

    let mut o = JsonObject::new();
    o.raw("active", &format!("\"{}\"", active.name()));
    o.raw("baseline", &format!("\"{}\"", other.name()));
    o.number("scalar_mul_canonical_barrett_ns", bar_ns);
    o.number("scalar_mul_canonical_montgomery_ns", mon_ns);
    o.number("scalar_mul_speedup", mul_speedup);
    o.number("scalar_mul_resident_montgomery_ns", mon_resident_ns);
    o.number("scalar_inv_barrett_ns", bar_inv_ns);
    o.number("scalar_inv_montgomery_ns", mon_inv_ns);
    o.number("scalar_inv_speedup", mon_inv_ns / bar_inv_ns);
    o.number("verify_fast_us_active", active_verify_us);
    let mut rows = vec![
        vec![
            "mod-n mul, canonical io (barrett)".to_string(),
            format!("{bar_ns:.1} ns"),
            format!("{mul_speedup:.2}x vs montgomery"),
        ],
        vec![
            "mod-n mul, canonical io (montgomery)".to_string(),
            format!("{mon_ns:.1} ns"),
            "1.00x".into(),
        ],
        vec![
            "mod-n mul, resident (montgomery)".to_string(),
            format!("{mon_resident_ns:.1} ns"),
            "steady-state REDC, no crossings".into(),
        ],
        vec![
            "s⁻¹, canonical io (barrett)".to_string(),
            format!("{bar_inv_ns:.0} ns"),
            format!("{:.2}x vs montgomery", mon_inv_ns / bar_inv_ns),
        ],
        vec![
            "s⁻¹, canonical io (montgomery)".to_string(),
            format!("{mon_inv_ns:.0} ns"),
            "1.00x".into(),
        ],
        vec![
            format!("verify ({})", active.name()),
            format!("{active_verify_us:.1} µs"),
            String::new(),
        ],
    ];
    match other_verify_us {
        Some(other_us) => {
            o.number(&format!("verify_fast_us_{}", other.name()), other_us);
            o.number(
                "verify_speedup_active_vs_baseline",
                other_us / active_verify_us,
            );
            rows.push(vec![
                format!("verify ({})", other.name()),
                format!("{other_us:.1} µs"),
                format!("{:.2}x baseline ratio", other_us / active_verify_us),
            ]);
        }
        None => {
            o.raw("verify_fast_us_baseline_unavailable", "true");
            eprintln!("warning: could not re-exec for the {other} scalar baseline measurement");
        }
    }
    table(&["measurement", "latency", "ratio"], &rows);
    println!(
        "(the scalar stage is a few µs of a ~{active_verify_us:.0} µs verify, so the \
         end-to-end ratio is expected to sit near 1.0x; the canonical-io mul/inv rows are \
         the per-operation win)"
    );
    o
}

/// Functional-pipeline benchmark on a 100-tx block.
fn bench_pipeline() -> (JsonObject, JsonObject) {
    heading(&format!(
        "functional pipeline: {BLOCK_TXS}-tx smallbank block"
    ));
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(BLOCK_TXS)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while blocks.len() < 2 {
        blocks.extend(
            net.submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
                .unwrap(),
        );
        i += 1;
    }

    let make_validator = |workers: usize| {
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        let mut policies = HashMap::new();
        policies.insert("kv".to_string(), parse("2-outof-2 orgs").unwrap());
        ValidatorPipeline::new(msp, policies, workers)
    };

    // Warm the global crypto tables once so per-worker runs are steady.
    make_validator(1)
        .verify_block_signatures(&blocks[0])
        .unwrap();

    let model = |workers: usize| {
        SwValidatorModel::new(workers).validate_block(&BlockProfile::smallbank(BLOCK_TXS))
    };
    let model1 = model(1);

    let mut rows = Vec::new();
    let mut worker_objs = Vec::new();
    let mut vscc1_us = 0.0f64;
    for &workers in &WORKER_COUNTS {
        let v = make_validator(workers);
        let result = v.validate_and_commit(&blocks[0]).expect("validation");
        assert_eq!(result.valid_count(), BLOCK_TXS);
        let sigs = v.verifications() as f64; // orderer + client + endorsements
        let t = result.timings;
        let vscc_us = t.verify_vscc_us as f64;
        if workers == 1 {
            vscc1_us = vscc_us;
        }
        let total_us = t.total_excl_ledger_us() as f64;
        let blocks_per_s = 1e6 / total_us;
        let sigs_per_s = sigs * 1e6 / vscc_us.max(1.0);
        let measured_speedup = vscc1_us / vscc_us.max(1.0);
        let mb = model(workers);
        let model_speedup = model1.verify_vscc as f64 / mb.verify_vscc as f64;
        rows.push(vec![
            format!("{workers}"),
            format!("{:.0}", t.unmarshal_us as f64),
            format!("{vscc_us:.0}"),
            format!("{:.0}", t.mvcc_us as f64),
            format!("{:.0}", t.statedb_commit_us as f64),
            format!("{blocks_per_s:.1}"),
            format!("{sigs_per_s:.0}"),
            format!("{measured_speedup:.2}x"),
            format!("{model_speedup:.2}x"),
        ]);
        let mut o = JsonObject::new();
        o.number("workers", workers as f64);
        o.number("unmarshal_us", t.unmarshal_us as f64);
        o.number("block_verify_us", t.block_verify_us as f64);
        o.number("verify_vscc_us", vscc_us);
        o.number("mvcc_us", t.mvcc_us as f64);
        o.number("statedb_commit_us", t.statedb_commit_us as f64);
        o.number("total_excl_ledger_us", total_us);
        o.number("blocks_per_s", blocks_per_s);
        o.number("sigs_per_s", sigs_per_s);
        o.number("measured_vscc_speedup_vs_1", measured_speedup);
        o.number("model_vscc_speedup_vs_1", model_speedup);
        worker_objs.push(o);
    }
    table(
        &[
            "workers",
            "unmarshal_us",
            "vscc_us",
            "mvcc_us",
            "commit_us",
            "blocks/s",
            "sigs/s",
            "meas.scaling",
            "model.scaling",
        ],
        &rows,
    );
    println!(
        "(measured scaling is bounded by host vCPUs = {}; the calibrated model shows the \
         work-stealing pool's makespan scaling)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut pipeline = JsonObject::new();
    pipeline.number("block_txs", BLOCK_TXS as f64);
    pipeline.array("workers", worker_objs);

    // Cache: re-verifying identical signatures must not touch ECDSA.
    // Hit rates are reported *per pass* from stats deltas: the
    // cumulative rate over a cold pass plus a warm replay is always
    // ~0.5 by construction and says nothing about cache quality.
    heading("signature cache: identical block re-verified");
    let v = make_validator(2);
    let s0 = v.sig_cache_stats();
    v.verify_block_signatures(&blocks[1]).unwrap();
    let cold = v.verifications();
    let s1 = v.sig_cache_stats();
    v.verify_block_signatures(&blocks[1]).unwrap();
    let warm = v.verifications() - cold;
    let s2 = v.sig_cache_stats();
    let pass_rate = |before: &fabric_peer::SigCacheStats, after: &fabric_peer::SigCacheStats| {
        let hits = after.hits - before.hits;
        let probes = hits + (after.misses - before.misses);
        if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        }
    };
    let first_rate = pass_rate(&s0, &s1);
    let second_rate = pass_rate(&s1, &s2);
    table(
        &["pass", "underlying verifications", "hit rate"],
        &[
            vec![
                "first (cold)".to_string(),
                format!("{cold}"),
                format!("{:.3}", first_rate),
            ],
            vec![
                "second (cached)".to_string(),
                format!("{warm}"),
                format!("{:.3}", second_rate),
            ],
        ],
    );
    println!(
        "cache: {} hits / {} misses cumulative (blended rate {:.3})",
        s2.hits,
        s2.misses,
        s2.hit_rate()
    );
    assert_eq!(
        warm, 0,
        "identical block must be fully served by the signature cache"
    );
    assert_eq!(
        second_rate, 1.0,
        "warm replay of an identical block must be all hits"
    );

    let mut cache = JsonObject::new();
    cache.number("first_pass_verifications", cold as f64);
    cache.number("second_pass_verifications", warm as f64);
    cache.number("first_pass_hit_rate", first_rate);
    cache.number("second_pass_hit_rate", second_rate);
    cache.number("hits", s2.hits as f64);
    cache.number("misses", s2.misses as f64);
    cache.number("cumulative_hit_rate", s2.hit_rate());
    (pipeline, cache)
}

/// Streaming validator benchmark: an ordered multi-block stream is fed
/// through the full network-attached path (BMac sender → wire packets →
/// receiver reassembly → `StreamValidator`), measured against a serial
/// `validate_and_commit` replay of the same blocks on a fresh validator,
/// with the calibrated model's makespan as the host-independent view
/// (wall-clock overlap on a 1-vCPU CI container is bounded by the host,
/// not the architecture).
fn bench_block_stream() -> JsonObject {
    use bmac_protocol::{BmacReceiver, BmacSender};
    use fabric_peer::{StreamConfig, StreamValidator};
    use workload::{StreamScenario, Workload};

    heading("block stream: pipelined multi-block validation");
    const LANES: usize = 2;

    let mut out = JsonObject::new();
    let mut rows = Vec::new();
    let mut scenario_objs = Vec::new();
    for (name, scenario) in [
        (
            // Hot keys: 4 accounts, every block colliding on the same
            // checking/savings entries.
            "smallbank",
            StreamScenario {
                workload: Workload::Smallbank,
                accounts: 4,
                block_size: 25,
                num_blocks: 6,
                stale_commit_pct: 0,
                corrupt_sigs: 0,
                duplicate_txs: 0,
                seed: 11,
            },
        ),
        (
            // Wide keyspace: every purchase mints a fresh license key.
            "drm",
            StreamScenario {
                workload: Workload::Drm,
                accounts: 8,
                block_size: 25,
                num_blocks: 4,
                stale_commit_pct: 0,
                corrupt_sigs: 0,
                duplicate_txs: 0,
                seed: 13,
            },
        ),
    ] {
        let generated = scenario.generate();

        // Serial reference: one block at a time on a fresh validator.
        let serial =
            fabric_peer::ValidatorPipeline::new(scenario.validator_msp(), scenario.policies(), 2);
        let t0 = Instant::now();
        let serial_results: Vec<_> = generated
            .blocks
            .iter()
            .map(|b| serial.validate_and_commit(b).expect("serial validation"))
            .collect();
        let serial_wall_us = t0.elapsed().as_micros() as u64;

        // Streamed: the same blocks through sender → receiver → stream.
        let pipeline = std::sync::Arc::new(fabric_peer::ValidatorPipeline::new(
            scenario.validator_msp(),
            scenario.policies(),
            2,
        ));
        let stream = StreamValidator::new(
            std::sync::Arc::clone(&pipeline),
            StreamConfig {
                verify_lanes: LANES,
                max_in_flight: 2 * LANES,
            },
        );
        let mut sender = BmacSender::new();
        let mut receiver = BmacReceiver::new();
        for block in &generated.blocks {
            for packet in sender.send_block(block).expect("packetize") {
                for received in receiver
                    .ingest(&packet.encode().expect("encode"))
                    .expect("reassembly")
                {
                    stream.push(received.block).expect("stream push");
                }
            }
        }
        let report = stream.finish().expect("stream completes");

        // The stream must not change validation results (the paper's
        // §4.1 equivalence bar; the full randomized harness lives in
        // tests/tests/stream_equivalence.rs).
        assert_eq!(serial_results.len(), report.results.len());
        for (s, t) in serial_results.iter().zip(&report.results) {
            assert_eq!(s.commit_hash, t.commit_hash, "block {}", s.block_num);
            assert_eq!(s.codes, t.codes, "block {}", s.block_num);
        }

        // Calibrated model: measure the workload's real profile and
        // compare stream vs serial makespans. The profile describes the
        // workload blocks only, so the model stream is the workload
        // blocks only (the smaller setup blocks would otherwise be
        // priced at the workload-block profile).
        let profile = workload::measure_profile(&generated.blocks[generated.setup_blocks..]);
        let model = SwValidatorModel::new(2);
        let n = generated.blocks.len() - generated.setup_blocks;
        let model_serial_us = fabric_sim::as_micros(model.serial_stream_cost(&profile, n));
        let model_stream_us = fabric_sim::as_micros(model.stream_makespan(&profile, n, LANES));
        let model_overlap = model_serial_us / model_stream_us.max(1.0);
        assert!(
            model_stream_us < model_serial_us,
            "{name}: model stream makespan {model_stream_us}µs must beat serial \
             {model_serial_us}µs for ≥2 in-flight blocks"
        );

        let s = &report.stats;
        rows.push(vec![
            name.to_string(),
            format!("{}", s.blocks),
            format!("{}", s.txs),
            format!("{:.0}", serial_wall_us as f64),
            format!("{:.0}", s.makespan_us as f64),
            format!("{:.2}x", s.overlap_factor),
            format!("{:.1}", report.blocks_per_sec()),
            format!("{:.0}", report.tps()),
            format!("{:.2}", s.verify_occupancy),
            format!("{:.2}", s.commit_occupancy),
            format!("{:.2}x", model_overlap),
        ]);

        let mut o = JsonObject::new();
        o.raw("scenario", &format!("\"{name}\""));
        o.number("blocks", s.blocks as f64);
        o.number("txs", s.txs as f64);
        o.number("verify_lanes", s.verify_lanes as f64);
        o.number("serial_wall_us", serial_wall_us as f64);
        o.number("serial_sum_us", s.serial_sum_us as f64);
        o.number("stream_makespan_us", s.makespan_us as f64);
        o.number("blocks_per_s", report.blocks_per_sec());
        o.number("tps", report.tps());
        o.number("verify_busy_us", s.verify_busy_us as f64);
        o.number("commit_busy_us", s.commit_busy_us as f64);
        o.number("verify_occupancy", s.verify_occupancy);
        o.number("commit_occupancy", s.commit_occupancy);
        o.number("measured_overlap_factor", s.overlap_factor);
        o.number("max_in_flight", s.max_in_flight_observed as f64);
        o.number("model_blocks", n as f64);
        o.number("model_serial_us", model_serial_us);
        o.number("model_stream_makespan_us", model_stream_us);
        o.number("model_overlap_factor", model_overlap);
        scenario_objs.push(o);
    }
    table(
        &[
            "scenario",
            "blocks",
            "txs",
            "serial_us",
            "stream_us",
            "overlap",
            "blocks/s",
            "tps",
            "vrfy.occ",
            "cmt.occ",
            "model.overlap",
        ],
        &rows,
    );
    println!(
        "(measured overlap on this host is bounded by {} vCPU(s); model.overlap is the \
         calibrated {LANES}-lane pipeline vs the serial chain)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    out.number("verify_lanes", LANES as f64);
    out.array("scenarios", scenario_objs);
    out
}

/// Durable-storage benchmark: the *storage half* of block commit —
/// per-valid-tx state applies (journaled write-ahead) plus the ledger
/// append into the segmented block store — replayed from a
/// pre-validated smallbank stream, at group-commit sizes 1/8/64,
/// against the in-memory baseline. Validation (ECDSA) is run once
/// up front and deliberately excluded from the timed region: it would
/// drown the storage cost three orders of magnitude deep. Each durable
/// leg ends with a flush + reopen, asserting the recovered tip and
/// state match the in-memory baseline bit-for-bit (the §4.1
/// equivalence bar extended to restart), and reporting the recovery
/// wall time.
fn bench_durability() -> JsonObject {
    use fabric_peer::ValidatorPipeline;
    use fabric_statedb::{Height, StateDb, WriteBatch};
    use fabric_store::{FabricStore, StoreConfig};
    use workload::{StreamScenario, Workload};

    heading("durability: group-commit storage throughput vs in-memory");
    let scenario = StreamScenario {
        workload: Workload::Smallbank,
        accounts: 4,
        block_size: 10,
        num_blocks: 24,
        stale_commit_pct: 0,
        corrupt_sigs: 0,
        duplicate_txs: 0,
        seed: 17,
    };
    let generated = scenario.generate();

    // Validate once (in-memory) to obtain the commit inputs: flags, tx
    // ids, modified keys and per-valid-tx write batches.
    let oracle = ValidatorPipeline::new(scenario.validator_msp(), scenario.policies(), 2);
    struct CommitInput {
        block: fabric_protos::messages::Block,
        codes: Vec<fabric_peer::TxValidationCode>,
        tx_ids: Vec<String>,
        modified: Vec<Vec<String>>,
        batches: Vec<(Height, WriteBatch)>,
    }
    let mut inputs = Vec::new();
    let mut total_bytes = 0usize;
    for block in &generated.blocks {
        let result = oracle
            .validate_and_commit(block)
            .expect("oracle validation");
        let decoded = fabric_protos::txflow::decode_block(&block.marshal()).expect("decodes");
        let mut batches = Vec::new();
        let mut modified = Vec::new();
        for (i, tx) in decoded.txs.iter().enumerate() {
            modified.push(tx.writes.iter().map(|(k, _)| k.clone()).collect());
            if result.codes[i].is_valid() {
                let mut batch = WriteBatch::new();
                for (k, v) in &tx.writes {
                    batch.put(k.clone(), v.clone());
                }
                batches.push((Height::new(decoded.number, i as u64), batch));
            }
        }
        total_bytes += block.marshal().len();
        inputs.push(CommitInput {
            block: block.clone(),
            codes: result.codes,
            tx_ids: result.tx_ids,
            modified,
            batches,
        });
    }
    let blocks = inputs.len();
    let txs: usize = inputs.iter().map(|i| i.codes.len()).sum();

    // One storage replay: state applies then ledger append, per block.
    let replay = |state: &StateDb, ledger: &fabric_ledger::Ledger| {
        for input in &inputs {
            for (height, batch) in &input.batches {
                state.apply(batch, *height);
            }
            ledger
                .commit_block(
                    input.block.clone(),
                    &input.tx_ids,
                    input.codes.clone(),
                    &input.modified,
                )
                .expect("storage replay commit");
        }
    };

    // In-memory baseline.
    let t0 = Instant::now();
    let mem_state = StateDb::new();
    let mem_ledger = fabric_ledger::Ledger::new();
    replay(&mem_state, &mem_ledger);
    let inmem_us = t0.elapsed().as_micros() as u64;

    let mut out = JsonObject::new();
    out.number("blocks", blocks as f64);
    out.number("txs", txs as f64);
    out.number("block_bytes_total", total_bytes as f64);
    out.number("inmemory_commit_us", inmem_us as f64);
    out.number(
        "inmemory_blocks_per_s",
        blocks as f64 * 1e6 / (inmem_us.max(1)) as f64,
    );

    let mut rows = vec![vec![
        "in-memory (baseline)".to_string(),
        format!("{:.0} µs", inmem_us as f64),
        format!("{:.0}", blocks as f64 * 1e6 / inmem_us.max(1) as f64),
        String::new(),
        String::new(),
    ]];
    let mut group_objs = Vec::new();
    for group in [1usize, 8, 64] {
        let dir = std::env::temp_dir().join(format!(
            "bmac-bench-durability-{}-g{group}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StoreConfig {
            group_commit: group,
            segment_max_bytes: 1024 * 1024,
            ..StoreConfig::default()
        };
        let store = FabricStore::open(&dir, config).expect("open durable store");
        let t0 = Instant::now();
        replay(&store.state_db(), &store.ledger());
        store.flush().expect("final flush");
        let commit_us = t0.elapsed().as_micros() as u64;
        drop(store);

        // Reopen: recovery must reproduce the in-memory run exactly.
        let t0 = Instant::now();
        let store = FabricStore::open(&dir, config).expect("reopen durable store");
        let recover_us = t0.elapsed().as_micros() as u64;
        assert_eq!(
            store.ledger().height(),
            mem_ledger.height(),
            "durable run must recover every flushed block"
        );
        assert_eq!(
            store.ledger().tip_commit_hash(),
            mem_ledger.tip_commit_hash(),
            "recovered commit-hash chain == in-memory chain"
        );
        assert_eq!(
            store.state_db().snapshot(),
            mem_state.snapshot(),
            "recovered state == in-memory state"
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);

        let blocks_per_s = blocks as f64 * 1e6 / commit_us.max(1) as f64;
        let overhead = commit_us as f64 / inmem_us.max(1) as f64;
        rows.push(vec![
            format!("durable, group-commit {group}"),
            format!("{:.0} µs", commit_us as f64),
            format!("{blocks_per_s:.0}"),
            format!("{overhead:.2}x"),
            format!("{:.0} µs", recover_us as f64),
        ]);
        let mut o = JsonObject::new();
        o.number("group_commit", group as f64);
        o.number("commit_us", commit_us as f64);
        o.number("blocks_per_s", blocks_per_s);
        o.number("us_per_block", commit_us as f64 / blocks as f64);
        o.number("overhead_vs_inmemory", overhead);
        o.number("recover_us", recover_us as f64);
        group_objs.push(o);
    }
    table(
        &[
            "storage path",
            "commit wall",
            "blocks/s",
            "vs in-mem",
            "recover",
        ],
        &rows,
    );
    println!(
        "(storage half only — state applies + ledger append on pre-validated blocks; \
         fsync-free group commit, so the deltas are write()-amortization, and every \
         durable leg is gated on recovered state == in-memory state)"
    );
    out.array("group_commit_sweep", group_objs);
    out
}

/// State-database A/B: the hash-sharded MVCC backend vs the legacy
/// single-map store, on the loads ROADMAP item 3 cares about — a
/// million-key preload, smallbank-shaped Zipf(1.0) commit traffic over
/// that population, and read latency percentiles while a committer
/// thread keeps applying contended blocks. Every leg is also an
/// equivalence check: both backends must land bit-identical state
/// hashes after the deterministic phases.
fn bench_statedb() -> JsonObject {
    use fabric_statedb::{StateBackend, StateDb};
    use std::sync::atomic::{AtomicBool, Ordering};
    use workload::{StatePreload, ZipfCommitLoad};

    heading("statedb: sharded MVCC vs legacy single-map");
    let preload = StatePreload {
        keys: 1_000_000,
        value_len: 8,
        batch_size: 10_000,
    };
    let preload_blocks = preload.keys.div_ceil(preload.batch_size);
    let zipf = ZipfCommitLoad {
        population: preload.keys,
        first_block: preload_blocks,
        ..ZipfCommitLoad::default()
    };
    let zipf_blocks = zipf.blocks();
    let zipf_txs = (zipf.blocks as usize * zipf.txs_per_block) as f64;

    // Read sample: the keys the contended traffic just wrote (Zipf-hot)
    // interleaved with uniformly-strided cold keys, so the percentiles
    // cover both the hot set and the long tail.
    let mut read_keys: Vec<String> = Vec::new();
    for (i, (batch, _)) in zipf_blocks.iter().flatten().enumerate() {
        for (k, _) in batch.iter() {
            read_keys.push(k.to_string());
            read_keys.push(StatePreload::key(
                (i as u64).wrapping_mul(104_729) % preload.keys,
            ));
        }
    }

    // Background commit traffic for the read-latency phase (applied
    // repeatedly until the reader finishes; heights may repeat, which
    // both backends accept).
    let commit_load = ZipfCommitLoad {
        population: preload.keys,
        first_block: preload_blocks + zipf.blocks,
        blocks: 200,
        seed: 0xFEED_BEEF,
        ..ZipfCommitLoad::default()
    };
    let commit_blocks = commit_load.blocks();

    let mut out = JsonObject::new();
    out.number("preload_keys", preload.keys as f64);
    out.number("zipf_exponent", zipf.exponent);
    out.number("zipf_txs", zipf_txs);

    let mut rows = Vec::new();
    let mut backend_objs = Vec::new();
    let mut hashes = Vec::new();
    for backend in [StateBackend::Sharded, StateBackend::Legacy] {
        let db = StateDb::with_backend(backend);

        let t0 = Instant::now();
        preload.load(&db);
        let preload_us = t0.elapsed().as_micros() as u64;
        assert_eq!(db.len() as u64, preload.keys, "preload population");

        let t0 = Instant::now();
        for block in &zipf_blocks {
            db.apply_block(block);
        }
        let zipf_us = t0.elapsed().as_micros() as u64;

        // The deterministic phases must agree across backends; hash now,
        // before the racy read-load phase perturbs the state.
        hashes.push((backend, db.state_hash()));

        // Read percentiles under commit load: one committer thread
        // cycles contended blocks while this thread samples point reads.
        let stop = AtomicBool::new(false);
        let mut lat_ns: Vec<u64> = Vec::with_capacity(read_keys.len());
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    for block in &commit_blocks {
                        db.apply_block(block);
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                }
            });
            for key in &read_keys {
                let t0 = Instant::now();
                let hit = db.get(key);
                lat_ns.push(t0.elapsed().as_nanos() as u64);
                assert!(hit.is_some(), "preloaded key {key} must stay readable");
            }
            stop.store(true, Ordering::Relaxed);
        });
        lat_ns.sort_unstable();
        let pct = |p: f64| lat_ns[((lat_ns.len() - 1) as f64 * p) as usize] as f64 / 1_000.0;
        let (p50, p99) = (pct(0.50), pct(0.99));

        let preload_keys_per_s = preload.keys as f64 * 1e6 / preload_us.max(1) as f64;
        let zipf_txs_per_s = zipf_txs * 1e6 / zipf_us.max(1) as f64;
        rows.push(vec![
            backend.to_string(),
            format!("{:.2} s", preload_us as f64 / 1e6),
            format!("{preload_keys_per_s:.0}"),
            format!("{zipf_txs_per_s:.0}"),
            format!("{p50:.2} µs"),
            format!("{p99:.2} µs"),
        ]);
        let mut o = JsonObject::new();
        o.raw("backend", &format!("\"{backend}\""));
        o.number("preload_us", preload_us as f64);
        o.number("preload_keys_per_s", preload_keys_per_s);
        o.number("zipf_commit_us", zipf_us as f64);
        o.number("zipf_txs_per_s", zipf_txs_per_s);
        o.number("read_p50_us", p50);
        o.number("read_p99_us", p99);
        o.number("reads_sampled", lat_ns.len() as f64);
        backend_objs.push(o);
    }
    table(
        &[
            "backend",
            "preload wall",
            "preload keys/s",
            "zipf txs/s",
            "read p50",
            "read p99",
        ],
        &rows,
    );
    println!(
        "(1M-key preload + Zipf(1.0) smallbank commits; read percentiles sampled \
         against a live committer thread, so they price reader/committer \
         interference — and both backends are gated on identical state hashes \
         after the deterministic phases)"
    );

    let (b0, h0) = hashes[0];
    let (b1, h1) = hashes[1];
    assert_eq!(
        h0, h1,
        "state hash diverged: {b0}={h0:#018x} vs {b1}={h1:#018x}"
    );
    out.raw("backends_state_hash_equal", "true");
    out.array("backends", backend_objs);
    out
}

/// Closed-loop cluster numbers: the `fabric-cluster` harness (orderer →
/// adaptive retransmission → lossy links → Go-Back-N/BMac → durable
/// streaming validators) run at 0%/1%/5% per-link loss, plus a
/// kill-and-rejoin leg. Latencies are *simulated* milliseconds (the
/// harness runs on `fabric-sim` virtual time, so they are
/// host-independent); retransmission counts and the rejoin catch-up
/// time are the robustness-cost metrics. Every leg is gated on
/// bit-identical convergence with the serial-replay oracle and on the
/// supervisor staying inside its retransmission-storm cap — a bench run
/// doubles as a correctness check.
fn bench_cluster() -> JsonObject {
    use fabric_cluster::{
        run_with_oracle, ClusterConfig, FaultPlan, KillPoint, LinkFaults, SerialOracle,
    };
    use fabric_sim::{as_millis, MILLIS};
    use workload::{StreamScenario, Workload};

    heading("cluster: closed-loop fault harness (3 peers, sim time)");
    let scenario = StreamScenario {
        workload: Workload::Smallbank,
        accounts: 4,
        block_size: 4,
        num_blocks: 8,
        stale_commit_pct: 25,
        corrupt_sigs: 1,
        duplicate_txs: 1,
        seed: 31,
    };
    // One serial-replay oracle (the ECDSA-heavy part) shared by every leg.
    let oracle = SerialOracle::build(&scenario);

    let tmp = |tag: &str| {
        std::env::temp_dir().join(format!("bmac-bench-cluster-{tag}-{}", std::process::id()))
    };
    let run_leg = |tag: &str, plan: &FaultPlan| {
        let dir = tmp(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ClusterConfig::new(&dir, scenario);
        let report = run_with_oracle(&cfg, plan, &oracle);
        report.assert_converged();
        assert!(
            report.within_storm_cap(),
            "cluster bench leg '{tag}' blew the retransmission-storm cap"
        );
        let _ = std::fs::remove_dir_all(&dir);
        report
    };

    let mut out = JsonObject::new();
    out.number("peers", 3.0);
    out.number("blocks", oracle.height() as f64);

    // Loss sweep: the e2e commit-latency and retransmission cost of the
    // adaptive ARQ as the links degrade.
    let mut rows = Vec::new();
    let mut sweep = Vec::new();
    for loss in [0u8, 1, 5] {
        let mut report = run_leg(
            &format!("loss{loss}"),
            &FaultPlan {
                default_link: LinkFaults::lossy(loss, 1000 + loss as u64),
                ..FaultPlan::default()
            },
        );
        let p50 = report.delivery_latency_ms.percentile(50.0);
        let p99 = report.delivery_latency_ms.percentile(99.0);
        let retrans = report.total_retransmissions();
        rows.push(vec![
            format!("{loss}% loss"),
            format!("{p50:.3} ms"),
            format!("{p99:.3} ms"),
            format!("{retrans}"),
            format!("{:.2} ms", as_millis(report.sim_duration)),
        ]);
        let mut o = JsonObject::new();
        o.number("loss_pct", loss as f64);
        o.number("delivery_p50_ms", p50);
        o.number("delivery_p99_ms", p99);
        o.number("retransmissions", retrans as f64);
        o.number("sim_ms", as_millis(report.sim_duration));
        sweep.push(o);
    }
    table(
        &[
            "link",
            "delivery p50",
            "delivery p99",
            "retransmits",
            "sim wall",
        ],
        &rows,
    );
    out.array("loss_sweep", sweep);

    // Kill-and-rejoin under 5% loss: what a crash costs the cluster.
    let mut report = run_leg(
        "rejoin",
        &FaultPlan {
            default_link: LinkFaults::lossy(5, 77),
            kills: vec![KillPoint {
                peer: 1,
                after_packets: 10,
                rejoin_after: Some(15 * MILLIS),
            }],
            ..FaultPlan::default()
        },
    );
    let catchup_ms = report
        .catchup
        .iter()
        .map(|t| as_millis(*t))
        .fold(0.0, f64::max);
    let mut rejoin = JsonObject::new();
    rejoin.number("loss_pct", 5.0);
    rejoin.number(
        "rejoins",
        report.peers.iter().map(|p| p.rejoins).sum::<u32>() as f64,
    );
    rejoin.number("catchup_ms", catchup_ms);
    rejoin.number("retransmissions", report.total_retransmissions() as f64);
    rejoin.number(
        "delivery_p99_ms",
        report.delivery_latency_ms.percentile(99.0),
    );
    rejoin.number("sim_ms", as_millis(report.sim_duration));
    out.object("kill_rejoin", rejoin);
    println!(
        "kill+rejoin @5% loss: caught back up {catchup_ms:.2} ms after restart, \
         {} retransmissions total (every leg audited bit-identical to the serial oracle)",
        report.total_retransmissions()
    );
    out
}

/// Pulls a numeric field out of a flat JSON line (the child process's
/// `--single-thread-json` output); no serde in the offline toolchain.
fn bench_admission() -> JsonObject {
    use fabric_mempool::{Mempool, MempoolConfig, SignatureCache, VerifyReport};
    use fabric_sim::Samples;
    use std::sync::Arc;
    use workload::{open_loop_schedule, OpenLoopConfig, StreamScenario, Workload};

    heading("admission: sharded mempool front-end (wall time)");

    // A clean stream (no injected faults): the duplicates this leg sees
    // come from the Zipf-skewed open-loop sender process re-submitting
    // hot envelopes, the way impatient clients and gossip echoes do.
    let scenario = StreamScenario {
        workload: Workload::Smallbank,
        accounts: 4,
        block_size: 4,
        num_blocks: 10,
        stale_commit_pct: 0,
        corrupt_sigs: 0,
        duplicate_txs: 0,
        seed: 47,
    };
    let pool: Vec<Vec<u8>> = scenario
        .generate()
        .blocks
        .iter()
        .flat_map(|b| b.data.data.clone())
        .collect();
    // Open-loop arrival order over the envelope pool: a Zipf sender
    // process (exponent 1.1) collides on hot envelopes, so a fraction
    // of arrivals are replays the dedup window must absorb.
    let schedule = open_loop_schedule(&OpenLoopConfig {
        rate_per_sec: 50_000.0,
        senders: pool.len() as u64,
        zipf_exponent: 1.1,
        arrivals: 600,
        seed: 13,
    });

    // Steady leg: admission latency, dedup rate, verify-pool occupancy.
    let mempool = Mempool::with_msp(
        MempoolConfig {
            verify_workers: 4,
            ..MempoolConfig::default()
        },
        Arc::new(SignatureCache::new(8192)),
        Some(scenario.validator_msp()),
    );
    let mut admit_us = Samples::new();
    let mut verify = VerifyReport::default();
    let mut ordered = 0usize;
    for (i, arrival) in schedule.iter().enumerate() {
        let env = &pool[arrival.sender as usize % pool.len()];
        let t0 = Instant::now();
        let _ = mempool.admit(env);
        admit_us.add(t0.elapsed().as_nanos() as f64 / 1_000.0);
        if (i + 1) % 32 == 0 {
            verify.accumulate(&mempool.verify_pending());
            ordered += mempool.drain(usize::MAX).len();
        }
    }
    verify.accumulate(&mempool.verify_pending());
    ordered += mempool.drain(usize::MAX).len();
    let stats = mempool.stats();
    assert!(stats.duplicates > 0, "zipf arrivals must collide");
    assert_eq!(stats.shed, 0, "the steady leg must not shed");

    let p50 = admit_us.percentile(50.0);
    let p99 = admit_us.percentile(99.0);
    let mut out = JsonObject::new();
    out.number("arrivals", schedule.len() as f64);
    out.number("admission_p50_us", p50);
    out.number("admission_p99_us", p99);
    out.number("dedup_hit_rate", stats.dedup_hit_rate());
    out.number("shed_rate", stats.shed_rate());
    out.number("ordered", ordered as f64);
    out.number("verify_pool_workers", verify.workers as f64);
    out.number("verify_pool_occupancy", verify.occupancy());
    out.number("underlying_verifications", stats.verifications as f64);
    out.number("endorsements_warmed", verify.endorsements_warmed as f64);
    table(
        &["metric", "value"],
        &[
            vec!["admit p50".into(), format!("{p50:.2} µs")],
            vec!["admit p99".into(), format!("{p99:.2} µs")],
            vec![
                "dedup hit rate".into(),
                format!("{:.1}%", stats.dedup_hit_rate() * 100.0),
            ],
            vec![
                "verify occupancy".into(),
                format!("{:.1}%", verify.occupancy() * 100.0),
            ],
            vec!["ordered".into(), format!("{ordered}")],
        ],
    );

    // Overload leg: a tiny pending bound with no verify/drain cycles —
    // everything past the cap is shed *at admission*, before ordering.
    let overload = Mempool::new(
        MempoolConfig {
            max_pending: 8,
            ..MempoolConfig::default()
        },
        Arc::new(SignatureCache::new(1024)),
    );
    for arrival in &schedule {
        let _ = overload.admit(&pool[arrival.sender as usize % pool.len()]);
    }
    let ostats = overload.stats();
    assert!(ostats.shed > 0, "the overload leg must shed");
    let mut over = JsonObject::new();
    over.number("max_pending", 8.0);
    over.number("shed_rate", ostats.shed_rate());
    over.number("dedup_hit_rate", ostats.dedup_hit_rate());
    out.object("overload", over);
    println!(
        "steady: admit p50 {p50:.2} µs, dedup {:.1}%, pool occupancy {:.1}%; \
         overload (cap 8): shed {:.1}% before ordering",
        stats.dedup_hit_rate() * 100.0,
        verify.occupancy() * 100.0,
        ostats.shed_rate() * 100.0
    );
    out
}

fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = text.find(&pat)? + pat.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Lock hold-time/contention accounting from the fabric-check layer:
/// the checker is switched on around a contended statedb workload (the
/// rest of the benchmark runs with it off), and the per-label counters
/// the instrumented shim collected are reported per named lock.
fn bench_lock_contention() -> JsonObject {
    use fabric_statedb::{Height, ShardedStateDb, WriteBatch};
    use std::sync::Arc;

    heading("lock contention: fabric-check hold/contention accounting");

    fabric_check::enable();
    fabric_check::reset_stats();

    const WRITERS: u64 = 4;
    const READERS: usize = 2;
    const BLOCKS: u64 = 64;
    const TXS_PER_BLOCK: u64 = 8;
    const KEYS_PER_TX: u64 = 8;

    let db = Arc::new(ShardedStateDb::with_shards(16));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for b in 0..BLOCKS {
                    let mut batches = Vec::new();
                    for tx in 0..TXS_PER_BLOCK {
                        let mut batch = WriteBatch::new();
                        for k in 0..KEYS_PER_TX {
                            // Overlapping key space across writers so
                            // shard locks genuinely collide.
                            batch.put(
                                format!("k{:04}", (b * TXS_PER_BLOCK + tx + k * 17) % 512),
                                vec![w as u8, b as u8],
                            );
                        }
                        batches.push((batch, Height::new(w * 10_000 + b + 1, tx)));
                    }
                    db.apply_block(&batches);
                }
            });
        }
        for r in 0..READERS {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let _ = db.get(&format!("k{:04}", (i * 31 + r as u64) % 512));
                    if i % 64 == 0 {
                        let pin = db.pin();
                        let _ = pin.height();
                    }
                }
            });
        }
    });
    let wall_us = t0.elapsed().as_micros() as f64;
    let stats = fabric_check::stats_snapshot();
    fabric_check::disable();

    let mut total_acq = 0u64;
    let mut total_contended = 0u64;
    let mut rows = Vec::new();
    let mut lock_objs = Vec::new();
    for s in &stats {
        if s.acquisitions == 0 {
            continue;
        }
        total_acq += s.acquisitions;
        total_contended += s.contended;
        let contention_rate = s.contended as f64 / s.acquisitions as f64;
        let hold_mean_us = s.hold_ns as f64 / s.acquisitions as f64 / 1_000.0;
        let mut o = JsonObject::new();
        o.raw("label", &format!("\"{}\"", s.label));
        o.number("acquisitions", s.acquisitions as f64);
        o.number("contended", s.contended as f64);
        o.number("contention_rate", contention_rate);
        o.number("hold_mean_us", hold_mean_us);
        o.number("hold_max_us", s.max_hold_ns as f64 / 1_000.0);
        o.number("block_total_us", s.block_ns as f64 / 1_000.0);
        lock_objs.push(o);
        rows.push(vec![
            s.label.clone(),
            format!("{}", s.acquisitions),
            format!("{:.1}%", contention_rate * 100.0),
            format!("{hold_mean_us:.2} µs"),
        ]);
    }
    table(&["lock", "acquisitions", "contended", "hold mean"], &rows);

    let mut out = JsonObject::new();
    out.number("wall_us", wall_us);
    out.number("total_acquisitions", total_acq as f64);
    out.number("total_contended", total_contended as f64);
    out.number(
        "contention_rate",
        if total_acq == 0 {
            0.0
        } else {
            total_contended as f64 / total_acq as f64
        },
    );
    out.array("locks", lock_objs);
    out
}

fn time_us<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn out_path() -> std::path::PathBuf {
    // Walk up from the executable/current dir to the workspace root
    // (where ROADMAP.md lives); fall back to CWD.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if dir.join("ROADMAP.md").exists() {
            return dir.join("BENCH_validation.json");
        }
        if !dir.pop() {
            return std::path::PathBuf::from("BENCH_validation.json");
        }
    }
}

/// Tiny hand-rolled JSON emitter (no serde in the offline toolchain).
struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    fn new() -> Self {
        JsonObject { fields: Vec::new() }
    }

    fn raw(&mut self, key: &str, value: &str) {
        self.fields.push((key.to_string(), value.to_string()));
    }

    fn number(&mut self, key: &str, value: f64) {
        let rendered = if value.fract() == 0.0 && value.abs() < 1e15 {
            format!("{}", value as i64)
        } else {
            format!("{value:.3}")
        };
        self.raw(key, &rendered);
    }

    fn object(&mut self, key: &str, value: JsonObject) {
        let rendered = value.finish_inline();
        self.raw(key, &rendered);
    }

    fn array(&mut self, key: &str, values: Vec<JsonObject>) {
        let inner: Vec<String> = values.into_iter().map(|v| v.finish_inline()).collect();
        self.raw(key, &format!("[{}]", inner.join(", ")));
    }

    fn finish_inline(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "\"{k}\": {v}").unwrap();
        }
        out.push('}');
        out
    }

    fn finish(self) -> String {
        let mut out = String::from("{\n");
        let n = self.fields.len();
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            writeln!(out, "  \"{k}\": {v}{comma}").unwrap();
        }
        out.push_str("}\n");
        out
    }
}
