//! Validation hot-path benchmark: before/after numbers for the
//! verify/vscc overhaul, emitted as `BENCH_validation.json`.
//!
//! Measures, on real blocks with real cryptography:
//!
//! * single-thread `verify_prehashed`: the preserved seed path
//!   (bit-serial Shamir + Fermat inversions) versus the optimized path
//!   (fixed-base comb + split wNAF + binary/batched inversion +
//!   projective x-check), plus the batched-inversion variant and
//!   signing;
//! * the functional pipeline on a 100-tx smallbank-shaped block:
//!   per-stage µs, blocks/s, sigs/s, for 1/2/4 vscc workers (wall-clock
//!   scaling depends on host vCPUs, recorded alongside), with the
//!   paper-calibrated model's makespan scaling as the
//!   hardware-independent reference;
//! * the signature cache: underlying verifications and hit rate when an
//!   identical block is re-verified.
//!
//! Run via `scripts/bench.sh` (or `cargo run --release --bin
//! bench_validation`); the JSON lands in the repo root so the perf
//! trajectory is tracked from PR to PR.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use bmac_bench::{heading, table};
use fabric_crypto::ecdsa::{batch_s_inverses, SigningKey};
use fabric_crypto::identity::{Msp, Role};
use fabric_crypto::sha256::sha256;
use fabric_crypto::Signature;
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_peer::{BlockProfile, SwValidatorModel};
use fabric_policy::parse;

const BLOCK_TXS: usize = 100;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let mut json = JsonObject::new();
    json.raw("generated_by", "\"bench_validation\"");
    json.number(
        "host_cpus",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as f64,
    );

    let single = bench_single_thread();
    json.object("single_thread", single);

    let (pipeline, cache) = bench_pipeline();
    json.object("pipeline", pipeline);
    json.object("signature_cache", cache);

    let path = out_path();
    std::fs::write(&path, json.finish()).expect("write BENCH_validation.json");
    println!("\nwrote {}", path.display());
}

/// Seed-vs-fast single-thread crypto microbenchmarks.
fn bench_single_thread() -> JsonObject {
    heading("single-thread ECDSA: seed path vs optimized path");
    let key = SigningKey::from_seed(b"bench_validation");
    let vk = key.verifying_key();

    // A block's worth of distinct signatures: every path cycles the same
    // workload so cache effects (the 590 KiB comb table, wNAF tables)
    // are charged equally.
    let digests: Vec<[u8; 32]> = (0..100u32).map(|i| sha256(&i.to_be_bytes())).collect();
    let sigs: Vec<Signature> = digests.iter().map(|d| key.sign_prehashed(d)).collect();

    // Warm up both paths (fixed-base table, per-key table).
    vk.verify_prehashed(&digests[0], &sigs[0]).unwrap();
    vk.verify_prehashed_shamir(&digests[0], &sigs[0]).unwrap();

    let mut cursor = 0usize;
    let next = |cursor: &mut usize| {
        *cursor = (*cursor + 1) % sigs.len();
        *cursor
    };
    let seed_us = time_us(200, || {
        let i = next(&mut cursor);
        vk.verify_prehashed_shamir(&digests[i], &sigs[i]).unwrap()
    });
    let fast_us = time_us(200, || {
        let i = next(&mut cursor);
        vk.verify_prehashed(&digests[i], &sigs[i]).unwrap()
    });
    let sign_us = time_us(200, || {
        let i = next(&mut cursor);
        let _ = key.sign_prehashed(&digests[i]);
    });

    // Batched: amortize s-inverses over a block of signatures.
    let t0 = Instant::now();
    let reps = 5;
    for _ in 0..reps {
        let sinvs = batch_s_inverses(&sigs);
        for ((sig, digest), sinv) in sigs.iter().zip(&digests).zip(&sinvs) {
            vk.verify_prehashed_with_sinv(digest, sig, sinv).unwrap();
        }
    }
    let batched_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * sigs.len()) as f64;

    let speedup = seed_us / fast_us;
    table(
        &["path", "µs/op", "speedup vs seed"],
        &[
            vec![
                "verify (seed: shamir+fermat)".to_string(),
                format!("{seed_us:.1}"),
                "1.00x".into(),
            ],
            vec![
                "verify (fixed-base + wNAF)".to_string(),
                format!("{fast_us:.1}"),
                format!("{speedup:.2}x"),
            ],
            vec![
                "verify (batched s⁻¹)".to_string(),
                format!("{batched_us:.1}"),
                format!("{:.2}x", seed_us / batched_us),
            ],
            vec![
                "sign (fixed-base comb)".to_string(),
                format!("{sign_us:.1}"),
                String::new(),
            ],
        ],
    );
    assert!(
        speedup >= 2.0,
        "single-thread verify speedup regressed below 2x: {speedup:.2}x"
    );

    let mut o = JsonObject::new();
    o.number("verify_seed_us", seed_us);
    o.number("verify_fast_us", fast_us);
    o.number("verify_fast_batched_us", batched_us);
    o.number("sign_us", sign_us);
    o.number("verify_speedup", speedup);
    o.number("verify_speedup_batched", seed_us / batched_us);
    o
}

/// Functional-pipeline benchmark on a 100-tx block.
fn bench_pipeline() -> (JsonObject, JsonObject) {
    heading(&format!(
        "functional pipeline: {BLOCK_TXS}-tx smallbank block"
    ));
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(BLOCK_TXS)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while blocks.len() < 2 {
        blocks.extend(
            net.submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
                .unwrap(),
        );
        i += 1;
    }

    let make_validator = |workers: usize| {
        let mut msp = Msp::new(2);
        msp.issue(0, Role::Peer, 0).unwrap();
        msp.issue(1, Role::Peer, 0).unwrap();
        msp.issue(0, Role::Orderer, 0).unwrap();
        msp.issue(0, Role::Client, 0).unwrap();
        let mut policies = HashMap::new();
        policies.insert("kv".to_string(), parse("2-outof-2 orgs").unwrap());
        ValidatorPipeline::new(msp, policies, workers)
    };

    // Warm the global crypto tables once so per-worker runs are steady.
    make_validator(1)
        .verify_block_signatures(&blocks[0])
        .unwrap();

    let model = |workers: usize| {
        SwValidatorModel::new(workers).validate_block(&BlockProfile::smallbank(BLOCK_TXS))
    };
    let model1 = model(1);

    let mut rows = Vec::new();
    let mut worker_objs = Vec::new();
    let mut vscc1_us = 0.0f64;
    for &workers in &WORKER_COUNTS {
        let v = make_validator(workers);
        let result = v.validate_and_commit(&blocks[0]).expect("validation");
        assert_eq!(result.valid_count(), BLOCK_TXS);
        let sigs = v.verifications() as f64; // orderer + client + endorsements
        let t = result.timings;
        let vscc_us = t.verify_vscc_us as f64;
        if workers == 1 {
            vscc1_us = vscc_us;
        }
        let total_us = t.total_excl_ledger_us() as f64;
        let blocks_per_s = 1e6 / total_us;
        let sigs_per_s = sigs * 1e6 / vscc_us.max(1.0);
        let measured_speedup = vscc1_us / vscc_us.max(1.0);
        let mb = model(workers);
        let model_speedup = model1.verify_vscc as f64 / mb.verify_vscc as f64;
        rows.push(vec![
            format!("{workers}"),
            format!("{:.0}", t.unmarshal_us as f64),
            format!("{vscc_us:.0}"),
            format!("{:.0}", t.mvcc_us as f64),
            format!("{:.0}", t.statedb_commit_us as f64),
            format!("{blocks_per_s:.1}"),
            format!("{sigs_per_s:.0}"),
            format!("{measured_speedup:.2}x"),
            format!("{model_speedup:.2}x"),
        ]);
        let mut o = JsonObject::new();
        o.number("workers", workers as f64);
        o.number("unmarshal_us", t.unmarshal_us as f64);
        o.number("block_verify_us", t.block_verify_us as f64);
        o.number("verify_vscc_us", vscc_us);
        o.number("mvcc_us", t.mvcc_us as f64);
        o.number("statedb_commit_us", t.statedb_commit_us as f64);
        o.number("total_excl_ledger_us", total_us);
        o.number("blocks_per_s", blocks_per_s);
        o.number("sigs_per_s", sigs_per_s);
        o.number("measured_vscc_speedup_vs_1", measured_speedup);
        o.number("model_vscc_speedup_vs_1", model_speedup);
        worker_objs.push(o);
    }
    table(
        &[
            "workers",
            "unmarshal_us",
            "vscc_us",
            "mvcc_us",
            "commit_us",
            "blocks/s",
            "sigs/s",
            "meas.scaling",
            "model.scaling",
        ],
        &rows,
    );
    println!(
        "(measured scaling is bounded by host vCPUs = {}; the calibrated model shows the \
         work-stealing pool's makespan scaling)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut pipeline = JsonObject::new();
    pipeline.number("block_txs", BLOCK_TXS as f64);
    pipeline.array("workers", worker_objs);

    // Cache: re-verifying identical signatures must not touch ECDSA.
    heading("signature cache: identical block re-verified");
    let v = make_validator(2);
    v.verify_block_signatures(&blocks[1]).unwrap();
    let cold = v.verifications();
    v.verify_block_signatures(&blocks[1]).unwrap();
    let warm = v.verifications() - cold;
    let stats = v.sig_cache_stats();
    table(
        &["pass", "underlying verifications"],
        &[
            vec!["first (cold)".to_string(), format!("{cold}")],
            vec!["second (cached)".to_string(), format!("{warm}")],
        ],
    );
    println!(
        "cache: {} hits / {} misses (hit rate {:.1}%)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    assert_eq!(
        warm, 0,
        "identical block must be fully served by the signature cache"
    );

    let mut cache = JsonObject::new();
    cache.number("first_pass_verifications", cold as f64);
    cache.number("second_pass_verifications", warm as f64);
    cache.number("hits", stats.hits as f64);
    cache.number("misses", stats.misses as f64);
    cache.number("hit_rate", stats.hit_rate());
    (pipeline, cache)
}

fn time_us<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn out_path() -> std::path::PathBuf {
    // Walk up from the executable/current dir to the workspace root
    // (where ROADMAP.md lives); fall back to CWD.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if dir.join("ROADMAP.md").exists() {
            return dir.join("BENCH_validation.json");
        }
        if !dir.pop() {
            return std::path::PathBuf::from("BENCH_validation.json");
        }
    }
}

/// Tiny hand-rolled JSON emitter (no serde in the offline toolchain).
struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    fn new() -> Self {
        JsonObject { fields: Vec::new() }
    }

    fn raw(&mut self, key: &str, value: &str) {
        self.fields.push((key.to_string(), value.to_string()));
    }

    fn number(&mut self, key: &str, value: f64) {
        let rendered = if value.fract() == 0.0 && value.abs() < 1e15 {
            format!("{}", value as i64)
        } else {
            format!("{value:.3}")
        };
        self.raw(key, &rendered);
    }

    fn object(&mut self, key: &str, value: JsonObject) {
        let rendered = value.finish_inline();
        self.raw(key, &rendered);
    }

    fn array(&mut self, key: &str, values: Vec<JsonObject>) {
        let inner: Vec<String> = values.into_iter().map(|v| v.finish_inline()).collect();
        self.raw(key, &format!("[{}]", inner.join(", ")));
    }

    fn finish_inline(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "\"{k}\": {v}").unwrap();
        }
        out.push('}');
        out
    }

    fn finish(self) -> String {
        let mut out = String::from("{\n");
        let n = self.fields.len();
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            writeln!(out, "  \"{k}\": {v}{comma}").unwrap();
        }
        out.push_str("}\n");
        out
    }
}
