//! Microbenchmarks of endorsement-policy parsing and evaluation —
//! sequential (Fabric software) vs combinational circuit (BMac).

use criterion::{criterion_group, criterion_main, Criterion};
use fabric_crypto::identity::{NodeId, Role};
use fabric_policy::circuit::RegisterFile;
use fabric_policy::{parse, Policy, PolicyCircuit};
use std::hint::black_box;

const COMPLEX: &str =
    "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)";

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");

    group.bench_function("parse_complex", |b| {
        b.iter(|| parse(black_box(COMPLEX)).unwrap())
    });

    let policy = parse(COMPLEX).unwrap();
    group.bench_function("compile_circuit", |b| {
        b.iter(|| PolicyCircuit::compile(black_box(&policy)))
    });

    let circuit = PolicyCircuit::compile(&policy);
    let mut regs = RegisterFile::new(4);
    regs.set(NodeId::new(0, Role::Peer, 0).unwrap());
    regs.set(NodeId::new(1, Role::Peer, 0).unwrap());
    group.bench_function("circuit_evaluate", |b| {
        b.iter(|| black_box(&circuit).evaluate(black_box(&regs)))
    });

    let endorsers = vec![
        NodeId::new(0, Role::Peer, 0).unwrap(),
        NodeId::new(1, Role::Peer, 0).unwrap(),
    ];
    group.bench_function("sequential_evaluate", |b| {
        b.iter(|| black_box(&policy).evaluate_sequential(black_box(&endorsers)))
    });

    let kofn = Policy::k_out_of_n_orgs(3, 5);
    group.bench_function("compile_3of5_expansion", |b| {
        b.iter(|| PolicyCircuit::compile(black_box(&kofn)))
    });
    group.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
