//! Microbenchmarks of the BMac protocol sender and receiver.

use bmac_protocol::{BmacReceiver, BmacSender};
use criterion::{criterion_group, criterion_main, Criterion};
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_policy::parse;
use std::hint::black_box;

fn one_block(ntx: usize) -> fabric_protos::messages::Block {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(ntx)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let mut blocks = Vec::new();
    let mut i = 0;
    while blocks.is_empty() {
        blocks = net
            .submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
            .unwrap();
        i += 1;
    }
    blocks.remove(0)
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(20);

    let block = one_block(10);
    group.bench_function("sender_section_block_10tx", |b| {
        b.iter(|| {
            let mut sender = BmacSender::new();
            sender.send_block(black_box(&block)).unwrap()
        })
    });

    // Pre-encode packets for the receive path.
    let mut sender = BmacSender::new();
    let wires: Vec<Vec<u8>> = sender
        .send_block(&block)
        .unwrap()
        .iter()
        .map(|p| p.encode().unwrap())
        .collect();
    group.bench_function("receiver_reassemble_block_10tx", |b| {
        b.iter(|| {
            let mut receiver = BmacReceiver::new();
            let mut blocks = 0;
            for w in &wires {
                blocks += receiver.ingest(black_box(w)).unwrap().len();
            }
            assert_eq!(blocks, 1);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
