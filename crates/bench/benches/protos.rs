//! Microbenchmarks of marshaling/unmarshaling — the cost the BMac
//! protocol processor removes from the critical path (paper §3.2).

use criterion::{criterion_group, criterion_main, Criterion};
use fabric_crypto::identity::{Msp, Role};
use fabric_protos::txflow::{
    build_block, build_transaction, decode_block, decode_transaction, TxParams,
};
use std::hint::black_box;

fn bench_protos(c: &mut Criterion) {
    let mut group = c.benchmark_group("protos");
    group.sample_size(20);

    let mut msp = Msp::new(2);
    let client = msp.issue(0, Role::Client, 0).unwrap();
    let e1 = msp.issue(0, Role::Peer, 0).unwrap();
    let e2 = msp.issue(1, Role::Peer, 0).unwrap();
    let orderer = msp.issue(0, Role::Orderer, 0).unwrap();
    let params = TxParams {
        channel_id: "mychannel",
        chaincode: "smallbank",
        reads: vec![("acc1".into(), None), ("acc2".into(), None)],
        writes: vec![
            ("acc1".into(), b"10".to_vec()),
            ("acc2".into(), b"20".to_vec()),
        ],
        nonce: vec![7u8; 24],
        timestamp: 1_700_000_000,
    };

    group.bench_function("build_transaction_2ends", |b| {
        b.iter(|| build_transaction(&client, &[&e1, &e2], black_box(&params)))
    });

    let built = build_transaction(&client, &[&e1, &e2], &params);
    group.bench_function("decode_transaction", |b| {
        b.iter(|| decode_transaction(black_box(&built.envelope)).unwrap())
    });

    let envs: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            let mut p = params.clone();
            p.nonce = vec![i as u8; 24];
            build_transaction(&client, &[&e1, &e2], &p).envelope
        })
        .collect();
    let block = build_block(0, &[0u8; 32], envs, &orderer);
    let block_bytes = block.marshal();
    group.bench_function("marshal_block_10tx", |b| {
        b.iter(|| black_box(&block).marshal())
    });
    group.bench_function("decode_block_10tx", |b| {
        b.iter(|| decode_block(black_box(&block_bytes)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_protos);
criterion_main!(benches);
