//! End-to-end validation microbenchmarks: the functional software
//! pipeline vs the functional hardware simulation on real blocks.

use std::collections::HashMap;

use bmac_core::{BMacPeer, BmacConfig};
use bmac_protocol::BmacSender;
use criterion::{criterion_group, criterion_main, Criterion};
use fabric_crypto::identity::{Msp, Role};
use fabric_node::chaincode::KvChaincode;
use fabric_node::network::FabricNetworkBuilder;
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_policy::parse;
use std::hint::black_box;

fn make_blocks(count: usize, ntx: usize) -> Vec<fabric_protos::messages::Block> {
    let mut net = FabricNetworkBuilder::new()
        .orgs(2)
        .block_size(ntx)
        .chaincode("kv", parse("2-outof-2 orgs").unwrap())
        .build();
    net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
    let mut blocks = Vec::new();
    let mut i = 0;
    while blocks.len() < count {
        blocks.extend(
            net.submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
                .unwrap(),
        );
        i += 1;
    }
    blocks
}

fn test_msp() -> Msp {
    let mut msp = Msp::new(2);
    msp.issue(0, Role::Peer, 0).unwrap();
    msp.issue(1, Role::Peer, 0).unwrap();
    msp.issue(0, Role::Orderer, 0).unwrap();
    msp.issue(0, Role::Client, 0).unwrap();
    msp
}

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation");
    group.sample_size(10);

    let blocks = make_blocks(1, 8);
    let policies: HashMap<String, fabric_policy::Policy> =
        [("kv".to_string(), parse("2-outof-2 orgs").unwrap())]
            .into_iter()
            .collect();

    group.bench_function("sw_pipeline_8tx_4workers", |b| {
        b.iter(|| {
            let validator = ValidatorPipeline::new(test_msp(), policies.clone(), 4);
            validator
                .validate_and_commit(black_box(&blocks[0]))
                .unwrap()
        })
    });

    // Full BMac peer path: packets -> hw validation -> ledger commit.
    let config = BmacConfig::from_yaml(
        "network:\n  orgs: 2\nchaincodes:\n  - name: kv\n    policy: 2-outof-2 orgs\narchitecture:\n  tx_validators: 8\n  engines_per_vscc: 2\n",
    )
    .unwrap();
    let mut sender = BmacSender::new();
    let wires: Vec<Vec<u8>> = sender
        .send_block(&blocks[0])
        .unwrap()
        .iter()
        .map(|p| p.encode().unwrap())
        .collect();
    group.bench_function("bmac_peer_8tx_full_path", |b| {
        b.iter(|| {
            let mut peer = BMacPeer::new(&config, test_msp());
            let mut committed = 0;
            for w in &wires {
                committed += peer.ingest_wire(black_box(w), 0).unwrap().len();
            }
            assert_eq!(committed, 1);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
