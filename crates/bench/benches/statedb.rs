//! Microbenchmarks of the state database: reads, writes, MVCC checks —
//! the operations of validation steps 3-4 (paper §2.1.2).

use criterion::{criterion_group, criterion_main, Criterion};
use fabric_statedb::{BoundedStateDb, Height, StateDb, WriteBatch};
use std::hint::black_box;

fn bench_statedb(c: &mut Criterion) {
    let mut group = c.benchmark_group("statedb");

    let db = StateDb::new();
    let mut batch = WriteBatch::new();
    for i in 0..1000 {
        batch.put(format!("key{i}"), vec![i as u8; 16]);
    }
    db.apply(&batch, Height::new(1, 0));

    group.bench_function("get_hit", |b| b.iter(|| db.get(black_box("key500"))));
    group.bench_function("get_miss", |b| b.iter(|| db.get(black_box("nope"))));

    group.bench_function("apply_100_writes", |b| {
        b.iter(|| {
            let mut w = WriteBatch::new();
            for i in 0..100 {
                w.put(format!("k{i}"), vec![1]);
            }
            db.apply(black_box(&w), Height::new(2, 0));
        })
    });

    let reads: Vec<(String, Option<Height>)> = (0..100)
        .map(|i| (format!("key{i}"), Some(Height::new(1, 0))))
        .collect();
    group.bench_function("mvcc_validate_100_reads", |b| {
        b.iter(|| db.mvcc_validate(black_box(&reads)))
    });

    group.bench_function("bounded_put_get", |b| {
        let mut hw = BoundedStateDb::new(8192);
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("k{}", i % 4096);
            hw.put(&key, vec![1], Height::new(1, i)).unwrap();
            let _ = hw.get(&key).unwrap();
            i += 1;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_statedb);
criterion_main!(benches);
