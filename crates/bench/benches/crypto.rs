//! Microbenchmarks of the cryptographic substrate: the operations the
//! paper's Figure 3a profiles (ecdsa_verify ~40%, sha256 ~10%).

use criterion::{criterion_group, criterion_main, Criterion};
use fabric_crypto::bigint::U256;
use fabric_crypto::curve::{AffinePoint, JacobianPoint};
use fabric_crypto::ecdsa::SigningKey;
use fabric_crypto::sha256::sha256;
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    group.sample_size(20);

    let key = SigningKey::from_seed(b"bench");
    let msg = vec![0xabu8; 3_400]; // smallbank envelope size
    let sig = key.sign(&msg);

    group.bench_function("ecdsa_sign", |b| b.iter(|| key.sign(black_box(&msg))));
    group.bench_function("ecdsa_verify", |b| {
        b.iter(|| key.verifying_key().verify(black_box(&msg), black_box(&sig)))
    });
    group.bench_function("sha256_64B", |b| b.iter(|| sha256(black_box(&msg[..64]))));
    group.bench_function("sha256_3400B", |b| b.iter(|| sha256(black_box(&msg))));

    let k =
        U256::from_hex("deadbeefcafebabe1122334455667788aabbccddeeff00112233445566778899").unwrap();
    group.bench_function("p256_scalar_mul", |b| {
        b.iter(|| AffinePoint::generator().mul_scalar(black_box(&k)))
    });
    let g = AffinePoint::generator().to_jacobian();
    let q = g.mul_scalar(&U256::from_u64(7777));
    group.bench_function("p256_shamir_dual_mul", |b| {
        b.iter(|| JacobianPoint::shamir(black_box(&k), &g, black_box(&k), &q))
    });
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
