//! Property-based tests: the hardware circuit must agree with the set
//! semantics for *every* policy and endorser subset, and short-circuit
//! evaluation must never change outcomes.

use fabric_crypto::identity::{NodeId, Role};
use fabric_policy::circuit::{PolicyStatus, RegisterFile, ShortCircuitEvaluator};
use fabric_policy::{Policy, PolicyCircuit, Principal};
use proptest::prelude::*;

const ORGS: u8 = 5;

fn arb_policy() -> impl Strategy<Value = Policy> {
    let leaf = (0..ORGS).prop_map(|o| Policy::Signed(Principal::peer(o)));
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Policy::And),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Policy::Or),
            (proptest::collection::vec(inner, 1..4), 1usize..4).prop_map(|(subs, k)| {
                let k = k.min(subs.len());
                Policy::OutOf(k, subs)
            }),
        ]
    })
}

fn peers(mask: u8) -> Vec<NodeId> {
    (0..ORGS)
        .filter(|o| mask & (1 << o) != 0)
        .map(|o| NodeId::new(o, Role::Peer, 0).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn circuit_agrees_with_set_semantics(policy in arb_policy(), mask in 0u8..32) {
        let circuit = PolicyCircuit::compile(&policy);
        let endorsers = peers(mask);
        let mut regs = RegisterFile::new(ORGS as usize);
        for &e in &endorsers {
            regs.set(e);
        }
        prop_assert_eq!(circuit.evaluate(&regs), policy.evaluate(&endorsers));
    }

    #[test]
    fn sequential_agrees_with_set_semantics(policy in arb_policy(), mask in 0u8..32) {
        let endorsers = peers(mask);
        let (seq, visits) = policy.evaluate_sequential(&endorsers);
        prop_assert_eq!(seq, policy.evaluate(&endorsers));
        prop_assert!(visits >= 1);
    }

    #[test]
    fn short_circuit_is_sound(policy in arb_policy(), mask in 0u8..32) {
        // Feeding all endorsements through the short-circuit evaluator
        // must reach Satisfied exactly when the policy evaluates true.
        let circuit = PolicyCircuit::compile(&policy);
        let endorsers = peers(mask);
        let mut sc = ShortCircuitEvaluator::new(&circuit, ORGS as usize);
        let mut status = sc.status();
        for &e in &endorsers {
            status = sc.record(e, true);
            if status == PolicyStatus::Satisfied {
                break;
            }
        }
        prop_assert_eq!(
            status == PolicyStatus::Satisfied,
            policy.evaluate(&endorsers)
        );
    }

    #[test]
    fn short_circuit_never_verifies_more_than_all(policy in arb_policy(), mask in 0u8..32) {
        let circuit = PolicyCircuit::compile(&policy);
        let endorsers = peers(mask);
        let mut sc = ShortCircuitEvaluator::new(&circuit, ORGS as usize);
        for &e in &endorsers {
            if sc.record(e, true) == PolicyStatus::Satisfied {
                break;
            }
        }
        prop_assert!(sc.verified_count() <= endorsers.len());
    }

    #[test]
    fn min_satisfying_is_achievable_upper_bound(policy in arb_policy()) {
        // min_satisfying endorsements from the right orgs must satisfy;
        // and it never exceeds the principal count.
        let principals = policy.principals();
        prop_assume!(!principals.is_empty());
        let all: Vec<NodeId> = principals
            .iter()
            .map(|p| NodeId::new(p.org, p.role, 0).unwrap())
            .collect();
        if policy.evaluate(&all) {
            prop_assert!(policy.min_satisfying() <= all.len());
        }
    }

    #[test]
    fn display_reparses_equivalently(policy in arb_policy(), mask in 0u8..32) {
        let shown = policy.to_string();
        let reparsed = fabric_policy::parse(&shown).unwrap();
        let endorsers = peers(mask);
        prop_assert_eq!(reparsed.evaluate(&endorsers), policy.evaluate(&endorsers));
    }

    #[test]
    fn parser_never_panics(input in "[ ()&|Oorgf0-9.,-]{0,64}") {
        let _ = fabric_policy::parse(&input);
    }
}
