//! The hardware endorsement-policy evaluator: register file + circuit.
//!
//! The Blockchain Machine's `ends_policy_evaluator` "consists of a
//! register file, where each register represents an organization and each
//! register bit represents one of the predefined roles. ... This enables
//! us to use a combinational circuit for parallel evaluation of an
//! endorsement policy" (paper §3.3). The `ends_scheduler` applies
//! *short-circuit evaluation*: it rechecks the circuit output after every
//! endorsement verification and stops issuing verifications once the
//! output is already true.
//!
//! This module compiles a [`Policy`] into a gate-level [`PolicyCircuit`]
//! whose inputs are bits of a [`RegisterFile`], mirroring the RTL that the
//! paper's configuration script generates from the YAML file (§3.5).

use std::fmt;

use fabric_crypto::identity::{NodeId, Role};

use crate::Policy;

/// The register file: one 4-bit register per organization, one bit per
/// role (bit index = [`Role::code`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    regs: Vec<u8>,
}

impl RegisterFile {
    /// Creates a cleared register file for `num_orgs` organizations.
    pub fn new(num_orgs: usize) -> Self {
        RegisterFile {
            regs: vec![0; num_orgs],
        }
    }

    /// Clears all bits (done by `tx_vscc` at the start of each
    /// transaction, so the default policy status is *not satisfied*).
    pub fn clear(&mut self) {
        self.regs.iter_mut().for_each(|r| *r = 0);
    }

    /// Records a *valid* endorsement from `node` (writes the bit selected
    /// by the endorser's encoded id).
    pub fn set(&mut self, node: NodeId) {
        if let Some(reg) = self.regs.get_mut(node.org as usize) {
            *reg |= 1 << node.role.code();
        }
    }

    /// Reads the bit for `(org, role)`.
    pub fn bit(&self, org: u8, role: Role) -> bool {
        self.regs
            .get(org as usize)
            .is_some_and(|r| r & (1 << role.code()) != 0)
    }

    /// Number of organizations (registers).
    pub fn num_orgs(&self) -> usize {
        self.regs.len()
    }
}

/// A gate in the compiled combinational circuit.
///
/// Nodes are stored in topological order; `Input` gates read the register
/// file, logic gates read earlier nodes. The last node is the circuit
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Gate {
    /// Register-file bit `(org, role)`.
    Input(u8, Role),
    /// AND over earlier node indices.
    And(Vec<usize>),
    /// OR over earlier node indices.
    Or(Vec<usize>),
    /// Constant (for degenerate policies).
    Const(bool),
}

/// A policy compiled to a combinational circuit (paper §3.3: the
/// "2-outof-3 orgs" example becomes "three 2-input AND gates and one
/// 3-input OR gate").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyCircuit {
    gates: Vec<Gate>,
    and_gates: usize,
    or_gates: usize,
    inputs: usize,
}

impl PolicyCircuit {
    /// Compiles a policy. `OutOf(k, subs)` is expanded into an OR over all
    /// k-combinations of ANDs, exactly like the paper's example expansion
    /// of "2-outof-3 orgs".
    pub fn compile(policy: &Policy) -> Self {
        let mut c = PolicyCircuit {
            gates: Vec::new(),
            and_gates: 0,
            or_gates: 0,
            inputs: 0,
        };
        let out = c.lower(policy);
        // Ensure the output is the last node.
        if out != c.gates.len() - 1 {
            let moved = c.gates[out].clone();
            c.gates.push(moved);
        }
        c
    }

    fn lower(&mut self, policy: &Policy) -> usize {
        match policy {
            Policy::Signed(p) => {
                self.inputs += 1;
                self.push(Gate::Input(p.org, p.role))
            }
            Policy::And(subs) => {
                let ins: Vec<usize> = subs.iter().map(|s| self.lower(s)).collect();
                self.and_gates += 1;
                self.push(Gate::And(ins))
            }
            Policy::Or(subs) => {
                let ins: Vec<usize> = subs.iter().map(|s| self.lower(s)).collect();
                self.or_gates += 1;
                self.push(Gate::Or(ins))
            }
            Policy::OutOf(k, subs) => {
                if *k == 0 {
                    return self.push(Gate::Const(true));
                }
                if *k > subs.len() {
                    return self.push(Gate::Const(false));
                }
                let ins: Vec<usize> = subs.iter().map(|s| self.lower(s)).collect();
                // OR over all k-combinations of AND gates.
                let mut combos = Vec::new();
                let mut idx = vec![0usize; *k];
                combinations(&ins, *k, &mut idx, 0, 0, &mut |combo| {
                    combos.push(combo.to_vec());
                });
                let mut ands = Vec::with_capacity(combos.len());
                for combo in combos {
                    if combo.len() == 1 {
                        ands.push(combo[0]);
                    } else {
                        self.and_gates += 1;
                        ands.push(self.push(Gate::And(combo)));
                    }
                }
                if ands.len() == 1 {
                    ands[0]
                } else {
                    self.or_gates += 1;
                    self.push(Gate::Or(ands))
                }
            }
        }
    }

    fn push(&mut self, gate: Gate) -> usize {
        self.gates.push(gate);
        self.gates.len() - 1
    }

    /// Evaluates the circuit against the register file. In hardware this
    /// is a single combinational propagation — the simulator charges it
    /// one cycle.
    pub fn evaluate(&self, regs: &RegisterFile) -> bool {
        let mut values = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let v = match gate {
                Gate::Input(org, role) => regs.bit(*org, *role),
                Gate::And(ins) => ins.iter().all(|&i| values[i]),
                Gate::Or(ins) => ins.iter().any(|&i| values[i]),
                Gate::Const(b) => *b,
            };
            values.push(v);
        }
        *values.last().unwrap_or(&false)
    }

    /// Number of AND gates (resource model input).
    pub fn and_gate_count(&self) -> usize {
        self.and_gates
    }

    /// Number of OR gates (resource model input).
    pub fn or_gate_count(&self) -> usize {
        self.or_gates
    }

    /// Number of register-file inputs.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        self.gates.len()
    }
}

impl fmt::Display for PolicyCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit({} inputs, {} AND, {} OR)",
            self.inputs, self.and_gates, self.or_gates
        )
    }
}

fn combinations(
    items: &[usize],
    k: usize,
    scratch: &mut [usize],
    start: usize,
    depth: usize,
    emit: &mut impl FnMut(&[usize]),
) {
    if depth == k {
        emit(scratch);
        return;
    }
    for i in start..items.len() {
        scratch[depth] = items[i];
        combinations(items, k, scratch, i + 1, depth + 1, emit);
    }
}

/// Drives short-circuit evaluation for one transaction's endorsements,
/// playing the role of the `ends_scheduler` + `ends_policy_evaluator`
/// pair. Feed verification results in completion order; after each one,
/// [`ShortCircuitEvaluator::status`] tells the scheduler whether to stop.
#[derive(Debug)]
pub struct ShortCircuitEvaluator<'a> {
    circuit: &'a PolicyCircuit,
    regs: RegisterFile,
    satisfied: bool,
    verified: usize,
}

/// Scheduler decision after each endorsement result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyStatus {
    /// Policy already satisfied: discard remaining endorsements.
    Satisfied,
    /// Not yet satisfied: keep issuing verifications.
    Undecided,
}

impl<'a> ShortCircuitEvaluator<'a> {
    /// Starts a fresh evaluation (clears the register file).
    pub fn new(circuit: &'a PolicyCircuit, num_orgs: usize) -> Self {
        ShortCircuitEvaluator {
            circuit,
            regs: RegisterFile::new(num_orgs),
            satisfied: false,
            verified: 0,
        }
    }

    /// Records one endorsement verification result and re-evaluates.
    pub fn record(&mut self, endorser: NodeId, valid: bool) -> PolicyStatus {
        self.verified += 1;
        if valid {
            self.regs.set(endorser);
            if self.circuit.evaluate(&self.regs) {
                self.satisfied = true;
            }
        }
        self.status()
    }

    /// Current decision.
    pub fn status(&self) -> PolicyStatus {
        if self.satisfied {
            PolicyStatus::Satisfied
        } else {
            PolicyStatus::Undecided
        }
    }

    /// Endorsements verified so far (the quantity short-circuiting
    /// minimizes).
    pub fn verified_count(&self) -> usize {
        self.verified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, Principal};

    fn peer(org: u8) -> NodeId {
        NodeId::new(org, Role::Peer, 0).unwrap()
    }

    #[test]
    fn paper_example_2of3_gate_shape() {
        // "the entire endorsement policy can be implemented using three
        // 2-input AND gates and one 3-input OR gate"
        let c = PolicyCircuit::compile(&Policy::k_out_of_n_orgs(2, 3));
        assert_eq!(c.and_gate_count(), 3);
        assert_eq!(c.or_gate_count(), 1);
        assert_eq!(c.input_count(), 3);
    }

    #[test]
    fn circuit_matches_set_semantics() {
        let policies = [
            Policy::k_out_of_n_orgs(1, 1),
            Policy::k_out_of_n_orgs(2, 2),
            Policy::k_out_of_n_orgs(2, 3),
            Policy::k_out_of_n_orgs(3, 4),
            parse("(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)")
                .unwrap(),
        ];
        for policy in &policies {
            let c = PolicyCircuit::compile(policy);
            // Try all subsets of 4 orgs' peers.
            for mask in 0u8..16 {
                let endorsers: Vec<NodeId> =
                    (0..4).filter(|o| mask & (1 << o) != 0).map(peer).collect();
                let mut regs = RegisterFile::new(4);
                for &e in &endorsers {
                    regs.set(e);
                }
                assert_eq!(
                    c.evaluate(&regs),
                    policy.evaluate(&endorsers),
                    "policy={policy} mask={mask:04b}"
                );
            }
        }
    }

    #[test]
    fn register_file_bit_addressing() {
        let mut regs = RegisterFile::new(4);
        let e = NodeId::new(2, Role::Peer, 1).unwrap();
        regs.set(e);
        assert!(regs.bit(2, Role::Peer));
        assert!(!regs.bit(2, Role::Admin));
        assert!(!regs.bit(1, Role::Peer));
        regs.clear();
        assert!(!regs.bit(2, Role::Peer));
    }

    #[test]
    fn short_circuit_stops_at_k_of_n() {
        // 2of3: after two valid endorsements the third must be skipped.
        let c = PolicyCircuit::compile(&Policy::k_out_of_n_orgs(2, 3));
        let mut sc = ShortCircuitEvaluator::new(&c, 3);
        assert_eq!(sc.record(peer(0), true), PolicyStatus::Undecided);
        assert_eq!(sc.record(peer(1), true), PolicyStatus::Satisfied);
        assert_eq!(sc.verified_count(), 2);
    }

    #[test]
    fn short_circuit_handles_invalid_endorsements() {
        let c = PolicyCircuit::compile(&Policy::k_out_of_n_orgs(2, 3));
        let mut sc = ShortCircuitEvaluator::new(&c, 3);
        assert_eq!(sc.record(peer(0), false), PolicyStatus::Undecided);
        assert_eq!(sc.record(peer(1), true), PolicyStatus::Undecided);
        assert_eq!(sc.record(peer(2), true), PolicyStatus::Satisfied);
        assert_eq!(sc.verified_count(), 3);
    }

    #[test]
    fn unsatisfiable_after_all_processed_stays_undecided() {
        // The scheduler marks the tx invalid when endorsements run out
        // while status is still Undecided (paper §3.3).
        let c = PolicyCircuit::compile(&Policy::k_out_of_n_orgs(2, 2));
        let mut sc = ShortCircuitEvaluator::new(&c, 2);
        sc.record(peer(0), true);
        sc.record(peer(1), false);
        assert_eq!(sc.status(), PolicyStatus::Undecided);
    }

    #[test]
    fn degenerate_outof_policies() {
        let always = PolicyCircuit::compile(&Policy::OutOf(0, vec![]));
        assert!(always.evaluate(&RegisterFile::new(1)));
        let never =
            PolicyCircuit::compile(&Policy::OutOf(3, vec![Policy::Signed(Principal::peer(0))]));
        let mut regs = RegisterFile::new(1);
        regs.set(peer(0));
        assert!(!never.evaluate(&regs));
    }

    #[test]
    fn duplicate_endorser_does_not_double_count() {
        // Two endorsements from the same org set the same bit: 2of3 must
        // not be satisfied by Org1 twice.
        let c = PolicyCircuit::compile(&Policy::k_out_of_n_orgs(2, 3));
        let mut sc = ShortCircuitEvaluator::new(&c, 3);
        sc.record(peer(0), true);
        let second = NodeId::new(0, Role::Peer, 1).unwrap();
        assert_eq!(sc.record(second, true), PolicyStatus::Undecided);
    }
}
