//! Parser for the endorsement-policy expression language.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr    := term ('|' term)*
//! term    := factor ('&' factor)*
//! factor  := '(' expr ')' | outof | principal
//! outof   := INT ('-outof-' | 'of') INT ['orgs']     e.g. "2-outof-3 orgs", "2of3"
//!          | INT '-outof-' '(' expr (',' expr)* ')'  explicit operand list
//! principal := 'Org' INT ['.' role]                  role in {orderer, admin, peer, client}
//! ```
//!
//! This covers every policy the paper uses: `1of1` .. `4of4`, `2of3`,
//! `2of4`, `3of4`, `"2-outof-2 orgs"`, and the complex
//! `"(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) |
//! (Org3 & Org4)"`.

use std::fmt;

use fabric_crypto::identity::Role;

use crate::{Policy, Principal};

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError {
    /// Byte offset where parsing failed.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "policy parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for PolicyParseError {}

/// Parses a policy expression.
///
/// # Errors
///
/// Returns [`PolicyParseError`] with the offending position on malformed
/// input.
///
/// ```
/// use fabric_policy::{parse, Policy};
/// let p = parse("2-outof-3 orgs")?;
/// assert_eq!(p, Policy::k_out_of_n_orgs(2, 3));
/// # Ok::<(), fabric_policy::PolicyParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Policy, PolicyParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    let policy = p.expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("trailing input"));
    }
    Ok(policy)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> PolicyParseError {
        PolicyParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let kw = kw.as_bytes();
        if self.input[self.pos..]
            .iter()
            .zip(kw)
            .take(kw.len())
            .filter(|(a, b)| a.eq_ignore_ascii_case(b))
            .count()
            == kw.len()
            && self.input.len() - self.pos >= kw.len()
        {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Option<usize> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn expr(&mut self) -> Result<Policy, PolicyParseError> {
        let mut terms = vec![self.term()?];
        while self.eat(b'|') {
            terms.push(self.term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Policy::Or(terms)
        })
    }

    fn term(&mut self) -> Result<Policy, PolicyParseError> {
        let mut factors = vec![self.factor()?];
        while self.eat(b'&') {
            factors.push(self.factor()?);
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("one factor")
        } else {
            Policy::And(factors)
        })
    }

    fn factor(&mut self) -> Result<Policy, PolicyParseError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let inner = self.expr()?;
                if !self.eat(b')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Some(c) if c.is_ascii_digit() => self.outof(),
            Some(b'O') | Some(b'o') => self.principal(),
            _ => Err(self.error("expected '(', a number, or 'Org'")),
        }
    }

    fn outof(&mut self) -> Result<Policy, PolicyParseError> {
        let k = self.number().ok_or_else(|| self.error("expected count"))?;
        if self.eat_keyword("-outof-") {
            // Either "N orgs" shorthand or "(expr, expr, ...)".
            if self.peek() == Some(b'(') {
                self.pos += 1;
                let mut subs = vec![self.expr()?];
                while self.eat(b',') {
                    subs.push(self.expr()?);
                }
                if !self.eat(b')') {
                    return Err(self.error("expected ')'"));
                }
                if k > subs.len() {
                    return Err(self.error(format!("{k}-outof-{} is unsatisfiable", subs.len())));
                }
                return Ok(Policy::OutOf(k, subs));
            }
            let n = self.number().ok_or_else(|| self.error("expected total"))?;
            let _ = self.eat_keyword("orgs") || self.eat_keyword("org");
            if k > n {
                return Err(self.error(format!("{k}-outof-{n} is unsatisfiable")));
            }
            Ok(Policy::k_out_of_n_orgs(k, n))
        } else if self.eat_keyword("of") {
            let n = self.number().ok_or_else(|| self.error("expected total"))?;
            if k > n {
                return Err(self.error(format!("{k}of{n} is unsatisfiable")));
            }
            Ok(Policy::k_out_of_n_orgs(k, n))
        } else {
            Err(self.error("expected '-outof-' or 'of' after count"))
        }
    }

    fn principal(&mut self) -> Result<Policy, PolicyParseError> {
        if !self.eat_keyword("org") {
            return Err(self.error("expected 'Org'"));
        }
        let n = self
            .number()
            .ok_or_else(|| self.error("expected org number"))?;
        if n == 0 || n > 256 {
            return Err(self.error("org number must be 1..=256"));
        }
        let role = if self.pos < self.input.len() && self.input[self.pos] == b'.' {
            self.pos += 1;
            if self.eat_keyword("orderer") {
                Role::Orderer
            } else if self.eat_keyword("admin") {
                Role::Admin
            } else if self.eat_keyword("peer") {
                Role::Peer
            } else if self.eat_keyword("client") {
                Role::Client
            } else {
                return Err(self.error("unknown role"));
            }
        } else {
            Role::Peer
        };
        Ok(Policy::Signed(Principal {
            org: (n - 1) as u8,
            role,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_shorthands() {
        assert_eq!(
            parse("2-outof-2 orgs").unwrap(),
            Policy::k_out_of_n_orgs(2, 2)
        );
        assert_eq!(parse("2of3").unwrap(), Policy::k_out_of_n_orgs(2, 3));
        assert_eq!(parse("1of1").unwrap(), Policy::k_out_of_n_orgs(1, 1));
        assert_eq!(parse("3of4").unwrap(), Policy::k_out_of_n_orgs(3, 4));
    }

    #[test]
    fn parses_simple_and() {
        let p = parse("Org1 & Org2").unwrap();
        assert_eq!(
            p,
            Policy::And(vec![
                Policy::Signed(Principal::peer(0)),
                Policy::Signed(Principal::peer(1)),
            ])
        );
    }

    #[test]
    fn parses_paper_complex_policy() {
        let p =
            parse("(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)")
                .unwrap();
        match &p {
            Policy::Or(subs) => assert_eq!(subs.len(), 5),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn parses_roles() {
        let p = parse("Org1.admin").unwrap();
        assert_eq!(
            p,
            Policy::Signed(Principal {
                org: 0,
                role: Role::Admin
            })
        );
        let p = parse("Org2.client | Org1").unwrap();
        match p {
            Policy::Or(v) => assert_eq!(v.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_explicit_outof_list() {
        let p = parse("2-outof-(Org1, Org2, Org3 & Org4)").unwrap();
        match &p {
            Policy::OutOf(2, subs) => assert_eq!(subs.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "Org",
            "Org0",
            "Org1 &",
            "(Org1",
            "5of3",
            "2-outof-",
            "Org1.wizard",
            "Org1 Org2",
            "| Org1",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn whitespace_insensitive() {
        assert_eq!(
            parse("  Org1&Org2  ").unwrap(),
            parse("Org1 & Org2").unwrap()
        );
        assert!(parse("2  of  3").is_ok());
    }

    #[test]
    fn nested_parentheses() {
        let p = parse("((Org1 | Org2) & (Org3 | Org4))").unwrap();
        match p {
            Policy::And(v) => assert_eq!(v.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_carries_position() {
        let err = parse("Org1 & & Org2").unwrap_err();
        assert!(err.position > 0);
        assert!(!err.to_string().is_empty());
    }
}
