//! Endorsement policies: language, parser, evaluators, circuit compiler.
//!
//! An endorsement policy "specifies the type and number of endorsers
//! needed for the transaction in the form of logical expressions such as
//! 'Org1 & Org2' or '2-outof-3 orgs'" (paper §2.1.2). Two evaluation
//! semantics are modeled:
//!
//! * [`Policy::evaluate`] — set semantics used by both peers to decide
//!   validity from the set of valid endorsers;
//! * [`PolicyCircuit`] — the Blockchain Machine's hardware evaluator: the
//!   policy compiled to a combinational circuit over a register file
//!   (one register per organization, one bit per role), evaluated in
//!   parallel, with short-circuit support (paper §3.3,
//!   `ends_policy_evaluator`).
//!
//! The crucial behavioural difference reproduced from the paper: *Fabric
//! software always verifies all endorsements regardless of the policy*
//! ("It turns out that Fabric always verifies all the endorsements of a
//! transaction, irrespective of the policy"), while the hardware's
//! `ends_scheduler` checks the circuit output after every verification
//! and stops as soon as the policy is satisfied.

#![warn(missing_docs)]

pub mod circuit;
pub mod parser;

use std::collections::BTreeSet;
use std::fmt;

use fabric_crypto::identity::{NodeId, Role};

pub use circuit::{PolicyCircuit, RegisterFile};
pub use parser::{parse, PolicyParseError};

/// A principal an endorsement can match: an organization plus a role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Principal {
    /// Organization index (0-based; `Org1` is index 0).
    pub org: u8,
    /// Required role (endorsements come from peers in practice).
    pub role: Role,
}

impl Principal {
    /// Principal for an organization's peers (the common case).
    pub fn peer(org: u8) -> Self {
        Principal {
            org,
            role: Role::Peer,
        }
    }

    /// Whether `node` satisfies this principal.
    pub fn matches(&self, node: NodeId) -> bool {
        node.org == self.org && node.role == self.role
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.role == Role::Peer {
            write!(f, "Org{}", self.org + 1)
        } else {
            write!(f, "Org{}.{}", self.org + 1, self.role)
        }
    }
}

/// The endorsement policy AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Policy {
    /// Satisfied by one valid endorsement matching the principal.
    Signed(Principal),
    /// All sub-policies must be satisfied.
    And(Vec<Policy>),
    /// Any sub-policy satisfies.
    Or(Vec<Policy>),
    /// At least `n` of the sub-policies must be satisfied.
    OutOf(usize, Vec<Policy>),
}

impl Policy {
    /// The `"K-outof-N orgs"` shorthand from the paper: `k` of the first
    /// `n` organizations' peers.
    pub fn k_out_of_n_orgs(k: usize, n: usize) -> Policy {
        Policy::OutOf(
            k,
            (0..n)
                .map(|o| Policy::Signed(Principal::peer(o as u8)))
                .collect(),
        )
    }

    /// Evaluates the policy against the set of valid endorsers.
    pub fn evaluate(&self, valid_endorsers: &[NodeId]) -> bool {
        match self {
            Policy::Signed(p) => valid_endorsers.iter().any(|&e| p.matches(e)),
            Policy::And(subs) => subs.iter().all(|s| s.evaluate(valid_endorsers)),
            Policy::Or(subs) => subs.iter().any(|s| s.evaluate(valid_endorsers)),
            Policy::OutOf(n, subs) => {
                subs.iter().filter(|s| s.evaluate(valid_endorsers)).count() >= *n
            }
        }
    }

    /// Evaluates the policy the way Fabric's software vscc does: walk
    /// every sub-expression sequentially and count the visits. The visit
    /// count drives the software cost model for complex policies (the
    /// paper's "(Org1 & Org2) | ..." policy measurably slows the software
    /// peer because "Fabric implementation evaluates all sub-expressions
    /// of a policy sequentially").
    pub fn evaluate_sequential(&self, valid_endorsers: &[NodeId]) -> (bool, usize) {
        match self {
            Policy::Signed(p) => (valid_endorsers.iter().any(|&e| p.matches(e)), 1),
            Policy::And(subs) => {
                let mut visits = 1;
                let mut ok = true;
                for s in subs {
                    let (sub_ok, sub_visits) = s.evaluate_sequential(valid_endorsers);
                    visits += sub_visits;
                    ok &= sub_ok;
                }
                (ok, visits)
            }
            Policy::Or(subs) => {
                let mut visits = 1;
                let mut ok = false;
                for s in subs {
                    let (sub_ok, sub_visits) = s.evaluate_sequential(valid_endorsers);
                    visits += sub_visits;
                    ok |= sub_ok;
                }
                (ok, visits)
            }
            Policy::OutOf(n, subs) => {
                let mut visits = 1;
                let mut count = 0;
                for s in subs {
                    let (sub_ok, sub_visits) = s.evaluate_sequential(valid_endorsers);
                    visits += sub_visits;
                    count += sub_ok as usize;
                }
                (count >= *n, visits)
            }
        }
    }

    /// All principals mentioned by the policy (used to generate the
    /// hardware register file and to pick endorsers in workloads).
    pub fn principals(&self) -> BTreeSet<Principal> {
        let mut out = BTreeSet::new();
        self.collect_principals(&mut out);
        out
    }

    fn collect_principals(&self, out: &mut BTreeSet<Principal>) {
        match self {
            Policy::Signed(p) => {
                out.insert(*p);
            }
            Policy::And(subs) | Policy::Or(subs) | Policy::OutOf(_, subs) => {
                for s in subs {
                    s.collect_principals(out);
                }
            }
        }
    }

    /// Minimum number of valid endorsements that can satisfy the policy
    /// (drives the hardware short-circuit benefit: a `2of3` policy needs
    /// only 2 verifications in the common case).
    ///
    /// This is the size of the smallest *set of distinct principals*
    /// whose endorsements satisfy the policy — one endorsement per
    /// principal suffices because the register file holds one bit per
    /// (org, role). For up to 20 principals the exact minimum is found
    /// by subset search (policies are tiny); beyond that a structural
    /// upper bound is used.
    pub fn min_satisfying(&self) -> usize {
        let principals: Vec<Principal> = self.principals().into_iter().collect();
        if principals.is_empty() {
            // Degenerate constant policies: 0 if trivially satisfied.
            return if self.evaluate(&[]) { 0 } else { usize::MAX };
        }
        if principals.len() <= 20 {
            // Exact: smallest subset of principals that satisfies.
            for size in 0..=principals.len() {
                if let Some(found) = Self::subset_of_size_satisfies(self, &principals, size) {
                    return found;
                }
            }
            return usize::MAX; // unsatisfiable even with everyone
        }
        self.min_satisfying_bound().min(principals.len())
    }

    fn subset_of_size_satisfies(
        policy: &Policy,
        principals: &[Principal],
        size: usize,
    ) -> Option<usize> {
        // Iterate subsets of exactly `size` principals.
        fn rec(
            policy: &Policy,
            principals: &[Principal],
            chosen: &mut Vec<NodeId>,
            start: usize,
            remaining: usize,
        ) -> bool {
            if remaining == 0 {
                return policy.evaluate(chosen);
            }
            for i in start..principals.len() {
                let p = principals[i];
                let node = NodeId::new(p.org, p.role, 0).expect("seq 0 fits");
                chosen.push(node);
                if rec(policy, principals, chosen, i + 1, remaining - 1) {
                    chosen.pop();
                    return true;
                }
                chosen.pop();
            }
            false
        }
        let mut chosen = Vec::with_capacity(size);
        if rec(policy, principals, &mut chosen, 0, size) {
            Some(size)
        } else {
            None
        }
    }

    /// Structural upper bound on [`Policy::min_satisfying`] (exact when
    /// no principal repeats across branches).
    fn min_satisfying_bound(&self) -> usize {
        match self {
            Policy::Signed(_) => 1,
            Policy::And(subs) => subs.iter().map(Policy::min_satisfying_bound).sum(),
            Policy::Or(subs) => subs
                .iter()
                .map(Policy::min_satisfying_bound)
                .min()
                .unwrap_or(usize::MAX),
            Policy::OutOf(n, subs) => {
                let mut costs: Vec<usize> = subs.iter().map(Policy::min_satisfying_bound).collect();
                costs.sort_unstable();
                costs.iter().take(*n).sum()
            }
        }
    }

    /// Number of boolean gates when compiled to the hardware circuit —
    /// input to the Table-1 resource model.
    pub fn gate_count(&self) -> usize {
        match self {
            Policy::Signed(_) => 0,
            Policy::And(subs) | Policy::Or(subs) => {
                1 + subs.iter().map(Policy::gate_count).sum::<usize>()
            }
            Policy::OutOf(n, subs) => {
                // Expanded to an OR of ANDs over all n-combinations.
                let combos = n_choose_k(subs.len(), *n);
                1 + combos + subs.iter().map(Policy::gate_count).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Signed(p) => write!(f, "{p}"),
            Policy::And(subs) => write_joined(f, subs, " & "),
            Policy::Or(subs) => write_joined(f, subs, " | "),
            Policy::OutOf(n, subs) => {
                write!(f, "{n}-outof-(")?;
                for (i, s) in subs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn write_joined(f: &mut fmt::Formatter<'_>, subs: &[Policy], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, s) in subs.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        write!(f, "{s}")?;
    }
    write!(f, ")")
}

fn n_choose_k(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1usize;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(org: u8) -> NodeId {
        NodeId::new(org, Role::Peer, 0).unwrap()
    }

    #[test]
    fn signed_policy() {
        let p = Policy::Signed(Principal::peer(0));
        assert!(p.evaluate(&[peer(0)]));
        assert!(!p.evaluate(&[peer(1)]));
        assert!(!p.evaluate(&[]));
        // role must match
        let client = NodeId::new(0, Role::Client, 0).unwrap();
        assert!(!p.evaluate(&[client]));
    }

    #[test]
    fn and_or_semantics() {
        let and = Policy::And(vec![
            Policy::Signed(Principal::peer(0)),
            Policy::Signed(Principal::peer(1)),
        ]);
        assert!(and.evaluate(&[peer(0), peer(1)]));
        assert!(!and.evaluate(&[peer(0)]));
        let or = Policy::Or(vec![
            Policy::Signed(Principal::peer(0)),
            Policy::Signed(Principal::peer(1)),
        ]);
        assert!(or.evaluate(&[peer(1)]));
        assert!(!or.evaluate(&[peer(2)]));
    }

    #[test]
    fn out_of_semantics() {
        let p = Policy::k_out_of_n_orgs(2, 3);
        assert!(p.evaluate(&[peer(0), peer(2)]));
        assert!(p.evaluate(&[peer(0), peer(1), peer(2)]));
        assert!(!p.evaluate(&[peer(1)]));
        assert!(!p.evaluate(&[peer(1), peer(5)]));
    }

    #[test]
    fn min_satisfying_counts() {
        assert_eq!(Policy::k_out_of_n_orgs(2, 3).min_satisfying(), 2);
        assert_eq!(Policy::k_out_of_n_orgs(3, 3).min_satisfying(), 3);
        let complex = Policy::Or(vec![
            Policy::And(vec![
                Policy::Signed(Principal::peer(0)),
                Policy::Signed(Principal::peer(1)),
            ]),
            Policy::Signed(Principal::peer(2)),
        ]);
        assert_eq!(complex.min_satisfying(), 1);
    }

    #[test]
    fn sequential_visits_all_subexpressions() {
        // The paper's complex policy: 5 AND pairs OR'd together.
        let pairs = [(0, 1), (0, 3), (1, 2), (1, 3), (2, 3)];
        let complex = Policy::Or(
            pairs
                .iter()
                .map(|&(a, b)| {
                    Policy::And(vec![
                        Policy::Signed(Principal::peer(a)),
                        Policy::Signed(Principal::peer(b)),
                    ])
                })
                .collect(),
        );
        let (ok, visits) = complex.evaluate_sequential(&[peer(0), peer(1)]);
        assert!(ok);
        // 1 (or) + 5 * (1 and + 2 signed) = 16 — all visited, no shortcut.
        assert_eq!(visits, 16);
    }

    #[test]
    fn principals_collected() {
        let p = Policy::k_out_of_n_orgs(2, 3);
        let principals = p.principals();
        assert_eq!(principals.len(), 3);
        assert!(principals.contains(&Principal::peer(0)));
        assert!(principals.contains(&Principal::peer(2)));
    }

    #[test]
    fn gate_counts() {
        // 2of3 -> OR gate + 3 AND combos
        assert_eq!(Policy::k_out_of_n_orgs(2, 3).gate_count(), 4);
        // plain AND of two signed -> 1 gate
        let and = Policy::And(vec![
            Policy::Signed(Principal::peer(0)),
            Policy::Signed(Principal::peer(1)),
        ]);
        assert_eq!(and.gate_count(), 1);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for p in [
            Policy::k_out_of_n_orgs(2, 3),
            Policy::And(vec![
                Policy::Signed(Principal::peer(0)),
                Policy::Signed(Principal::peer(1)),
            ]),
        ] {
            let shown = p.to_string();
            let reparsed = parse(&shown).unwrap();
            assert_eq!(
                reparsed.evaluate(&[peer(0), peer(1)]),
                p.evaluate(&[peer(0), peer(1)])
            );
        }
    }
}
