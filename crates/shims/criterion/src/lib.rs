//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate provides a
//! small timing harness with criterion's API shape: benchmark groups,
//! `bench_function`, and the `criterion_group!`/`criterion_main!` macros
//! (bench targets set `harness = false`). Each benchmark is warmed up,
//! then timed over enough iterations to smooth scheduler noise; median
//! and mean per-iteration times are printed.

use std::time::{Duration, Instant};

/// Top-level handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a fresh harness.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, f);
        self
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording per-iteration wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: target ~20ms per sample batch.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / per_sample);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name:<28} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let mean: Duration = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "  {name:<28} median {:>12?}  mean {:>12?}  ({} samples)",
        median,
        mean,
        b.samples.len()
    );
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
