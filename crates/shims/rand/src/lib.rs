//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate supplies the subset of the `rand 0.8` API the workspace uses:
//! the [`Rng`] and [`SeedableRng`] traits, a deterministic
//! [`rngs::StdRng`] (xoshiro256++), and [`seq::SliceRandom::shuffle`].
//! Everything is deterministic given a seed — exactly what the
//! reproduction's test networks and workload drivers want.

/// Types that can produce uniformly distributed random data.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Values samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start() + u * (self.end() - self.start())
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's
    /// ChaCha-based `StdRng`; statistical quality is ample for
    /// simulation and test-vector generation, and it is fully
    /// reproducible from its seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Item type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
