//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the small subset of the `bytes` API the protocol code
//! uses: [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor
//! traits. `Bytes` here is a plain `Arc<[u8]>` (cheap clones, no
//! sub-slicing views), which is all the BMac packet codec needs.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            inner: Arc::from(&[][..]),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Arc::from(data),
        }
    }

    /// Wraps a static slice (copied here; lifetimes stay simple).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            inner: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            inner: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read cursor over a byte slice. Implemented for `&[u8]` like the real
/// crate; reads consume from the front and panic when out of bounds,
/// matching `bytes` semantics.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Copies `dst.len()` bytes out of the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor for byte buffers.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16(0x1234);
        buf.put_u32(0xdeadbeef);
        buf.put_u64(42);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xdeadbeef);
        assert_eq!(cursor.get_u64(), 42);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
