//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the no-poison `lock()`/`read()`/`write()` API the workspace
//! uses. Poisoned std locks are recovered transparently: a panic while a
//! lock is held aborts the holding test anyway, and state behind these
//! locks is only shared between benchmark/validator threads that never
//! intentionally panic mid-update.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn recover<G>(result: LockResult<G>) -> G {
    match result {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.inner.read())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.inner.write())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
