//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the no-poison `lock()`/`read()`/`write()` API the workspace
//! uses. Poisoned std locks are recovered transparently: a panic while a
//! lock is held aborts the holding test anyway, and state behind these
//! locks is only shared between benchmark/validator threads that never
//! intentionally panic mid-update.
//!
//! # `check-sync` instrumentation
//!
//! With the `check-sync` feature, every lock carries a
//! [`fabric_check::LockTag`] and acquisitions flow through the
//! fabric-check lock-order graph: cycle detection, `LOCK_ORDER.txt`
//! manifest enforcement, seeded schedule perturbation, and per-label
//! hold/contention accounting. The [`Mutex::named`]/[`RwLock::named`]
//! constructors give a lock its allocation-site label (instances
//! sharing a label share a graph node); unnamed locks get per-instance
//! nodes. The feature only *compiles* the hooks — checking stays off
//! until `FABRIC_CHECK_SYNC=1` or `fabric_check::enable()` turns it on
//! at runtime (one atomic load per acquisition when off), so building
//! with the feature does not perturb uninstrumented workloads.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "check-sync")]
    tag: fabric_check::LockTag,
    inner: sync::Mutex<T>,
}

fn recover<G>(result: LockResult<G>) -> G {
    match result {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Creates a new (anonymous) mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "check-sync")]
            tag: fabric_check::LockTag::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a mutex labeled for the fabric-check lock-order graph.
    /// Labels follow the `crate.site` convention and (except `test.*`)
    /// must be covered by `crates/fabric-check/LOCK_ORDER.txt`; without
    /// the `check-sync` feature the label compiles away.
    #[cfg(feature = "check-sync")]
    pub const fn named(label: &'static str, value: T) -> Self {
        Mutex {
            tag: fabric_check::LockTag::named(label),
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a mutex labeled for the fabric-check lock-order graph.
    /// Labels follow the `crate.site` convention and (except `test.*`)
    /// must be covered by `crates/fabric-check/LOCK_ORDER.txt`; without
    /// the `check-sync` feature the label compiles away.
    #[cfg(not(feature = "check-sync"))]
    pub const fn named(_label: &'static str, value: T) -> Self {
        Self::new(value)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[cfg(not(feature = "check-sync"))]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }

    /// Acquires the lock, blocking until available.
    #[cfg(feature = "check-sync")]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let Some(pending) = fabric_check::before_acquire(&self.tag, fabric_check::Mode::Exclusive)
        else {
            return MutexGuard {
                token: None,
                inner: std::mem::ManuallyDrop::new(recover(self.inner.lock())),
            };
        };
        let (inner, contended, block_ns) = match self.inner.try_lock() {
            Ok(g) => (g, false, 0),
            Err(sync::TryLockError::Poisoned(p)) => (p.into_inner(), false, 0),
            Err(sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                let g = recover(self.inner.lock());
                (g, true, start.elapsed().as_nanos() as u64)
            }
        };
        MutexGuard {
            token: Some(fabric_check::after_acquire(pending, contended, block_ns)),
            inner: std::mem::ManuallyDrop::new(inner),
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

/// RAII guard for [`Mutex::lock`].
#[cfg(not(feature = "check-sync"))]
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// RAII guard for [`Mutex::lock`], carrying its fabric-check held
/// token. `ManuallyDrop` lets [`Condvar::wait`] move the std guard out
/// while the token is parked on a reacquire ticket.
#[cfg(feature = "check-sync")]
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    token: Option<fabric_check::HeldToken>,
    inner: std::mem::ManuallyDrop<sync::MutexGuard<'a, T>>,
}

#[cfg(feature = "check-sync")]
impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "check-sync")]
impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "check-sync")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t) = self.token.take() {
            fabric_check::release(t);
        }
        // Release the std guard (and the lock) after the token pop so
        // the held-stack never claims a lock this thread no longer has.
        unsafe { std::mem::ManuallyDrop::drop(&mut self.inner) }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "check-sync")]
    tag: fabric_check::LockTag,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new (anonymous) reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "check-sync")]
            tag: fabric_check::LockTag::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a labeled reader-writer lock; see [`Mutex::named`].
    #[cfg(feature = "check-sync")]
    pub const fn named(label: &'static str, value: T) -> Self {
        RwLock {
            tag: fabric_check::LockTag::named(label),
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a labeled reader-writer lock; see [`Mutex::named`].
    #[cfg(not(feature = "check-sync"))]
    pub const fn named(_label: &'static str, value: T) -> Self {
        Self::new(value)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    #[cfg(not(feature = "check-sync"))]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.inner.read())
    }

    /// Acquires a shared read lock.
    #[cfg(feature = "check-sync")]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let Some(pending) = fabric_check::before_acquire(&self.tag, fabric_check::Mode::Shared)
        else {
            return RwLockReadGuard {
                token: None,
                inner: recover(self.inner.read()),
            };
        };
        let (inner, contended, block_ns) = match self.inner.try_read() {
            Ok(g) => (g, false, 0),
            Err(sync::TryLockError::Poisoned(p)) => (p.into_inner(), false, 0),
            Err(sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                let g = recover(self.inner.read());
                (g, true, start.elapsed().as_nanos() as u64)
            }
        };
        RwLockReadGuard {
            token: Some(fabric_check::after_acquire(pending, contended, block_ns)),
            inner,
        }
    }

    /// Acquires an exclusive write lock.
    #[cfg(not(feature = "check-sync"))]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.inner.write())
    }

    /// Acquires an exclusive write lock.
    #[cfg(feature = "check-sync")]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let Some(pending) = fabric_check::before_acquire(&self.tag, fabric_check::Mode::Exclusive)
        else {
            return RwLockWriteGuard {
                token: None,
                inner: recover(self.inner.write()),
            };
        };
        let (inner, contended, block_ns) = match self.inner.try_write() {
            Ok(g) => (g, false, 0),
            Err(sync::TryLockError::Poisoned(p)) => (p.into_inner(), false, 0),
            Err(sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                let g = recover(self.inner.write());
                (g, true, start.elapsed().as_nanos() as u64)
            }
        };
        RwLockWriteGuard {
            token: Some(fabric_check::after_acquire(pending, contended, block_ns)),
            inner,
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

/// RAII guard for [`RwLock::read`].
#[cfg(not(feature = "check-sync"))]
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
#[cfg(not(feature = "check-sync"))]
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// RAII guard for [`RwLock::read`] with its fabric-check held token.
#[cfg(feature = "check-sync")]
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    token: Option<fabric_check::HeldToken>,
    inner: sync::RwLockReadGuard<'a, T>,
}

#[cfg(feature = "check-sync")]
impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "check-sync")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t) = self.token.take() {
            fabric_check::release(t);
        }
    }
}

/// RAII guard for [`RwLock::write`] with its fabric-check held token.
#[cfg(feature = "check-sync")]
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    token: Option<fabric_check::HeldToken>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

#[cfg(feature = "check-sync")]
impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "check-sync")]
impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "check-sync")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(t) = self.token.take() {
            fabric_check::release(t);
        }
    }
}

/// A condition variable with a `std`-style `wait(guard) -> guard` API
/// (the workspace's wait loops re-bind the guard), integrated with the
/// fabric-check held stack under `check-sync`: the wait releases the
/// lock's token and the wake-up reacquisition re-runs the full order
/// check, since it can deadlock like any other acquisition.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the mutex while
    /// parked; returns the reacquired guard.
    #[cfg(not(feature = "check-sync"))]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        recover(self.inner.wait(guard))
    }

    /// Blocks until notified, atomically releasing the mutex while
    /// parked; returns the reacquired guard.
    #[cfg(feature = "check-sync")]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let ticket = guard.token.take().and_then(fabric_check::condvar_release);
        let inner = unsafe { std::mem::ManuallyDrop::take(&mut guard.inner) };
        std::mem::forget(guard);
        let inner = recover(self.inner.wait(inner));
        MutexGuard {
            token: ticket.map(fabric_check::reacquire),
            inner: std::mem::ManuallyDrop::new(inner),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn named_mutex_basic() {
        let m = Mutex::named("test.shim_mutex", 1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn named_rwlock_basic() {
        let l = RwLock::named("test.shim_rwlock", 7u64);
        assert_eq!(*l.read(), 7);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn condvar_wait_roundtrip() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::named("test.shim_cv", false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                done = cv.wait(done);
            }
            true
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().expect("waiter thread"));
    }
}
