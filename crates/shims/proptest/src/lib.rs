//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this workspace-local
//! crate reimplements the slice of the proptest API the test suites use:
//! the [`Strategy`] trait with `prop_map`/`prop_recursive`, `any::<T>()`
//! for primitives and arrays, range and tuple strategies, a regex-lite
//! string strategy (`"[chars]{m,n}"`), `collection::vec`/`btree_map`,
//! `option::of`, and the `proptest!`/`prop_assert*!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (deterministic across runs) and failures are *not* shrunk — the
//! failing input is printed as-is. For regression-style property suites
//! that trade-off is fine, and it keeps this shim small.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

// The `proptest!` macro expansion needs the rand shim regardless of the
// calling crate's own dependency list.
#[doc(hidden)]
pub use rand as __rand;

/// RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Something that can generate random values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind an `Arc` so it can be cloned and
    /// stored uniformly (used by [`prop_oneof!`] and recursion).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Builds recursive structures: `self` generates leaves, and `f`
    /// wraps an inner strategy into a deeper one, up to `depth` levels.
    /// The `_desired_size`/`_expected_branch_size` parameters exist for
    /// signature parity with proptest and are unused here.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = f(strat).boxed();
            // 25% chance to stop at a leaf at each level so generated
            // trees vary in depth.
            strat = Union {
                arms: vec![leaf.clone(), deeper.clone(), deeper.clone(), deeper],
            }
            .boxed();
        }
        strat
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Arc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Uniform choice between same-valued strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Chooses uniformly among `arms` each generation.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of an [`Arbitrary`] type.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward edge values: proptest finds boundary bugs
                // because its generators favour extremes; emulate that.
                match rng.gen_range(0u8..8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.gen::<u64>() as $t,
                }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

// Integer ranges are strategies, as in proptest.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f64);

// Tuples of strategies are strategies.
macro_rules! tuple_strategy {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A 0);
tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);

/// Regex-lite string strategy: `&str` patterns of the form
/// `[chars]{m,n}`, `[chars]{m}`, or `[chars]` (single char), where the
/// class may contain literal characters and `a-z`-style ranges. This is
/// the subset the workspace's property tests use; anything fancier
/// panics with a clear message rather than silently misgenerating.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_char_class_pattern(self);
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_char_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let bytes: Vec<char> = pattern.chars().collect();
    assert!(
        bytes.first() == Some(&'['),
        "string strategy shim only supports '[class]{{m,n}}' patterns, got {pattern:?}"
    );
    let close = bytes
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| panic!("unterminated char class in {pattern:?}"));
    let class = &bytes[1..close];
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "inverted range in {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");
    let rest: String = bytes[close + 1..].iter().collect();
    if rest.is_empty() {
        return (alphabet, 1, 1);
    }
    assert!(
        rest.starts_with('{') && rest.ends_with('}'),
        "string strategy shim only supports a {{m,n}} quantifier, got {pattern:?}"
    );
    let inner = &rest[1..rest.len() - 1];
    let (min, max) = match inner.split_once(',') {
        Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
        None => {
            let m: usize = inner.trim().parse().unwrap();
            (m, m)
        }
    };
    assert!(min <= max, "inverted quantifier in {pattern:?}");
    (alphabet, min, max)
}

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeMap;

    /// Acceptable length specifications for collections.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper length bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty collection size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with *up to* the requested number of
    /// entries (duplicate keys collapse, as in proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl IntoSizeRange,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeMapStrategy {
            keys,
            values,
            min,
            max,
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        min: usize,
        max: usize,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.min..=self.max);
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error type carried by `prop_assert*` failures.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking immediately) so the harness can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case when its inputs don't satisfy a
/// precondition. The shim simply skips the case (no rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in strategy1(), y in strategy2()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let config = $config;
            // Seed differs per property (by name, FNV-1a) but is stable
            // across runs, so failures are reproducible.
            let seed = {
                let name = concat!(module_path!(), "::", stringify!($name));
                let mut h: u64 = 0xcbf29ce484222325;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                }
                h
            };
            let mut rng = <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                // `$arg` is a pattern (`x`, `mut x`, ...), so values are
                // drawn into a tuple and bound by destructuring; the
                // tuple's Debug output doubles as the failure report.
                let inputs = ( $($crate::Strategy::generate(&($strategy), &mut rng),)+ );
                let dump = format!("{:?}", &inputs);
                let result: $crate::TestCaseResult = {
                    let ($($arg,)+) = inputs;
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })()
                };
                if let Err($crate::TestCaseError(msg)) = result {
                    panic!(
                        "property {} failed at case {}/{}:\n{}\ninputs {} = {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        msg,
                        stringify!(($($arg),+)),
                        dump,
                    );
                }
            }
        }
    )*};
    // No inner config attribute: run with the default configuration.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $(#[$meta])* fn $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn char_class_parsing() {
        let (alphabet, min, max) = super::parse_char_class_pattern("[a-c]{2,5}");
        assert_eq!(alphabet, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (2, 5));
        let (alphabet, min, max) = super::parse_char_class_pattern("[xy]");
        assert_eq!(alphabet, vec!['x', 'y']);
        assert_eq!((min, max), (1, 1));
        let (alphabet, _, _) = super::parse_char_class_pattern("[ ()&|Oorgf0-9.,-]{0,64}");
        assert!(alphabet.contains(&'('));
        assert!(alphabet.contains(&'-'));
        assert!(alphabet.contains(&'7'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 0usize..100) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 100);
        }

        #[test]
        fn strings_match_pattern(s in "[a-f]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='f').contains(&c)));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..3).prop_map(|x| x as u32),
            (10u8..13).prop_map(|x| x as u32),
        ]) {
            prop_assert!(v < 3 || (10..13).contains(&v));
        }
    }
}
