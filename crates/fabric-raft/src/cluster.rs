//! In-memory Raft cluster harness with fault injection.
//!
//! Drives a set of [`RaftNode`]s over a simulated message bus with
//! configurable drop rates and partitions. Used by the ordering-service
//! tests and by the integration suite to exercise leader failover — the
//! multi-orderer deployment the paper describes ("Only the lead orderer
//! in multi-node Raft ordering service sends the block through our
//! protocol", §3.5).

use std::collections::{HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Envelope, NodeId, RaftConfig, RaftNode, RaftState};

/// A deterministic multi-node cluster simulation.
#[derive(Debug)]
pub struct Cluster {
    nodes: HashMap<NodeId, RaftNode>,
    in_flight: VecDeque<Envelope>,
    partitioned: HashSet<NodeId>,
    drop_rate: f64,
    rng: StdRng,
    delivered: u64,
    dropped: u64,
}

impl Cluster {
    /// Creates a cluster of `n` nodes with ids `1..=n`.
    pub fn new(n: usize, seed: u64) -> Self {
        let ids: Vec<NodeId> = (1..=n as NodeId).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes = HashMap::new();
        for &id in &ids {
            let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
            let mut node = RaftNode::new(id, peers, RaftConfig::default());
            node.randomize_deadline(&mut rng);
            nodes.insert(id, node);
        }
        Cluster {
            nodes,
            in_flight: VecDeque::new(),
            partitioned: HashSet::new(),
            drop_rate: 0.0,
            rng,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Sets the probability that any message is silently dropped.
    pub fn set_drop_rate(&mut self, rate: f64) {
        self.drop_rate = rate.clamp(0.0, 1.0);
    }

    /// Isolates a node (messages to/from it are dropped).
    pub fn partition(&mut self, id: NodeId) {
        self.partitioned.insert(id);
    }

    /// Heals a partition.
    pub fn heal(&mut self, id: NodeId) {
        self.partitioned.remove(&id);
    }

    /// One simulation round: tick every node, then deliver all in-flight
    /// messages (subject to partitions and drops).
    pub fn round(&mut self) {
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for id in &ids {
            let out = self.nodes.get_mut(id).expect("node exists").tick();
            self.in_flight.extend(out);
        }
        self.deliver_all();
    }

    /// Runs rounds until a leader exists or `max_rounds` elapse; returns
    /// the leader id when elected.
    pub fn run_until_leader(&mut self, max_rounds: usize) -> Option<NodeId> {
        for _ in 0..max_rounds {
            self.round();
            if let Some(l) = self.leader() {
                return Some(l);
            }
        }
        None
    }

    /// The current unique leader, if exactly one node in the highest term
    /// considers itself leader.
    pub fn leader(&self) -> Option<NodeId> {
        let max_term = self.nodes.values().map(|n| n.term()).max()?;
        let leaders: Vec<NodeId> = self
            .nodes
            .values()
            .filter(|n| n.state() == RaftState::Leader && n.term() == max_term)
            .map(|n| n.id())
            .collect();
        if leaders.len() == 1 {
            Some(leaders[0])
        } else {
            None
        }
    }

    /// Proposes a command on the current leader.
    ///
    /// # Panics
    ///
    /// Panics when no leader exists; call [`Cluster::run_until_leader`]
    /// first.
    pub fn propose(&mut self, command: Vec<u8>) {
        let leader = self.leader().expect("no leader");
        let out = self
            .nodes
            .get_mut(&leader)
            .expect("leader exists")
            .propose(command)
            .expect("leader accepts proposals");
        self.in_flight.extend(out);
    }

    /// Access a node (e.g. to drain committed entries).
    pub fn node_mut(&mut self, id: NodeId) -> &mut RaftNode {
        self.nodes.get_mut(&id).expect("unknown node id")
    }

    /// Access a node immutably.
    pub fn node(&self, id: NodeId) -> &RaftNode {
        self.nodes.get(&id).expect("unknown node id")
    }

    /// Ids of all nodes.
    pub fn ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// `(delivered, dropped)` message counters.
    pub fn message_stats(&self) -> (u64, u64) {
        (self.delivered, self.dropped)
    }

    fn deliver_all(&mut self) {
        // Deliver everything currently in flight, including cascades, but
        // bound the cascade to avoid infinite chatter in one round.
        let mut budget = 10_000;
        while let Some(env) = self.in_flight.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            if self.partitioned.contains(&env.from) || self.partitioned.contains(&env.to) {
                self.dropped += 1;
                continue;
            }
            if self.drop_rate > 0.0 && self.rng.gen_bool(self.drop_rate) {
                self.dropped += 1;
                continue;
            }
            self.delivered += 1;
            if let Some(node) = self.nodes.get_mut(&env.to) {
                let out = node.step(env.from, env.message);
                self.in_flight.extend(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_node_cluster_elects_leader() {
        let mut c = Cluster::new(3, 42);
        let leader = c.run_until_leader(200).expect("leader elected");
        assert!(c.ids().contains(&leader));
    }

    #[test]
    fn committed_entries_replicate_everywhere() {
        let mut c = Cluster::new(3, 7);
        c.run_until_leader(200).unwrap();
        for i in 0..5u8 {
            c.propose(vec![i]);
        }
        for _ in 0..20 {
            c.round();
        }
        for id in c.ids() {
            let committed = c.node_mut(id).take_committed();
            assert_eq!(
                committed,
                vec![vec![0], vec![1], vec![2], vec![3], vec![4]],
                "node {id}"
            );
        }
    }

    #[test]
    fn leader_failover_preserves_committed_log() {
        let mut c = Cluster::new(5, 99);
        let first = c.run_until_leader(300).unwrap();
        c.propose(b"before".to_vec());
        for _ in 0..20 {
            c.round();
        }
        c.partition(first);
        let second = loop {
            c.round();
            if let Some(l) = c.leader() {
                if l != first {
                    break l;
                }
            }
        };
        assert_ne!(first, second);
        c.propose(b"after".to_vec());
        for _ in 0..30 {
            c.round();
        }
        let committed = c.node_mut(second).take_committed();
        assert_eq!(committed, vec![b"before".to_vec(), b"after".to_vec()]);
    }

    #[test]
    fn cluster_survives_lossy_network() {
        let mut c = Cluster::new(3, 1234);
        c.set_drop_rate(0.2);
        let _ = c.run_until_leader(500).expect("leader despite losses");
        c.propose(b"x".to_vec());
        for _ in 0..100 {
            c.round();
        }
        // At least the leader has committed the entry.
        let leader = c.leader().unwrap();
        assert!(c.node(leader).commit_index() >= 1);
        let (_, dropped) = c.message_stats();
        assert!(dropped > 0, "drops actually happened");
    }

    #[test]
    fn at_most_one_leader_per_term() {
        // Run many rounds and check the invariant at each step.
        let mut c = Cluster::new(5, 2024);
        for _ in 0..300 {
            c.round();
            let mut by_term: HashMap<u64, usize> = HashMap::new();
            for id in c.ids() {
                let n = c.node(id);
                if n.state() == RaftState::Leader {
                    *by_term.entry(n.term()).or_default() += 1;
                }
            }
            for (term, leaders) in by_term {
                assert!(leaders <= 1, "term {term} has {leaders} leaders");
            }
        }
    }
}
