//! Raft consensus for the Fabric ordering service.
//!
//! Fabric's ordering service establishes a total order over transactions;
//! "current consensus is based on Raft" (paper §2.1.1). The evaluation
//! uses a single-orderer Raft service, but the substrate here is a full
//! multi-node implementation: leader election with randomized timeouts,
//! log replication, commit-index advancement, and term safety, driven as
//! a deterministic state machine (ticks + message steps) so tests and the
//! network simulator control time and delivery exactly.
//!
//! The design follows the Raft paper (Ongaro & Ousterhout, ATC'14,
//! reference \[29\] of the reproduced paper) with the usual simplifications
//! for an in-process deployment: no persistence layer (state survives as
//! long as the node object) and no membership changes.

#![warn(missing_docs)]

pub mod cluster;

use std::collections::HashMap;
use std::fmt;

use rand::Rng;

/// Identifier of a Raft node.
pub type NodeId = u64;
/// A Raft term.
pub type Term = u64;
/// Index into the replicated log (1-based; 0 = empty).
pub type LogIndex = u64;

/// A replicated log entry carrying opaque command bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Term in which the entry was created.
    pub term: Term,
    /// The ordered command (for the orderer: a marshaled envelope or a
    /// block-cut marker).
    pub command: Vec<u8>,
}

/// Messages exchanged between Raft nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Candidate requesting a vote.
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// Candidate requesting the vote.
        candidate: NodeId,
        /// Index of the candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of the candidate's last log entry.
        last_log_term: Term,
    },
    /// Vote response.
    RequestVoteResponse {
        /// Responder's term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// The leader.
        leader: NodeId,
        /// Index of the entry preceding `entries`.
        prev_log_index: LogIndex,
        /// Term of that entry.
        prev_log_term: Term,
        /// New entries (empty for heartbeats).
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        leader_commit: LogIndex,
    },
    /// Replication response.
    AppendEntriesResponse {
        /// Responder's term.
        term: Term,
        /// Whether the append matched.
        success: bool,
        /// Highest index known replicated on the follower (valid when
        /// `success`).
        match_index: LogIndex,
    },
}

/// An outbound message with its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Destination node.
    pub to: NodeId,
    /// Source node.
    pub from: NodeId,
    /// The message.
    pub message: Message,
}

/// Role of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaftState {
    /// Passive replica.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Serving client proposals.
    Leader,
}

impl fmt::Display for RaftState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaftState::Follower => write!(f, "follower"),
            RaftState::Candidate => write!(f, "candidate"),
            RaftState::Leader => write!(f, "leader"),
        }
    }
}

/// Errors from proposing commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposeError {
    /// Only the leader accepts proposals.
    NotLeader {
        /// The node believed to be leader, if known.
        hint: Option<NodeId>,
    },
}

impl fmt::Display for ProposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProposeError::NotLeader { hint: Some(l) } => {
                write!(f, "not the leader; try node {l}")
            }
            ProposeError::NotLeader { hint: None } => write!(f, "not the leader"),
        }
    }
}

impl std::error::Error for ProposeError {}

/// Configuration knobs (in ticks; one tick ≈ 10 ms of wall clock in a
/// production deployment, but tests drive ticks directly).
#[derive(Debug, Clone, Copy)]
pub struct RaftConfig {
    /// Ticks without leader contact before starting an election
    /// (randomized in `[election_ticks, 2*election_ticks)`).
    pub election_ticks: u32,
    /// Leader heartbeat period in ticks.
    pub heartbeat_ticks: u32,
    /// Maximum entries per AppendEntries message.
    pub max_batch: usize,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_ticks: 10,
            heartbeat_ticks: 3,
            max_batch: 64,
        }
    }
}

/// A single Raft node as a deterministic state machine.
///
/// Drive it with [`RaftNode::tick`] and [`RaftNode::step`]; both return
/// outbound [`Envelope`]s to deliver. Committed commands are drained with
/// [`RaftNode::take_committed`].
#[derive(Debug)]
pub struct RaftNode {
    id: NodeId,
    peers: Vec<NodeId>,
    config: RaftConfig,
    state: RaftState,
    term: Term,
    voted_for: Option<NodeId>,
    log: Vec<LogEntry>,
    commit_index: LogIndex,
    applied_index: LogIndex,
    leader_hint: Option<NodeId>,
    // candidate state
    votes: usize,
    // leader state
    next_index: HashMap<NodeId, LogIndex>,
    match_index: HashMap<NodeId, LogIndex>,
    // timers
    ticks_since_contact: u32,
    election_deadline: u32,
    ticks_since_heartbeat: u32,
    rng_seed: u64,
}

impl RaftNode {
    /// Creates a node. `peers` excludes `id`.
    pub fn new(id: NodeId, peers: Vec<NodeId>, config: RaftConfig) -> Self {
        let mut node = RaftNode {
            id,
            peers,
            config,
            state: RaftState::Follower,
            term: 0,
            voted_for: None,
            log: Vec::new(),
            commit_index: 0,
            applied_index: 0,
            leader_hint: None,
            votes: 0,
            next_index: HashMap::new(),
            match_index: HashMap::new(),
            ticks_since_contact: 0,
            election_deadline: 0,
            ticks_since_heartbeat: 0,
            rng_seed: id.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
        };
        node.reset_election_deadline();
        node
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current role.
    pub fn state(&self) -> RaftState {
        self.state
    }

    /// Current term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// Known leader, if any.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader_hint
    }

    /// Highest committed index.
    pub fn commit_index(&self) -> LogIndex {
        self.commit_index
    }

    /// Length of the log.
    pub fn log_len(&self) -> LogIndex {
        self.log.len() as LogIndex
    }

    /// Proposes a command; only valid on the leader.
    ///
    /// # Errors
    ///
    /// [`ProposeError::NotLeader`] with a leader hint when known.
    pub fn propose(&mut self, command: Vec<u8>) -> Result<Vec<Envelope>, ProposeError> {
        if self.state != RaftState::Leader {
            return Err(ProposeError::NotLeader {
                hint: self.leader_hint,
            });
        }
        self.log.push(LogEntry {
            term: self.term,
            command,
        });
        // Single-node clusters commit immediately.
        if self.peers.is_empty() {
            self.commit_index = self.log.len() as LogIndex;
            return Ok(Vec::new());
        }
        Ok(self.broadcast_append())
    }

    /// Advances timers by one tick.
    pub fn tick(&mut self) -> Vec<Envelope> {
        match self.state {
            RaftState::Leader => {
                self.ticks_since_heartbeat += 1;
                if self.ticks_since_heartbeat >= self.config.heartbeat_ticks {
                    self.ticks_since_heartbeat = 0;
                    return self.broadcast_append();
                }
                Vec::new()
            }
            RaftState::Follower | RaftState::Candidate => {
                self.ticks_since_contact += 1;
                if self.ticks_since_contact >= self.election_deadline {
                    return self.start_election();
                }
                Vec::new()
            }
        }
    }

    /// Handles an incoming message; returns responses to send.
    pub fn step(&mut self, from: NodeId, message: Message) -> Vec<Envelope> {
        match message {
            Message::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => self.handle_request_vote(from, term, candidate, last_log_index, last_log_term),
            Message::RequestVoteResponse { term, granted } => {
                self.handle_vote_response(term, granted)
            }
            Message::AppendEntries {
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => self.handle_append(
                from,
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            ),
            Message::AppendEntriesResponse {
                term,
                success,
                match_index,
            } => self.handle_append_response(from, term, success, match_index),
        }
    }

    /// Drains newly committed commands, in order.
    pub fn take_committed(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while self.applied_index < self.commit_index {
            self.applied_index += 1;
            out.push(self.log[(self.applied_index - 1) as usize].command.clone());
        }
        out
    }

    fn reset_election_deadline(&mut self) {
        // xorshift for deterministic-but-spread deadlines without pulling
        // an RNG handle through every call.
        self.rng_seed ^= self.rng_seed << 13;
        self.rng_seed ^= self.rng_seed >> 7;
        self.rng_seed ^= self.rng_seed << 17;
        let spread = (self.rng_seed % self.config.election_ticks as u64) as u32;
        self.election_deadline = self.config.election_ticks + spread;
        self.ticks_since_contact = 0;
    }

    /// Re-randomizes the election deadline from an external RNG (used by
    /// the cluster harness to explore different interleavings).
    pub fn randomize_deadline<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.rng_seed = rng.gen();
        self.reset_election_deadline();
    }

    fn last_log_term(&self) -> Term {
        self.log.last().map(|e| e.term).unwrap_or(0)
    }

    fn become_follower(&mut self, term: Term, leader: Option<NodeId>) {
        self.state = RaftState::Follower;
        if term > self.term {
            self.term = term;
            self.voted_for = None;
        }
        if leader.is_some() {
            self.leader_hint = leader;
        }
        self.reset_election_deadline();
    }

    fn start_election(&mut self) -> Vec<Envelope> {
        self.state = RaftState::Candidate;
        self.term += 1;
        self.voted_for = Some(self.id);
        self.votes = 1;
        self.reset_election_deadline();
        if self.votes * 2 > self.peers.len() + 1 {
            return self.become_leader();
        }
        let (lli, llt) = (self.log.len() as LogIndex, self.last_log_term());
        self.peers
            .iter()
            .map(|&to| Envelope {
                to,
                from: self.id,
                message: Message::RequestVote {
                    term: self.term,
                    candidate: self.id,
                    last_log_index: lli,
                    last_log_term: llt,
                },
            })
            .collect()
    }

    fn become_leader(&mut self) -> Vec<Envelope> {
        self.state = RaftState::Leader;
        self.leader_hint = Some(self.id);
        self.ticks_since_heartbeat = 0;
        let next = self.log.len() as LogIndex + 1;
        for &p in &self.peers {
            self.next_index.insert(p, next);
            self.match_index.insert(p, 0);
        }
        self.broadcast_append()
    }

    fn broadcast_append(&mut self) -> Vec<Envelope> {
        let peers = self.peers.clone();
        peers.iter().map(|&p| self.append_for(p)).collect()
    }

    fn append_for(&mut self, to: NodeId) -> Envelope {
        let next = *self.next_index.get(&to).unwrap_or(&1);
        let prev_log_index = next - 1;
        let prev_log_term = if prev_log_index == 0 {
            0
        } else {
            self.log[(prev_log_index - 1) as usize].term
        };
        let end = self
            .log
            .len()
            .min((prev_log_index as usize) + self.config.max_batch);
        let entries: Vec<LogEntry> = self.log[prev_log_index as usize..end].to_vec();
        Envelope {
            to,
            from: self.id,
            message: Message::AppendEntries {
                term: self.term,
                leader: self.id,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit: self.commit_index,
            },
        }
    }

    fn handle_request_vote(
        &mut self,
        from: NodeId,
        term: Term,
        candidate: NodeId,
        last_log_index: LogIndex,
        last_log_term: Term,
    ) -> Vec<Envelope> {
        if term > self.term {
            self.become_follower(term, None);
        }
        let log_ok =
            (last_log_term, last_log_index) >= (self.last_log_term(), self.log.len() as LogIndex);
        let granted = term == self.term
            && log_ok
            && (self.voted_for.is_none() || self.voted_for == Some(candidate));
        if granted {
            self.voted_for = Some(candidate);
            self.reset_election_deadline();
        }
        vec![Envelope {
            to: from,
            from: self.id,
            message: Message::RequestVoteResponse {
                term: self.term,
                granted,
            },
        }]
    }

    fn handle_vote_response(&mut self, term: Term, granted: bool) -> Vec<Envelope> {
        if term > self.term {
            self.become_follower(term, None);
            return Vec::new();
        }
        if self.state != RaftState::Candidate || term < self.term {
            return Vec::new();
        }
        if granted {
            self.votes += 1;
            if self.votes * 2 > self.peers.len() + 1 {
                return self.become_leader();
            }
        }
        Vec::new()
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_append(
        &mut self,
        from: NodeId,
        term: Term,
        leader: NodeId,
        prev_log_index: LogIndex,
        prev_log_term: Term,
        entries: Vec<LogEntry>,
        leader_commit: LogIndex,
    ) -> Vec<Envelope> {
        if term < self.term {
            return vec![Envelope {
                to: from,
                from: self.id,
                message: Message::AppendEntriesResponse {
                    term: self.term,
                    success: false,
                    match_index: 0,
                },
            }];
        }
        self.become_follower(term, Some(leader));
        // Consistency check on the previous entry.
        let prev_ok = prev_log_index == 0
            || self
                .log
                .get((prev_log_index - 1) as usize)
                .is_some_and(|e| e.term == prev_log_term);
        if !prev_ok {
            return vec![Envelope {
                to: from,
                from: self.id,
                message: Message::AppendEntriesResponse {
                    term: self.term,
                    success: false,
                    match_index: 0,
                },
            }];
        }
        // Append/overwrite entries.
        for (i, entry) in entries.into_iter().enumerate() {
            let idx = prev_log_index as usize + i;
            if idx < self.log.len() {
                if self.log[idx].term != entry.term {
                    self.log.truncate(idx);
                    self.log.push(entry);
                }
            } else {
                self.log.push(entry);
            }
        }
        let match_index = self.log.len() as LogIndex;
        if leader_commit > self.commit_index {
            self.commit_index = leader_commit.min(match_index);
        }
        vec![Envelope {
            to: from,
            from: self.id,
            message: Message::AppendEntriesResponse {
                term: self.term,
                success: true,
                match_index,
            },
        }]
    }

    fn handle_append_response(
        &mut self,
        from: NodeId,
        term: Term,
        success: bool,
        match_index: LogIndex,
    ) -> Vec<Envelope> {
        if term > self.term {
            self.become_follower(term, None);
            return Vec::new();
        }
        if self.state != RaftState::Leader || term < self.term {
            return Vec::new();
        }
        if success {
            self.match_index.insert(from, match_index);
            self.next_index.insert(from, match_index + 1);
            self.advance_commit();
            // Keep streaming if the follower is behind.
            if (match_index as usize) < self.log.len() {
                return vec![self.append_for(from)];
            }
        } else {
            let next = self.next_index.entry(from).or_insert(1);
            *next = (*next).saturating_sub(1).max(1);
            return vec![self.append_for(from)];
        }
        Vec::new()
    }

    fn advance_commit(&mut self) {
        // Find the highest index replicated on a majority with an entry
        // from the current term.
        for idx in ((self.commit_index + 1)..=(self.log.len() as LogIndex)).rev() {
            if self.log[(idx - 1) as usize].term != self.term {
                continue;
            }
            let replicas = 1 + self.match_index.values().filter(|&&m| m >= idx).count();
            if replicas * 2 > self.peers.len() + 1 {
                self.commit_index = idx;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_self_elects_and_commits() {
        let mut n = RaftNode::new(1, vec![], RaftConfig::default());
        // Tick until election fires.
        for _ in 0..40 {
            n.tick();
        }
        assert_eq!(n.state(), RaftState::Leader);
        n.propose(b"cmd".to_vec()).unwrap();
        assert_eq!(n.commit_index(), 1);
        assert_eq!(n.take_committed(), vec![b"cmd".to_vec()]);
        // Drained: no repeats.
        assert!(n.take_committed().is_empty());
    }

    #[test]
    fn follower_rejects_proposals() {
        let mut n = RaftNode::new(1, vec![2, 3], RaftConfig::default());
        assert_eq!(
            n.propose(b"x".to_vec()).unwrap_err(),
            ProposeError::NotLeader { hint: None }
        );
    }

    #[test]
    fn vote_granted_once_per_term() {
        let mut n = RaftNode::new(1, vec![2, 3], RaftConfig::default());
        let out = n.step(
            2,
            Message::RequestVote {
                term: 1,
                candidate: 2,
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        assert!(matches!(
            out[0].message,
            Message::RequestVoteResponse { granted: true, .. }
        ));
        // Competing candidate in the same term is refused.
        let out = n.step(
            3,
            Message::RequestVote {
                term: 1,
                candidate: 3,
                last_log_index: 0,
                last_log_term: 0,
            },
        );
        assert!(matches!(
            out[0].message,
            Message::RequestVoteResponse { granted: false, .. }
        ));
    }

    #[test]
    fn stale_term_messages_are_rejected() {
        let mut n = RaftNode::new(1, vec![2], RaftConfig::default());
        n.step(
            2,
            Message::AppendEntries {
                term: 5,
                leader: 2,
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![],
                leader_commit: 0,
            },
        );
        assert_eq!(n.term(), 5);
        let out = n.step(
            2,
            Message::AppendEntries {
                term: 3,
                leader: 2,
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![],
                leader_commit: 0,
            },
        );
        assert!(matches!(
            out[0].message,
            Message::AppendEntriesResponse { success: false, .. }
        ));
    }

    #[test]
    fn log_consistency_check() {
        let mut n = RaftNode::new(1, vec![2], RaftConfig::default());
        // Leader claims prev entry at index 3 which follower lacks.
        let out = n.step(
            2,
            Message::AppendEntries {
                term: 1,
                leader: 2,
                prev_log_index: 3,
                prev_log_term: 1,
                entries: vec![LogEntry {
                    term: 1,
                    command: vec![1],
                }],
                leader_commit: 0,
            },
        );
        assert!(matches!(
            out[0].message,
            Message::AppendEntriesResponse { success: false, .. }
        ));
    }

    #[test]
    fn conflicting_entries_are_overwritten() {
        let mut n = RaftNode::new(1, vec![2], RaftConfig::default());
        n.step(
            2,
            Message::AppendEntries {
                term: 1,
                leader: 2,
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![
                    LogEntry {
                        term: 1,
                        command: vec![1],
                    },
                    LogEntry {
                        term: 1,
                        command: vec![2],
                    },
                ],
                leader_commit: 0,
            },
        );
        assert_eq!(n.log_len(), 2);
        // New leader at term 2 overwrites entry 2.
        n.step(
            3,
            Message::AppendEntries {
                term: 2,
                leader: 3,
                prev_log_index: 1,
                prev_log_term: 1,
                entries: vec![LogEntry {
                    term: 2,
                    command: vec![9],
                }],
                leader_commit: 2,
            },
        );
        assert_eq!(n.log_len(), 2);
        assert_eq!(n.commit_index(), 2);
        let committed = n.take_committed();
        assert_eq!(committed[1], vec![9]);
    }
}
