//! The BMac protocol sender (the orderer-side `Send()` of §3.5).
//!
//! A block is broken into 1 header + N transaction + 1 metadata sections
//! (§3.2, Figure 5a). Each section passes through two transformations:
//!
//! * **DataRemover** — every identity (marshaled `SerializedIdentity`,
//!   ~900 bytes) found in the section is removed and replaced by a
//!   locator annotation carrying its 16-bit encoded id. New identities
//!   are auto-registered (their certificate embeds the node id) and
//!   synchronized to the receiver with an `IdentitySync` packet.
//! * **AnnotationGenerator** — pointer annotations record the offset and
//!   length of the fields the hardware needs (signatures, signed
//!   regions, rwsets), *in reconstructed-section coordinates*, so the
//!   `DataExtractor` can fetch them without recursive protobuf decoding.

use std::collections::HashSet;

use bytes::Bytes;
use fabric_crypto::identity::Certificate;
use fabric_protos::messages::{
    metadata_index, Block, ChaincodeActionPayload, Envelope, MetadataSignature, Payload,
    SerializedIdentity, Transaction,
};
use fabric_protos::wire::WireError;

use crate::cache::IdentityCache;
use crate::packet::{u16_of, u32_of, Annotation, BmacPacket, FieldKind, PacketError, SectionType};

/// Statistics for the bandwidth comparison of Figure 9a.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderStats {
    /// Blocks sent.
    pub blocks: u64,
    /// Packets emitted (including identity syncs).
    pub packets: u64,
    /// Total BMac bytes on the wire.
    pub bmac_wire_bytes: u64,
    /// What the same blocks would cost via Gossip (marshaled block +
    /// gossip/gRPC/TCP framing).
    pub gossip_wire_bytes: u64,
    /// Identity bytes removed by the DataRemover.
    pub identity_bytes_removed: u64,
    /// Marshaled (pre-strip) block bytes.
    pub block_bytes: u64,
}

impl SenderStats {
    /// Bandwidth saving fraction vs Gossip.
    pub fn savings(&self) -> f64 {
        if self.gossip_wire_bytes == 0 {
            return 0.0;
        }
        1.0 - self.bmac_wire_bytes as f64 / self.gossip_wire_bytes as f64
    }

    /// Identity share of the raw block bytes (the paper's ≥73%).
    pub fn identity_share(&self) -> f64 {
        if self.block_bytes == 0 {
            return 0.0;
        }
        self.identity_bytes_removed as f64 / self.block_bytes as f64
    }
}

/// Errors from sending a block.
#[derive(Debug)]
pub enum SendError {
    /// The block could not be decoded for annotation generation.
    Decode(WireError),
    /// A section exceeded the packet size limit.
    Packet(PacketError),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Decode(e) => write!(f, "cannot decode block for sending: {e}"),
            SendError::Packet(e) => write!(f, "cannot packetize section: {e}"),
        }
    }
}

impl std::error::Error for SendError {}

/// The protocol sender. One instance per (orderer, BMac peer) pair —
/// it tracks which cache entries the receiver already has.
#[derive(Debug, Default)]
pub struct BmacSender {
    cache: IdentityCache,
    synced: HashSet<u16>,
    stats: SenderStats,
}

impl BmacSender {
    /// Creates a sender with an empty identity cache.
    pub fn new() -> Self {
        BmacSender::default()
    }

    /// Statistics so far.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Number of identities in the cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Sections a block into self-contained packets.
    ///
    /// # Errors
    ///
    /// [`SendError`] when the block is structurally undecodable or a
    /// section exceeds the jumbo-frame payload limit.
    pub fn send_block(&mut self, block: &Block) -> Result<Vec<BmacPacket>, SendError> {
        // The tx count and per-tx section index travel as u16; a block
        // beyond 65535 transactions must be rejected up front, not have
        // its count wrap and its sections alias each other.
        let total_txs =
            u16_of("transaction count", block.data.data.len()).map_err(SendError::Packet)?;
        let block_num = block.header.number;
        let mut packets: Vec<BmacPacket> = Vec::with_capacity(block.data.data.len() + 4);

        // --- Header section: the marshaled BlockHeader (no identities).
        let header_bytes = block.header.marshal();
        packets.push(BmacPacket {
            block_num,
            section: SectionType::Header,
            index: 0,
            total_txs,
            annotations: Vec::new(),
            payload: Bytes::from(header_bytes),
        });

        // --- Transaction sections.
        for (i, env_bytes) in block.data.data.iter().enumerate() {
            let mut sync = Vec::new();
            let (payload, mut annotations, removed) =
                self.strip_identities(env_bytes, block_num, total_txs, &mut sync)?;
            packets.extend(sync);
            annotations.extend(tx_pointers(env_bytes)?);
            self.stats.identity_bytes_removed += removed as u64;
            packets.push(BmacPacket {
                block_num,
                section: SectionType::Transaction,
                index: u16_of("transaction index", i).map_err(SendError::Packet)?,
                total_txs,
                annotations,
                payload: Bytes::from(payload),
            });
        }

        // --- Metadata section (holds the orderer identity + signature).
        let md_bytes = block.metadata.marshal();
        let mut sync = Vec::new();
        let (payload, mut annotations, removed) =
            self.strip_identities(&md_bytes, block_num, total_txs, &mut sync)?;
        packets.extend(sync);
        annotations.extend(metadata_pointers(
            &block.metadata.metadata[metadata_index::SIGNATURES],
            &md_bytes,
        )?);
        self.stats.identity_bytes_removed += removed as u64;
        packets.push(BmacPacket {
            block_num,
            section: SectionType::Metadata,
            index: 0,
            total_txs,
            annotations,
            payload: Bytes::from(payload),
        });

        // Accounting.
        let block_bytes = block.marshal().len();
        self.stats.blocks += 1;
        self.stats.packets += packets.len() as u64;
        self.stats.bmac_wire_bytes += packets
            .iter()
            .map(|p| p.encode().map(|w| w.len()).unwrap_or(0) as u64)
            .sum::<u64>();
        self.stats.gossip_wire_bytes += fabric_node::gossip::gossip_wire_bytes(block_bytes) as u64;
        self.stats.block_bytes += block_bytes as u64;
        // Validate sizes late so stats stay consistent on failure paths.
        for p in &packets {
            p.encode().map_err(SendError::Packet)?;
        }
        Ok(packets)
    }

    /// The DataRemover: finds every cached-or-discoverable identity in
    /// `bytes`, removes it, and emits locator annotations (in stripped
    /// coordinates) plus `IdentitySync` packets for new identities.
    fn strip_identities(
        &mut self,
        bytes: &[u8],
        block_num: u64,
        total_txs: u16,
        sync_out: &mut Vec<BmacPacket>,
    ) -> Result<(Vec<u8>, Vec<Annotation>, usize), SendError> {
        // Discover identities present in this section and register them.
        for ident_bytes in find_serialized_identities(bytes) {
            if self.cache.id_of(&ident_bytes).is_none() {
                let si = SerializedIdentity::unmarshal(&ident_bytes).map_err(SendError::Decode)?;
                let cert = Certificate::from_bytes(&si.id_bytes)
                    .map_err(|_| SendError::Decode(WireError::Semantic("bad certificate")))?;
                self.cache.insert(cert.node_id, ident_bytes.clone());
            }
            let id = self.cache.id_of(&ident_bytes).expect("just inserted");
            if self.synced.insert(id) {
                sync_out.push(BmacPacket {
                    block_num,
                    section: SectionType::IdentitySync,
                    index: id,
                    total_txs,
                    annotations: Vec::new(),
                    payload: Bytes::from(ident_bytes.clone()),
                });
            }
        }
        // Remove every occurrence of every cached identity.
        let mut matches: Vec<(usize, usize, u16)> = Vec::new(); // (offset, len, id)
        for (ident, id) in self.cache.known_identities() {
            let mut start = 0;
            while let Some(pos) = find_subslice(&bytes[start..], ident) {
                matches.push((start + pos, ident.len(), id));
                start += pos + ident.len();
            }
        }
        matches.sort_unstable_by_key(|&(off, _, _)| off);
        // Drop overlaps (cannot happen with distinct certificates, but
        // stay defensive).
        let mut kept: Vec<(usize, usize, u16)> = Vec::with_capacity(matches.len());
        let mut last_end = 0;
        for m in matches {
            if m.0 >= last_end {
                last_end = m.0 + m.1;
                kept.push(m);
            }
        }
        let mut stripped = Vec::with_capacity(bytes.len());
        let mut locators = Vec::with_capacity(kept.len());
        let mut pos = 0;
        let mut removed = 0;
        for (off, len, id) in kept {
            stripped.extend_from_slice(&bytes[pos..off]);
            locators.push(Annotation::Locator {
                offset: u32_of("locator offset", stripped.len()).map_err(SendError::Packet)?,
                id,
            });
            pos = off + len;
            removed += len;
        }
        stripped.extend_from_slice(&bytes[pos..]);
        Ok((stripped, locators, removed))
    }
}

/// Pointer annotations for a transaction section, in original-envelope
/// coordinates (§3.2 AnnotationGenerator).
fn tx_pointers(env_bytes: &[u8]) -> Result<Vec<Annotation>, SendError> {
    let env = Envelope::unmarshal(env_bytes).map_err(SendError::Decode)?;
    let mut out = Vec::new();
    push_pointer(
        &mut out,
        env_bytes,
        &env.signature,
        FieldKind::ClientSignature,
    )?;
    push_pointer(&mut out, env_bytes, &env.payload, FieldKind::SignedPayload)?;
    let payload = Payload::unmarshal(&env.payload).map_err(SendError::Decode)?;
    let tx = Transaction::unmarshal(&payload.data).map_err(SendError::Decode)?;
    if let Some(action) = tx.actions.first() {
        let cap = ChaincodeActionPayload::unmarshal(&action.payload).map_err(SendError::Decode)?;
        push_pointer(
            &mut out,
            env_bytes,
            &cap.action.proposal_response_payload,
            FieldKind::ProposalResponse,
        )?;
        for e in &cap.action.endorsements {
            push_pointer(
                &mut out,
                env_bytes,
                &e.signature,
                FieldKind::EndorsementSignature,
            )?;
        }
        let prp = fabric_protos::messages::ProposalResponsePayload::unmarshal(
            &cap.action.proposal_response_payload,
        )
        .map_err(SendError::Decode)?;
        let cc_action = fabric_protos::messages::ChaincodeAction::unmarshal(&prp.extension)
            .map_err(SendError::Decode)?;
        push_pointer(&mut out, env_bytes, &cc_action.results, FieldKind::RwSet)?;
    }
    Ok(out)
}

/// Pointer annotation for the orderer signature in the metadata section.
fn metadata_pointers(sig_slot: &[u8], md_bytes: &[u8]) -> Result<Vec<Annotation>, SendError> {
    let mut out = Vec::new();
    if !sig_slot.is_empty() {
        let md_sig = MetadataSignature::unmarshal(sig_slot).map_err(SendError::Decode)?;
        push_pointer(
            &mut out,
            md_bytes,
            &md_sig.signature,
            FieldKind::BlockSignature,
        )?;
    }
    Ok(out)
}

fn push_pointer(
    out: &mut Vec<Annotation>,
    haystack: &[u8],
    needle: &[u8],
    kind: FieldKind,
) -> Result<(), SendError> {
    if needle.is_empty() {
        return Ok(());
    }
    if let Some(off) = find_subslice(haystack, needle) {
        out.push(Annotation::Pointer {
            kind,
            offset: u32_of("pointer offset", off).map_err(SendError::Packet)?,
            length: u32_of("pointer length", needle.len()).map_err(SendError::Packet)?,
        });
    }
    Ok(())
}

/// Finds marshaled `SerializedIdentity` values inside `bytes` by decoding
/// the envelope layers (the sender-side equivalent of "checks for the
/// presence of identities in a section").
fn find_serialized_identities(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut push_unique = |v: Vec<u8>| {
        if !v.is_empty() && !out.contains(&v) {
            out.push(v);
        }
    };
    // Try as an envelope.
    if let Ok(env) = Envelope::unmarshal(bytes) {
        if let Ok(payload) = Payload::unmarshal(&env.payload) {
            if let Ok(sh) = fabric_protos::messages::SignatureHeader::unmarshal(
                &payload.header.signature_header,
            ) {
                if looks_like_identity(&sh.creator) {
                    push_unique(sh.creator);
                }
            }
            if let Ok(tx) = Transaction::unmarshal(&payload.data) {
                for action in &tx.actions {
                    if let Ok(sh) =
                        fabric_protos::messages::SignatureHeader::unmarshal(&action.header)
                    {
                        if looks_like_identity(&sh.creator) {
                            push_unique(sh.creator);
                        }
                    }
                    if let Ok(cap) = ChaincodeActionPayload::unmarshal(&action.payload) {
                        for e in &cap.action.endorsements {
                            if looks_like_identity(&e.endorser) {
                                push_unique(e.endorser.clone());
                            }
                        }
                    }
                }
            }
        }
    }
    // Try as block metadata (orderer identity in the signatures slot).
    if let Ok(md) = fabric_protos::messages::BlockMetadata::unmarshal(bytes) {
        if let Some(slot) = md.metadata.first() {
            if let Ok(md_sig) = MetadataSignature::unmarshal(slot) {
                if let Ok(sh) =
                    fabric_protos::messages::SignatureHeader::unmarshal(&md_sig.signature_header)
                {
                    if looks_like_identity(&sh.creator) {
                        push_unique(sh.creator);
                    }
                }
            }
        }
    }
    out
}

fn looks_like_identity(bytes: &[u8]) -> bool {
    SerializedIdentity::unmarshal(bytes)
        .map(|si| !si.id_bytes.is_empty())
        .unwrap_or(false)
}

/// Naive subslice search (identities are high-entropy; early exit makes
/// this effectively linear).
pub(crate) fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || needle.len() > haystack.len() {
        return None;
    }
    let first = needle[0];
    let mut i = 0;
    while i + needle.len() <= haystack.len() {
        if haystack[i] == first && &haystack[i..i + needle.len()] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_node::chaincode::KvChaincode;
    use fabric_node::network::FabricNetworkBuilder;
    use fabric_policy::parse;

    fn one_block(ntx: usize) -> Block {
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(ntx)
            .chaincode("kv", parse("2-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        let mut blocks = Vec::new();
        let mut i = 0;
        while blocks.is_empty() {
            blocks = net
                .submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
                .unwrap();
            i += 1;
        }
        blocks.remove(0)
    }

    #[test]
    fn block_becomes_n_plus_2_sections() {
        let block = one_block(5);
        let mut sender = BmacSender::new();
        let packets = sender.send_block(&block).unwrap();
        let sections = packets
            .iter()
            .filter(|p| p.section != SectionType::IdentitySync)
            .count();
        // "a block with 5 transactions will be broken down into 7
        // sections (1 header + 5 transaction sections + 1 metadata)"
        assert_eq!(sections, 7);
    }

    #[test]
    fn identities_are_stripped_and_synced_once() {
        let block1 = one_block(3);
        let mut sender = BmacSender::new();
        let p1 = sender.send_block(&block1).unwrap();
        let syncs1 = p1
            .iter()
            .filter(|p| p.section == SectionType::IdentitySync)
            .count();
        // client + 2 endorsers + orderer = 4 identities
        assert_eq!(syncs1, 4);
        // Sending another block re-syncs nothing.
        let block2 = one_block(3);
        let p2 = sender.send_block(&block2).unwrap();
        let syncs2 = p2
            .iter()
            .filter(|p| p.section == SectionType::IdentitySync)
            .count();
        assert_eq!(syncs2, 0);
    }

    #[test]
    fn bandwidth_savings_match_paper_band() {
        let block = one_block(10);
        let mut sender = BmacSender::new();
        sender.send_block(&block).unwrap();
        // Resend-equivalent: steady state (identities already synced).
        let block2 = one_block(10);
        let mut steady = BmacSender::new();
        steady.send_block(&block).unwrap();
        steady.send_block(&block2).unwrap();
        let stats = steady.stats();
        // Identity share of raw blocks ≥ 70% (paper: at least 73%).
        assert!(
            stats.identity_share() > 0.65,
            "share {}",
            stats.identity_share()
        );
        // Savings vs Gossip well above 60% (paper: up to 85%).
        assert!(stats.savings() > 0.6, "savings {}", stats.savings());
    }

    #[test]
    fn tx_sections_carry_pointer_annotations() {
        let block = one_block(2);
        let mut sender = BmacSender::new();
        let packets = sender.send_block(&block).unwrap();
        let tx_packet = packets
            .iter()
            .find(|p| p.section == SectionType::Transaction)
            .unwrap();
        let kinds: Vec<FieldKind> = tx_packet
            .annotations
            .iter()
            .filter_map(|a| match a {
                Annotation::Pointer { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&FieldKind::ClientSignature));
        assert!(kinds.contains(&FieldKind::SignedPayload));
        assert!(kinds.contains(&FieldKind::ProposalResponse));
        assert!(kinds.contains(&FieldKind::RwSet));
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == FieldKind::EndorsementSignature)
                .count(),
            2
        );
        // Locators present too (identities stripped).
        assert!(tx_packet
            .annotations
            .iter()
            .any(|a| matches!(a, Annotation::Locator { .. })));
    }

    #[test]
    fn oversized_block_rejected_not_wrapped() {
        // 65536 transactions used to wrap total_txs to 0 and the
        // section indices back onto 0..: the receiver would have seen a
        // "complete" empty block and aliased sections. The count is now
        // rejected before any section is built.
        let block = fabric_protos::messages::Block {
            header: Default::default(),
            data: fabric_protos::messages::BlockData {
                data: vec![Vec::new(); u16::MAX as usize + 1],
            },
            metadata: Default::default(),
        };
        let mut sender = BmacSender::new();
        match sender.send_block(&block) {
            Err(SendError::Packet(PacketError::TooLarge { what, value })) => {
                assert_eq!(what, "transaction count");
                assert_eq!(value, u16::MAX as usize + 1);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Stats stay untouched on the failure path.
        assert_eq!(sender.stats().blocks, 0);
    }

    #[test]
    fn find_subslice_works() {
        assert_eq!(find_subslice(b"hello world", b"world"), Some(6));
        assert_eq!(find_subslice(b"hello", b"xyz"), None);
        assert_eq!(find_subslice(b"", b"x"), None);
        assert_eq!(find_subslice(b"abc", b""), None);
        assert_eq!(find_subslice(b"aaab", b"aab"), Some(1));
    }
}
