//! BMac packet format: self-contained UDP packets with an L7 header.
//!
//! "Each section is sent in its own packet, which is constructed with
//! standard L2, IP and UDP headers. The BMac protocol header is inserted
//! as L7 header which has two parts: the fixed part contains block
//! number, type of section in payload ..., number of annotations and the
//! payload size, while the variable part contains the actual annotations"
//! (paper §3.2).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// UDP destination port identifying BMac traffic (the `PacketProcessor`
/// filter key, §3.2).
pub const BMAC_UDP_PORT: u16 = 0xB3AC;

/// Ethernet + IPv4 + UDP header bytes prepended to every packet.
pub const L2_L3_L4_HEADER_BYTES: usize = 14 + 20 + 8;

/// Maximum payload carried by one section packet (jumbo frames per the
/// paper's §5 MTU discussion).
pub const MAX_PAYLOAD: usize = 8900;

/// Section types carried in the fixed L7 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionType {
    /// Block header section (block number, hashes, orderer signature).
    Header,
    /// One transaction (envelope with identities removed).
    Transaction,
    /// Block metadata section.
    Metadata,
    /// Identity-cache synchronization (id + certificate bytes).
    IdentitySync,
}

impl SectionType {
    fn code(self) -> u8 {
        match self {
            SectionType::Header => 0,
            SectionType::Transaction => 1,
            SectionType::Metadata => 2,
            SectionType::IdentitySync => 3,
        }
    }

    fn from_code(code: u8) -> Result<Self, PacketError> {
        match code {
            0 => Ok(SectionType::Header),
            1 => Ok(SectionType::Transaction),
            2 => Ok(SectionType::Metadata),
            3 => Ok(SectionType::IdentitySync),
            other => Err(PacketError::BadSectionType(other)),
        }
    }
}

/// Kinds of data fields a pointer annotation can mark for the hardware
/// `DataExtractor` (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Orderer block signature (DER).
    BlockSignature,
    /// Client transaction signature (DER).
    ClientSignature,
    /// One endorsement signature (DER).
    EndorsementSignature,
    /// The proposal-response payload region (endorsement hash input).
    ProposalResponse,
    /// The rwset region (reads + writes).
    RwSet,
    /// The payload region covered by the client signature.
    SignedPayload,
}

impl FieldKind {
    fn code(self) -> u8 {
        match self {
            FieldKind::BlockSignature => 0,
            FieldKind::ClientSignature => 1,
            FieldKind::EndorsementSignature => 2,
            FieldKind::ProposalResponse => 3,
            FieldKind::RwSet => 4,
            FieldKind::SignedPayload => 5,
        }
    }

    fn from_code(code: u8) -> Result<Self, PacketError> {
        match code {
            0 => Ok(FieldKind::BlockSignature),
            1 => Ok(FieldKind::ClientSignature),
            2 => Ok(FieldKind::EndorsementSignature),
            3 => Ok(FieldKind::ProposalResponse),
            4 => Ok(FieldKind::RwSet),
            5 => Ok(FieldKind::SignedPayload),
            other => Err(PacketError::BadFieldKind(other)),
        }
    }
}

/// An annotation in the variable part of the L7 header: "either a
/// pointer (data field offset and length) or locator (offset of removed
/// identity and its encoded id)" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Annotation {
    /// Marks where a data field lives in the payload.
    Pointer {
        /// What the field is.
        kind: FieldKind,
        /// Byte offset in the (stripped) payload.
        offset: u32,
        /// Field length in bytes.
        length: u32,
    },
    /// Marks where an identity was removed.
    Locator {
        /// Byte offset in the stripped payload where the identity's bytes
        /// must be reinserted.
        offset: u32,
        /// The 16-bit encoded node id whose cached bytes to insert.
        id: u16,
    },
}

/// A parsed BMac packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmacPacket {
    /// Block this section belongs to.
    pub block_num: u64,
    /// Section type.
    pub section: SectionType,
    /// Index of this section among sections of the same type (the
    /// transaction number for [`SectionType::Transaction`]).
    pub index: u16,
    /// Total transactions in the block (lets the receiver know when the
    /// block is complete without waiting for other packets).
    pub total_txs: u16,
    /// Annotations.
    pub annotations: Vec<Annotation>,
    /// The (identity-stripped) section payload.
    pub payload: Bytes,
}

/// Errors decoding packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Packet shorter than its headers claim.
    Truncated,
    /// Wrong magic/port — not a BMac packet.
    NotBmac,
    /// Unknown section type code.
    BadSectionType(u8),
    /// Unknown field kind code.
    BadFieldKind(u8),
    /// Unknown annotation discriminator.
    BadAnnotation(u8),
    /// Payload exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge(usize),
    /// A count or offset exceeds its wire-format field width (the
    /// annotation count is `u16`, section indices/tx counts are `u16`,
    /// annotation offsets/lengths are `u32`). Returned instead of
    /// silently truncating the value on encode.
    TooLarge {
        /// Which field overflowed.
        what: &'static str,
        /// The offending value.
        value: usize,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "packet truncated"),
            PacketError::NotBmac => write!(f, "not a BMac packet"),
            PacketError::BadSectionType(c) => write!(f, "unknown section type {c}"),
            PacketError::BadFieldKind(c) => write!(f, "unknown field kind {c}"),
            PacketError::BadAnnotation(c) => write!(f, "unknown annotation type {c}"),
            PacketError::PayloadTooLarge(n) => write!(f, "payload of {n} bytes too large"),
            PacketError::TooLarge { what, value } => {
                write!(f, "{what} of {value} exceeds the wire-format field width")
            }
        }
    }
}

impl std::error::Error for PacketError {}

/// Checked narrowing to a `u16` wire field.
pub(crate) fn u16_of(what: &'static str, value: usize) -> Result<u16, PacketError> {
    u16::try_from(value).map_err(|_| PacketError::TooLarge { what, value })
}

/// Checked narrowing to a `u32` wire field.
pub(crate) fn u32_of(what: &'static str, value: usize) -> Result<u32, PacketError> {
    u32::try_from(value).map_err(|_| PacketError::TooLarge { what, value })
}

impl BmacPacket {
    /// Serializes the packet including L2/L3/L4 framing, ready for the
    /// wire. The IP/UDP headers are simplified but structurally present
    /// so the `PacketProcessor` filter has real bytes to classify.
    ///
    /// # Errors
    ///
    /// [`PacketError::PayloadTooLarge`] when the payload exceeds
    /// [`MAX_PAYLOAD`].
    pub fn encode(&self) -> Result<Vec<u8>, PacketError> {
        if self.payload.len() > MAX_PAYLOAD {
            return Err(PacketError::PayloadTooLarge(self.payload.len()));
        }
        // The annotation count travels as u16; more than 65535 would
        // silently wrap and desynchronize the variable-part parse.
        let num_annotations = u16_of("annotation count", self.annotations.len())?;
        let payload_len = u32_of("payload length", self.payload.len())?;
        let mut buf = BytesMut::with_capacity(
            L2_L3_L4_HEADER_BYTES + 24 + self.annotations.len() * 10 + self.payload.len(),
        );
        // L2: dst/src MAC + ethertype (IPv4).
        buf.put_slice(&[0x02; 6]);
        buf.put_slice(&[0x01; 6]);
        buf.put_u16(0x0800);
        // L3: minimal IPv4 header (version/IHL, ..., protocol=UDP).
        buf.put_u8(0x45);
        buf.put_u8(0);
        buf.put_u16(0); // total length patched by real stacks; unused here
        buf.put_u32(0);
        buf.put_u8(64); // TTL
        buf.put_u8(17); // UDP
        buf.put_u16(0); // checksum (not modeled)
        buf.put_u32(0x0a00_0001); // src 10.0.0.1
        buf.put_u32(0x0a00_0002); // dst 10.0.0.2
                                  // L4: UDP src/dst/len/checksum.
        buf.put_u16(BMAC_UDP_PORT);
        buf.put_u16(BMAC_UDP_PORT);
        buf.put_u16(0);
        buf.put_u16(0);
        // L7 fixed part.
        buf.put_u64(self.block_num);
        buf.put_u8(self.section.code());
        buf.put_u16(self.index);
        buf.put_u16(self.total_txs);
        buf.put_u16(num_annotations);
        buf.put_u32(payload_len);
        // L7 variable part: annotations.
        for a in &self.annotations {
            match a {
                Annotation::Pointer {
                    kind,
                    offset,
                    length,
                } => {
                    buf.put_u8(0);
                    buf.put_u8(kind.code());
                    buf.put_u32(*offset);
                    buf.put_u32(*length);
                }
                Annotation::Locator { offset, id } => {
                    buf.put_u8(1);
                    buf.put_u32(*offset);
                    buf.put_u16(*id);
                }
            }
        }
        buf.put_slice(&self.payload);
        Ok(buf.to_vec())
    }

    /// Parses a wire packet. Non-BMac packets (wrong UDP port or not
    /// UDP/IPv4 at all) yield [`PacketError::NotBmac`] — the
    /// `PacketProcessor` forwards those to the host unmodified.
    ///
    /// # Errors
    ///
    /// [`PacketError`] for truncated or malformed packets.
    pub fn decode(wire: &[u8]) -> Result<Self, PacketError> {
        if wire.len() < L2_L3_L4_HEADER_BYTES {
            return Err(PacketError::NotBmac);
        }
        let mut buf = wire;
        // L2.
        buf.advance(12);
        if buf.get_u16() != 0x0800 {
            return Err(PacketError::NotBmac);
        }
        // L3.
        if buf.get_u8() != 0x45 {
            return Err(PacketError::NotBmac);
        }
        buf.advance(8);
        if buf.get_u8() != 17 {
            return Err(PacketError::NotBmac);
        }
        buf.advance(10);
        // L4.
        let _src = buf.get_u16();
        let dst = buf.get_u16();
        if dst != BMAC_UDP_PORT {
            return Err(PacketError::NotBmac);
        }
        buf.advance(4);
        // L7 fixed part.
        if buf.remaining() < 19 {
            return Err(PacketError::Truncated);
        }
        let block_num = buf.get_u64();
        let section = SectionType::from_code(buf.get_u8())?;
        let index = buf.get_u16();
        let total_txs = buf.get_u16();
        let num_annotations = buf.get_u16() as usize;
        let payload_len = buf.get_u32() as usize;
        // L7 variable part.
        let mut annotations = Vec::with_capacity(num_annotations);
        for _ in 0..num_annotations {
            if buf.remaining() < 1 {
                return Err(PacketError::Truncated);
            }
            match buf.get_u8() {
                0 => {
                    if buf.remaining() < 9 {
                        return Err(PacketError::Truncated);
                    }
                    let kind = FieldKind::from_code(buf.get_u8())?;
                    let offset = buf.get_u32();
                    let length = buf.get_u32();
                    annotations.push(Annotation::Pointer {
                        kind,
                        offset,
                        length,
                    });
                }
                1 => {
                    if buf.remaining() < 6 {
                        return Err(PacketError::Truncated);
                    }
                    let offset = buf.get_u32();
                    let id = buf.get_u16();
                    annotations.push(Annotation::Locator { offset, id });
                }
                other => return Err(PacketError::BadAnnotation(other)),
            }
        }
        if buf.remaining() < payload_len {
            return Err(PacketError::Truncated);
        }
        let payload = Bytes::copy_from_slice(&buf[..payload_len]);
        Ok(BmacPacket {
            block_num,
            section,
            index,
            total_txs,
            annotations,
            payload,
        })
    }

    /// Total bytes on the wire for this packet.
    pub fn wire_bytes(&self) -> usize {
        L2_L3_L4_HEADER_BYTES
            + 19
            + self
                .annotations
                .iter()
                .map(|a| match a {
                    Annotation::Pointer { .. } => 10,
                    Annotation::Locator { .. } => 7,
                })
                .sum::<usize>()
            + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BmacPacket {
        BmacPacket {
            block_num: 42,
            section: SectionType::Transaction,
            index: 3,
            total_txs: 150,
            annotations: vec![
                Annotation::Pointer {
                    kind: FieldKind::ClientSignature,
                    offset: 10,
                    length: 71,
                },
                Annotation::Locator {
                    offset: 5,
                    id: 0x0120,
                },
            ],
            payload: Bytes::from_static(b"section payload bytes"),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let wire = p.encode().unwrap();
        let q = BmacPacket::decode(&wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn wire_bytes_matches_encoding() {
        let p = sample();
        assert_eq!(p.encode().unwrap().len(), p.wire_bytes());
    }

    #[test]
    fn non_bmac_packets_are_classified_out() {
        // Wrong UDP port.
        let p = sample();
        let mut wire = p.encode().unwrap();
        wire[36] = 0x00;
        wire[37] = 0x50; // dst port 80
        assert_eq!(BmacPacket::decode(&wire), Err(PacketError::NotBmac));
        // Not UDP.
        let mut wire = p.encode().unwrap();
        wire[23] = 6; // TCP
        assert_eq!(BmacPacket::decode(&wire), Err(PacketError::NotBmac));
        // Not IPv4.
        let mut wire = p.encode().unwrap();
        wire[12] = 0x86;
        wire[13] = 0xdd; // IPv6 ethertype
        assert_eq!(BmacPacket::decode(&wire), Err(PacketError::NotBmac));
        // Random short garbage.
        assert_eq!(BmacPacket::decode(&[0u8; 10]), Err(PacketError::NotBmac));
    }

    #[test]
    fn truncation_is_detected() {
        let wire = sample().encode().unwrap();
        for cut in L2_L3_L4_HEADER_BYTES..wire.len() {
            let r = BmacPacket::decode(&wire[..cut]);
            assert!(r.is_err(), "cut={cut}");
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut p = sample();
        p.payload = Bytes::from(vec![0u8; MAX_PAYLOAD + 1]);
        assert_eq!(
            p.encode(),
            Err(PacketError::PayloadTooLarge(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn annotation_count_overflow_rejected_not_wrapped() {
        // u16::MAX + 1 annotations used to wrap the wire count to 0,
        // leaving the parser to read the annotation bytes as payload.
        let mut p = sample();
        p.annotations = vec![Annotation::Locator { offset: 0, id: 1 }; u16::MAX as usize + 1];
        assert_eq!(
            p.encode(),
            Err(PacketError::TooLarge {
                what: "annotation count",
                value: u16::MAX as usize + 1,
            })
        );
        // Exactly u16::MAX still encodes and round-trips.
        p.annotations.truncate(u16::MAX as usize);
        let q = BmacPacket::decode(&p.encode().unwrap()).unwrap();
        assert_eq!(q.annotations.len(), u16::MAX as usize);
    }

    #[test]
    fn all_section_types_roundtrip() {
        for s in [
            SectionType::Header,
            SectionType::Transaction,
            SectionType::Metadata,
            SectionType::IdentitySync,
        ] {
            let mut p = sample();
            p.section = s;
            let q = BmacPacket::decode(&p.encode().unwrap()).unwrap();
            assert_eq!(q.section, s);
        }
    }
}
