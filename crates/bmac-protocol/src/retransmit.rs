//! Go-Back-N retransmission for the BMac protocol (paper §5 extension).
//!
//! The paper ships without retransmission ("we did not propose or
//! implement a retransmission scheme for lost packets") and points at
//! Go-Back-N "as it has been used in RDMA over Ethernet \[17\]" for
//! deployments that need it. This module implements that extension: the
//! sender numbers every packet with a connection-scoped sequence number
//! and keeps a sliding window; the receiver acks cumulatively and the
//! sender goes back to the first unacknowledged packet on timeout or
//! out-of-order arrival (NACK).
//!
//! The scheme wraps the base protocol: sequence numbers ride in a small
//! trailer appended to the encoded packet, so the inner BMac wire format
//! is untouched and the hardware parse path stays cut-through.
//!
//! Timer policy: the bare [`GoBackNSender::on_timeout`] is caller-driven
//! and retransmits forever. Production links wrap the sender in a
//! [`RetransmitSupervisor`], which owns the retransmission *clock*: a
//! configurable base RTO, bounded exponential backoff with deterministic
//! jitter ([`RtoPolicy`]), NACK-storm suppression (at most one go-back
//! per in-flight window until the base advances), and a
//! max-retransmissions circuit breaker that surfaces
//! [`RetransmitError::PeerUnreachable`] instead of retransmitting into a
//! dead peer forever. Time is an abstract `u64` supplied by the caller
//! (wall-clock nanoseconds, or `fabric-sim` virtual time), so the policy
//! is fully deterministic and testable.

use std::collections::VecDeque;

use crate::packet::PacketError;

/// Sequence number type (wraps; the window is far smaller than the
/// space).
pub type Seq = u32;

/// Trailer appended to each wire packet: magic + sequence number.
const TRAILER_MAGIC: u16 = 0x6B4E; // "kN"
const TRAILER_LEN: usize = 6;

/// Feedback from receiver to sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    /// Cumulative acknowledgment: everything below `next` received.
    Ack {
        /// Next expected sequence number.
        next: Seq,
    },
    /// Out-of-order arrival: ask the sender to go back to `expected`.
    Nack {
        /// Next expected sequence number.
        expected: Seq,
    },
}

/// Sender-side Go-Back-N state over encoded wire packets.
#[derive(Debug)]
pub struct GoBackNSender {
    window: usize,
    next_seq: Seq,
    base: Seq,
    /// Unacknowledged packets, front = `base`.
    in_flight: VecDeque<(Seq, Vec<u8>)>,
    /// Packets accepted but not yet transmittable (window full).
    queued: VecDeque<Vec<u8>>,
    retransmissions: u64,
}

impl GoBackNSender {
    /// Creates a sender with the given window size.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        Self::with_initial_seq(window, 0)
    }

    /// Creates a sender whose first packet carries sequence number
    /// `start`. The paired receiver must be built with
    /// [`GoBackNReceiver::expecting`]`(start)`. This is how long-lived
    /// connections resume, and how the wraparound tests start a pair a
    /// few packets below `Seq::MAX` instead of sending 2^32 packets.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn with_initial_seq(window: usize, start: Seq) -> Self {
        assert!(window > 0, "window must be positive");
        GoBackNSender {
            window,
            next_seq: start,
            base: start,
            in_flight: VecDeque::new(),
            queued: VecDeque::new(),
            retransmissions: 0,
        }
    }

    /// Queues an encoded packet; returns any packets that may be
    /// transmitted now (sequence trailer attached).
    pub fn send(&mut self, wire: Vec<u8>) -> Vec<Vec<u8>> {
        self.queued.push_back(wire);
        self.fill_window()
    }

    /// Handles receiver feedback; returns packets to (re)transmit.
    pub fn on_feedback(&mut self, fb: Feedback) -> Vec<Vec<u8>> {
        match fb {
            Feedback::Ack { next } => {
                while let Some(&(seq, _)) = self.in_flight.front() {
                    if seq_lt(seq, next) {
                        self.in_flight.pop_front();
                        self.base = next;
                    } else {
                        break;
                    }
                }
                self.fill_window()
            }
            Feedback::Nack { expected } => self.go_back(expected),
        }
    }

    /// Timeout expiry: retransmit the whole window from `base`.
    pub fn on_timeout(&mut self) -> Vec<Vec<u8>> {
        let base = self.base;
        self.go_back(base)
    }

    /// Packets retransmitted so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Unacknowledged packet count.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Oldest unacknowledged sequence number (the retransmission point).
    pub fn base(&self) -> Seq {
        self.base
    }

    /// Packets accepted but not yet transmittable (window full). This is
    /// the queue a backpressure-aware caller bounds: when the backlog
    /// grows, shed load at the source instead of queueing more.
    pub fn backlog(&self) -> usize {
        self.queued.len()
    }

    fn go_back(&mut self, from: Seq) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for (seq, wire) in &self.in_flight {
            if !seq_lt(*seq, from) {
                out.push(attach_trailer(wire, *seq));
                self.retransmissions += 1;
            }
        }
        out
    }

    fn fill_window(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while self.in_flight.len() < self.window {
            let Some(wire) = self.queued.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            out.push(attach_trailer(&wire, seq));
            self.in_flight.push_back((seq, wire));
        }
        out
    }
}

/// Receiver-side Go-Back-N state: strips trailers, rejects gaps, and
/// produces feedback for the sender.
#[derive(Debug, Default)]
pub struct GoBackNReceiver {
    expected: Seq,
    duplicates: u64,
}

impl GoBackNReceiver {
    /// Creates a receiver expecting sequence 0.
    pub fn new() -> Self {
        GoBackNReceiver::default()
    }

    /// Creates a receiver expecting sequence `start` (the counterpart of
    /// [`GoBackNSender::with_initial_seq`]).
    pub fn expecting(start: Seq) -> Self {
        GoBackNReceiver {
            expected: start,
            duplicates: 0,
        }
    }

    /// Processes one wire packet with trailer. Returns the inner packet
    /// bytes when it is the next in order (deliver to the BMac
    /// receiver), plus the feedback to send back.
    ///
    /// # Errors
    ///
    /// [`PacketError::Truncated`] when the trailer is missing/mangled.
    pub fn on_wire(&mut self, wire: &[u8]) -> Result<(Option<Vec<u8>>, Feedback), PacketError> {
        let (inner, seq) = split_trailer(wire)?;
        if seq == self.expected {
            self.expected = self.expected.wrapping_add(1);
            Ok((
                Some(inner.to_vec()),
                Feedback::Ack {
                    next: self.expected,
                },
            ))
        } else if seq_lt(seq, self.expected) {
            // Duplicate of something already delivered: re-ack.
            self.duplicates += 1;
            Ok((
                None,
                Feedback::Ack {
                    next: self.expected,
                },
            ))
        } else {
            // Gap: Go-Back-N discards out-of-order packets.
            Ok((
                None,
                Feedback::Nack {
                    expected: self.expected,
                },
            ))
        }
    }

    /// Duplicate deliveries observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> Seq {
        self.expected
    }
}

/// Errors surfaced by the [`RetransmitSupervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetransmitError {
    /// The circuit breaker tripped: `attempts` consecutive timeouts
    /// passed without the window base advancing. The peer is treated as
    /// unreachable; no further retransmissions will be generated until a
    /// fresh connection is established.
    PeerUnreachable {
        /// The sequence number the window was stuck at.
        base: Seq,
        /// Consecutive timeout attempts burned before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for RetransmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetransmitError::PeerUnreachable { base, attempts } => write!(
                f,
                "peer unreachable: window stuck at seq {base} after {attempts} timeouts"
            ),
        }
    }
}

impl std::error::Error for RetransmitError {}

/// Retransmission timer policy: base RTO, bounded exponential backoff,
/// deterministic jitter, and the circuit-breaker threshold.
///
/// Time units are whatever the caller feeds the supervisor — the policy
/// only adds and compares them. The defaults read as nanoseconds (2 ms
/// base, 128 ms ceiling), matching both `std::time` and `fabric-sim`.
#[derive(Debug, Clone, Copy)]
pub struct RtoPolicy {
    /// Retransmission timeout for the first attempt.
    pub base_rto: u64,
    /// Backoff ceiling: the RTO never exceeds this, however many
    /// attempts pile up.
    pub max_rto: u64,
    /// Consecutive timeouts (without base progress) tolerated before
    /// the breaker trips with [`RetransmitError::PeerUnreachable`].
    pub max_retries: u32,
    /// Jitter as a percentage of the current RTO (0–100): each armed
    /// deadline is stretched by a deterministic pseudo-random fraction
    /// of up to this much, decorrelating retransmission bursts across
    /// links without sacrificing reproducibility.
    pub jitter_pct: u8,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for RtoPolicy {
    fn default() -> Self {
        RtoPolicy {
            base_rto: 2_000_000,  // 2 ms
            max_rto: 128_000_000, // 128 ms
            max_retries: 6,
            jitter_pct: 20,
            jitter_seed: 0x6B4E,
        }
    }
}

impl RtoPolicy {
    /// The un-jittered RTO for the `attempt`-th consecutive timeout
    /// (attempt 0 = the timer armed right after a send): `base_rto`
    /// doubled per attempt, saturating at `max_rto`.
    pub fn rto(&self, attempt: u32) -> u64 {
        let doubled = self
            .base_rto
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        doubled.min(self.max_rto)
    }

    /// The jittered RTO actually armed: [`RtoPolicy::rto`] plus a
    /// deterministic pseudo-random stretch of up to `jitter_pct`% of it.
    /// Same `(seed, base, attempt)` → same deadline, always.
    pub fn rto_with_jitter(&self, attempt: u32, base: Seq) -> u64 {
        let rto = self.rto(attempt);
        let span = rto / 100 * u64::from(self.jitter_pct.min(100));
        if span == 0 {
            return rto;
        }
        let h = splitmix64(self.jitter_seed ^ (u64::from(base) << 32) ^ u64::from(attempt));
        rto + h % (span + 1)
    }

    /// The retransmission-storm cap for a window of `window` packets:
    /// the most packets the supervisor can retransmit between two base
    /// advances. One NACK-triggered go-back plus `max_retries + 1`
    /// timer-driven go-backs, each of at most a full window, and then
    /// the breaker trips — the supervisor enforces this by construction
    /// and callers assert the observed episode maximum against it.
    pub fn storm_cap(&self, window: usize) -> u64 {
        (u64::from(self.max_retries) + 2) * window as u64
    }
}

/// SplitMix64: a tiny, well-distributed hash for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Adaptive retransmission supervisor: a [`GoBackNSender`] plus the
/// timer state machine described by an [`RtoPolicy`].
///
/// Callers drive it with three entry points, each taking the current
/// time: [`RetransmitSupervisor::send`] (new traffic),
/// [`RetransmitSupervisor::on_feedback`] (acks/nacks from the peer) and
/// [`RetransmitSupervisor::poll`] (clock advance; fires the timer when
/// the armed deadline passes). The supervisor distinguishes two
/// retransmission triggers:
///
/// * **NACKs** prove the peer is alive, so they never count toward the
///   circuit breaker — but a single loss inside a full window produces a
///   NACK per delivered successor, so only the *first* NACK per stuck
///   base triggers a go-back; the rest are suppressed until either the
///   base advances or the timer fires (`suppressed_nacks` counts them).
/// * **Timeouts** back off exponentially and, after
///   [`RtoPolicy::max_retries`] consecutive failures, trip the breaker:
///   [`RetransmitError::PeerUnreachable`].
///
/// The combination bounds retransmissions per stuck window to
/// [`RtoPolicy::storm_cap`]; the observed per-episode maximum is
/// exported as [`RetransmitSupervisor::max_episode_retransmissions`].
#[derive(Debug)]
pub struct RetransmitSupervisor {
    inner: GoBackNSender,
    policy: RtoPolicy,
    /// Consecutive timeouts since the base last advanced.
    attempts: u32,
    /// Absolute time the armed timer fires; `None` while idle.
    deadline: Option<u64>,
    /// A go-back already ran for the current base; further NACKs are
    /// suppressed until progress or timer expiry.
    repair_in_flight: bool,
    /// Packets retransmitted since the base last advanced.
    episode_retransmissions: u64,
    max_episode_retransmissions: u64,
    suppressed_nacks: u64,
    timeouts: u64,
    unreachable: bool,
}

impl RetransmitSupervisor {
    /// Wraps a fresh sender (sequence 0) with `policy`.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn new(window: usize, policy: RtoPolicy) -> Self {
        Self::with_initial_seq(window, 0, policy)
    }

    /// Wraps a fresh sender starting at sequence `start` (see
    /// [`GoBackNSender::with_initial_seq`]).
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn with_initial_seq(window: usize, start: Seq, policy: RtoPolicy) -> Self {
        RetransmitSupervisor {
            inner: GoBackNSender::with_initial_seq(window, start),
            policy,
            attempts: 0,
            deadline: None,
            repair_in_flight: false,
            episode_retransmissions: 0,
            max_episode_retransmissions: 0,
            suppressed_nacks: 0,
            timeouts: 0,
            unreachable: false,
        }
    }

    /// Queues a wire packet at time `now`; returns packets to transmit.
    /// Arms the timer if it was idle.
    pub fn send(&mut self, now: u64, wire: Vec<u8>) -> Vec<Vec<u8>> {
        let out = self.inner.send(wire);
        self.arm_if_needed(now);
        out
    }

    /// Handles receiver feedback at time `now`; returns packets to
    /// (re)transmit. Base progress resets the backoff and the episode;
    /// redundant NACKs for the same stuck base are suppressed.
    pub fn on_feedback(&mut self, now: u64, fb: Feedback) -> Vec<Vec<u8>> {
        if self.unreachable {
            return Vec::new();
        }
        match fb {
            Feedback::Ack { .. } => {
                let before = self.inner.base();
                let out = self.inner.on_feedback(fb);
                if self.inner.base() != before {
                    self.note_progress();
                }
                self.rearm(now);
                out
            }
            Feedback::Nack { expected } => {
                // The ack half of a NACK still advances the base.
                let before = self.inner.base();
                let acked = self.inner.on_feedback(Feedback::Ack { next: expected });
                if self.inner.base() != before {
                    self.note_progress();
                }
                if self.repair_in_flight {
                    self.suppressed_nacks += 1;
                    self.rearm(now);
                    return acked;
                }
                let mut out = acked;
                out.extend(self.inner.on_feedback(Feedback::Nack { expected }));
                self.episode_retransmissions += out.len() as u64;
                self.max_episode_retransmissions = self
                    .max_episode_retransmissions
                    .max(self.episode_retransmissions);
                self.repair_in_flight = true;
                // A NACK proves liveness: restart the current-RTO timer,
                // but do not escalate the backoff attempt counter.
                self.deadline = (self.inner.in_flight() > 0).then(|| {
                    now + self
                        .policy
                        .rto_with_jitter(self.attempts, self.inner.base())
                });
                out
            }
        }
    }

    /// Advances the clock. When the armed deadline has passed with the
    /// window still un-acked, retransmits it and backs off; after
    /// [`RtoPolicy::max_retries`] consecutive timeouts the breaker
    /// trips.
    ///
    /// # Errors
    ///
    /// [`RetransmitError::PeerUnreachable`] once the breaker trips (and
    /// on every later poll — the connection is dead until replaced).
    pub fn poll(&mut self, now: u64) -> Result<Vec<Vec<u8>>, RetransmitError> {
        if self.unreachable {
            return Err(RetransmitError::PeerUnreachable {
                base: self.inner.base(),
                attempts: self.attempts,
            });
        }
        if self.inner.in_flight() == 0 {
            self.deadline = None;
            return Ok(Vec::new());
        }
        let Some(deadline) = self.deadline else {
            self.arm_if_needed(now);
            return Ok(Vec::new());
        };
        if now < deadline {
            return Ok(Vec::new());
        }
        if self.attempts >= self.policy.max_retries {
            self.unreachable = true;
            self.deadline = None;
            return Err(RetransmitError::PeerUnreachable {
                base: self.inner.base(),
                attempts: self.attempts,
            });
        }
        self.attempts += 1;
        self.timeouts += 1;
        let out = self.inner.on_timeout();
        self.episode_retransmissions += out.len() as u64;
        self.max_episode_retransmissions = self
            .max_episode_retransmissions
            .max(self.episode_retransmissions);
        self.repair_in_flight = true;
        self.deadline = Some(
            now + self
                .policy
                .rto_with_jitter(self.attempts, self.inner.base()),
        );
        Ok(out)
    }

    fn note_progress(&mut self) {
        self.attempts = 0;
        self.episode_retransmissions = 0;
        self.repair_in_flight = false;
    }

    fn arm_if_needed(&mut self, now: u64) {
        if self.deadline.is_none() && self.inner.in_flight() > 0 {
            self.deadline = Some(
                now + self
                    .policy
                    .rto_with_jitter(self.attempts, self.inner.base()),
            );
        }
    }

    fn rearm(&mut self, now: u64) {
        self.deadline = (self.inner.in_flight() > 0).then(|| {
            now + self
                .policy
                .rto_with_jitter(self.attempts, self.inner.base())
        });
    }

    /// The absolute time the timer next fires, if armed. Event-driven
    /// callers schedule a wakeup here and call
    /// [`RetransmitSupervisor::poll`].
    pub fn next_deadline(&self) -> Option<u64> {
        self.deadline
    }

    /// The breaker has tripped; the connection is dead.
    pub fn is_unreachable(&self) -> bool {
        self.unreachable
    }

    /// Total packets retransmitted over the connection's lifetime.
    pub fn retransmissions(&self) -> u64 {
        self.inner.retransmissions()
    }

    /// Unacknowledged packets in flight.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    /// Packets queued behind the window (the backpressure signal).
    pub fn backlog(&self) -> usize {
        self.inner.backlog()
    }

    /// Timer expirations fired.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// NACKs ignored because a repair for the same base was already in
    /// flight.
    pub fn suppressed_nacks(&self) -> u64 {
        self.suppressed_nacks
    }

    /// Most packets retransmitted within any single stuck-base episode —
    /// never exceeds [`RetransmitSupervisor::storm_cap`].
    pub fn max_episode_retransmissions(&self) -> u64 {
        self.max_episode_retransmissions
    }

    /// The policy's storm cap for this sender's window.
    pub fn storm_cap(&self) -> u64 {
        self.policy.storm_cap(self.inner.window)
    }

    /// Consecutive timeouts since the base last advanced.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

fn attach_trailer(wire: &[u8], seq: Seq) -> Vec<u8> {
    let mut out = Vec::with_capacity(wire.len() + TRAILER_LEN);
    out.extend_from_slice(wire);
    out.extend_from_slice(&TRAILER_MAGIC.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out
}

fn split_trailer(wire: &[u8]) -> Result<(&[u8], Seq), PacketError> {
    if wire.len() < TRAILER_LEN {
        return Err(PacketError::Truncated);
    }
    let (inner, trailer) = wire.split_at(wire.len() - TRAILER_LEN);
    let magic = u16::from_be_bytes(trailer[..2].try_into().expect("2 bytes"));
    if magic != TRAILER_MAGIC {
        return Err(PacketError::Truncated);
    }
    let seq = Seq::from_be_bytes(trailer[2..].try_into().expect("4 bytes"));
    Ok((inner, seq))
}

/// Wrap-around-aware `a < b` for sequence numbers: RFC 1982 serial
/// arithmetic with half-range `2^31`. `a < b` iff the forward distance
/// `(b − a) mod 2^32` lies in `1..2^31` — so `seq_lt(a, a)` is false,
/// `seq_lt(a, a+1)` is true (including across the `Seq::MAX → 0` wrap),
/// and antipodal pairs (distance exactly `2^31`) compare unordered in
/// both directions, which a window ≪ 2^31 never produces.
///
/// (Audit note: the previous form `b.wrapping_sub(a).wrapping_sub(1) <
/// Seq::MAX / 2` is arithmetically identical — `d − 1 < 2^31 − 1` with
/// the `d = 0` case wrapping out of range — i.e. no off-by-one; this
/// spelling plus the boundary tests below pin the semantics.)
fn seq_lt(a: Seq, b: Seq) -> bool {
    const HALF_RANGE: Seq = 1 << (Seq::BITS - 1);
    let forward = b.wrapping_sub(a);
    forward != 0 && forward < HALF_RANGE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(i: u8) -> Vec<u8> {
        vec![i; 8]
    }

    /// Delivers `wires` through a lossy channel defined by `drop`:
    /// returns delivered inner packets in order.
    fn run_channel(
        packets: Vec<Vec<u8>>,
        drop: impl Fn(usize) -> bool,
        window: usize,
    ) -> Vec<Vec<u8>> {
        let mut sender = GoBackNSender::new(window);
        let mut receiver = GoBackNReceiver::new();
        let mut delivered = Vec::new();
        let mut channel: VecDeque<Vec<u8>> = VecDeque::new();
        for p in packets {
            channel.extend(sender.send(p));
        }
        let mut step = 0usize;
        let mut idle_rounds = 0;
        while idle_rounds < 3 {
            let mut progressed = false;
            while let Some(wire) = channel.pop_front() {
                step += 1;
                if drop(step) {
                    continue;
                }
                let (inner, fb) = receiver.on_wire(&wire).unwrap();
                if let Some(inner) = inner {
                    delivered.push(inner);
                    progressed = true;
                }
                channel.extend(sender.on_feedback(fb));
            }
            if sender.in_flight() > 0 {
                channel.extend(sender.on_timeout());
            }
            if progressed {
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
            }
        }
        delivered
    }

    #[test]
    fn lossless_channel_delivers_in_order() {
        let packets: Vec<Vec<u8>> = (0..10).map(pkt).collect();
        let delivered = run_channel(packets.clone(), |_| false, 4);
        assert_eq!(delivered, packets);
    }

    #[test]
    fn periodic_loss_is_recovered() {
        let packets: Vec<Vec<u8>> = (0..20).map(pkt).collect();
        let delivered = run_channel(packets.clone(), |step| step % 7 == 0, 4);
        assert_eq!(delivered, packets);
    }

    #[test]
    fn heavy_loss_is_recovered() {
        let packets: Vec<Vec<u8>> = (0..15).map(pkt).collect();
        let delivered = run_channel(packets.clone(), |step| step % 3 == 0, 5);
        assert_eq!(delivered, packets);
    }

    #[test]
    fn retransmissions_are_counted() {
        let mut sender = GoBackNSender::new(2);
        let mut receiver = GoBackNReceiver::new();
        let w1 = sender.send(pkt(1));
        let _w2 = sender.send(pkt(2));
        // Lose w1; deliver w2 -> NACK -> retransmit both.
        let (_inner, fb) = receiver.on_wire(&_w2[0]).unwrap();
        assert_eq!(fb, Feedback::Nack { expected: 0 });
        let retrans = sender.on_feedback(fb);
        assert_eq!(retrans.len(), 2);
        assert!(sender.retransmissions() >= 2);
        let _ = w1;
    }

    #[test]
    fn window_limits_in_flight() {
        let mut sender = GoBackNSender::new(3);
        let mut sent = 0;
        for i in 0..10 {
            sent += sender.send(pkt(i)).len();
        }
        assert_eq!(sent, 3, "only the window transmits");
        assert_eq!(sender.in_flight(), 3);
        // Ack one -> one more flows.
        let out = sender.on_feedback(Feedback::Ack { next: 1 });
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicates_are_reacked_not_delivered() {
        let mut sender = GoBackNSender::new(4);
        let mut receiver = GoBackNReceiver::new();
        let wires = sender.send(pkt(0));
        let (first, _) = receiver.on_wire(&wires[0]).unwrap();
        assert!(first.is_some());
        let (dup, fb) = receiver.on_wire(&wires[0]).unwrap();
        assert!(dup.is_none());
        assert_eq!(fb, Feedback::Ack { next: 1 });
        assert_eq!(receiver.duplicates(), 1);
    }

    #[test]
    fn trailer_roundtrip_and_corruption() {
        let wire = attach_trailer(&pkt(7), 42);
        let (inner, seq) = split_trailer(&wire).unwrap();
        assert_eq!(inner, &pkt(7)[..]);
        assert_eq!(seq, 42);
        assert!(split_trailer(&wire[..3]).is_err());
        let mut bad = wire.clone();
        let n = bad.len();
        bad[n - 6] ^= 0xff; // corrupt magic
        assert!(split_trailer(&bad).is_err());
    }

    #[test]
    fn seq_comparison_handles_wraparound() {
        assert!(seq_lt(Seq::MAX, 0));
        assert!(seq_lt(0, 1));
        assert!(!seq_lt(1, 0));
        assert!(!seq_lt(5, 5));
    }

    /// Pins the half-range semantics at every boundary the ISSUE audit
    /// names: `a == b`, `b == a + 1`, the `Seq::MAX → 0` wrap, the edges
    /// of the forward half-range, and the antipodal distance `2^31`
    /// (unordered both ways — unreachable with any sane window, but the
    /// comparator must not claim both `a < b` and `b < a` there).
    #[test]
    fn seq_comparison_boundary_matrix() {
        const HALF: Seq = 1 << (Seq::BITS - 1);
        for a in [0, 1, 7, HALF - 1, HALF, HALF + 1, Seq::MAX - 1, Seq::MAX] {
            // Reflexivity: never a < a.
            assert!(!seq_lt(a, a), "a={a}");
            // Immediate successor, including across the wrap.
            assert!(seq_lt(a, a.wrapping_add(1)), "a={a}");
            assert!(!seq_lt(a.wrapping_add(1), a), "a={a}");
            // Largest ordered forward distance: 2^31 − 1.
            assert!(seq_lt(a, a.wrapping_add(HALF - 1)), "a={a}");
            assert!(!seq_lt(a.wrapping_add(HALF - 1), a), "a={a}");
            // Antipode: unordered in both directions, never both true.
            assert!(!seq_lt(a, a.wrapping_add(HALF)), "a={a}");
            assert!(!seq_lt(a.wrapping_add(HALF), a), "a={a}");
            // One past the antipode: the order flips.
            assert!(!seq_lt(a, a.wrapping_add(HALF + 1)), "a={a}");
            assert!(seq_lt(a.wrapping_add(HALF + 1), a), "a={a}");
        }
    }

    #[test]
    fn lossy_channel_recovers_across_seq_wrap() {
        // Start 5 packets below the wrap so sequences run
        // MAX-5 .. MAX, 0, 1, ... — every ack/nack/duplicate compare in
        // this run crosses the boundary.
        let start = Seq::MAX - 5;
        let packets: Vec<Vec<u8>> = (0..20).map(pkt).collect();
        let mut sender = GoBackNSender::with_initial_seq(4, start);
        let mut receiver = GoBackNReceiver::expecting(start);
        let mut delivered = Vec::new();
        let mut channel: VecDeque<Vec<u8>> = VecDeque::new();
        for p in &packets {
            channel.extend(sender.send(p.clone()));
        }
        let mut step = 0usize;
        let mut idle_rounds = 0;
        while idle_rounds < 3 {
            let mut progressed = false;
            while let Some(wire) = channel.pop_front() {
                step += 1;
                if step.is_multiple_of(5) {
                    continue; // lossy
                }
                let (inner, fb) = receiver.on_wire(&wire).unwrap();
                if let Some(inner) = inner {
                    delivered.push(inner);
                    progressed = true;
                }
                channel.extend(sender.on_feedback(fb));
            }
            if sender.in_flight() > 0 {
                channel.extend(sender.on_timeout());
            }
            idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
        }
        assert_eq!(delivered, packets);
        assert_eq!(
            receiver.expected(),
            start.wrapping_add(packets.len() as Seq)
        );
        assert_eq!(sender.in_flight(), 0);
    }

    fn test_policy() -> RtoPolicy {
        RtoPolicy {
            base_rto: 1_000,
            max_rto: 8_000,
            max_retries: 3,
            jitter_pct: 0,
            jitter_seed: 9,
        }
    }

    /// Backoff schedule boundaries: attempt 0 = base, doubling per
    /// attempt, clamped at the ceiling, saturating far past it.
    #[test]
    fn backoff_schedule_doubles_and_clamps() {
        let p = test_policy();
        assert_eq!(p.rto(0), 1_000);
        assert_eq!(p.rto(1), 2_000);
        assert_eq!(p.rto(2), 4_000);
        assert_eq!(p.rto(3), 8_000);
        assert_eq!(p.rto(4), 8_000, "clamped at max_rto");
        assert_eq!(p.rto(63), 8_000);
        assert_eq!(p.rto(64), 8_000, "shift overflow saturates, not wraps");
        assert_eq!(p.rto(u32::MAX), 8_000);
        // Degenerate ceiling below base: max wins immediately.
        let tight = RtoPolicy {
            max_rto: 500,
            ..test_policy()
        };
        assert_eq!(tight.rto(0), 500);
    }

    /// Jitter is deterministic (same inputs → same deadline) and bounded
    /// by `jitter_pct` of the un-jittered RTO.
    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RtoPolicy {
            jitter_pct: 25,
            ..test_policy()
        };
        for attempt in 0..6 {
            for base in [0, 1, 7, Seq::MAX] {
                let a = p.rto_with_jitter(attempt, base);
                let b = p.rto_with_jitter(attempt, base);
                assert_eq!(a, b, "deterministic");
                let rto = p.rto(attempt);
                assert!(a >= rto, "jitter only stretches");
                assert!(a <= rto + rto / 100 * 25, "jitter bounded");
            }
        }
        // Different bases decorrelate.
        let spread: std::collections::HashSet<u64> =
            (0..32).map(|b| p.rto_with_jitter(1, b)).collect();
        assert!(spread.len() > 1, "jitter actually varies");
        // jitter_pct 0 disables it exactly.
        assert_eq!(test_policy().rto_with_jitter(2, 42), 4_000);
    }

    /// Circuit breaker: a dead peer (no feedback ever) burns exactly
    /// `max_retries` timeouts with backed-off spacing, then every poll
    /// reports `PeerUnreachable` and nothing is retransmitted again.
    #[test]
    fn circuit_breaker_trips_after_max_retries() {
        let p = test_policy();
        let mut sup = RetransmitSupervisor::new(4, p);
        let mut now = 0u64;
        let sent = sup.send(now, pkt(0));
        assert_eq!(sent.len(), 1);
        assert_eq!(sup.next_deadline(), Some(1_000));
        let mut fired = 0u32;
        loop {
            now = sup.next_deadline().expect("armed while in flight");
            match sup.poll(now) {
                Ok(out) => {
                    assert_eq!(out.len(), 1, "whole window retransmitted");
                    fired += 1;
                    // Next deadline is the *backed-off* RTO out.
                    assert_eq!(sup.next_deadline(), Some(now + p.rto(fired)));
                }
                Err(RetransmitError::PeerUnreachable { base, attempts }) => {
                    assert_eq!(base, 0);
                    assert_eq!(attempts, p.max_retries);
                    break;
                }
            }
        }
        assert_eq!(fired, p.max_retries, "retries before the breaker");
        assert!(sup.is_unreachable());
        assert!(sup.poll(now + 1_000_000).is_err(), "stays tripped");
        assert_eq!(
            sup.on_feedback(now, Feedback::Nack { expected: 0 }),
            Vec::<Vec<u8>>::new()
        );
        assert!(sup.retransmissions() <= sup.storm_cap());
        assert_eq!(sup.max_episode_retransmissions(), sup.retransmissions());
    }

    /// Ack progress resets the backoff: after two timeouts, one ack
    /// brings the next RTO back to the base value.
    #[test]
    fn progress_resets_the_backoff() {
        let p = test_policy();
        let mut sup = RetransmitSupervisor::new(2, p);
        sup.send(0, pkt(0));
        sup.send(0, pkt(1));
        let mut now = sup.next_deadline().unwrap();
        sup.poll(now).unwrap();
        now = sup.next_deadline().unwrap();
        sup.poll(now).unwrap();
        assert_eq!(sup.attempts(), 2);
        // Packet 0 finally acked: backoff resets, timer re-arms at base
        // RTO for the still-outstanding packet 1.
        let out = sup.on_feedback(now, Feedback::Ack { next: 1 });
        assert!(out.is_empty(), "window had nothing queued");
        assert_eq!(sup.attempts(), 0);
        assert_eq!(sup.in_flight(), 1);
        assert_eq!(sup.next_deadline(), Some(now + p.rto(0)));
        assert_eq!(
            sup.max_episode_retransmissions(),
            4,
            "2 timeouts × window 2"
        );
        // Everything acked: the timer disarms.
        sup.on_feedback(now, Feedback::Ack { next: 2 });
        assert_eq!(sup.next_deadline(), None);
        assert!(sup.poll(now + 1).unwrap().is_empty());
    }

    /// One loss inside a full window produces a NACK per delivered
    /// successor; only the first triggers a go-back, the rest are
    /// suppressed until the base advances — the storm control.
    #[test]
    fn redundant_nacks_are_suppressed() {
        let window = 6;
        let mut sup = RetransmitSupervisor::new(window, test_policy());
        let mut wires = Vec::new();
        for i in 0..window as u8 {
            wires.extend(sup.send(0, pkt(i)));
        }
        assert_eq!(wires.len(), window);
        // Packet 0 lost: the receiver NACKs each of the 5 successors.
        let mut receiver = GoBackNReceiver::new();
        let mut retransmitted = 0usize;
        for wire in &wires[1..] {
            let (inner, fb) = receiver.on_wire(wire).unwrap();
            assert!(inner.is_none());
            retransmitted += sup.on_feedback(1, fb).len();
        }
        assert_eq!(
            retransmitted, window,
            "exactly one full-window go-back for the burst of NACKs"
        );
        assert_eq!(sup.suppressed_nacks() as usize, window - 2);
        assert!(sup.max_episode_retransmissions() <= sup.storm_cap());
    }

    /// End-to-end under deterministic loss with a virtual clock: the
    /// supervised link delivers everything in order, the breaker never
    /// trips, and no episode exceeds the storm cap.
    #[test]
    fn supervised_lossy_channel_delivers_within_the_storm_cap() {
        let policy = RtoPolicy {
            base_rto: 1_000,
            max_rto: 16_000,
            max_retries: 6,
            jitter_pct: 30,
            jitter_seed: 77,
        };
        let window = 4;
        let mut sup = RetransmitSupervisor::new(window, policy);
        let mut receiver = GoBackNReceiver::new();
        let packets: Vec<Vec<u8>> = (0..30).map(pkt).collect();
        let mut delivered = Vec::new();
        let mut now = 0u64;
        let mut channel: VecDeque<Vec<u8>> = VecDeque::new();
        let mut step = 0usize;
        for p in &packets {
            channel.extend(sup.send(now, p.clone()));
        }
        while sup.in_flight() > 0 || sup.backlog() > 0 {
            now += 100;
            if let Some(wire) = channel.pop_front() {
                step += 1;
                if step.is_multiple_of(5) {
                    // 20% deterministic loss, co-prime with the window so
                    // the stuck base never aligns with the drop pattern.
                    continue;
                }
                let (inner, fb) = receiver.on_wire(&wire).unwrap();
                if let Some(inner) = inner {
                    delivered.push(inner);
                }
                if !step.is_multiple_of(7) {
                    // feedback channel is lossy too
                    channel.extend(sup.on_feedback(now, fb));
                }
            } else {
                channel.extend(sup.poll(now).expect("peer is alive"));
            }
            assert!(now < 10_000_000, "link failed to converge");
        }
        assert_eq!(delivered, packets);
        assert!(sup.max_episode_retransmissions() <= sup.storm_cap());
        assert!(sup.timeouts() > 0, "loss actually exercised the timer");
    }
}
