//! Go-Back-N retransmission for the BMac protocol (paper §5 extension).
//!
//! The paper ships without retransmission ("we did not propose or
//! implement a retransmission scheme for lost packets") and points at
//! Go-Back-N "as it has been used in RDMA over Ethernet \[17\]" for
//! deployments that need it. This module implements that extension: the
//! sender numbers every packet with a connection-scoped sequence number
//! and keeps a sliding window; the receiver acks cumulatively and the
//! sender goes back to the first unacknowledged packet on timeout or
//! out-of-order arrival (NACK).
//!
//! The scheme wraps the base protocol: sequence numbers ride in a small
//! trailer appended to the encoded packet, so the inner BMac wire format
//! is untouched and the hardware parse path stays cut-through.

use std::collections::VecDeque;

use crate::packet::PacketError;

/// Sequence number type (wraps; the window is far smaller than the
/// space).
pub type Seq = u32;

/// Trailer appended to each wire packet: magic + sequence number.
const TRAILER_MAGIC: u16 = 0x6B4E; // "kN"
const TRAILER_LEN: usize = 6;

/// Feedback from receiver to sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    /// Cumulative acknowledgment: everything below `next` received.
    Ack {
        /// Next expected sequence number.
        next: Seq,
    },
    /// Out-of-order arrival: ask the sender to go back to `expected`.
    Nack {
        /// Next expected sequence number.
        expected: Seq,
    },
}

/// Sender-side Go-Back-N state over encoded wire packets.
#[derive(Debug)]
pub struct GoBackNSender {
    window: usize,
    next_seq: Seq,
    base: Seq,
    /// Unacknowledged packets, front = `base`.
    in_flight: VecDeque<(Seq, Vec<u8>)>,
    /// Packets accepted but not yet transmittable (window full).
    queued: VecDeque<Vec<u8>>,
    retransmissions: u64,
}

impl GoBackNSender {
    /// Creates a sender with the given window size.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        Self::with_initial_seq(window, 0)
    }

    /// Creates a sender whose first packet carries sequence number
    /// `start`. The paired receiver must be built with
    /// [`GoBackNReceiver::expecting`]`(start)`. This is how long-lived
    /// connections resume, and how the wraparound tests start a pair a
    /// few packets below `Seq::MAX` instead of sending 2^32 packets.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn with_initial_seq(window: usize, start: Seq) -> Self {
        assert!(window > 0, "window must be positive");
        GoBackNSender {
            window,
            next_seq: start,
            base: start,
            in_flight: VecDeque::new(),
            queued: VecDeque::new(),
            retransmissions: 0,
        }
    }

    /// Queues an encoded packet; returns any packets that may be
    /// transmitted now (sequence trailer attached).
    pub fn send(&mut self, wire: Vec<u8>) -> Vec<Vec<u8>> {
        self.queued.push_back(wire);
        self.fill_window()
    }

    /// Handles receiver feedback; returns packets to (re)transmit.
    pub fn on_feedback(&mut self, fb: Feedback) -> Vec<Vec<u8>> {
        match fb {
            Feedback::Ack { next } => {
                while let Some(&(seq, _)) = self.in_flight.front() {
                    if seq_lt(seq, next) {
                        self.in_flight.pop_front();
                        self.base = next;
                    } else {
                        break;
                    }
                }
                self.fill_window()
            }
            Feedback::Nack { expected } => self.go_back(expected),
        }
    }

    /// Timeout expiry: retransmit the whole window from `base`.
    pub fn on_timeout(&mut self) -> Vec<Vec<u8>> {
        let base = self.base;
        self.go_back(base)
    }

    /// Packets retransmitted so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Unacknowledged packet count.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    fn go_back(&mut self, from: Seq) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for (seq, wire) in &self.in_flight {
            if !seq_lt(*seq, from) {
                out.push(attach_trailer(wire, *seq));
                self.retransmissions += 1;
            }
        }
        out
    }

    fn fill_window(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while self.in_flight.len() < self.window {
            let Some(wire) = self.queued.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            out.push(attach_trailer(&wire, seq));
            self.in_flight.push_back((seq, wire));
        }
        out
    }
}

/// Receiver-side Go-Back-N state: strips trailers, rejects gaps, and
/// produces feedback for the sender.
#[derive(Debug, Default)]
pub struct GoBackNReceiver {
    expected: Seq,
    duplicates: u64,
}

impl GoBackNReceiver {
    /// Creates a receiver expecting sequence 0.
    pub fn new() -> Self {
        GoBackNReceiver::default()
    }

    /// Creates a receiver expecting sequence `start` (the counterpart of
    /// [`GoBackNSender::with_initial_seq`]).
    pub fn expecting(start: Seq) -> Self {
        GoBackNReceiver {
            expected: start,
            duplicates: 0,
        }
    }

    /// Processes one wire packet with trailer. Returns the inner packet
    /// bytes when it is the next in order (deliver to the BMac
    /// receiver), plus the feedback to send back.
    ///
    /// # Errors
    ///
    /// [`PacketError::Truncated`] when the trailer is missing/mangled.
    pub fn on_wire(&mut self, wire: &[u8]) -> Result<(Option<Vec<u8>>, Feedback), PacketError> {
        let (inner, seq) = split_trailer(wire)?;
        if seq == self.expected {
            self.expected = self.expected.wrapping_add(1);
            Ok((
                Some(inner.to_vec()),
                Feedback::Ack {
                    next: self.expected,
                },
            ))
        } else if seq_lt(seq, self.expected) {
            // Duplicate of something already delivered: re-ack.
            self.duplicates += 1;
            Ok((
                None,
                Feedback::Ack {
                    next: self.expected,
                },
            ))
        } else {
            // Gap: Go-Back-N discards out-of-order packets.
            Ok((
                None,
                Feedback::Nack {
                    expected: self.expected,
                },
            ))
        }
    }

    /// Duplicate deliveries observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> Seq {
        self.expected
    }
}

fn attach_trailer(wire: &[u8], seq: Seq) -> Vec<u8> {
    let mut out = Vec::with_capacity(wire.len() + TRAILER_LEN);
    out.extend_from_slice(wire);
    out.extend_from_slice(&TRAILER_MAGIC.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out
}

fn split_trailer(wire: &[u8]) -> Result<(&[u8], Seq), PacketError> {
    if wire.len() < TRAILER_LEN {
        return Err(PacketError::Truncated);
    }
    let (inner, trailer) = wire.split_at(wire.len() - TRAILER_LEN);
    let magic = u16::from_be_bytes(trailer[..2].try_into().expect("2 bytes"));
    if magic != TRAILER_MAGIC {
        return Err(PacketError::Truncated);
    }
    let seq = Seq::from_be_bytes(trailer[2..].try_into().expect("4 bytes"));
    Ok((inner, seq))
}

/// Wrap-around-aware `a < b` for sequence numbers: RFC 1982 serial
/// arithmetic with half-range `2^31`. `a < b` iff the forward distance
/// `(b − a) mod 2^32` lies in `1..2^31` — so `seq_lt(a, a)` is false,
/// `seq_lt(a, a+1)` is true (including across the `Seq::MAX → 0` wrap),
/// and antipodal pairs (distance exactly `2^31`) compare unordered in
/// both directions, which a window ≪ 2^31 never produces.
///
/// (Audit note: the previous form `b.wrapping_sub(a).wrapping_sub(1) <
/// Seq::MAX / 2` is arithmetically identical — `d − 1 < 2^31 − 1` with
/// the `d = 0` case wrapping out of range — i.e. no off-by-one; this
/// spelling plus the boundary tests below pin the semantics.)
fn seq_lt(a: Seq, b: Seq) -> bool {
    const HALF_RANGE: Seq = 1 << (Seq::BITS - 1);
    let forward = b.wrapping_sub(a);
    forward != 0 && forward < HALF_RANGE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(i: u8) -> Vec<u8> {
        vec![i; 8]
    }

    /// Delivers `wires` through a lossy channel defined by `drop`:
    /// returns delivered inner packets in order.
    fn run_channel(
        packets: Vec<Vec<u8>>,
        drop: impl Fn(usize) -> bool,
        window: usize,
    ) -> Vec<Vec<u8>> {
        let mut sender = GoBackNSender::new(window);
        let mut receiver = GoBackNReceiver::new();
        let mut delivered = Vec::new();
        let mut channel: VecDeque<Vec<u8>> = VecDeque::new();
        for p in packets {
            channel.extend(sender.send(p));
        }
        let mut step = 0usize;
        let mut idle_rounds = 0;
        while idle_rounds < 3 {
            let mut progressed = false;
            while let Some(wire) = channel.pop_front() {
                step += 1;
                if drop(step) {
                    continue;
                }
                let (inner, fb) = receiver.on_wire(&wire).unwrap();
                if let Some(inner) = inner {
                    delivered.push(inner);
                    progressed = true;
                }
                channel.extend(sender.on_feedback(fb));
            }
            if sender.in_flight() > 0 {
                channel.extend(sender.on_timeout());
            }
            if progressed {
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
            }
        }
        delivered
    }

    #[test]
    fn lossless_channel_delivers_in_order() {
        let packets: Vec<Vec<u8>> = (0..10).map(pkt).collect();
        let delivered = run_channel(packets.clone(), |_| false, 4);
        assert_eq!(delivered, packets);
    }

    #[test]
    fn periodic_loss_is_recovered() {
        let packets: Vec<Vec<u8>> = (0..20).map(pkt).collect();
        let delivered = run_channel(packets.clone(), |step| step % 7 == 0, 4);
        assert_eq!(delivered, packets);
    }

    #[test]
    fn heavy_loss_is_recovered() {
        let packets: Vec<Vec<u8>> = (0..15).map(pkt).collect();
        let delivered = run_channel(packets.clone(), |step| step % 3 == 0, 5);
        assert_eq!(delivered, packets);
    }

    #[test]
    fn retransmissions_are_counted() {
        let mut sender = GoBackNSender::new(2);
        let mut receiver = GoBackNReceiver::new();
        let w1 = sender.send(pkt(1));
        let _w2 = sender.send(pkt(2));
        // Lose w1; deliver w2 -> NACK -> retransmit both.
        let (_inner, fb) = receiver.on_wire(&_w2[0]).unwrap();
        assert_eq!(fb, Feedback::Nack { expected: 0 });
        let retrans = sender.on_feedback(fb);
        assert_eq!(retrans.len(), 2);
        assert!(sender.retransmissions() >= 2);
        let _ = w1;
    }

    #[test]
    fn window_limits_in_flight() {
        let mut sender = GoBackNSender::new(3);
        let mut sent = 0;
        for i in 0..10 {
            sent += sender.send(pkt(i)).len();
        }
        assert_eq!(sent, 3, "only the window transmits");
        assert_eq!(sender.in_flight(), 3);
        // Ack one -> one more flows.
        let out = sender.on_feedback(Feedback::Ack { next: 1 });
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicates_are_reacked_not_delivered() {
        let mut sender = GoBackNSender::new(4);
        let mut receiver = GoBackNReceiver::new();
        let wires = sender.send(pkt(0));
        let (first, _) = receiver.on_wire(&wires[0]).unwrap();
        assert!(first.is_some());
        let (dup, fb) = receiver.on_wire(&wires[0]).unwrap();
        assert!(dup.is_none());
        assert_eq!(fb, Feedback::Ack { next: 1 });
        assert_eq!(receiver.duplicates(), 1);
    }

    #[test]
    fn trailer_roundtrip_and_corruption() {
        let wire = attach_trailer(&pkt(7), 42);
        let (inner, seq) = split_trailer(&wire).unwrap();
        assert_eq!(inner, &pkt(7)[..]);
        assert_eq!(seq, 42);
        assert!(split_trailer(&wire[..3]).is_err());
        let mut bad = wire.clone();
        let n = bad.len();
        bad[n - 6] ^= 0xff; // corrupt magic
        assert!(split_trailer(&bad).is_err());
    }

    #[test]
    fn seq_comparison_handles_wraparound() {
        assert!(seq_lt(Seq::MAX, 0));
        assert!(seq_lt(0, 1));
        assert!(!seq_lt(1, 0));
        assert!(!seq_lt(5, 5));
    }

    /// Pins the half-range semantics at every boundary the ISSUE audit
    /// names: `a == b`, `b == a + 1`, the `Seq::MAX → 0` wrap, the edges
    /// of the forward half-range, and the antipodal distance `2^31`
    /// (unordered both ways — unreachable with any sane window, but the
    /// comparator must not claim both `a < b` and `b < a` there).
    #[test]
    fn seq_comparison_boundary_matrix() {
        const HALF: Seq = 1 << (Seq::BITS - 1);
        for a in [0, 1, 7, HALF - 1, HALF, HALF + 1, Seq::MAX - 1, Seq::MAX] {
            // Reflexivity: never a < a.
            assert!(!seq_lt(a, a), "a={a}");
            // Immediate successor, including across the wrap.
            assert!(seq_lt(a, a.wrapping_add(1)), "a={a}");
            assert!(!seq_lt(a.wrapping_add(1), a), "a={a}");
            // Largest ordered forward distance: 2^31 − 1.
            assert!(seq_lt(a, a.wrapping_add(HALF - 1)), "a={a}");
            assert!(!seq_lt(a.wrapping_add(HALF - 1), a), "a={a}");
            // Antipode: unordered in both directions, never both true.
            assert!(!seq_lt(a, a.wrapping_add(HALF)), "a={a}");
            assert!(!seq_lt(a.wrapping_add(HALF), a), "a={a}");
            // One past the antipode: the order flips.
            assert!(!seq_lt(a, a.wrapping_add(HALF + 1)), "a={a}");
            assert!(seq_lt(a.wrapping_add(HALF + 1), a), "a={a}");
        }
    }

    #[test]
    fn lossy_channel_recovers_across_seq_wrap() {
        // Start 5 packets below the wrap so sequences run
        // MAX-5 .. MAX, 0, 1, ... — every ack/nack/duplicate compare in
        // this run crosses the boundary.
        let start = Seq::MAX - 5;
        let packets: Vec<Vec<u8>> = (0..20).map(pkt).collect();
        let mut sender = GoBackNSender::with_initial_seq(4, start);
        let mut receiver = GoBackNReceiver::expecting(start);
        let mut delivered = Vec::new();
        let mut channel: VecDeque<Vec<u8>> = VecDeque::new();
        for p in &packets {
            channel.extend(sender.send(p.clone()));
        }
        let mut step = 0usize;
        let mut idle_rounds = 0;
        while idle_rounds < 3 {
            let mut progressed = false;
            while let Some(wire) = channel.pop_front() {
                step += 1;
                if step.is_multiple_of(5) {
                    continue; // lossy
                }
                let (inner, fb) = receiver.on_wire(&wire).unwrap();
                if let Some(inner) = inner {
                    delivered.push(inner);
                    progressed = true;
                }
                channel.extend(sender.on_feedback(fb));
            }
            if sender.in_flight() > 0 {
                channel.extend(sender.on_timeout());
            }
            idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
        }
        assert_eq!(delivered, packets);
        assert_eq!(
            receiver.expected(),
            start.wrapping_add(packets.len() as Seq)
        );
        assert_eq!(sender.in_flight(), 0);
    }
}
