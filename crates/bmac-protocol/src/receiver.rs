//! Software reference receiver for the BMac protocol.
//!
//! Functionally identical to the hardware `protocol_processor` (§3.2,
//! Figure 5b): classifies packets, maintains the identity cache
//! (DataInserter), reconstructs byte-exact sections, and extracts the
//! verification requests and database requests the block processor
//! consumes (DataExtractor / DataProcessor / HashCalculator). The
//! hardware simulator in `bmac-hw` reuses this for functional behaviour
//! and adds the timing model on top.

use std::collections::HashMap;

use fabric_crypto::der;
use fabric_crypto::sha256::sha256;
use fabric_crypto::Signature;
use fabric_protos::messages::{
    metadata_index, Block, BlockData, BlockHeader, BlockMetadata, MetadataSignature,
    SignatureHeader,
};
use fabric_protos::txflow::{decode_transaction, DecodedTransaction};
use fabric_protos::wire::WireError;
use fabric_protos::Version;

use crate::cache::IdentityCache;
use crate::packet::{Annotation, BmacPacket, PacketError, SectionType};

/// One verification request as consumed by an `ecdsa_engine`: signature,
/// key owner (by id), and the 32-byte message digest (§3.3).
#[derive(Debug, Clone)]
pub struct VerificationRequest {
    /// Parsed ECDSA signature.
    pub signature: Signature,
    /// 16-bit encoded id of the signer (key selector).
    pub signer_id: u16,
    /// SHA-256 digest of the signed message.
    pub digest: [u8; 32],
}

/// Extracted per-transaction data, i.e. the contents of `tx_fifo` +
/// `ends_fifo` + `rdset_fifo` + `wrset_fifo` for one transaction
/// (Figure 7).
#[derive(Debug, Clone)]
pub struct ExtractedTx {
    /// Transaction id.
    pub tx_id: String,
    /// Chaincode (selects the policy circuit via `cc_id`).
    pub chaincode: String,
    /// Client signature verification request.
    pub client: VerificationRequest,
    /// One verification request per endorsement.
    pub endorsements: Vec<VerificationRequest>,
    /// Database read requests: key + expected version.
    pub reads: Vec<(String, Option<Version>)>,
    /// Database write requests: key + value.
    pub writes: Vec<(String, Vec<u8>)>,
    /// Reconstructed envelope size in bytes.
    pub envelope_len: usize,
}

/// A block fully reassembled from BMac packets.
#[derive(Debug, Clone)]
pub struct ReceivedBlock {
    /// The byte-exact reconstructed block.
    pub block: Block,
    /// Block-level verification request (orderer signature).
    pub block_verification: VerificationRequest,
    /// Per-transaction extracted data.
    pub txs: Vec<ExtractedTx>,
    /// Total wire bytes consumed for this block (excluding syncs).
    pub wire_bytes: usize,
}

/// Errors from packet ingestion.
#[derive(Debug)]
pub enum ReceiveError {
    /// Packet-level decode failure.
    Packet(PacketError),
    /// A locator referenced an id missing from the cache (a lost
    /// IdentitySync packet).
    UnknownIdentity(u16),
    /// Reconstructed bytes failed to decode.
    Decode(WireError),
    /// The reconstructed section failed a structural expectation.
    Malformed(&'static str),
}

impl std::fmt::Display for ReceiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReceiveError::Packet(e) => write!(f, "bad packet: {e}"),
            ReceiveError::UnknownIdentity(id) => {
                write!(f, "identity {id:#06x} not in cache (lost sync packet?)")
            }
            ReceiveError::Decode(e) => write!(f, "reconstructed section undecodable: {e}"),
            ReceiveError::Malformed(what) => write!(f, "malformed section: {what}"),
        }
    }
}

impl std::error::Error for ReceiveError {}

#[derive(Debug, Default)]
struct PartialBlock {
    header: Option<Vec<u8>>,
    metadata: Option<(Vec<u8>, Vec<Annotation>)>,
    txs: HashMap<u16, (Vec<u8>, Vec<Annotation>)>,
    total_txs: Option<u16>,
    wire_bytes: usize,
}

impl PartialBlock {
    fn is_complete(&self) -> bool {
        match self.total_txs {
            Some(n) => {
                self.header.is_some() && self.metadata.is_some() && self.txs.len() == n as usize
            }
            None => false,
        }
    }
}

/// Receiver statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReceiverStats {
    /// BMac packets accepted.
    pub packets: u64,
    /// Non-BMac packets forwarded to the host.
    pub forwarded: u64,
    /// Blocks completed.
    pub blocks: u64,
    /// Identity-cache entries installed.
    pub identities: u64,
    /// Section packets discarded because their block had already
    /// completed (late duplicates on the wire).
    pub late_duplicates: u64,
}

/// The software BMac receiver.
#[derive(Debug, Default)]
pub struct BmacReceiver {
    cache: IdentityCache,
    partial: HashMap<u64, PartialBlock>,
    /// Numbers of blocks already delivered: a duplicate section arriving
    /// after its block completed must be dropped, not allowed to seed a
    /// ghost partial block (which would both report a phantom loss and,
    /// under full duplication, deliver the block twice). Only the
    /// out-of-order frontier is stored; everything at or below
    /// `completed_watermark` is pruned, so memory stays O(reorder depth)
    /// when numbering is dense from the watermark (block 0 for
    /// [`BmacReceiver::new`]; use [`BmacReceiver::resuming_from`] when
    /// attaching mid-chain, otherwise the set grows by one entry per
    /// delivered block).
    completed: std::collections::HashSet<u64>,
    /// All blocks `0..=watermark` are considered delivered.
    completed_watermark: Option<u64>,
    stats: ReceiverStats,
}

impl BmacReceiver {
    /// Creates a receiver with an empty identity cache.
    pub fn new() -> Self {
        BmacReceiver::default()
    }

    /// Creates a receiver attached to a chain whose next expected block
    /// is `next_block` (the resuming peer's `Ledger::next_block_number`):
    /// sections for blocks below it are discarded as late duplicates,
    /// and the completed-block memory stays bounded by the reorder depth
    /// instead of growing per delivered block.
    pub fn resuming_from(next_block: u64) -> Self {
        BmacReceiver {
            completed_watermark: next_block.checked_sub(1),
            ..BmacReceiver::default()
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Block numbers currently incomplete (for loss detection; the
    /// protocol has no retransmission, §5).
    pub fn incomplete_blocks(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.partial.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Ingests one wire packet. Returns any blocks completed by this
    /// packet (usually zero or one; an identity-sync packet can release
    /// several blocks that were waiting on it). Non-BMac packets are
    /// counted as forwarded.
    ///
    /// # Errors
    ///
    /// [`ReceiveError`] on malformed BMac packets or reconstruction
    /// failures.
    pub fn ingest(&mut self, wire: &[u8]) -> Result<Vec<ReceivedBlock>, ReceiveError> {
        let packet = match BmacPacket::decode(wire) {
            Ok(p) => p,
            Err(PacketError::NotBmac) => {
                self.stats.forwarded += 1;
                return Ok(Vec::new());
            }
            Err(e) => return Err(ReceiveError::Packet(e)),
        };
        self.stats.packets += 1;
        self.ingest_packet(packet, wire.len())
    }

    /// Ingests an already-parsed packet (the hardware simulator path).
    ///
    /// Blocks whose sections are all present but which reference an
    /// identity not yet synchronized are held back until the sync
    /// arrives — UDP gives no ordering guarantee between a sync packet
    /// and a later block's sections.
    ///
    /// # Errors
    ///
    /// [`ReceiveError`] on reconstruction failures.
    pub fn ingest_packet(
        &mut self,
        packet: BmacPacket,
        wire_len: usize,
    ) -> Result<Vec<ReceivedBlock>, ReceiveError> {
        if packet.section == SectionType::IdentitySync {
            self.cache.insert_raw(packet.index, packet.payload.to_vec());
            self.stats.identities += 1;
            // The new identity may unblock complete-but-waiting blocks.
            return self.drain_ready();
        }
        if self.is_completed(packet.block_num) {
            self.stats.late_duplicates += 1;
            return Ok(Vec::new());
        }
        let partial = self.partial.entry(packet.block_num).or_default();
        partial.total_txs = Some(packet.total_txs);
        partial.wire_bytes += wire_len;
        match packet.section {
            SectionType::Header => partial.header = Some(packet.payload.to_vec()),
            SectionType::Metadata => {
                partial.metadata = Some((packet.payload.to_vec(), packet.annotations))
            }
            SectionType::Transaction => {
                partial
                    .txs
                    .insert(packet.index, (packet.payload.to_vec(), packet.annotations));
            }
            SectionType::IdentitySync => unreachable!("handled above"),
        }
        if !self.partial[&packet.block_num].is_complete() {
            return Ok(Vec::new());
        }
        self.complete_one(packet.block_num)
    }

    fn is_completed(&self, block_num: u64) -> bool {
        match self.completed_watermark {
            Some(w) if block_num <= w => true,
            _ => self.completed.contains(&block_num),
        }
    }

    fn mark_completed(&mut self, block_num: u64) {
        self.completed.insert(block_num);
        // Advance the dense prefix and prune everything under it.
        loop {
            let next = self.completed_watermark.map_or(0, |w| w + 1);
            if self.completed.remove(&next) {
                self.completed_watermark = Some(next);
            } else {
                break;
            }
        }
    }

    /// Attempts to finish every structurally complete block.
    fn drain_ready(&mut self) -> Result<Vec<ReceivedBlock>, ReceiveError> {
        let ready: Vec<u64> = self
            .partial
            .iter()
            .filter(|(_, p)| p.is_complete())
            .map(|(&n, _)| n)
            .collect();
        let mut out = Vec::new();
        for n in ready {
            out.extend(self.complete_one(n)?);
        }
        Ok(out)
    }

    /// Finishes one complete block, or leaves it parked when an identity
    /// is still missing (reassembly is side-effect free).
    fn complete_one(&mut self, block_num: u64) -> Result<Vec<ReceivedBlock>, ReceiveError> {
        let result = {
            let partial = self.partial.get(&block_num).expect("present");
            self.reassemble(partial)
        };
        match result {
            Ok(block) => {
                self.partial.remove(&block_num);
                self.mark_completed(block_num);
                self.stats.blocks += 1;
                Ok(vec![block])
            }
            Err(ReceiveError::UnknownIdentity(_))
            | Err(ReceiveError::Malformed("orderer identity not cached")) => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// The DataInserter: reinsert cached identity bytes at each locator
    /// offset, restoring the original section byte-exactly.
    fn reconstruct(
        &self,
        stripped: &[u8],
        annotations: &[Annotation],
    ) -> Result<Vec<u8>, ReceiveError> {
        let mut locators: Vec<(u32, u16)> = annotations
            .iter()
            .filter_map(|a| match a {
                Annotation::Locator { offset, id } => Some((*offset, *id)),
                _ => None,
            })
            .collect();
        locators.sort_by_key(|&(off, _)| off);
        let mut out = Vec::with_capacity(stripped.len() + locators.len() * 900);
        let mut pos = 0usize;
        for (offset, id) in locators {
            let offset = offset as usize;
            if offset > stripped.len() {
                return Err(ReceiveError::Malformed("locator offset out of range"));
            }
            out.extend_from_slice(&stripped[pos..offset]);
            let ident = self
                .cache
                .bytes_of(id)
                .ok_or(ReceiveError::UnknownIdentity(id))?;
            out.extend_from_slice(ident);
            pos = offset;
        }
        out.extend_from_slice(&stripped[pos..]);
        Ok(out)
    }

    fn reassemble(&self, partial: &PartialBlock) -> Result<ReceivedBlock, ReceiveError> {
        let header_bytes = partial.header.as_ref().expect("checked complete");
        let (md_stripped, md_annotations) = partial.metadata.as_ref().expect("checked complete");
        let header = BlockHeader::unmarshal(header_bytes).map_err(ReceiveError::Decode)?;
        let md_bytes = self.reconstruct(md_stripped, md_annotations)?;
        let metadata = BlockMetadata::unmarshal(&md_bytes).map_err(ReceiveError::Decode)?;

        // Block verification request from the metadata signature slot.
        let sig_slot = &metadata.metadata[metadata_index::SIGNATURES];
        let md_sig = MetadataSignature::unmarshal(sig_slot).map_err(ReceiveError::Decode)?;
        let sh =
            SignatureHeader::unmarshal(&md_sig.signature_header).map_err(ReceiveError::Decode)?;
        let orderer_id = self
            .cache
            .id_of(&sh.creator)
            .ok_or(ReceiveError::Malformed("orderer identity not cached"))?;
        let signature = der::decode_signature(&md_sig.signature)
            .map_err(|_| ReceiveError::Malformed("bad orderer DER signature"))?;
        let mut signed = md_sig.signature_header.clone();
        signed.extend_from_slice(&header.marshal());
        let block_verification = VerificationRequest {
            signature,
            signer_id: orderer_id,
            digest: sha256(&signed),
        };

        // Transactions, in order.
        let total = partial.total_txs.expect("checked complete");
        let mut envelopes = Vec::with_capacity(total as usize);
        let mut txs = Vec::with_capacity(total as usize);
        for i in 0..total {
            let (stripped, annotations) = partial.txs.get(&i).expect("checked complete");
            let env_bytes = self.reconstruct(stripped, annotations)?;
            let decoded = decode_transaction(&env_bytes).map_err(ReceiveError::Decode)?;
            txs.push(self.extract_tx(&decoded, env_bytes.len())?);
            envelopes.push(env_bytes);
        }

        let block = Block {
            header,
            data: BlockData { data: envelopes },
            metadata,
        };
        Ok(ReceivedBlock {
            block,
            block_verification,
            txs,
            wire_bytes: partial.wire_bytes,
        })
    }

    /// DataExtractor + DataProcessor + HashCalculator for one
    /// transaction: produce the fixed-width verification requests and the
    /// database request streams.
    fn extract_tx(
        &self,
        decoded: &DecodedTransaction,
        envelope_len: usize,
    ) -> Result<ExtractedTx, ReceiveError> {
        let creator_ident = fabric_protos::messages::SerializedIdentity {
            mspid: decoded.creator_cert.org_name.clone(),
            id_bytes: decoded.creator_cert.to_bytes(),
        }
        .marshal();
        let creator_id = self
            .cache
            .id_of(&creator_ident)
            .unwrap_or_else(|| decoded.creator_cert.node_id.encode());
        let client = VerificationRequest {
            signature: decoded.client_signature,
            signer_id: creator_id,
            digest: sha256(&decoded.signed_payload),
        };
        let endorsements = decoded
            .endorsements
            .iter()
            .map(|e| VerificationRequest {
                signature: e.signature,
                signer_id: e.endorser_cert.node_id.encode(),
                digest: sha256(&e.signed_message),
            })
            .collect();
        Ok(ExtractedTx {
            tx_id: decoded.tx_id.clone(),
            chaincode: decoded.chaincode.clone(),
            client,
            endorsements,
            reads: decoded.reads.clone(),
            writes: decoded.writes.clone(),
            envelope_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::BmacSender;
    use fabric_node::chaincode::KvChaincode;
    use fabric_node::network::FabricNetworkBuilder;
    use fabric_policy::parse;

    fn one_block(ntx: usize) -> Block {
        let mut net = FabricNetworkBuilder::new()
            .orgs(2)
            .block_size(ntx)
            .chaincode("kv", parse("2-outof-2 orgs").unwrap())
            .build();
        net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
        let mut blocks = Vec::new();
        let mut i = 0;
        while blocks.is_empty() {
            blocks = net
                .submit_invocation(0, "kv", "put", &[format!("k{i}"), "1".into()])
                .unwrap();
            i += 1;
        }
        blocks.remove(0)
    }

    fn roundtrip(block: &Block) -> ReceivedBlock {
        let mut sender = BmacSender::new();
        let mut receiver = BmacReceiver::new();
        let packets = sender.send_block(block).unwrap();
        let mut done = None;
        for p in packets {
            let wire = p.encode().unwrap();
            for b in receiver.ingest(&wire).unwrap() {
                done = Some(b);
            }
        }
        done.expect("block completed")
    }

    #[test]
    fn reconstruction_is_byte_exact() {
        let block = one_block(3);
        let received = roundtrip(&block);
        assert_eq!(received.block.marshal(), block.marshal());
    }

    #[test]
    fn block_verification_request_verifies() {
        let block = one_block(2);
        let received = roundtrip(&block);
        // Decode the orderer cert from the reconstructed block and check
        // the extracted digest + signature verify against it.
        let decoded = fabric_protos::txflow::decode_block(&block.marshal()).unwrap();
        assert!(decoded
            .orderer_cert
            .public_key
            .verify_prehashed(
                &received.block_verification.digest,
                &received.block_verification.signature
            )
            .is_ok());
        assert_eq!(
            received.block_verification.signer_id,
            decoded.orderer_cert.node_id.encode()
        );
    }

    #[test]
    fn extracted_requests_verify_with_real_keys() {
        let block = one_block(2);
        let received = roundtrip(&block);
        let decoded = fabric_protos::txflow::decode_block(&block.marshal()).unwrap();
        for (ext, dec) in received.txs.iter().zip(&decoded.txs) {
            assert!(dec
                .creator_cert
                .public_key
                .verify_prehashed(&ext.client.digest, &ext.client.signature)
                .is_ok());
            assert_eq!(ext.endorsements.len(), dec.endorsements.len());
            for (er, ed) in ext.endorsements.iter().zip(&dec.endorsements) {
                assert!(ed
                    .endorser_cert
                    .public_key
                    .verify_prehashed(&er.digest, &er.signature)
                    .is_ok());
            }
            assert_eq!(ext.reads, dec.reads);
            assert_eq!(ext.writes, dec.writes);
        }
    }

    #[test]
    fn out_of_order_packets_still_complete() {
        let block = one_block(4);
        let mut sender = BmacSender::new();
        let mut receiver = BmacReceiver::new();
        let mut packets = sender.send_block(&block).unwrap();
        // Keep syncs first (sender guarantees delivery ordering of syncs
        // before first use in our in-order link; reverse only the rest).
        let syncs: Vec<_> = packets
            .iter()
            .filter(|p| p.section == SectionType::IdentitySync)
            .cloned()
            .collect();
        packets.retain(|p| p.section != SectionType::IdentitySync);
        packets.reverse();
        let mut done = None;
        for p in syncs.into_iter().chain(packets) {
            for b in receiver.ingest(&p.encode().unwrap()).unwrap() {
                done = Some(b);
            }
        }
        assert!(done.is_some());
        assert_eq!(done.unwrap().block.marshal(), block.marshal());
    }

    #[test]
    fn lost_packet_leaves_block_incomplete() {
        let block = one_block(3);
        let mut sender = BmacSender::new();
        let mut receiver = BmacReceiver::new();
        let packets = sender.send_block(&block).unwrap();
        let mut completed = false;
        let mut dropped = false;
        for p in packets.iter() {
            // Drop the first transaction section.
            if p.section == SectionType::Transaction && !dropped {
                dropped = true;
                continue;
            }
            if !receiver.ingest(&p.encode().unwrap()).unwrap().is_empty() {
                completed = true;
            }
        }
        assert!(dropped);
        assert!(!completed);
        assert_eq!(receiver.incomplete_blocks(), vec![block.header.number]);
    }

    #[test]
    fn lost_sync_packet_is_detected() {
        let block = one_block(1);
        let mut sender = BmacSender::new();
        let mut receiver = BmacReceiver::new();
        let packets = sender.send_block(&block).unwrap();
        let mut completed = 0;
        for p in packets {
            if p.section == SectionType::IdentitySync {
                continue; // lose all syncs
            }
            completed += receiver.ingest(&p.encode().unwrap()).unwrap().len();
        }
        // The block never completes — it stays parked waiting for the
        // identity sync, and loss is observable via incomplete_blocks().
        assert_eq!(completed, 0);
        assert_eq!(receiver.incomplete_blocks(), vec![block.header.number]);
    }

    #[test]
    fn late_duplicates_after_completion_are_dropped() {
        let block = one_block(2);
        let mut sender = BmacSender::new();
        let mut receiver = BmacReceiver::new();
        let packets = sender.send_block(&block).unwrap();
        let mut completed = 0;
        for p in &packets {
            completed += receiver.ingest(&p.encode().unwrap()).unwrap().len();
        }
        assert_eq!(completed, 1);
        // Replaying the whole block (a full wire-level duplicate) must
        // not deliver it twice NOR seed a ghost partial that would read
        // as a phantom loss.
        for p in &packets {
            completed += receiver.ingest(&p.encode().unwrap()).unwrap().len();
        }
        assert_eq!(completed, 1);
        assert!(receiver.incomplete_blocks().is_empty());
        assert!(receiver.stats().late_duplicates > 0);
    }

    #[test]
    fn resuming_receiver_drops_blocks_below_the_chain_tip() {
        let mut current = one_block(1);
        current.header.number = 5;
        let mut sender = BmacSender::new();
        let mut receiver = BmacReceiver::resuming_from(5);
        let mut done = 0;
        for p in sender.send_block(&current).unwrap() {
            done += receiver.ingest(&p.encode().unwrap()).unwrap().len();
        }
        assert_eq!(done, 1, "the expected block still completes");
        // A replayed block from below the resume point is discarded as a
        // late duplicate — no ghost partial, no phantom loss report.
        let mut old = one_block(1);
        old.header.number = 3;
        for p in sender.send_block(&old).unwrap() {
            assert!(receiver.ingest(&p.encode().unwrap()).unwrap().is_empty());
        }
        assert!(receiver.stats().late_duplicates > 0);
        assert!(receiver.incomplete_blocks().is_empty());
    }

    #[test]
    fn non_bmac_traffic_is_forwarded() {
        let mut receiver = BmacReceiver::new();
        let result = receiver.ingest(&[0u8; 100]).unwrap();
        assert!(result.is_empty());
        assert_eq!(receiver.stats().forwarded, 1);
    }

    #[test]
    fn multiple_blocks_interleaved() {
        let b1 = one_block(2);
        let mut b2 = one_block(2);
        // Give the second block a different number so both are tracked.
        b2.header.number = 1;
        let mut sender = BmacSender::new();
        let mut receiver = BmacReceiver::new();
        let mut p1 = sender.send_block(&b1).unwrap();
        let mut p2 = sender.send_block(&b2).unwrap();
        // Interleave sections of the two blocks (alternating, preserving
        // per-block order so identity syncs precede their first use).
        let mut interleaved = Vec::with_capacity(p1.len() + p2.len());
        while !p1.is_empty() || !p2.is_empty() {
            if !p1.is_empty() {
                interleaved.push(p1.remove(0));
            }
            if !p2.is_empty() {
                interleaved.push(p2.remove(0));
            }
        }
        let mut completed = 0;
        for p in interleaved {
            completed += receiver.ingest(&p.encode().unwrap()).unwrap().len();
        }
        assert_eq!(completed, 2);
    }
}
