//! The identity cache: certificates ↔ 16-bit encoded ids.
//!
//! "The identity cache is a map of identities (i.e., certificates) to
//! their ids, where each id is a 16-bit integer with first 8 bits
//! representing the organization, the next 4 bits representing one of
//! the predefined roles ..., and the last 4 bits representing the node
//! sequence number" (paper §3.2). The sender and the hardware receiver
//! each hold one; the sender keeps them in sync with
//! [`SectionType::IdentitySync`](crate::packet::SectionType) packets.

use std::collections::HashMap;

use fabric_crypto::identity::NodeId;

/// A bidirectional identity cache.
///
/// Keys are the *full identity bytes as they appear on the wire* (the
/// marshaled `SerializedIdentity`), values are 16-bit encoded node ids.
#[derive(Debug, Clone, Default)]
pub struct IdentityCache {
    by_bytes: HashMap<Vec<u8>, u16>,
    by_id: HashMap<u16, Vec<u8>>,
}

impl IdentityCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        IdentityCache::default()
    }

    /// Inserts a mapping. Returns `false` if the id was already present
    /// (with identical bytes — re-insertion is idempotent).
    ///
    /// # Panics
    ///
    /// Panics if the id is already mapped to *different* bytes: ids are
    /// unique across the network by construction, so a collision is a
    /// configuration error.
    pub fn insert(&mut self, id: NodeId, identity_bytes: Vec<u8>) -> bool {
        let raw = id.encode();
        if let Some(existing) = self.by_id.get(&raw) {
            assert_eq!(
                existing, &identity_bytes,
                "id {raw:#06x} already cached with different identity bytes"
            );
            return false;
        }
        self.by_bytes.insert(identity_bytes.clone(), raw);
        self.by_id.insert(raw, identity_bytes);
        true
    }

    /// Inserts by raw 16-bit id (receiver side, from a sync packet).
    pub fn insert_raw(&mut self, raw: u16, identity_bytes: Vec<u8>) {
        self.by_bytes.insert(identity_bytes.clone(), raw);
        self.by_id.insert(raw, identity_bytes);
    }

    /// Looks up the id for identity bytes.
    pub fn id_of(&self, identity_bytes: &[u8]) -> Option<u16> {
        self.by_bytes.get(identity_bytes).copied()
    }

    /// Looks up the identity bytes for an id.
    pub fn bytes_of(&self, raw: u16) -> Option<&[u8]> {
        self.by_id.get(&raw).map(|v| v.as_slice())
    }

    /// Number of cached identities.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// All known identity byte strings (used by the DataRemover's
    /// search).
    pub fn known_identities(&self) -> impl Iterator<Item = (&[u8], u16)> {
        self.by_bytes.iter().map(|(b, &id)| (b.as_slice(), id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::identity::Role;

    fn node(org: u8, seq: u8) -> NodeId {
        NodeId::new(org, Role::Peer, seq).unwrap()
    }

    #[test]
    fn roundtrip() {
        let mut c = IdentityCache::new();
        assert!(c.insert(node(0, 0), b"org1peer0".to_vec()));
        assert_eq!(c.id_of(b"org1peer0"), Some(0x0020));
        assert_eq!(c.bytes_of(0x0020), Some(&b"org1peer0"[..]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut c = IdentityCache::new();
        assert!(c.insert(node(0, 0), b"x".to_vec()));
        assert!(!c.insert(node(0, 0), b"x".to_vec()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different identity bytes")]
    fn conflicting_bytes_panic() {
        let mut c = IdentityCache::new();
        c.insert(node(0, 0), b"a".to_vec());
        c.insert(node(0, 0), b"b".to_vec());
    }

    #[test]
    fn unknown_lookups_return_none() {
        let c = IdentityCache::new();
        assert_eq!(c.id_of(b"nope"), None);
        assert_eq!(c.bytes_of(0xffff), None);
    }
}
