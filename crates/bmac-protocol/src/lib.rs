//! The BMac protocol: hardware-friendly block dissemination (paper §3.2).
//!
//! Replaces Fabric's Gossip/gRPC/HTTP2/TCP stack with self-contained UDP
//! packets: a block is split into 1 header + N transaction + 1 metadata
//! sections, ~900-byte identity certificates are replaced with 16-bit
//! encoded ids via a synchronized [`cache::IdentityCache`], and L7-header
//! annotations (pointers + locators) tell the hardware where every field
//! lives. Reconstruction on the receiver is byte-exact, so all signatures
//! verify over the original bytes.
//!
//! * [`packet`] — wire format (L2/L3/L4 framing + BMac L7 header);
//! * [`cache`] — the identity cache;
//! * [`sender`] — DataRemover + AnnotationGenerator + sectioning;
//! * [`receiver`] — the software reference receiver (the functional core
//!   of the hardware `protocol_processor`).
//!
//! # Example
//!
//! ```
//! use bmac_protocol::{BmacReceiver, BmacSender};
//! use fabric_node::chaincode::KvChaincode;
//! use fabric_node::network::FabricNetworkBuilder;
//! use fabric_policy::parse;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = FabricNetworkBuilder::new()
//!     .orgs(2)
//!     .block_size(1)
//!     .chaincode("kv", parse("2-outof-2 orgs")?)
//!     .build();
//! net.install_chaincode(|| Box::new(KvChaincode::new("kv")));
//! let block = net
//!     .submit_invocation(0, "kv", "put", &["a".into(), "1".into()])?
//!     .remove(0);
//!
//! let mut sender = BmacSender::new();
//! let mut receiver = BmacReceiver::new();
//! let mut received = None;
//! for packet in sender.send_block(&block)? {
//!     for b in receiver.ingest(&packet.encode()?)? {
//!         received = Some(b);
//!     }
//! }
//! // Byte-exact reconstruction.
//! assert_eq!(received.unwrap().block.marshal(), block.marshal());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod packet;
pub mod receiver;
pub mod retransmit;
pub mod sender;

pub use cache::IdentityCache;
pub use packet::{Annotation, BmacPacket, FieldKind, PacketError, SectionType};
pub use receiver::{BmacReceiver, ExtractedTx, ReceiveError, ReceivedBlock, VerificationRequest};
pub use retransmit::{
    Feedback, GoBackNReceiver, GoBackNSender, RetransmitError, RetransmitSupervisor, RtoPolicy, Seq,
};
pub use sender::{BmacSender, SendError, SenderStats};
