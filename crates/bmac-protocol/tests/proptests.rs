//! Property-based tests for the BMac packet format and Go-Back-N.

use bmac_protocol::packet::{Annotation, BmacPacket, FieldKind, SectionType};
use bmac_protocol::retransmit::{Feedback, GoBackNReceiver, GoBackNSender};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_annotation() -> impl Strategy<Value = Annotation> {
    prop_oneof![
        (0u8..6, any::<u32>(), any::<u32>()).prop_map(|(k, offset, length)| {
            let kind = match k {
                0 => FieldKind::BlockSignature,
                1 => FieldKind::ClientSignature,
                2 => FieldKind::EndorsementSignature,
                3 => FieldKind::ProposalResponse,
                4 => FieldKind::RwSet,
                _ => FieldKind::SignedPayload,
            };
            Annotation::Pointer {
                kind,
                offset,
                length,
            }
        }),
        (any::<u32>(), any::<u16>()).prop_map(|(offset, id)| Annotation::Locator { offset, id }),
    ]
}

fn arb_packet() -> impl Strategy<Value = BmacPacket> {
    (
        any::<u64>(),
        0u8..4,
        any::<u16>(),
        any::<u16>(),
        proptest::collection::vec(arb_annotation(), 0..12),
        proptest::collection::vec(any::<u8>(), 0..2048),
    )
        .prop_map(
            |(block_num, s, index, total_txs, annotations, payload)| BmacPacket {
                block_num,
                section: match s {
                    0 => SectionType::Header,
                    1 => SectionType::Transaction,
                    2 => SectionType::Metadata,
                    _ => SectionType::IdentitySync,
                },
                index,
                total_txs,
                annotations,
                payload: Bytes::from(payload),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packet_roundtrip(p in arb_packet()) {
        let wire = p.encode().unwrap();
        prop_assert_eq!(wire.len(), p.wire_bytes());
        let q = BmacPacket::decode(&wire).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = BmacPacket::decode(&bytes);
    }

    #[test]
    fn truncated_packets_never_decode(p in arb_packet(), cut_frac in 0.0f64..1.0) {
        let wire = p.encode().unwrap();
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < wire.len());
        prop_assert!(BmacPacket::decode(&wire[..cut]).is_err());
    }

    #[test]
    fn go_back_n_delivers_everything_in_order(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..24),
        drop_pattern in proptest::collection::vec(any::<bool>(), 64),
        window in 1usize..8,
    ) {
        let mut sender = GoBackNSender::new(window);
        let mut receiver = GoBackNReceiver::new();
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        let mut channel: std::collections::VecDeque<Vec<u8>> = Default::default();
        for p in &payloads {
            channel.extend(sender.send(p.clone()));
        }
        let mut step = 0usize;
        let mut idle = 0;
        // Each unproductive round advances `step` by at least one while
        // packets are in flight, so the drop window (drop_pattern.len()
        // steps) is certainly exhausted within that many idle rounds.
        while idle < drop_pattern.len() + 2 {
            let before = delivered.len();
            while let Some(wire) = channel.pop_front() {
                // Drop according to the pattern during the initial window
                // only: a deterministic periodic channel can starve
                // retransmissions forever, which no stochastic network
                // does. After the window the channel is clean, so the
                // protocol must recover completely.
                let dropped = step < drop_pattern.len() && drop_pattern[step];
                step += 1;
                if dropped {
                    continue;
                }
                let (inner, fb) = receiver.on_wire(&wire).unwrap();
                if let Some(inner) = inner {
                    delivered.push(inner);
                }
                channel.extend(sender.on_feedback(fb));
            }
            if sender.in_flight() > 0 {
                channel.extend(sender.on_timeout());
            }
            idle = if delivered.len() > before { 0 } else { idle + 1 };
        }
        // Every payload must arrive exactly once, in order.
        prop_assert_eq!(delivered, payloads);
    }

    /// The ISSUE-4 wraparound gate: a sender/receiver pair whose
    /// sequence numbers cross the `Seq::MAX → 0` boundary mid-stream,
    /// under arbitrary loss in the initial window, must still deliver
    /// every payload exactly once and in order — every half-range
    /// comparison in ack handling, duplicate detection, and go-back
    /// retransmission runs with operands on both sides of the wrap.
    #[test]
    fn go_back_n_survives_sequence_wraparound(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 2..24),
        drop_pattern in proptest::collection::vec(any::<bool>(), 48),
        window in 1usize..8,
        offset_below_wrap in 0u32..24,
    ) {
        let start = u32::MAX - offset_below_wrap;
        let mut sender = GoBackNSender::with_initial_seq(window, start);
        let mut receiver = GoBackNReceiver::expecting(start);
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        let mut channel: std::collections::VecDeque<Vec<u8>> = Default::default();
        for p in &payloads {
            channel.extend(sender.send(p.clone()));
        }
        let mut step = 0usize;
        let mut idle = 0;
        while idle < drop_pattern.len() + 2 {
            let before = delivered.len();
            while let Some(wire) = channel.pop_front() {
                let dropped = step < drop_pattern.len() && drop_pattern[step];
                step += 1;
                if dropped {
                    continue;
                }
                let (inner, fb) = receiver.on_wire(&wire).unwrap();
                if let Some(inner) = inner {
                    delivered.push(inner);
                }
                channel.extend(sender.on_feedback(fb));
            }
            if sender.in_flight() > 0 {
                channel.extend(sender.on_timeout());
            }
            idle = if delivered.len() > before { 0 } else { idle + 1 };
        }
        prop_assert_eq!(&delivered, &payloads);
        prop_assert_eq!(receiver.expected(), start.wrapping_add(payloads.len() as u32));
        prop_assert_eq!(sender.in_flight(), 0);
    }

    #[test]
    fn receiver_acks_monotonically(
        seqs in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        // Whatever garbage order we feed, the cumulative ack must never
        // move backwards.
        let mut sender = GoBackNSender::new(64);
        let wires: Vec<Vec<u8>> = seqs.iter().flat_map(|b| sender.send(vec![*b])).collect();
        let mut receiver = GoBackNReceiver::new();
        let mut last_ack = 0u32;
        for w in wires.iter().rev().chain(wires.iter()) {
            let (_, fb) = receiver.on_wire(w).unwrap();
            if let Feedback::Ack { next } = fb {
                prop_assert!(next >= last_ack);
                last_ack = next;
            }
        }
    }
}
