//! Backend-selectable P-256 scalar-field arithmetic (mod the group
//! order `n`).
//!
//! The ECDSA layer ([`crate::ecdsa`]) does all of its mod-`n`
//! arithmetic — `bits2int` folding, `s⁻¹` (single and Montgomery-
//! batched), `u1`/`u2` derivation, RFC 6979 signing — through
//! [`ScalarDomain`], which dispatches to one of two interchangeable
//! implementations:
//!
//! * **Barrett** ([`crate::fq256`]) — the default: Barrett-folded
//!   reduction with a precomputed `⌊2^512/n⌋` constant, operating on
//!   canonical residues (entering/leaving the representation is free);
//! * **Montgomery** ([`crate::mont`]) — the generic REDC arithmetic the
//!   seed shipped with, operating on Montgomery residues. Kept fully
//!   compiled and selectable so it serves as the *oracle* for the
//!   differential test harness and as the A/B baseline in
//!   `BENCH_validation.json`.
//!
//! This mirrors the base-field switch in [`crate::field`] exactly; the
//! two are selected independently (`FABRIC_FIELD_BACKEND` for
//! coordinates, `FABRIC_SCALAR_BACKEND` for scalars) and the CI matrix
//! crosses them.
//!
//! # Selecting a backend
//!
//! The active backend is chosen once, when [`crate::curve::p256`] first
//! initializes (signatures produced under either backend are
//! bit-identical, but the choice is pinned per process for the same
//! reason as the base field — one coherent parameter set):
//!
//! 1. the `FABRIC_SCALAR_BACKEND` environment variable
//!    (`barrett` | `montgomery`) decides at startup;
//! 2. otherwise the `montgomery-scalar-default` cargo feature makes
//!    Montgomery the fallback for builds that want the oracle without
//!    touching the environment;
//! 3. otherwise Barrett.
//!
//! Values handled by a [`ScalarDomain`] are *representation residues*:
//! canonical integers under Barrett, Montgomery residues under
//! Montgomery. Convert at the boundary with
//! [`to_repr`](ScalarDomain::to_repr) /
//! [`from_repr`](ScalarDomain::from_repr) and never mix residues
//! produced by different domains. All byte-level encodings (raw `r‖s`,
//! DER, signature cache keys) go through `from_repr` first and are
//! therefore backend-independent.

use std::fmt;

use crate::bigint::U256;
use crate::fq256::Fq256;
use crate::mont::MontgomeryDomain;

/// Which scalar-field implementation a [`ScalarDomain`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarBackend {
    /// Barrett-folded reduction on canonical residues.
    Barrett,
    /// Generic Montgomery (REDC) arithmetic on Montgomery residues.
    Montgomery,
}

impl ScalarBackend {
    /// Stable lowercase name, as used by `FABRIC_SCALAR_BACKEND` and the
    /// benchmark JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarBackend::Barrett => "barrett",
            ScalarBackend::Montgomery => "montgomery",
        }
    }
}

impl fmt::Display for ScalarBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Resolves the backend the process should default to (see the module
/// docs for precedence). An explicit `FABRIC_SCALAR_BACKEND` always
/// wins — the benchmark's A/B re-exec relies on the env var flipping
/// the child's backend regardless of how the binary was built — and
/// the `montgomery-scalar-default` feature only changes the fallback
/// when the env var is unset.
///
/// # Panics
///
/// Panics when `FABRIC_SCALAR_BACKEND` is set to an unknown value —
/// silently falling back would make an A/B run measure the wrong thing.
pub fn default_scalar_backend() -> ScalarBackend {
    match std::env::var("FABRIC_SCALAR_BACKEND") {
        Ok(v) if v.eq_ignore_ascii_case("barrett") => ScalarBackend::Barrett,
        Ok(v) if v.eq_ignore_ascii_case("montgomery") => ScalarBackend::Montgomery,
        Ok(other) => {
            panic!("FABRIC_SCALAR_BACKEND must be \"barrett\" or \"montgomery\", got {other:?}")
        }
        Err(_) if cfg!(feature = "montgomery-scalar-default") => ScalarBackend::Montgomery,
        Err(_) => ScalarBackend::Barrett,
    }
}

/// P-256 scalar-field arithmetic behind a backend switch.
///
/// The API mirrors [`crate::field::FieldDomain`]: representation
/// conversions are named `to_repr`/`from_repr` — REDC conversions under
/// the Montgomery backend and (checked) no-ops under Barrett.
#[derive(Debug, Clone)]
pub enum ScalarDomain {
    /// Barrett-folded arithmetic (canonical residues).
    Barrett(Fq256),
    /// Montgomery REDC arithmetic (Montgomery residues).
    Montgomery(MontgomeryDomain),
}

impl ScalarDomain {
    /// Builds the P-256 scalar field on the given backend.
    pub fn p256_order(backend: ScalarBackend) -> Self {
        match backend {
            ScalarBackend::Barrett => ScalarDomain::Barrett(Fq256),
            ScalarBackend::Montgomery => ScalarDomain::Montgomery(MontgomeryDomain::new(Fq256::N)),
        }
    }

    /// The backend this domain dispatches to.
    pub fn backend(&self) -> ScalarBackend {
        match self {
            ScalarDomain::Barrett(_) => ScalarBackend::Barrett,
            ScalarDomain::Montgomery(_) => ScalarBackend::Montgomery,
        }
    }

    /// The field modulus (the group order `n`).
    pub fn modulus(&self) -> &U256 {
        match self {
            ScalarDomain::Barrett(f) => f.modulus(),
            ScalarDomain::Montgomery(m) => m.modulus(),
        }
    }

    /// The representation of `1`.
    pub fn one(&self) -> U256 {
        match self {
            ScalarDomain::Barrett(f) => f.one(),
            ScalarDomain::Montgomery(m) => m.one(),
        }
    }

    /// Converts a canonical integer `x < n` into the domain
    /// representation (Montgomery form, or a checked pass-through).
    pub fn to_repr(&self, x: &U256) -> U256 {
        match self {
            ScalarDomain::Barrett(f) => {
                debug_assert!(x < f.modulus());
                *x
            }
            ScalarDomain::Montgomery(m) => m.to_mont(x),
        }
    }

    /// Converts a representation residue back to a canonical integer.
    pub fn from_repr(&self, x: &U256) -> U256 {
        match self {
            ScalarDomain::Barrett(_) => *x,
            ScalarDomain::Montgomery(m) => m.from_mont(x),
        }
    }

    /// Modular multiplication of two residues.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        match self {
            ScalarDomain::Barrett(f) => f.mul(a, b),
            ScalarDomain::Montgomery(m) => m.mul(a, b),
        }
    }

    /// Modular squaring of a residue.
    pub fn sqr(&self, a: &U256) -> U256 {
        match self {
            ScalarDomain::Barrett(f) => f.sqr(a),
            ScalarDomain::Montgomery(m) => m.sqr(a),
        }
    }

    /// Modular addition.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        match self {
            ScalarDomain::Barrett(f) => f.add(a, b),
            ScalarDomain::Montgomery(m) => m.add(a, b),
        }
    }

    /// Modular subtraction.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        match self {
            ScalarDomain::Barrett(f) => f.sub(a, b),
            ScalarDomain::Montgomery(m) => m.sub(a, b),
        }
    }

    /// Modular negation.
    pub fn neg(&self, a: &U256) -> U256 {
        match self {
            ScalarDomain::Barrett(f) => f.neg(a),
            ScalarDomain::Montgomery(m) => m.neg(a),
        }
    }

    /// Exponentiation of a residue by a plain integer exponent.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        match self {
            ScalarDomain::Barrett(f) => f.pow(base, exp),
            ScalarDomain::Montgomery(m) => m.pow(base, exp),
        }
    }

    /// Fermat inverse (`a^(n-2)`); `None` for zero.
    pub fn inv_prime(&self, a: &U256) -> Option<U256> {
        match self {
            ScalarDomain::Barrett(f) => f.inv_prime(a),
            ScalarDomain::Montgomery(m) => m.inv_prime(a),
        }
    }

    /// Binary-Euclid inverse; `None` for zero.
    pub fn inv(&self, a: &U256) -> Option<U256> {
        match self {
            ScalarDomain::Barrett(f) => f.inv(a),
            ScalarDomain::Montgomery(m) => m.inv(a),
        }
    }

    /// Montgomery-trick batch inversion, in place; the mask is `true`
    /// where an inverse was written (see the backend docs).
    pub fn batch_inv(&self, values: &mut [U256]) -> Vec<bool> {
        match self {
            ScalarDomain::Barrett(f) => f.batch_inv(values),
            ScalarDomain::Montgomery(m) => m.batch_inv(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends compute the same canonical results through the
    /// uniform API (the exhaustive differential suite lives in
    /// `tests/tests/crypto_differential.rs`).
    #[test]
    fn backends_agree_through_the_uniform_api() {
        let bar = ScalarDomain::p256_order(ScalarBackend::Barrett);
        let mon = ScalarDomain::p256_order(ScalarBackend::Montgomery);
        let a = U256::from_u64(0xdead_beef);
        let b = mon.modulus().wrapping_sub(&U256::from_u64(7));
        for (x, y) in [(&a, &b), (&b, &a), (&a, &a), (&b, &b)] {
            let via_bar = bar.from_repr(&bar.mul(&bar.to_repr(x), &bar.to_repr(y)));
            let via_mon = mon.from_repr(&mon.mul(&mon.to_repr(x), &mon.to_repr(y)));
            assert_eq!(via_bar, via_mon);
        }
        let inv_bar = bar.from_repr(&bar.inv(&bar.to_repr(&a)).unwrap());
        let inv_mon = mon.from_repr(&mon.inv(&mon.to_repr(&a)).unwrap());
        assert_eq!(inv_bar, inv_mon);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(ScalarBackend::Barrett.name(), "barrett");
        assert_eq!(ScalarBackend::Montgomery.name(), "montgomery");
        assert_eq!(
            ScalarDomain::p256_order(ScalarBackend::Barrett).backend(),
            ScalarBackend::Barrett
        );
    }
}
