//! NIST P-256 (secp256r1) elliptic curve group operations.
//!
//! Fabric's default signature scheme is 256-bit ECDSA over this curve
//! (paper §2.1.1), so the whole validation pipeline — client signatures,
//! endorsements, orderer block signatures — runs on the arithmetic in this
//! module. Points are manipulated in Jacobian coordinates over the
//! Montgomery-domain field implementation from [`crate::mont`].
//!
//! The implementation favours clarity and auditability over side-channel
//! hardening: this library signs only synthetic benchmark identities.

use std::fmt;
use std::sync::OnceLock;

use crate::bigint::U256;
use crate::mont::MontgomeryDomain;

/// Curve parameters and shared Montgomery domains for `p` and `n`.
#[derive(Debug)]
pub struct CurveParams {
    /// Field domain (modulo the prime `p`).
    pub fp: MontgomeryDomain,
    /// Scalar domain (modulo the group order `n`).
    pub fn_: MontgomeryDomain,
    /// Curve coefficient `a = -3` in Montgomery form.
    pub a: U256,
    /// Curve coefficient `b` in Montgomery form.
    pub b: U256,
    /// Base point in affine coordinates (Montgomery form).
    pub gx: U256,
    /// Base point y (Montgomery form).
    pub gy: U256,
    /// Group order `n` as a plain integer.
    pub order: U256,
}

/// Returns the process-wide P-256 parameter set.
pub fn p256() -> &'static CurveParams {
    static PARAMS: OnceLock<CurveParams> = OnceLock::new();
    PARAMS.get_or_init(|| {
        let p =
            U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
                .expect("p-256 prime literal");
        let n =
            U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
                .expect("p-256 order literal");
        let b =
            U256::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
                .expect("p-256 b literal");
        let gx =
            U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
                .expect("p-256 gx literal");
        let gy =
            U256::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
                .expect("p-256 gy literal");
        let fp = MontgomeryDomain::new(p);
        let fn_ = MontgomeryDomain::new(n);
        let three = fp.to_mont(&U256::from_u64(3));
        let a = fp.neg(&three);
        let b = fp.to_mont(&b);
        let gx = fp.to_mont(&gx);
        let gy = fp.to_mont(&gy);
        CurveParams { fp, fn_, a, b, gx, gy, order: n }
    })
}

/// A point on P-256 in affine coordinates, or the identity.
///
/// Coordinates are stored in Montgomery form; use
/// [`AffinePoint::x_bytes`]/[`AffinePoint::to_sec1_bytes`] for wire
/// representations.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AffinePoint {
    /// x coordinate (Montgomery form). Meaningless when `infinity`.
    pub x: U256,
    /// y coordinate (Montgomery form). Meaningless when `infinity`.
    pub y: U256,
    /// Marker for the group identity.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates `(X, Y, Z)`,
/// with affine `(X/Z², Y/Z³)`; `Z = 0` encodes the identity.
#[derive(Clone, Copy, Debug)]
pub struct JacobianPoint {
    x: U256,
    y: U256,
    z: U256,
}

impl AffinePoint {
    /// The group identity (point at infinity).
    pub fn identity() -> Self {
        AffinePoint { x: U256::ZERO, y: U256::ZERO, infinity: true }
    }

    /// The curve base point `G`.
    pub fn generator() -> Self {
        let c = p256();
        AffinePoint { x: c.gx, y: c.gy, infinity: false }
    }

    /// Constructs a point from plain (non-Montgomery) affine coordinates,
    /// verifying the curve equation `y² = x³ - 3x + b`.
    ///
    /// # Errors
    ///
    /// Returns [`PointError::NotOnCurve`] when the coordinates do not
    /// satisfy the curve equation, or [`PointError::OutOfRange`] when a
    /// coordinate is `>= p`.
    pub fn from_coords(x: &U256, y: &U256) -> Result<Self, PointError> {
        let c = p256();
        if x >= c.fp.modulus() || y >= c.fp.modulus() {
            return Err(PointError::OutOfRange);
        }
        let xm = c.fp.to_mont(x);
        let ym = c.fp.to_mont(y);
        let pt = AffinePoint { x: xm, y: ym, infinity: false };
        if pt.is_on_curve() {
            Ok(pt)
        } else {
            Err(PointError::NotOnCurve)
        }
    }

    /// Checks the curve equation. The identity is considered on-curve.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let c = p256();
        let y2 = c.fp.sqr(&self.y);
        let x3 = c.fp.mul(&c.fp.sqr(&self.x), &self.x);
        let ax = c.fp.mul(&c.a, &self.x);
        let rhs = c.fp.add(&c.fp.add(&x3, &ax), &c.b);
        y2 == rhs
    }

    /// The x coordinate as a plain 32-byte big-endian integer.
    pub fn x_bytes(&self) -> [u8; 32] {
        p256().fp.from_mont(&self.x).to_be_bytes()
    }

    /// The y coordinate as a plain 32-byte big-endian integer.
    pub fn y_bytes(&self) -> [u8; 32] {
        p256().fp.from_mont(&self.y).to_be_bytes()
    }

    /// Serializes in uncompressed SEC1 form (`04 || X || Y`, 65 bytes).
    ///
    /// # Panics
    ///
    /// Panics if called on the identity, which has no SEC1 encoding here.
    pub fn to_sec1_bytes(&self) -> [u8; 65] {
        assert!(!self.infinity, "identity has no SEC1 encoding");
        let mut out = [0u8; 65];
        out[0] = 0x04;
        out[1..33].copy_from_slice(&self.x_bytes());
        out[33..].copy_from_slice(&self.y_bytes());
        out
    }

    /// Parses an uncompressed SEC1 point.
    ///
    /// # Errors
    ///
    /// [`PointError::Encoding`] for a wrong tag/length, plus the
    /// [`Self::from_coords`] error cases.
    pub fn from_sec1_bytes(bytes: &[u8]) -> Result<Self, PointError> {
        if bytes.len() != 65 || bytes[0] != 0x04 {
            return Err(PointError::Encoding);
        }
        let x = U256::from_be_bytes(&bytes[1..33]);
        let y = U256::from_be_bytes(&bytes[33..65]);
        Self::from_coords(&x, &y)
    }

    /// Lifts to Jacobian coordinates.
    pub fn to_jacobian(&self) -> JacobianPoint {
        if self.infinity {
            JacobianPoint::identity()
        } else {
            JacobianPoint { x: self.x, y: self.y, z: p256().fp.one() }
        }
    }

    /// Scalar multiplication `k·self` using a 4-bit window.
    pub fn mul_scalar(&self, k: &U256) -> AffinePoint {
        self.to_jacobian().mul_scalar(k).to_affine()
    }
}

impl fmt::Debug for AffinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "AffinePoint(identity)")
        } else {
            write!(
                f,
                "AffinePoint(x=0x{}, y=0x{})",
                p256().fp.from_mont(&self.x).to_hex(),
                p256().fp.from_mont(&self.y).to_hex()
            )
        }
    }
}

impl JacobianPoint {
    /// The group identity.
    pub fn identity() -> Self {
        JacobianPoint { x: p256().fp.one(), y: p256().fp.one(), z: U256::ZERO }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (dbl-2001-b, valid for `a = -3`).
    pub fn double(&self) -> JacobianPoint {
        if self.is_identity() || self.y.is_zero() {
            return JacobianPoint::identity();
        }
        let f = &p256().fp;
        // delta = Z^2, gamma = Y^2, beta = X*gamma
        let delta = f.sqr(&self.z);
        let gamma = f.sqr(&self.y);
        let beta = f.mul(&self.x, &gamma);
        // alpha = 3*(X-delta)*(X+delta)
        let t0 = f.sub(&self.x, &delta);
        let t1 = f.add(&self.x, &delta);
        let t2 = f.mul(&t0, &t1);
        let alpha = f.add(&f.add(&t2, &t2), &t2);
        // X3 = alpha^2 - 8*beta
        let beta2 = f.add(&beta, &beta);
        let beta4 = f.add(&beta2, &beta2);
        let beta8 = f.add(&beta4, &beta4);
        let x3 = f.sub(&f.sqr(&alpha), &beta8);
        // Z3 = (Y+Z)^2 - gamma - delta
        let yz = f.add(&self.y, &self.z);
        let z3 = f.sub(&f.sub(&f.sqr(&yz), &gamma), &delta);
        // Y3 = alpha*(4*beta - X3) - 8*gamma^2
        let gsq = f.sqr(&gamma);
        let gsq2 = f.add(&gsq, &gsq);
        let gsq4 = f.add(&gsq2, &gsq2);
        let g8 = f.add(&gsq4, &gsq4);
        let y3 = f.sub(&f.mul(&alpha, &f.sub(&beta4, &x3)), &g8);
        JacobianPoint { x: x3, y: y3, z: z3 }
    }

    /// General Jacobian point addition (add-2007-bl).
    pub fn add(&self, other: &JacobianPoint) -> JacobianPoint {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let f = &p256().fp;
        let z1z1 = f.sqr(&self.z);
        let z2z2 = f.sqr(&other.z);
        let u1 = f.mul(&self.x, &z2z2);
        let u2 = f.mul(&other.x, &z1z1);
        let s1 = f.mul(&f.mul(&self.y, &other.z), &z2z2);
        let s2 = f.mul(&f.mul(&other.y, &self.z), &z1z1);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return JacobianPoint::identity();
        }
        let h = f.sub(&u2, &u1);
        let h2 = f.add(&h, &h);
        let i = f.sqr(&h2);
        let j = f.mul(&h, &i);
        let r0 = f.sub(&s2, &s1);
        let r = f.add(&r0, &r0);
        let v = f.mul(&u1, &i);
        // X3 = r^2 - J - 2*V
        let x3 = f.sub(&f.sub(&f.sqr(&r), &j), &f.add(&v, &v));
        // Y3 = r*(V - X3) - 2*S1*J
        let s1j = f.mul(&s1, &j);
        let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.add(&s1j, &s1j));
        // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H
        let z12 = f.add(&self.z, &other.z);
        let z3 = f.mul(&f.sub(&f.sub(&f.sqr(&z12), &z1z1), &z2z2), &h);
        JacobianPoint { x: x3, y: y3, z: z3 }
    }

    /// Windowed (4-bit) scalar multiplication `k·self`.
    pub fn mul_scalar(&self, k: &U256) -> JacobianPoint {
        if k.is_zero() || self.is_identity() {
            return JacobianPoint::identity();
        }
        // Precompute 1..15 multiples.
        let mut table = [JacobianPoint::identity(); 16];
        table[1] = *self;
        for i in 2..16 {
            table[i] = if i % 2 == 0 {
                table[i / 2].double()
            } else {
                table[i - 1].add(self)
            };
        }
        let nibbles = k.bit_len().div_ceil(4);
        let mut acc = JacobianPoint::identity();
        for w in (0..nibbles).rev() {
            for _ in 0..4 {
                acc = acc.double();
            }
            let idx = ((k.0[w / 16] >> ((w % 16) * 4)) & 0xf) as usize;
            if idx != 0 {
                acc = acc.add(&table[idx]);
            }
        }
        acc
    }

    /// Interleaved double-scalar multiplication `u1·G + u2·Q`
    /// (Shamir's trick), the hot operation in ECDSA verification.
    pub fn shamir(u1: &U256, g: &JacobianPoint, u2: &U256, q: &JacobianPoint) -> JacobianPoint {
        let sum = g.add(q);
        let bits = u1.bit_len().max(u2.bit_len());
        let mut acc = JacobianPoint::identity();
        for i in (0..bits).rev() {
            acc = acc.double();
            match (u1.bit(i), u2.bit(i)) {
                (true, true) => acc = acc.add(&sum),
                (true, false) => acc = acc.add(g),
                (false, true) => acc = acc.add(q),
                (false, false) => {}
            }
        }
        acc
    }

    /// Projects back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_identity() {
            return AffinePoint::identity();
        }
        let f = &p256().fp;
        let zinv = f.inv_prime(&self.z).expect("nonzero z");
        let zinv2 = f.sqr(&zinv);
        let zinv3 = f.mul(&zinv2, &zinv);
        AffinePoint {
            x: f.mul(&self.x, &zinv2),
            y: f.mul(&self.y, &zinv3),
            infinity: false,
        }
    }
}

/// Errors constructing or decoding curve points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointError {
    /// The coordinates fail the curve equation.
    NotOnCurve,
    /// A coordinate was `>= p`.
    OutOfRange,
    /// The byte encoding was malformed.
    Encoding,
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::NotOnCurve => write!(f, "point is not on the P-256 curve"),
            PointError::OutOfRange => write!(f, "coordinate exceeds the field modulus"),
            PointError::Encoding => write!(f, "malformed SEC1 point encoding"),
        }
    }
}

impl std::error::Error for PointError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        assert!(AffinePoint::generator().is_on_curve());
    }

    #[test]
    fn two_g_matches_known_vector() {
        // 2G from the public SEC/NIST multiplication tables.
        let g = AffinePoint::generator();
        let two_g = g.mul_scalar(&U256::from_u64(2));
        assert_eq!(
            two_g.x_bytes().to_vec(),
            hex("7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978")
        );
        assert_eq!(
            two_g.y_bytes().to_vec(),
            hex("07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1")
        );
    }

    #[test]
    fn add_and_double_agree() {
        let g = AffinePoint::generator().to_jacobian();
        let d = g.double().to_affine();
        let a = g.add(&g).to_affine();
        assert_eq!(d, a);
        assert!(d.is_on_curve());
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let g = AffinePoint::generator().to_jacobian();
        let mut acc = JacobianPoint::identity();
        for k in 1u64..=20 {
            acc = acc.add(&g);
            let fast = g.mul_scalar(&U256::from_u64(k)).to_affine();
            assert_eq!(acc.to_affine(), fast, "k={k}");
        }
    }

    #[test]
    fn order_times_g_is_identity() {
        let g = AffinePoint::generator().to_jacobian();
        let n = p256().order;
        assert!(g.mul_scalar(&n).is_identity());
        // (n-1)G = -G
        let nm1 = n.wrapping_sub(&U256::ONE);
        let p = g.mul_scalar(&nm1).to_affine();
        let f = &p256().fp;
        assert_eq!(p.x, AffinePoint::generator().x);
        assert_eq!(p.y, f.neg(&AffinePoint::generator().y));
    }

    #[test]
    fn shamir_equals_separate_muls() {
        let g = AffinePoint::generator().to_jacobian();
        let q = g.mul_scalar(&U256::from_u64(777));
        let u1 = U256::from_u64(123456789);
        let u2 = U256::from_u64(987654321);
        let lhs = JacobianPoint::shamir(&u1, &g, &u2, &q).to_affine();
        let rhs = g.mul_scalar(&u1).add(&q.mul_scalar(&u2)).to_affine();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn sec1_roundtrip() {
        let p = AffinePoint::generator().mul_scalar(&U256::from_u64(31337));
        let bytes = p.to_sec1_bytes();
        let q = AffinePoint::from_sec1_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn sec1_rejects_bad_encodings() {
        assert_eq!(AffinePoint::from_sec1_bytes(&[0x04; 10]), Err(PointError::Encoding));
        let mut bytes = AffinePoint::generator().to_sec1_bytes();
        bytes[0] = 0x02;
        assert_eq!(AffinePoint::from_sec1_bytes(&bytes), Err(PointError::Encoding));
        bytes[0] = 0x04;
        bytes[64] ^= 1; // corrupt y
        assert_eq!(AffinePoint::from_sec1_bytes(&bytes), Err(PointError::NotOnCurve));
    }

    #[test]
    fn identity_behaviour() {
        let id = JacobianPoint::identity();
        let g = AffinePoint::generator().to_jacobian();
        assert_eq!(id.add(&g).to_affine(), g.to_affine());
        assert_eq!(g.add(&id).to_affine(), g.to_affine());
        assert!(id.double().is_identity());
        assert!(AffinePoint::identity().is_on_curve());
    }

    #[test]
    fn inverse_points_cancel() {
        let f = &p256().fp;
        let g = AffinePoint::generator();
        let neg_g = AffinePoint { x: g.x, y: f.neg(&g.y), infinity: false };
        assert!(g.to_jacobian().add(&neg_g.to_jacobian()).is_identity());
    }

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }
}
