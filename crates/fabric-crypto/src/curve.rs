//! NIST P-256 (secp256r1) elliptic curve group operations.
//!
//! Fabric's default signature scheme is 256-bit ECDSA over this curve
//! (paper §2.1.1), so the whole validation pipeline — client signatures,
//! endorsements, orderer block signatures — runs on the arithmetic in this
//! module. Points are manipulated in Jacobian coordinates over the
//! backend-selectable base field from [`crate::field`] (Solinas fast
//! reduction by default, generic Montgomery as the differential oracle);
//! scalar arithmetic modulo the group order runs on the analogous
//! switch in [`crate::scalar`] (Barrett fold by default, Montgomery as
//! the oracle).
//!
//! The implementation favours clarity and auditability over side-channel
//! hardening: this library signs only synthetic benchmark identities.

use std::fmt;
use std::sync::OnceLock;

use crate::bigint::U256;
use crate::field::{default_field_backend, FieldDomain};
use crate::scalar::{default_scalar_backend, ScalarDomain};

/// Curve parameters: the backend-selectable base-field domain for `p`
/// and the backend-selectable scalar domain for `n`.
#[derive(Debug)]
pub struct CurveParams {
    /// Field domain (modulo the prime `p`). Coordinates stored in
    /// points are *representation residues* of this domain.
    pub fp: FieldDomain,
    /// Scalar domain (modulo the group order `n`). Scalars handled
    /// through it are *representation residues* of this domain.
    pub fn_: ScalarDomain,
    /// Curve coefficient `a = -3` (field representation).
    pub a: U256,
    /// Curve coefficient `b` (field representation).
    pub b: U256,
    /// Base point x in affine coordinates (field representation).
    pub gx: U256,
    /// Base point y (field representation).
    pub gy: U256,
    /// Group order `n` as a plain integer.
    pub order: U256,
}

/// Returns the process-wide P-256 parameter set.
///
/// The base-field and scalar-field backends are resolved once here, on
/// first use (see [`crate::field::default_field_backend`] and
/// [`crate::scalar::default_scalar_backend`]); every process-wide table
/// is built in the base-field backend's representation.
pub fn p256() -> &'static CurveParams {
    static PARAMS: OnceLock<CurveParams> = OnceLock::new();
    PARAMS.get_or_init(|| {
        let p = U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .expect("p-256 prime literal");
        let n = U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
            .expect("p-256 order literal");
        let b = U256::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
            .expect("p-256 b literal");
        let gx = U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
            .expect("p-256 gx literal");
        let gy = U256::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
            .expect("p-256 gy literal");
        let fp = FieldDomain::p256(default_field_backend());
        assert_eq!(fp.modulus(), &p, "field backend must use the P-256 prime");
        let fn_ = ScalarDomain::p256_order(default_scalar_backend());
        assert_eq!(fn_.modulus(), &n, "scalar backend must use the P-256 order");
        let three = fp.to_repr(&U256::from_u64(3));
        let a = fp.neg(&three);
        let b = fp.to_repr(&b);
        let gx = fp.to_repr(&gx);
        let gy = fp.to_repr(&gy);
        CurveParams {
            fp,
            fn_,
            a,
            b,
            gx,
            gy,
            order: n,
        }
    })
}

/// A point on P-256 in affine coordinates, or the identity.
///
/// Coordinates are stored in the field-domain representation; use
/// [`AffinePoint::x_bytes`]/[`AffinePoint::to_sec1_bytes`] for wire
/// representations.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AffinePoint {
    /// x coordinate (field representation). Meaningless when `infinity`.
    pub x: U256,
    /// y coordinate (field representation). Meaningless when `infinity`.
    pub y: U256,
    /// Marker for the group identity.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates `(X, Y, Z)`,
/// with affine `(X/Z², Y/Z³)`; `Z = 0` encodes the identity.
#[derive(Clone, Copy, Debug)]
pub struct JacobianPoint {
    x: U256,
    y: U256,
    z: U256,
}

impl AffinePoint {
    /// The group identity (point at infinity).
    pub fn identity() -> Self {
        AffinePoint {
            x: U256::ZERO,
            y: U256::ZERO,
            infinity: true,
        }
    }

    /// The curve base point `G`.
    pub fn generator() -> Self {
        let c = p256();
        AffinePoint {
            x: c.gx,
            y: c.gy,
            infinity: false,
        }
    }

    /// Constructs a point from plain (non-Montgomery) affine coordinates,
    /// verifying the curve equation `y² = x³ - 3x + b`.
    ///
    /// # Errors
    ///
    /// Returns [`PointError::NotOnCurve`] when the coordinates do not
    /// satisfy the curve equation, or [`PointError::OutOfRange`] when a
    /// coordinate is `>= p`.
    pub fn from_coords(x: &U256, y: &U256) -> Result<Self, PointError> {
        let c = p256();
        if x >= c.fp.modulus() || y >= c.fp.modulus() {
            return Err(PointError::OutOfRange);
        }
        let xm = c.fp.to_repr(x);
        let ym = c.fp.to_repr(y);
        let pt = AffinePoint {
            x: xm,
            y: ym,
            infinity: false,
        };
        if pt.is_on_curve() {
            Ok(pt)
        } else {
            Err(PointError::NotOnCurve)
        }
    }

    /// Checks the curve equation. The identity is considered on-curve.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let c = p256();
        let y2 = c.fp.sqr(&self.y);
        let x3 = c.fp.mul(&c.fp.sqr(&self.x), &self.x);
        let ax = c.fp.mul(&c.a, &self.x);
        let rhs = c.fp.add(&c.fp.add(&x3, &ax), &c.b);
        y2 == rhs
    }

    /// The x coordinate as a plain 32-byte big-endian integer.
    pub fn x_bytes(&self) -> [u8; 32] {
        p256().fp.from_repr(&self.x).to_be_bytes()
    }

    /// The y coordinate as a plain 32-byte big-endian integer.
    pub fn y_bytes(&self) -> [u8; 32] {
        p256().fp.from_repr(&self.y).to_be_bytes()
    }

    /// Serializes in uncompressed SEC1 form (`04 || X || Y`, 65 bytes).
    ///
    /// # Panics
    ///
    /// Panics if called on the identity, which has no SEC1 encoding here.
    pub fn to_sec1_bytes(&self) -> [u8; 65] {
        assert!(!self.infinity, "identity has no SEC1 encoding");
        let mut out = [0u8; 65];
        out[0] = 0x04;
        out[1..33].copy_from_slice(&self.x_bytes());
        out[33..].copy_from_slice(&self.y_bytes());
        out
    }

    /// Parses an uncompressed SEC1 point.
    ///
    /// # Errors
    ///
    /// [`PointError::Encoding`] for a wrong tag/length, plus the
    /// [`Self::from_coords`] error cases.
    pub fn from_sec1_bytes(bytes: &[u8]) -> Result<Self, PointError> {
        if bytes.len() != 65 || bytes[0] != 0x04 {
            return Err(PointError::Encoding);
        }
        let x = U256::from_be_bytes(&bytes[1..33]);
        let y = U256::from_be_bytes(&bytes[33..65]);
        Self::from_coords(&x, &y)
    }

    /// Lifts to Jacobian coordinates.
    pub fn to_jacobian(&self) -> JacobianPoint {
        if self.infinity {
            JacobianPoint::identity()
        } else {
            JacobianPoint {
                x: self.x,
                y: self.y,
                z: p256().fp.one(),
            }
        }
    }

    /// Scalar multiplication `k·self` using a 4-bit window.
    pub fn mul_scalar(&self, k: &U256) -> AffinePoint {
        self.to_jacobian().mul_scalar(k).to_affine()
    }
}

impl fmt::Debug for AffinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "AffinePoint(identity)")
        } else {
            write!(
                f,
                "AffinePoint(x=0x{}, y=0x{})",
                p256().fp.from_repr(&self.x).to_hex(),
                p256().fp.from_repr(&self.y).to_hex()
            )
        }
    }
}

impl JacobianPoint {
    /// The group identity.
    pub fn identity() -> Self {
        JacobianPoint {
            x: p256().fp.one(),
            y: p256().fp.one(),
            z: U256::ZERO,
        }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (dbl-2001-b, valid for `a = -3`).
    pub fn double(&self) -> JacobianPoint {
        if self.is_identity() || self.y.is_zero() {
            return JacobianPoint::identity();
        }
        let f = &p256().fp;
        // delta = Z^2, gamma = Y^2, beta = X*gamma
        let delta = f.sqr(&self.z);
        let gamma = f.sqr(&self.y);
        let beta = f.mul(&self.x, &gamma);
        // alpha = 3*(X-delta)*(X+delta)
        let t0 = f.sub(&self.x, &delta);
        let t1 = f.add(&self.x, &delta);
        let t2 = f.mul(&t0, &t1);
        let alpha = f.add(&f.add(&t2, &t2), &t2);
        // X3 = alpha^2 - 8*beta
        let beta2 = f.add(&beta, &beta);
        let beta4 = f.add(&beta2, &beta2);
        let beta8 = f.add(&beta4, &beta4);
        let x3 = f.sub(&f.sqr(&alpha), &beta8);
        // Z3 = (Y+Z)^2 - gamma - delta
        let yz = f.add(&self.y, &self.z);
        let z3 = f.sub(&f.sub(&f.sqr(&yz), &gamma), &delta);
        // Y3 = alpha*(4*beta - X3) - 8*gamma^2
        let gsq = f.sqr(&gamma);
        let gsq2 = f.add(&gsq, &gsq);
        let gsq4 = f.add(&gsq2, &gsq2);
        let g8 = f.add(&gsq4, &gsq4);
        let y3 = f.sub(&f.mul(&alpha, &f.sub(&beta4, &x3)), &g8);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian point addition (add-2007-bl).
    pub fn add(&self, other: &JacobianPoint) -> JacobianPoint {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let f = &p256().fp;
        let z1z1 = f.sqr(&self.z);
        let z2z2 = f.sqr(&other.z);
        let u1 = f.mul(&self.x, &z2z2);
        let u2 = f.mul(&other.x, &z1z1);
        let s1 = f.mul(&f.mul(&self.y, &other.z), &z2z2);
        let s2 = f.mul(&f.mul(&other.y, &self.z), &z1z1);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return JacobianPoint::identity();
        }
        let h = f.sub(&u2, &u1);
        let h2 = f.add(&h, &h);
        let i = f.sqr(&h2);
        let j = f.mul(&h, &i);
        let r0 = f.sub(&s2, &s1);
        let r = f.add(&r0, &r0);
        let v = f.mul(&u1, &i);
        // X3 = r^2 - J - 2*V
        let x3 = f.sub(&f.sub(&f.sqr(&r), &j), &f.add(&v, &v));
        // Y3 = r*(V - X3) - 2*S1*J
        let s1j = f.mul(&s1, &j);
        let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.add(&s1j, &s1j));
        // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H
        let z12 = f.add(&self.z, &other.z);
        let z3 = f.mul(&f.sub(&f.sub(&f.sqr(&z12), &z1z1), &z2z2), &h);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Windowed (4-bit) scalar multiplication `k·self`.
    pub fn mul_scalar(&self, k: &U256) -> JacobianPoint {
        if k.is_zero() || self.is_identity() {
            return JacobianPoint::identity();
        }
        // Precompute 1..15 multiples.
        let mut table = [JacobianPoint::identity(); 16];
        table[1] = *self;
        for i in 2..16 {
            table[i] = if i % 2 == 0 {
                table[i / 2].double()
            } else {
                table[i - 1].add(self)
            };
        }
        let nibbles = k.bit_len().div_ceil(4);
        let mut acc = JacobianPoint::identity();
        for w in (0..nibbles).rev() {
            for _ in 0..4 {
                acc = acc.double();
            }
            let idx = ((k.0[w / 16] >> ((w % 16) * 4)) & 0xf) as usize;
            if idx != 0 {
                acc = acc.add(&table[idx]);
            }
        }
        acc
    }

    /// Mixed Jacobian + affine addition (madd-2007-bl, `Z2 = 1`), ~30%
    /// cheaper than the general [`Self::add`]. The fixed-base table and
    /// wNAF tables store affine points precisely so the hot loops can
    /// use this.
    pub fn add_mixed(&self, other: &AffinePoint) -> JacobianPoint {
        if other.infinity {
            return *self;
        }
        if self.is_identity() {
            return other.to_jacobian();
        }
        let f = &p256().fp;
        let z1z1 = f.sqr(&self.z);
        let u2 = f.mul(&other.x, &z1z1);
        let s2 = f.mul(&f.mul(&other.y, &self.z), &z1z1);
        if u2 == self.x {
            if s2 == self.y {
                return self.double();
            }
            return JacobianPoint::identity();
        }
        let h = f.sub(&u2, &self.x);
        let hh = f.sqr(&h);
        let i = f.add(&f.add(&hh, &hh), &f.add(&hh, &hh));
        let j = f.mul(&h, &i);
        let r0 = f.sub(&s2, &self.y);
        let r = f.add(&r0, &r0);
        let v = f.mul(&self.x, &i);
        let x3 = f.sub(&f.sub(&f.sqr(&r), &j), &f.add(&v, &v));
        let yj = f.mul(&self.y, &j);
        let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.add(&yj, &yj));
        let z1h = f.add(&self.z, &h);
        let z3 = f.sub(&f.sub(&f.sqr(&z1h), &z1z1), &hh);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Width-5 wNAF scalar multiplication `k·self`: odd multiples
    /// `{1,3,..,15}·self` are precomputed once, and the signed-digit
    /// recoding leaves only ~1 addition per 6 doublings (versus 15/16
    /// per nibble for the 4-bit window in [`Self::mul_scalar`]).
    pub fn mul_scalar_wnaf(&self, k: &U256) -> JacobianPoint {
        if k.is_zero() || self.is_identity() {
            return JacobianPoint::identity();
        }
        const W: u32 = 5;
        // Odd multiples 1P, 3P, ..., 15P.
        let twice = self.double();
        let mut table = [*self; 1 << (W - 2)];
        for i in 1..table.len() {
            table[i] = table[i - 1].add(&twice);
        }
        let f = &p256().fp;
        let digits = wnaf_digits(k, W);
        let mut acc = JacobianPoint::identity();
        for &d in digits.iter().rev() {
            acc = acc.double();
            if d > 0 {
                acc = acc.add(&table[(d as usize) / 2]);
            } else if d < 0 {
                let p = &table[(-d as usize) / 2];
                let neg = JacobianPoint {
                    x: p.x,
                    y: f.neg(&p.y),
                    z: p.z,
                };
                acc = acc.add(&neg);
            }
        }
        acc
    }

    /// Normalizes a batch of points to affine with a *single* field
    /// inversion (Montgomery's trick over the `Z` coordinates).
    pub fn batch_to_affine(points: &[JacobianPoint]) -> Vec<AffinePoint> {
        let f = &p256().fp;
        let mut zs: Vec<U256> = points.iter().map(|p| p.z).collect();
        let mask = f.batch_inv(&mut zs);
        points
            .iter()
            .zip(zs.iter().zip(mask))
            .map(|(p, (zinv, ok))| {
                if !ok {
                    return AffinePoint::identity();
                }
                let zinv2 = f.sqr(zinv);
                let zinv3 = f.mul(&zinv2, zinv);
                AffinePoint {
                    x: f.mul(&p.x, &zinv2),
                    y: f.mul(&p.y, &zinv3),
                    infinity: false,
                }
            })
            .collect()
    }

    /// Interleaved double-scalar multiplication `u1·G + u2·Q`
    /// (Shamir's trick), the seed implementation's hot operation in
    /// ECDSA verification. Kept as the reference the optimized
    /// fixed-base + wNAF path is cross-checked against.
    pub fn shamir(u1: &U256, g: &JacobianPoint, u2: &U256, q: &JacobianPoint) -> JacobianPoint {
        let sum = g.add(q);
        let bits = u1.bit_len().max(u2.bit_len());
        let mut acc = JacobianPoint::identity();
        for i in (0..bits).rev() {
            acc = acc.double();
            match (u1.bit(i), u2.bit(i)) {
                (true, true) => acc = acc.add(&sum),
                (true, false) => acc = acc.add(g),
                (false, true) => acc = acc.add(q),
                (false, false) => {}
            }
        }
        acc
    }

    /// Tests whether this point's affine x coordinate reduces to `r`
    /// modulo the group order — the final ECDSA check — *without* the
    /// field inversion of [`Self::to_affine`]: `x = X/Z²`, so
    /// `x ≡ r (mod n)` iff `X = x̂·Z²` for some candidate `x̂ ∈ {r, r+n}`
    /// below the field prime (`p < 2n`, so no further candidates exist).
    pub fn eq_x_mod_order(&self, r: &U256) -> bool {
        if self.is_identity() {
            return false;
        }
        let c = p256();
        let f = &c.fp;
        let zz = f.sqr(&self.z);
        let mut candidate = *r;
        loop {
            if &candidate >= f.modulus() {
                return false;
            }
            if f.mul(&f.to_repr(&candidate), &zz) == self.x {
                return true;
            }
            let (next, carry) = candidate.overflowing_add(&c.order);
            if carry {
                return false;
            }
            candidate = next;
        }
    }

    /// Projects back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_identity() {
            return AffinePoint::identity();
        }
        let f = &p256().fp;
        let zinv = f.inv_prime(&self.z).expect("nonzero z");
        let zinv2 = f.sqr(&zinv);
        let zinv3 = f.mul(&zinv2, &zinv);
        AffinePoint {
            x: f.mul(&self.x, &zinv2),
            y: f.mul(&self.y, &zinv3),
            infinity: false,
        }
    }
}

/// Width-`w` non-adjacent form: one signed odd digit in
/// `±{1, 3, .., 2^(w-1)-1}` per bit position, at most one nonzero digit
/// in any `w` consecutive positions.
pub(crate) fn wnaf_digits(k: &U256, w: u32) -> Vec<i8> {
    debug_assert!((2..=7).contains(&w));
    let modulus = 1u64 << w;
    let half = modulus >> 1;
    let mut k = *k;
    // Negative digits add their magnitude back into `k`, which can carry
    // past bit 255 for scalars near 2^256; `carry` models that virtual
    // bit 256 so recoding is correct for every `U256` input.
    let mut carry = false;
    let mut digits = Vec::with_capacity(258);
    while !k.is_zero() || carry {
        if k.is_odd() {
            let low = k.0[0] & (modulus - 1);
            if low >= half {
                // Digit is low - 2^w (negative): add its magnitude back.
                let (sum, overflow) = k.overflowing_add(&U256::from_u64(modulus - low));
                k = sum;
                carry |= overflow;
                digits.push((low as i64 - modulus as i64) as i8);
            } else {
                k = k.wrapping_sub(&U256::from_u64(low));
                digits.push(low as i8);
            }
        } else {
            digits.push(0);
        }
        k = k.shr_small(1);
        if carry {
            // Shift the virtual bit 256 down into bit 255.
            k.0[3] |= 1 << 63;
            carry = false;
        }
    }
    digits
}

/// Window width of the fixed-base comb table, in bits.
///
/// The default 8-bit windows hold `32 × 255` precomputed points
/// (~590 KiB resident) and make any `k·G` at most 31 mixed additions
/// with **zero** doublings. The `comb-window-4` cargo feature shrinks
/// the table to 4-bit windows — `64 × 15` points, ~68 KiB — for
/// cache-constrained hosts, at the cost of up to 63 mixed additions per
/// multiplication. Both shapes share the same build and digit-selection
/// code below; `fixed_base_matches_windowed_mul` pins whichever is
/// compiled against the generic windowed ladder. Footprints and the
/// trade-off are tabulated in the crate README.
pub const COMB_WINDOW_BITS: usize = if cfg!(feature = "comb-window-4") {
    4
} else {
    8
};

/// Number of comb windows covering a 256-bit scalar.
pub const COMB_WINDOWS: usize = 256 / COMB_WINDOW_BITS;

/// Nonzero digit values per window (`2^w − 1`).
pub const COMB_DIGITS: usize = (1 << COMB_WINDOW_BITS) - 1;

/// Lazily built fixed-base comb table for the generator:
/// `windows[w][d-1] = d · 2^(W·w) · G` for `w ∈ 0..COMB_WINDOWS`,
/// `d ∈ 1..=COMB_DIGITS` (`W = COMB_WINDOW_BITS`), all in affine form
/// so [`JacobianPoint::add_mixed`] applies.
///
/// With it, any `k·G` costs at most `COMB_WINDOWS − 1` mixed additions
/// and **zero** doublings — the radix-`2^W` digits of `k` select one
/// entry per window. The table is built once per process (one batched
/// inversion over all entries); every ECDSA signature and the `u1·G`
/// half of every verification then reuses it.
struct FixedBaseTable {
    windows: Vec<Vec<AffinePoint>>,
}

fn fixed_base_table() -> &'static FixedBaseTable {
    static TABLE: OnceLock<FixedBaseTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut flat: Vec<JacobianPoint> = Vec::with_capacity(COMB_WINDOWS * COMB_DIGITS);
        let mut base = AffinePoint::generator().to_jacobian();
        for _ in 0..COMB_WINDOWS {
            let mut acc = base;
            for _ in 1..=COMB_DIGITS {
                flat.push(acc);
                acc = acc.add(&base);
            }
            // acc is now 2^W·base: the next window's base.
            base = acc;
        }
        let affine = JacobianPoint::batch_to_affine(&flat);
        let windows = affine.chunks(COMB_DIGITS).map(|c| c.to_vec()).collect();
        FixedBaseTable { windows }
    })
}

/// Fixed-base scalar multiplication `k·G` via the precomputed comb
/// table: one table lookup and mixed addition per nonzero
/// radix-`2^W` digit of `k`, no doublings.
pub fn mul_fixed_base(k: &U256) -> JacobianPoint {
    let table = fixed_base_table();
    let mask = COMB_DIGITS as u64; // 2^W − 1
    let per_limb = 64 / COMB_WINDOW_BITS;
    let mut acc = JacobianPoint::identity();
    for w in 0..COMB_WINDOWS {
        let digit = ((k.0[w / per_limb] >> ((w % per_limb) * COMB_WINDOW_BITS)) & mask) as usize;
        if digit != 0 {
            acc = acc.add_mixed(&table.windows[w][digit - 1]);
        }
    }
    acc
}

/// Errors constructing or decoding curve points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointError {
    /// The coordinates fail the curve equation.
    NotOnCurve,
    /// A coordinate was `>= p`.
    OutOfRange,
    /// The byte encoding was malformed.
    Encoding,
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::NotOnCurve => write!(f, "point is not on the P-256 curve"),
            PointError::OutOfRange => write!(f, "coordinate exceeds the field modulus"),
            PointError::Encoding => write!(f, "malformed SEC1 point encoding"),
        }
    }
}

impl std::error::Error for PointError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        assert!(AffinePoint::generator().is_on_curve());
    }

    #[test]
    fn two_g_matches_known_vector() {
        // 2G from the public SEC/NIST multiplication tables.
        let g = AffinePoint::generator();
        let two_g = g.mul_scalar(&U256::from_u64(2));
        assert_eq!(
            two_g.x_bytes().to_vec(),
            hex("7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978")
        );
        assert_eq!(
            two_g.y_bytes().to_vec(),
            hex("07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1")
        );
    }

    #[test]
    fn add_and_double_agree() {
        let g = AffinePoint::generator().to_jacobian();
        let d = g.double().to_affine();
        let a = g.add(&g).to_affine();
        assert_eq!(d, a);
        assert!(d.is_on_curve());
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let g = AffinePoint::generator().to_jacobian();
        let mut acc = JacobianPoint::identity();
        for k in 1u64..=20 {
            acc = acc.add(&g);
            let fast = g.mul_scalar(&U256::from_u64(k)).to_affine();
            assert_eq!(acc.to_affine(), fast, "k={k}");
        }
    }

    #[test]
    fn order_times_g_is_identity() {
        let g = AffinePoint::generator().to_jacobian();
        let n = p256().order;
        assert!(g.mul_scalar(&n).is_identity());
        // (n-1)G = -G
        let nm1 = n.wrapping_sub(&U256::ONE);
        let p = g.mul_scalar(&nm1).to_affine();
        let f = &p256().fp;
        assert_eq!(p.x, AffinePoint::generator().x);
        assert_eq!(p.y, f.neg(&AffinePoint::generator().y));
    }

    #[test]
    fn shamir_equals_separate_muls() {
        let g = AffinePoint::generator().to_jacobian();
        let q = g.mul_scalar(&U256::from_u64(777));
        let u1 = U256::from_u64(123456789);
        let u2 = U256::from_u64(987654321);
        let lhs = JacobianPoint::shamir(&u1, &g, &u2, &q).to_affine();
        let rhs = g.mul_scalar(&u1).add(&q.mul_scalar(&u2)).to_affine();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn fixed_base_matches_windowed_mul() {
        let g = AffinePoint::generator().to_jacobian();
        for k in [1u64, 2, 3, 255, 256, 257, 65535, 0xdead_beef] {
            let k = U256::from_u64(k);
            assert_eq!(mul_fixed_base(&k).to_affine(), g.mul_scalar(&k).to_affine());
        }
        // Full-width scalar and the group order's neighbours.
        let n = p256().order;
        let nm1 = n.wrapping_sub(&U256::ONE);
        assert_eq!(
            mul_fixed_base(&nm1).to_affine(),
            g.mul_scalar(&nm1).to_affine()
        );
        assert!(mul_fixed_base(&n).is_identity());
        assert!(mul_fixed_base(&U256::ZERO).is_identity());
    }

    #[test]
    fn comb_table_dimensions_match_the_active_window() {
        // 8-bit windows: 32 × 255 entries; comb-window-4: 64 × 15. The
        // digit loop, table build and these constants must agree.
        assert_eq!(COMB_WINDOW_BITS * COMB_WINDOWS, 256);
        assert_eq!(COMB_DIGITS, (1 << COMB_WINDOW_BITS) - 1);
        let table = fixed_base_table();
        assert_eq!(table.windows.len(), COMB_WINDOWS);
        assert!(table.windows.iter().all(|w| w.len() == COMB_DIGITS));
        // The comb identity: entry d of window w+1 is 2^W times entry d
        // of window w (both are d·2^(W·w)·G scaled by the window base).
        let g = AffinePoint::generator().to_jacobian();
        let d = 3usize.min(COMB_DIGITS);
        let mut expect = g.mul_scalar(&U256::from_u64(d as u64));
        assert_eq!(
            table.windows[0][d - 1].to_jacobian().to_affine(),
            expect.to_affine()
        );
        for w in 1..3 {
            for _ in 0..COMB_WINDOW_BITS {
                expect = expect.double();
            }
            assert_eq!(
                table.windows[w][d - 1].to_jacobian().to_affine(),
                expect.to_affine(),
                "window {w}"
            );
        }
    }

    #[test]
    fn wnaf_matches_windowed_mul() {
        let g = AffinePoint::generator().to_jacobian();
        let q = g.mul_scalar(&U256::from_u64(31337));
        for k in [1u64, 2, 16, 17, 255, 1023, 0xffff_ffff] {
            let k = U256::from_u64(k);
            assert_eq!(
                q.mul_scalar_wnaf(&k).to_affine(),
                q.mul_scalar(&k).to_affine()
            );
        }
        let big =
            U256::from_hex("7fffffff00000001000000000000000000000000fffffffffffffffffffffffe")
                .unwrap();
        assert_eq!(
            q.mul_scalar_wnaf(&big).to_affine(),
            q.mul_scalar(&big).to_affine()
        );
        assert!(q.mul_scalar_wnaf(&U256::ZERO).is_identity());
    }

    #[test]
    fn mixed_addition_matches_general() {
        let g = AffinePoint::generator().to_jacobian();
        let p = g.mul_scalar(&U256::from_u64(123));
        let q_affine = g.mul_scalar(&U256::from_u64(456)).to_affine();
        let mixed = p.add_mixed(&q_affine).to_affine();
        let general = p.add(&q_affine.to_jacobian()).to_affine();
        assert_eq!(mixed, general);
        // Degenerate cases: doubling and cancellation.
        let p_affine = p.to_affine();
        assert_eq!(p.add_mixed(&p_affine).to_affine(), p.double().to_affine());
        let f = &p256().fp;
        let neg = AffinePoint {
            x: p_affine.x,
            y: f.neg(&p_affine.y),
            infinity: false,
        };
        assert!(p.add_mixed(&neg).is_identity());
        assert_eq!(p.add_mixed(&AffinePoint::identity()).to_affine(), p_affine);
        assert_eq!(
            JacobianPoint::identity().add_mixed(&p_affine).to_affine(),
            p_affine
        );
    }

    #[test]
    fn batch_normalization_matches_individual() {
        let g = AffinePoint::generator().to_jacobian();
        let points: Vec<JacobianPoint> = (1u64..8)
            .map(|k| g.mul_scalar(&U256::from_u64(k)))
            .chain([JacobianPoint::identity()])
            .collect();
        let batch = JacobianPoint::batch_to_affine(&points);
        for (p, b) in points.iter().zip(&batch) {
            assert_eq!(p.to_affine(), *b);
        }
    }

    #[test]
    fn wnaf_digits_recode_correctly() {
        // Reconstruct k = sum(d_i * 2^i) and check digit constraints.
        for k in [1u64, 2, 31, 32, 0xdead_beef_cafe, u64::MAX] {
            let digits = super::wnaf_digits(&U256::from_u64(k), 5);
            let mut acc = 0i128;
            for (i, &d) in digits.iter().enumerate() {
                assert!(d == 0 || d % 2 != 0, "wNAF digits are zero or odd");
                assert!((-15..=15).contains(&d));
                acc += (d as i128) << i;
            }
            assert_eq!(acc, k as i128, "k={k}");
        }
    }

    #[test]
    fn wnaf_handles_scalars_near_2_256() {
        // The recoding's add-back carries past bit 255 for these; the
        // virtual-carry handling must keep the result correct (it used
        // to panic in an overflow assert).
        let g = AffinePoint::generator().to_jacobian();
        let q = g.mul_scalar(&U256::from_u64(997));
        for k in [
            U256::MAX,
            U256([u64::MAX - 1, u64::MAX, u64::MAX, u64::MAX]),
            U256([31, 0, 0, u64::MAX]),
        ] {
            assert_eq!(
                q.mul_scalar_wnaf(&k).to_affine(),
                q.mul_scalar(&k).to_affine(),
                "k={k:?}"
            );
        }
    }

    #[test]
    fn sec1_roundtrip() {
        let p = AffinePoint::generator().mul_scalar(&U256::from_u64(31337));
        let bytes = p.to_sec1_bytes();
        let q = AffinePoint::from_sec1_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn sec1_rejects_bad_encodings() {
        assert_eq!(
            AffinePoint::from_sec1_bytes(&[0x04; 10]),
            Err(PointError::Encoding)
        );
        let mut bytes = AffinePoint::generator().to_sec1_bytes();
        bytes[0] = 0x02;
        assert_eq!(
            AffinePoint::from_sec1_bytes(&bytes),
            Err(PointError::Encoding)
        );
        bytes[0] = 0x04;
        bytes[64] ^= 1; // corrupt y
        assert_eq!(
            AffinePoint::from_sec1_bytes(&bytes),
            Err(PointError::NotOnCurve)
        );
    }

    #[test]
    fn identity_behaviour() {
        let id = JacobianPoint::identity();
        let g = AffinePoint::generator().to_jacobian();
        assert_eq!(id.add(&g).to_affine(), g.to_affine());
        assert_eq!(g.add(&id).to_affine(), g.to_affine());
        assert!(id.double().is_identity());
        assert!(AffinePoint::identity().is_on_curve());
    }

    #[test]
    fn inverse_points_cancel() {
        let f = &p256().fp;
        let g = AffinePoint::generator();
        let neg_g = AffinePoint {
            x: g.x,
            y: f.neg(&g.y),
            infinity: false,
        };
        assert!(g.to_jacobian().add(&neg_g.to_jacobian()).is_identity());
    }

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }
}
