//! DER (ASN.1) encoding of ECDSA signatures.
//!
//! Fabric serializes ECDSA signatures in the DER `ECDSA-Sig-Value` form
//! (`SEQUENCE { r INTEGER, s INTEGER }`). The Blockchain Machine's
//! `DataProcessor` contains a DER postprocessor that "decodes the signature
//! data field to find its two parts (r and s), and then converts those
//! parts to 256-bit values (which are expected by ECDSA verification
//! hardware)" (paper §3.2). This module implements both directions with
//! strict minimal-encoding rules.

use std::fmt;

use crate::bigint::U256;
use crate::ecdsa::Signature;

/// Encodes a signature as DER `SEQUENCE { INTEGER r, INTEGER s }`.
///
/// Integers use minimal two's-complement encoding: leading zero bytes are
/// stripped and a single `0x00` is prepended when the high bit is set.
pub fn encode_signature(sig: &Signature) -> Vec<u8> {
    let r = encode_uint(&sig.r);
    let s = encode_uint(&sig.s);
    let body_len = r.len() + s.len();
    debug_assert!(body_len < 128, "P-256 signature bodies are short-form");
    let mut out = Vec::with_capacity(body_len + 2);
    out.push(0x30); // SEQUENCE
    out.push(body_len as u8);
    out.extend_from_slice(&r);
    out.extend_from_slice(&s);
    out
}

/// Decodes a DER `ECDSA-Sig-Value`, enforcing minimal encodings.
///
/// # Errors
///
/// Returns [`DerError`] describing the first malformed element. Trailing
/// bytes after the sequence are rejected.
pub fn decode_signature(bytes: &[u8]) -> Result<Signature, DerError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let seq_len = cur.expect_tag_len(0x30)?;
    if cur.pos + seq_len != bytes.len() {
        return Err(DerError::TrailingBytes);
    }
    let r = cur.read_integer()?;
    let s = cur.read_integer()?;
    if cur.pos != bytes.len() {
        return Err(DerError::TrailingBytes);
    }
    Ok(Signature { r, s })
}

fn encode_uint(v: &U256) -> Vec<u8> {
    let be = v.to_be_bytes();
    let first = be.iter().position(|&b| b != 0).unwrap_or(31);
    let mut body: Vec<u8> = Vec::with_capacity(34);
    if be[first] & 0x80 != 0 {
        body.push(0x00);
    }
    body.extend_from_slice(&be[first..]);
    let mut out = Vec::with_capacity(body.len() + 2);
    out.push(0x02); // INTEGER
    out.push(body.len() as u8);
    out.extend_from_slice(&body);
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DerError> {
        if self.pos + n > self.bytes.len() {
            return Err(DerError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn expect_tag_len(&mut self, tag: u8) -> Result<usize, DerError> {
        let hdr = self.take(2)?;
        if hdr[0] != tag {
            return Err(DerError::UnexpectedTag {
                expected: tag,
                found: hdr[0],
            });
        }
        let len = hdr[1];
        if len & 0x80 != 0 {
            // P-256 structures never need long-form lengths.
            return Err(DerError::LongFormLength);
        }
        Ok(len as usize)
    }

    fn read_integer(&mut self) -> Result<U256, DerError> {
        let len = self.expect_tag_len(0x02)?;
        if len == 0 {
            return Err(DerError::EmptyInteger);
        }
        let body = self.take(len)?;
        if body[0] & 0x80 != 0 {
            return Err(DerError::NegativeInteger);
        }
        // Minimal encoding: a leading 0x00 is only allowed to clear the
        // sign bit of the following byte.
        if body.len() > 1 && body[0] == 0x00 && body[1] & 0x80 == 0 {
            return Err(DerError::NonMinimalInteger);
        }
        let digits = if body[0] == 0x00 { &body[1..] } else { body };
        if digits.len() > 32 {
            return Err(DerError::IntegerTooLarge);
        }
        Ok(U256::from_be_bytes(digits))
    }
}

/// Errors decoding DER-encoded signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerError {
    /// Input ended before a declared length was satisfied.
    Truncated,
    /// A tag byte did not match the expected ASN.1 type.
    UnexpectedTag {
        /// Tag required at this position.
        expected: u8,
        /// Tag actually present.
        found: u8,
    },
    /// Long-form lengths are not used by P-256 signatures.
    LongFormLength,
    /// An INTEGER had zero length.
    EmptyInteger,
    /// An INTEGER was negative (high bit set without padding).
    NegativeInteger,
    /// An INTEGER used a non-minimal encoding.
    NonMinimalInteger,
    /// An INTEGER exceeded 256 bits.
    IntegerTooLarge,
    /// Extra bytes followed the outer SEQUENCE.
    TrailingBytes,
}

impl fmt::Display for DerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerError::Truncated => write!(f, "DER input truncated"),
            DerError::UnexpectedTag { expected, found } => {
                write!(f, "expected DER tag 0x{expected:02x}, found 0x{found:02x}")
            }
            DerError::LongFormLength => write!(f, "unexpected long-form DER length"),
            DerError::EmptyInteger => write!(f, "empty DER integer"),
            DerError::NegativeInteger => write!(f, "negative DER integer"),
            DerError::NonMinimalInteger => write!(f, "non-minimal DER integer encoding"),
            DerError::IntegerTooLarge => write!(f, "DER integer exceeds 256 bits"),
            DerError::TrailingBytes => write!(f, "trailing bytes after DER structure"),
        }
    }
}

impl std::error::Error for DerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecdsa::SigningKey;

    #[test]
    fn roundtrip_signature() {
        let key = SigningKey::from_seed(b"der");
        for msg in [&b"a"[..], b"longer message", b""] {
            let sig = key.sign(msg);
            let der = encode_signature(&sig);
            assert_eq!(decode_signature(&der).unwrap(), sig, "msg={msg:?}");
        }
    }

    #[test]
    fn high_bit_gets_zero_pad() {
        // r with MSB set must be encoded with a leading 0x00.
        let sig = Signature {
            r: U256::from_hex("8000000000000000000000000000000000000000000000000000000000000001")
                .unwrap(),
            s: U256::from_u64(1),
        };
        let der = encode_signature(&sig);
        // SEQUENCE, len, INTEGER, 33, 0x00, 0x80, ...
        assert_eq!(der[2], 0x02);
        assert_eq!(der[3], 33);
        assert_eq!(der[4], 0x00);
        assert_eq!(der[5], 0x80);
        assert_eq!(decode_signature(&der).unwrap(), sig);
    }

    #[test]
    fn small_values_encode_minimally() {
        let sig = Signature {
            r: U256::from_u64(1),
            s: U256::from_u64(127),
        };
        let der = encode_signature(&sig);
        assert_eq!(der, vec![0x30, 6, 0x02, 1, 1, 0x02, 1, 127]);
    }

    #[test]
    fn rejects_wrong_outer_tag() {
        assert_eq!(
            decode_signature(&[0x31, 0x00]),
            Err(DerError::UnexpectedTag {
                expected: 0x30,
                found: 0x31
            })
        );
    }

    #[test]
    fn rejects_truncation() {
        let key = SigningKey::from_seed(b"trunc");
        let der = encode_signature(&key.sign(b"m"));
        for cut in 1..der.len() {
            assert!(decode_signature(&der[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let key = SigningKey::from_seed(b"trail");
        let mut der = encode_signature(&key.sign(b"m"));
        der.push(0x00);
        assert_eq!(decode_signature(&der), Err(DerError::TrailingBytes));
    }

    #[test]
    fn rejects_non_minimal_zero_padding() {
        // INTEGER 0x00 0x01 is non-minimal.
        let bytes = [0x30, 7, 0x02, 2, 0x00, 0x01, 0x02, 1, 1];
        assert_eq!(decode_signature(&bytes), Err(DerError::NonMinimalInteger));
    }

    #[test]
    fn rejects_negative_integer() {
        let bytes = [0x30, 6, 0x02, 1, 0x80, 0x02, 1, 1];
        assert_eq!(decode_signature(&bytes), Err(DerError::NegativeInteger));
    }

    #[test]
    fn rejects_empty_integer() {
        let bytes = [0x30, 5, 0x02, 0, 0x02, 1, 1];
        assert_eq!(decode_signature(&bytes), Err(DerError::EmptyInteger));
    }
}
