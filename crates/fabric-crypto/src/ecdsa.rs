//! ECDSA over P-256 with SHA-256 digests and RFC 6979 deterministic nonces.
//!
//! This is Fabric's default signature scheme (paper §2.1.1): clients sign
//! transaction proposals, endorser peers sign endorsements, and the orderer
//! signs blocks. On the validator, verification of these signatures is the
//! single most expensive operation (~40% of total time in the paper's
//! Figure 3a) and the reason the Blockchain Machine dedicates pipelined
//! `ecdsa_engine` instances to it.
//!
//! # The verification hot path
//!
//! [`VerifyingKey::verify_prehashed`] runs an optimized pipeline that
//! mirrors what the paper's hardware gets from parallel `ecdsa_engine`
//! units — minimal redundant work per signature:
//!
//! * `u1·G` uses the process-wide precomputed fixed-base comb table
//!   ([`crate::curve::mul_fixed_base`]): ≤31 mixed additions, no
//!   doublings;
//! * `u2·Q` uses a lazily built *per-key* table (wNAF odd multiples of
//!   `Q` and of `2^128·Q`, affine) so the double-scalar half needs only
//!   ~128 shared doublings and ~42 mixed additions — endorser keys
//!   repeat across every block, so the table amortizes immediately;
//! * `s⁻¹ mod n` uses binary-Euclid inversion through the
//!   backend-selectable scalar domain ([`crate::scalar::ScalarDomain`]:
//!   Barrett-folded canonical arithmetic by default, Montgomery REDC as
//!   the oracle), or is amortized across a whole block with
//!   [`batch_s_inverses`] (Montgomery's trick: one inversion per block)
//!   and [`VerifyingKey::verify_prehashed_with_sinv`];
//! * the final `x(R) ≡ r (mod n)` comparison happens in projective
//!   coordinates ([`JacobianPoint::eq_x_mod_order`]), eliminating the
//!   second field inversion entirely.
//!
//! The seed implementation (bit-serial Shamir ladder + two Fermat
//! inversions) is preserved as [`VerifyingKey::verify_prehashed_shamir`];
//! randomized tests cross-check the two paths agree and the
//! `bench_validation` harness reports the before/after ratio.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::bigint::{U256, U512};
use crate::curve::{mul_fixed_base, p256, wnaf_digits, AffinePoint, JacobianPoint, PointError};
use crate::sha256::{hmac_sha256, sha256};

/// An ECDSA P-256 private key.
#[derive(Clone)]
pub struct SigningKey {
    d: U256,
    public: VerifyingKey,
}

/// An ECDSA P-256 public key.
///
/// Cloning is cheap and clones *share* the lazily built verification
/// table, so the natural pattern — parse a certificate once, verify many
/// endorsements against it — pays the precomputation once per key.
#[derive(Clone)]
pub struct VerifyingKey {
    point: AffinePoint,
    /// Lazily built per-key acceleration table; identity semantics
    /// (`PartialEq`, `Debug`, serialization) ignore it.
    precomp: Arc<OnceLock<KeyPrecomp>>,
}

impl PartialEq for VerifyingKey {
    fn eq(&self, other: &Self) -> bool {
        self.point == other.point
    }
}

impl Eq for VerifyingKey {}

/// Per-key precomputation for the `u2·Q` half of verification: width-5
/// wNAF odd multiples `{1,3,..,15}·B` for both `B = Q` and
/// `B = 2^128·Q`, normalized to affine with one batched inversion.
/// Splitting `u2 = u2_hi·2^128 + u2_lo` halves the doubling count of
/// the Strauss ladder from 256 to 128.
struct KeyPrecomp {
    lo: Vec<AffinePoint>,
    hi: Vec<AffinePoint>,
}

impl KeyPrecomp {
    const WINDOW: u32 = 5;
    const TABLE_LEN: usize = 1 << (Self::WINDOW - 2);

    fn build(q: &AffinePoint) -> Self {
        let base_lo = q.to_jacobian();
        let mut base_hi = base_lo;
        for _ in 0..128 {
            base_hi = base_hi.double();
        }
        let mut jac = Vec::with_capacity(2 * Self::TABLE_LEN);
        for base in [base_lo, base_hi] {
            let twice = base.double();
            let mut acc = base;
            for _ in 0..Self::TABLE_LEN {
                jac.push(acc);
                acc = acc.add(&twice);
            }
        }
        let affine = JacobianPoint::batch_to_affine(&jac);
        let (lo, hi) = affine.split_at(Self::TABLE_LEN);
        KeyPrecomp {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        }
    }

    /// `k·Q` via the split table: wNAF digits of the two 128-bit halves
    /// walk one shared doubling ladder.
    fn mul(&self, k: &U256) -> JacobianPoint {
        let k_lo = U256([k.0[0], k.0[1], 0, 0]);
        let k_hi = U256([k.0[2], k.0[3], 0, 0]);
        let d_lo = wnaf_digits(&k_lo, Self::WINDOW);
        let d_hi = wnaf_digits(&k_hi, Self::WINDOW);
        let f = &p256().fp;
        let mut acc = JacobianPoint::identity();
        for i in (0..d_lo.len().max(d_hi.len())).rev() {
            acc = acc.double();
            for (digits, table) in [(&d_lo, &self.lo), (&d_hi, &self.hi)] {
                let d = digits.get(i).copied().unwrap_or(0);
                if d > 0 {
                    acc = acc.add_mixed(&table[(d as usize) / 2]);
                } else if d < 0 {
                    let p = &table[(-d as usize) / 2];
                    let neg = AffinePoint {
                        x: p.x,
                        y: f.neg(&p.y),
                        infinity: p.infinity,
                    };
                    acc = acc.add_mixed(&neg);
                }
            }
        }
        acc
    }
}

/// An ECDSA signature as the raw `(r, s)` scalar pair.
///
/// Fabric transmits signatures DER-encoded (see [`crate::der`]); the
/// hardware's `DataProcessor` decodes DER into exactly this fixed-width
/// form before feeding the `ecdsa_engine` (paper §3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// The `r` component, `1 <= r < n`.
    pub r: U256,
    /// The `s` component, `1 <= s < n`.
    pub s: U256,
}

impl SigningKey {
    /// Creates a key from a raw scalar.
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidScalar`] when `d == 0` or `d >= n`.
    pub fn from_scalar(d: U256) -> Result<Self, EcdsaError> {
        let n = &p256().order;
        if d.is_zero() || &d >= n {
            return Err(EcdsaError::InvalidScalar);
        }
        let point = mul_fixed_base(&d).to_affine();
        Ok(SigningKey {
            d,
            public: VerifyingKey::new(point),
        })
    }

    /// Creates a key from 32 big-endian bytes.
    ///
    /// # Errors
    ///
    /// Same as [`SigningKey::from_scalar`].
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Result<Self, EcdsaError> {
        Self::from_scalar(U256::from_be_bytes(bytes))
    }

    /// Generates a key from an RNG.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes[..]);
            if let Ok(k) = Self::from_be_bytes(&bytes) {
                return k;
            }
        }
    }

    /// Derives a key deterministically from a seed label. Handy for
    /// reproducible test networks: the same `(org, role, index)` always
    /// yields the same identity.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut counter = 0u32;
        loop {
            let mut material = seed.to_vec();
            material.extend_from_slice(&counter.to_be_bytes());
            let digest = sha256(&material);
            if let Ok(k) = Self::from_be_bytes(&digest) {
                return k;
            }
            counter += 1;
        }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.public
    }

    /// The raw private scalar as big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.d.to_be_bytes()
    }

    /// Signs `message`, hashing it with SHA-256 first.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.sign_prehashed(&sha256(message))
    }

    /// Signs a precomputed 32-byte digest using the RFC 6979 deterministic
    /// nonce, so signing needs no RNG and is reproducible across runs.
    ///
    /// `k·G` runs on the precomputed fixed-base comb table (no
    /// doublings) and `k⁻¹` on binary-Euclid inversion, making signing
    /// several times faster than the seed's windowed ladder + Fermat
    /// exponentiation while producing bit-identical signatures.
    pub fn sign_prehashed(&self, digest: &[u8; 32]) -> Signature {
        let c = p256();
        let n = &c.order;
        let z = bits2int(digest, n);
        let mut nonce = Rfc6979::new(&self.d.to_be_bytes(), digest);
        loop {
            let k = nonce.next_candidate();
            if k.is_zero() || &k >= n {
                continue;
            }
            let point = mul_fixed_base(&k).to_affine();
            let r = c.fp.from_repr(&point.x).reduce_once(n);
            if r.is_zero() {
                continue;
            }
            // s = k^-1 (z + r d) mod n, in the scalar domain's
            // representation (canonical under Barrett, Montgomery form
            // under the oracle backend).
            let fd = &c.fn_;
            let km = fd.to_repr(&k);
            let kinv = fd.inv(&km).expect("k nonzero");
            let rm = fd.to_repr(&r);
            let dm = fd.to_repr(&self.d);
            let zm = fd.to_repr(&z);
            let rd = fd.mul(&rm, &dm);
            let sum = fd.add(&zm, &rd);
            let s = fd.from_repr(&fd.mul(&kinv, &sum));
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the private scalar.
        write!(f, "SigningKey(public={:?})", self.public)
    }
}

/// Process-wide registry sharing one precomp slot per distinct public
/// key, so re-parsing the same certificate (every block decode does)
/// reuses the table built on first verification instead of rebuilding
/// it. Bounded: once full, new keys simply get private (unshared) slots.
fn shared_precomp_slot(point: &AffinePoint) -> Arc<OnceLock<KeyPrecomp>> {
    type Registry =
        parking_lot::Mutex<std::collections::HashMap<[u8; 64], Arc<OnceLock<KeyPrecomp>>>>;
    const REGISTRY_CAP: usize = 1024;
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    let registry = REGISTRY
        .get_or_init(|| parking_lot::Mutex::named("crypto.precomp_registry", Default::default()));
    let mut key = [0u8; 64];
    key[..32].copy_from_slice(&point.x_bytes());
    key[32..].copy_from_slice(&point.y_bytes());
    let mut map = registry.lock();
    if let Some(slot) = map.get(&key) {
        return Arc::clone(slot);
    }
    let slot = Arc::new(OnceLock::new());
    if map.len() < REGISTRY_CAP {
        map.insert(key, Arc::clone(&slot));
    }
    slot
}

impl VerifyingKey {
    fn new(point: AffinePoint) -> Self {
        if point.infinity {
            return VerifyingKey {
                point,
                precomp: Arc::new(OnceLock::new()),
            };
        }
        VerifyingKey {
            point,
            precomp: shared_precomp_slot(&point),
        }
    }

    /// Wraps an existing curve point.
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidPoint`] for the identity point.
    pub fn from_point(point: AffinePoint) -> Result<Self, EcdsaError> {
        if point.infinity {
            return Err(EcdsaError::InvalidPoint(PointError::NotOnCurve));
        }
        Ok(VerifyingKey::new(point))
    }

    /// Parses an uncompressed SEC1 encoding (65 bytes, `04 || X || Y`).
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidPoint`] when decoding fails.
    pub fn from_sec1_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        let point = AffinePoint::from_sec1_bytes(bytes).map_err(EcdsaError::InvalidPoint)?;
        Self::from_point(point)
    }

    /// Serializes to uncompressed SEC1 (65 bytes).
    pub fn to_sec1_bytes(&self) -> [u8; 65] {
        self.point.to_sec1_bytes()
    }

    /// The underlying curve point.
    pub fn point(&self) -> &AffinePoint {
        &self.point
    }

    /// Verifies `signature` over `message` (SHA-256 hashed internally).
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), EcdsaError> {
        self.verify_prehashed(&sha256(message), signature)
    }

    /// Verifies against a precomputed digest. This is the operation the
    /// paper's `ecdsa_engine` implements: input `{signature, key, hash}`,
    /// output valid/invalid — and the hottest function in the whole
    /// validator (see the module docs for the optimization pipeline).
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidSignature`] when the signature does not
    /// verify, or [`EcdsaError::InvalidScalar`] when `r`/`s` are out of
    /// range.
    pub fn verify_prehashed(&self, digest: &[u8; 32], sig: &Signature) -> Result<(), EcdsaError> {
        let c = p256();
        let n = &c.order;
        if sig.r.is_zero() || &sig.r >= n || sig.s.is_zero() || &sig.s >= n {
            return Err(EcdsaError::InvalidScalar);
        }
        let fd = &c.fn_;
        let sm = fd.to_repr(&sig.s);
        let sinv = fd.from_repr(&fd.inv(&sm).expect("s nonzero"));
        self.verify_prehashed_with_sinv(digest, sig, &sinv)
    }

    /// [`Self::verify_prehashed`] with the `s⁻¹ mod n` supplied by the
    /// caller — the entry point for *batched* verification, where
    /// [`batch_s_inverses`] amortizes every inversion in a block into
    /// one (Montgomery's trick), exactly as the tentpole hardware's
    /// shared modular-inverse unit would.
    ///
    /// # Errors
    ///
    /// As [`Self::verify_prehashed`]; an inconsistent `sinv` simply
    /// fails verification.
    pub fn verify_prehashed_with_sinv(
        &self,
        digest: &[u8; 32],
        sig: &Signature,
        sinv: &U256,
    ) -> Result<(), EcdsaError> {
        let c = p256();
        let n = &c.order;
        if sig.r.is_zero() || &sig.r >= n || sig.s.is_zero() || &sig.s >= n {
            return Err(EcdsaError::InvalidScalar);
        }
        let z = bits2int(digest, n);
        let fd = &c.fn_;
        let sinv_m = fd.to_repr(sinv);
        let u1 = fd.from_repr(&fd.mul(&sinv_m, &fd.to_repr(&z)));
        let u2 = fd.from_repr(&fd.mul(&sinv_m, &fd.to_repr(&sig.r)));
        let precomp = self.precomp.get_or_init(|| KeyPrecomp::build(&self.point));
        let rp = mul_fixed_base(&u1).add(&precomp.mul(&u2));
        if rp.eq_x_mod_order(&sig.r) {
            Ok(())
        } else {
            Err(EcdsaError::InvalidSignature)
        }
    }

    /// The seed implementation of verification — bit-serial Shamir
    /// double-scalar ladder, Fermat inversions, long-division
    /// reductions — kept verbatim as the reference path. Randomized
    /// tests assert it agrees with [`Self::verify_prehashed`], and the
    /// validation benchmark reports the speedup of the new path against
    /// this one.
    ///
    /// # Errors
    ///
    /// As [`Self::verify_prehashed`].
    pub fn verify_prehashed_shamir(
        &self,
        digest: &[u8; 32],
        sig: &Signature,
    ) -> Result<(), EcdsaError> {
        let c = p256();
        let n = &c.order;
        if sig.r.is_zero() || &sig.r >= n || sig.s.is_zero() || &sig.s >= n {
            return Err(EcdsaError::InvalidScalar);
        }
        let z = U512::from_u256(&U256::from_be_bytes(digest)).rem(n);
        let fd = &c.fn_;
        let sm = fd.to_repr(&sig.s);
        let sinv = fd.inv_prime(&sm).expect("s nonzero");
        let u1 = fd.from_repr(&fd.mul(&sinv, &fd.to_repr(&z)));
        let u2 = fd.from_repr(&fd.mul(&sinv, &fd.to_repr(&sig.r)));
        let g = AffinePoint::generator().to_jacobian();
        let q = self.point.to_jacobian();
        let rp = JacobianPoint::shamir(&u1, &g, &u2, &q);
        if rp.is_identity() {
            return Err(EcdsaError::InvalidSignature);
        }
        let x = c.fp.from_repr(&rp.to_affine().x).rem(n);
        if x == sig.r {
            Ok(())
        } else {
            Err(EcdsaError::InvalidSignature)
        }
    }
}

/// Computes `s⁻¹ mod n` for a whole block's worth of signatures with a
/// *single* modular inversion (Montgomery's trick) — the amortization
/// step of the batched verification pipeline. The result is positional:
/// `out[i]` feeds [`VerifyingKey::verify_prehashed_with_sinv`] for
/// `sigs[i]`. Out-of-range `s` values (zero or `≥ n`) yield a zero
/// entry, which downstream verification rejects as it would any wrong
/// inverse.
pub fn batch_s_inverses(sigs: &[Signature]) -> Vec<U256> {
    let c = p256();
    let n = &c.order;
    let fd = &c.fn_;
    let mut values: Vec<U256> = sigs
        .iter()
        .map(|sig| {
            if sig.s.is_zero() || &sig.s >= n {
                U256::ZERO
            } else {
                fd.to_repr(&sig.s)
            }
        })
        .collect();
    fd.batch_inv(&mut values);
    for v in values.iter_mut() {
        if !v.is_zero() {
            *v = fd.from_repr(v);
        }
    }
    values
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VerifyingKey({:?})", self.point)
    }
}

impl Signature {
    /// Serializes as 64 raw bytes (`r || s`, big-endian).
    pub fn to_raw_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses the 64-byte raw form.
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidScalar`] when either half is zero or
    /// `>= n`.
    pub fn from_raw_bytes(bytes: &[u8; 64]) -> Result<Self, EcdsaError> {
        let r = U256::from_be_bytes(&bytes[..32]);
        let s = U256::from_be_bytes(&bytes[32..]);
        let n = &p256().order;
        if r.is_zero() || &r >= n || s.is_zero() || &s >= n {
            return Err(EcdsaError::InvalidScalar);
        }
        Ok(Signature { r, s })
    }
}

/// RFC 6979 §2.3.2: convert a digest to an integer mod `n`. For P-256 with
/// SHA-256 both are 256 bits, so this is a plain reduction — and since
/// `n > 2^255`, any 256-bit digest is `< 2n` and one conditional
/// subtraction replaces the seed's 256-step long division.
fn bits2int(digest: &[u8; 32], n: &U256) -> U256 {
    U256::from_be_bytes(digest).reduce_once(n)
}

/// HMAC-DRBG nonce generator from RFC 6979 §3.2.
struct Rfc6979 {
    k: [u8; 32],
    v: [u8; 32],
}

impl Rfc6979 {
    fn new(x: &[u8; 32], digest: &[u8; 32]) -> Self {
        // h1 is reduced mod n per the RFC (bits2octets).
        let n = p256().order;
        let h_reduced = bits2int(digest, &n).to_be_bytes();
        let mut k = [0u8; 32];
        let mut v = [1u8; 32]; // V = 0x01 x 32
                               // K = HMAC_K(V || 0x00 || x || h1)
        let mut msg = Vec::with_capacity(32 + 1 + 32 + 32);
        msg.extend_from_slice(&v);
        msg.push(0x00);
        msg.extend_from_slice(x);
        msg.extend_from_slice(&h_reduced);
        k = hmac_sha256(&k, &msg);
        v = hmac_sha256(&k, &v);
        // K = HMAC_K(V || 0x01 || x || h1)
        let mut msg = Vec::with_capacity(32 + 1 + 32 + 32);
        msg.extend_from_slice(&v);
        msg.push(0x01);
        msg.extend_from_slice(x);
        msg.extend_from_slice(&h_reduced);
        k = hmac_sha256(&k, &msg);
        v = hmac_sha256(&k, &v);
        Rfc6979 { k, v }
    }

    fn next_candidate(&mut self) -> U256 {
        self.v = hmac_sha256(&self.k, &self.v);
        let candidate = U256::from_be_bytes(&self.v);
        // Prepare for a possible retry: K = HMAC_K(V || 0x00); V = HMAC_K(V)
        let mut msg = [0u8; 33];
        msg[..32].copy_from_slice(&self.v);
        self.k = hmac_sha256(&self.k, &msg);
        self.v = hmac_sha256(&self.k, &self.v);
        candidate
    }
}

/// Errors from key handling, signing and verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcdsaError {
    /// A scalar (`d`, `r`, or `s`) was zero or not below the group order.
    InvalidScalar,
    /// A public-key point failed to decode or validate.
    InvalidPoint(PointError),
    /// The signature did not verify against the key and digest.
    InvalidSignature,
}

impl fmt::Display for EcdsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdsaError::InvalidScalar => write!(f, "scalar out of range for P-256"),
            EcdsaError::InvalidPoint(e) => write!(f, "invalid public key point: {e}"),
            EcdsaError::InvalidSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for EcdsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    /// RFC 6979 appendix A.2.5 key pair for P-256.
    fn rfc6979_key() -> SigningKey {
        SigningKey::from_be_bytes(&hex32(
            "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721",
        ))
        .unwrap()
    }

    #[test]
    fn rfc6979_public_key_matches() {
        let k = rfc6979_key();
        assert_eq!(
            k.verifying_key().point().x_bytes(),
            hex32("60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6")
        );
        assert_eq!(
            k.verifying_key().point().y_bytes(),
            hex32("7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299")
        );
    }

    #[test]
    fn rfc6979_vector_sample() {
        // message = "sample", SHA-256
        let sig = rfc6979_key().sign(b"sample");
        assert_eq!(
            sig.r.to_be_bytes(),
            hex32("efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716")
        );
        assert_eq!(
            sig.s.to_be_bytes(),
            hex32("f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8")
        );
    }

    #[test]
    fn rfc6979_vector_test() {
        // message = "test", SHA-256
        let sig = rfc6979_key().sign(b"test");
        assert_eq!(
            sig.r.to_be_bytes(),
            hex32("f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367")
        );
        assert_eq!(
            sig.s.to_be_bytes(),
            hex32("019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083")
        );
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_seed(b"roundtrip");
        let sig = key.sign(b"hello fabric");
        assert!(key.verifying_key().verify(b"hello fabric", &sig).is_ok());
    }

    #[test]
    fn tampered_message_fails() {
        let key = SigningKey::from_seed(b"tamper");
        let sig = key.sign(b"original");
        assert_eq!(
            key.verifying_key().verify(b"modified", &sig),
            Err(EcdsaError::InvalidSignature)
        );
    }

    #[test]
    fn tampered_signature_fails() {
        let key = SigningKey::from_seed(b"tamper2");
        let mut sig = key.sign(b"msg");
        sig.s = sig.s.wrapping_add(&U256::ONE);
        assert!(key.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_key_fails() {
        let key1 = SigningKey::from_seed(b"key1");
        let key2 = SigningKey::from_seed(b"key2");
        let sig = key1.sign(b"msg");
        assert!(key2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn zero_scalar_rejected() {
        assert_eq!(
            SigningKey::from_scalar(U256::ZERO).unwrap_err(),
            EcdsaError::InvalidScalar
        );
        let n = p256().order;
        assert_eq!(
            SigningKey::from_scalar(n).unwrap_err(),
            EcdsaError::InvalidScalar
        );
    }

    #[test]
    fn out_of_range_signature_rejected() {
        let key = SigningKey::from_seed(b"range");
        let digest = sha256(b"msg");
        let bad = Signature {
            r: U256::ZERO,
            s: U256::ONE,
        };
        assert_eq!(
            key.verifying_key().verify_prehashed(&digest, &bad),
            Err(EcdsaError::InvalidScalar)
        );
    }

    #[test]
    fn raw_bytes_roundtrip() {
        let key = SigningKey::from_seed(b"raw");
        let sig = key.sign(b"data");
        let bytes = sig.to_raw_bytes();
        assert_eq!(Signature::from_raw_bytes(&bytes).unwrap(), sig);
    }

    #[test]
    fn seeded_keys_are_deterministic() {
        let a = SigningKey::from_seed(b"org1.peer0");
        let b = SigningKey::from_seed(b"org1.peer0");
        assert_eq!(a.to_be_bytes(), b.to_be_bytes());
        let c = SigningKey::from_seed(b"org1.peer1");
        assert_ne!(a.to_be_bytes(), c.to_be_bytes());
    }

    #[test]
    fn fast_and_shamir_paths_agree() {
        let key = SigningKey::from_seed(b"agree");
        let digest = sha256(b"payload");
        let sig = key.sign_prehashed(&digest);
        let vk = key.verifying_key();
        assert!(vk.verify_prehashed(&digest, &sig).is_ok());
        assert!(vk.verify_prehashed_shamir(&digest, &sig).is_ok());
        // Corruptions fail identically on both paths.
        let mut bad = sig;
        bad.r = bad.r.wrapping_add(&U256::ONE);
        assert_eq!(
            vk.verify_prehashed(&digest, &bad).is_ok(),
            vk.verify_prehashed_shamir(&digest, &bad).is_ok()
        );
        let other = sha256(b"other payload");
        assert_eq!(
            vk.verify_prehashed(&other, &sig).is_ok(),
            vk.verify_prehashed_shamir(&other, &sig).is_ok()
        );
    }

    #[test]
    fn batched_sinv_verification_matches() {
        let keys: Vec<SigningKey> = (0..5)
            .map(|i| SigningKey::from_seed(format!("batch{i}").as_bytes()))
            .collect();
        let digests: Vec<[u8; 32]> = (0..5)
            .map(|i| sha256(format!("msg{i}").as_bytes()))
            .collect();
        let sigs: Vec<Signature> = keys
            .iter()
            .zip(&digests)
            .map(|(k, d)| k.sign_prehashed(d))
            .collect();
        let sinvs = batch_s_inverses(&sigs);
        for i in 0..5 {
            assert!(keys[i]
                .verifying_key()
                .verify_prehashed_with_sinv(&digests[i], &sigs[i], &sinvs[i])
                .is_ok());
            // Wrong sinv (from a different signature) must fail.
            let wrong = sinvs[(i + 1) % 5];
            assert!(keys[i]
                .verifying_key()
                .verify_prehashed_with_sinv(&digests[i], &sigs[i], &wrong)
                .is_err());
        }
    }

    #[test]
    fn cloned_keys_share_precomp_and_agree() {
        let key = SigningKey::from_seed(b"clone");
        let digest = sha256(b"m");
        let sig = key.sign_prehashed(&digest);
        let vk1 = key.verifying_key().clone();
        let vk2 = vk1.clone();
        assert!(vk1.verify_prehashed(&digest, &sig).is_ok());
        assert!(vk2.verify_prehashed(&digest, &sig).is_ok());
        assert_eq!(vk1, vk2);
    }

    #[test]
    fn sec1_roundtrip_verifying_key() {
        let key = SigningKey::from_seed(b"sec1");
        let vk = key.verifying_key();
        let parsed = VerifyingKey::from_sec1_bytes(&vk.to_sec1_bytes()).unwrap();
        assert_eq!(*vk, parsed);
    }
}
