//! ECDSA over P-256 with SHA-256 digests and RFC 6979 deterministic nonces.
//!
//! This is Fabric's default signature scheme (paper §2.1.1): clients sign
//! transaction proposals, endorser peers sign endorsements, and the orderer
//! signs blocks. On the validator, verification of these signatures is the
//! single most expensive operation (~40% of total time in the paper's
//! Figure 3a) and the reason the Blockchain Machine dedicates pipelined
//! `ecdsa_engine` instances to it.

use std::fmt;

use crate::bigint::{U256, U512};
use crate::curve::{p256, AffinePoint, JacobianPoint, PointError};
use crate::sha256::{hmac_sha256, sha256};

/// An ECDSA P-256 private key.
#[derive(Clone)]
pub struct SigningKey {
    d: U256,
    public: VerifyingKey,
}

/// An ECDSA P-256 public key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct VerifyingKey {
    point: AffinePoint,
}

/// An ECDSA signature as the raw `(r, s)` scalar pair.
///
/// Fabric transmits signatures DER-encoded (see [`crate::der`]); the
/// hardware's `DataProcessor` decodes DER into exactly this fixed-width
/// form before feeding the `ecdsa_engine` (paper §3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// The `r` component, `1 <= r < n`.
    pub r: U256,
    /// The `s` component, `1 <= s < n`.
    pub s: U256,
}

impl SigningKey {
    /// Creates a key from a raw scalar.
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidScalar`] when `d == 0` or `d >= n`.
    pub fn from_scalar(d: U256) -> Result<Self, EcdsaError> {
        let n = &p256().order;
        if d.is_zero() || &d >= n {
            return Err(EcdsaError::InvalidScalar);
        }
        let point = AffinePoint::generator().mul_scalar(&d);
        Ok(SigningKey { d, public: VerifyingKey { point } })
    }

    /// Creates a key from 32 big-endian bytes.
    ///
    /// # Errors
    ///
    /// Same as [`SigningKey::from_scalar`].
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Result<Self, EcdsaError> {
        Self::from_scalar(U256::from_be_bytes(bytes))
    }

    /// Generates a key from an RNG.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let mut bytes = [0u8; 32];
            rng.fill(&mut bytes[..]);
            if let Ok(k) = Self::from_be_bytes(&bytes) {
                return k;
            }
        }
    }

    /// Derives a key deterministically from a seed label. Handy for
    /// reproducible test networks: the same `(org, role, index)` always
    /// yields the same identity.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut counter = 0u32;
        loop {
            let mut material = seed.to_vec();
            material.extend_from_slice(&counter.to_be_bytes());
            let digest = sha256(&material);
            if let Ok(k) = Self::from_be_bytes(&digest) {
                return k;
            }
            counter += 1;
        }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.public
    }

    /// The raw private scalar as big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.d.to_be_bytes()
    }

    /// Signs `message`, hashing it with SHA-256 first.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.sign_prehashed(&sha256(message))
    }

    /// Signs a precomputed 32-byte digest using the RFC 6979 deterministic
    /// nonce, so signing needs no RNG and is reproducible across runs.
    pub fn sign_prehashed(&self, digest: &[u8; 32]) -> Signature {
        let c = p256();
        let n = &c.order;
        let z = bits2int(digest, n);
        let mut nonce = Rfc6979::new(&self.d.to_be_bytes(), digest);
        loop {
            let k = nonce.next_candidate();
            if k.is_zero() || &k >= n {
                continue;
            }
            let point = AffinePoint::generator().mul_scalar(&k);
            let r = c.fp.from_mont(&point.x).rem(n);
            if r.is_zero() {
                continue;
            }
            // s = k^-1 (z + r d) mod n, all in the Montgomery domain of n.
            let fd = &c.fn_;
            let km = fd.to_mont(&k);
            let kinv = fd.inv_prime(&km).expect("k nonzero");
            let rm = fd.to_mont(&r);
            let dm = fd.to_mont(&self.d);
            let zm = fd.to_mont(&z);
            let rd = fd.mul(&rm, &dm);
            let sum = fd.add(&zm, &rd);
            let s = fd.from_mont(&fd.mul(&kinv, &sum));
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the private scalar.
        write!(f, "SigningKey(public={:?})", self.public)
    }
}

impl VerifyingKey {
    /// Wraps an existing curve point.
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidPoint`] for the identity point.
    pub fn from_point(point: AffinePoint) -> Result<Self, EcdsaError> {
        if point.infinity {
            return Err(EcdsaError::InvalidPoint(PointError::NotOnCurve));
        }
        Ok(VerifyingKey { point })
    }

    /// Parses an uncompressed SEC1 encoding (65 bytes, `04 || X || Y`).
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidPoint`] when decoding fails.
    pub fn from_sec1_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        let point = AffinePoint::from_sec1_bytes(bytes).map_err(EcdsaError::InvalidPoint)?;
        Self::from_point(point)
    }

    /// Serializes to uncompressed SEC1 (65 bytes).
    pub fn to_sec1_bytes(&self) -> [u8; 65] {
        self.point.to_sec1_bytes()
    }

    /// The underlying curve point.
    pub fn point(&self) -> &AffinePoint {
        &self.point
    }

    /// Verifies `signature` over `message` (SHA-256 hashed internally).
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), EcdsaError> {
        self.verify_prehashed(&sha256(message), signature)
    }

    /// Verifies against a precomputed digest. This is the operation the
    /// paper's `ecdsa_engine` implements: input `{signature, key, hash}`,
    /// output valid/invalid.
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidSignature`] when the signature does not
    /// verify, or [`EcdsaError::InvalidScalar`] when `r`/`s` are out of
    /// range.
    pub fn verify_prehashed(&self, digest: &[u8; 32], sig: &Signature) -> Result<(), EcdsaError> {
        let c = p256();
        let n = &c.order;
        if sig.r.is_zero() || &sig.r >= n || sig.s.is_zero() || &sig.s >= n {
            return Err(EcdsaError::InvalidScalar);
        }
        let z = bits2int(digest, n);
        let fd = &c.fn_;
        let sm = fd.to_mont(&sig.s);
        let sinv = fd.inv_prime(&sm).expect("s nonzero");
        let u1 = fd.from_mont(&fd.mul(&sinv, &fd.to_mont(&z)));
        let u2 = fd.from_mont(&fd.mul(&sinv, &fd.to_mont(&sig.r)));
        let g = AffinePoint::generator().to_jacobian();
        let q = self.point.to_jacobian();
        let rp = JacobianPoint::shamir(&u1, &g, &u2, &q);
        if rp.is_identity() {
            return Err(EcdsaError::InvalidSignature);
        }
        let x = c.fp.from_mont(&rp.to_affine().x).rem(n);
        if x == sig.r {
            Ok(())
        } else {
            Err(EcdsaError::InvalidSignature)
        }
    }
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VerifyingKey({:?})", self.point)
    }
}

impl Signature {
    /// Serializes as 64 raw bytes (`r || s`, big-endian).
    pub fn to_raw_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses the 64-byte raw form.
    ///
    /// # Errors
    ///
    /// Returns [`EcdsaError::InvalidScalar`] when either half is zero or
    /// `>= n`.
    pub fn from_raw_bytes(bytes: &[u8; 64]) -> Result<Self, EcdsaError> {
        let r = U256::from_be_bytes(&bytes[..32]);
        let s = U256::from_be_bytes(&bytes[32..]);
        let n = &p256().order;
        if r.is_zero() || &r >= n || s.is_zero() || &s >= n {
            return Err(EcdsaError::InvalidScalar);
        }
        Ok(Signature { r, s })
    }
}

/// RFC 6979 §2.3.2: convert a digest to an integer mod `n`. For P-256 with
/// SHA-256 both are 256 bits, so this is a plain reduction.
fn bits2int(digest: &[u8; 32], n: &U256) -> U256 {
    U512::from_u256(&U256::from_be_bytes(digest)).rem(n)
}

/// HMAC-DRBG nonce generator from RFC 6979 §3.2.
struct Rfc6979 {
    k: [u8; 32],
    v: [u8; 32],
}

impl Rfc6979 {
    fn new(x: &[u8; 32], digest: &[u8; 32]) -> Self {
        // h1 is reduced mod n per the RFC (bits2octets).
        let n = p256().order;
        let h_reduced = bits2int(digest, &n).to_be_bytes();
        let mut k = [0u8; 32];
        let mut v = [1u8; 32]; // V = 0x01 x 32
        // K = HMAC_K(V || 0x00 || x || h1)
        let mut msg = Vec::with_capacity(32 + 1 + 32 + 32);
        msg.extend_from_slice(&v);
        msg.push(0x00);
        msg.extend_from_slice(x);
        msg.extend_from_slice(&h_reduced);
        k = hmac_sha256(&k, &msg);
        v = hmac_sha256(&k, &v);
        // K = HMAC_K(V || 0x01 || x || h1)
        let mut msg = Vec::with_capacity(32 + 1 + 32 + 32);
        msg.extend_from_slice(&v);
        msg.push(0x01);
        msg.extend_from_slice(x);
        msg.extend_from_slice(&h_reduced);
        k = hmac_sha256(&k, &msg);
        v = hmac_sha256(&k, &v);
        Rfc6979 { k, v }
    }

    fn next_candidate(&mut self) -> U256 {
        self.v = hmac_sha256(&self.k, &self.v);
        let candidate = U256::from_be_bytes(&self.v);
        // Prepare for a possible retry: K = HMAC_K(V || 0x00); V = HMAC_K(V)
        let mut msg = [0u8; 33];
        msg[..32].copy_from_slice(&self.v);
        self.k = hmac_sha256(&self.k, &msg);
        self.v = hmac_sha256(&self.k, &self.v);
        candidate
    }
}

/// Errors from key handling, signing and verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcdsaError {
    /// A scalar (`d`, `r`, or `s`) was zero or not below the group order.
    InvalidScalar,
    /// A public-key point failed to decode or validate.
    InvalidPoint(PointError),
    /// The signature did not verify against the key and digest.
    InvalidSignature,
}

impl fmt::Display for EcdsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdsaError::InvalidScalar => write!(f, "scalar out of range for P-256"),
            EcdsaError::InvalidPoint(e) => write!(f, "invalid public key point: {e}"),
            EcdsaError::InvalidSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for EcdsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    /// RFC 6979 appendix A.2.5 key pair for P-256.
    fn rfc6979_key() -> SigningKey {
        SigningKey::from_be_bytes(&hex32(
            "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721",
        ))
        .unwrap()
    }

    #[test]
    fn rfc6979_public_key_matches() {
        let k = rfc6979_key();
        assert_eq!(
            k.verifying_key().point().x_bytes(),
            hex32("60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6")
        );
        assert_eq!(
            k.verifying_key().point().y_bytes(),
            hex32("7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299")
        );
    }

    #[test]
    fn rfc6979_vector_sample() {
        // message = "sample", SHA-256
        let sig = rfc6979_key().sign(b"sample");
        assert_eq!(
            sig.r.to_be_bytes(),
            hex32("efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716")
        );
        assert_eq!(
            sig.s.to_be_bytes(),
            hex32("f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8")
        );
    }

    #[test]
    fn rfc6979_vector_test() {
        // message = "test", SHA-256
        let sig = rfc6979_key().sign(b"test");
        assert_eq!(
            sig.r.to_be_bytes(),
            hex32("f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367")
        );
        assert_eq!(
            sig.s.to_be_bytes(),
            hex32("019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083")
        );
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_seed(b"roundtrip");
        let sig = key.sign(b"hello fabric");
        assert!(key.verifying_key().verify(b"hello fabric", &sig).is_ok());
    }

    #[test]
    fn tampered_message_fails() {
        let key = SigningKey::from_seed(b"tamper");
        let sig = key.sign(b"original");
        assert_eq!(
            key.verifying_key().verify(b"modified", &sig),
            Err(EcdsaError::InvalidSignature)
        );
    }

    #[test]
    fn tampered_signature_fails() {
        let key = SigningKey::from_seed(b"tamper2");
        let mut sig = key.sign(b"msg");
        sig.s = sig.s.wrapping_add(&U256::ONE);
        assert!(key.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_key_fails() {
        let key1 = SigningKey::from_seed(b"key1");
        let key2 = SigningKey::from_seed(b"key2");
        let sig = key1.sign(b"msg");
        assert!(key2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn zero_scalar_rejected() {
        assert_eq!(SigningKey::from_scalar(U256::ZERO).unwrap_err(), EcdsaError::InvalidScalar);
        let n = p256().order;
        assert_eq!(SigningKey::from_scalar(n).unwrap_err(), EcdsaError::InvalidScalar);
    }

    #[test]
    fn out_of_range_signature_rejected() {
        let key = SigningKey::from_seed(b"range");
        let digest = sha256(b"msg");
        let bad = Signature { r: U256::ZERO, s: U256::ONE };
        assert_eq!(
            key.verifying_key().verify_prehashed(&digest, &bad),
            Err(EcdsaError::InvalidScalar)
        );
    }

    #[test]
    fn raw_bytes_roundtrip() {
        let key = SigningKey::from_seed(b"raw");
        let sig = key.sign(b"data");
        let bytes = sig.to_raw_bytes();
        assert_eq!(Signature::from_raw_bytes(&bytes).unwrap(), sig);
    }

    #[test]
    fn seeded_keys_are_deterministic() {
        let a = SigningKey::from_seed(b"org1.peer0");
        let b = SigningKey::from_seed(b"org1.peer0");
        assert_eq!(a.to_be_bytes(), b.to_be_bytes());
        let c = SigningKey::from_seed(b"org1.peer1");
        assert_ne!(a.to_be_bytes(), c.to_be_bytes());
    }

    #[test]
    fn sec1_roundtrip_verifying_key() {
        let key = SigningKey::from_seed(b"sec1");
        let vk = key.verifying_key();
        let parsed = VerifyingKey::from_sec1_bytes(&vk.to_sec1_bytes()).unwrap();
        assert_eq!(*vk, parsed);
    }
}
