//! Barrett-folded arithmetic in the P-256 *scalar* field (mod `n`).
//!
//! The group order
//!
//! ```text
//! n = ffffffff00000000 ffffffffffffffff bce6faada7179e84 f3b9cac2fc632551
//! ```
//!
//! is **not** a Solinas prime — its high half has none of the sparse
//! power-of-two structure the base-field prime has — so the fold that
//! made [`crate::fp256`] fast does not transfer. What does transfer is
//! the *shape* of the win: operating on **canonical residues** so that
//! entering and leaving the representation is free. The generic
//! Montgomery path ([`crate::mont`]) pays a REDC multiply for every
//! `to_mont`/`from_mont` crossing, and the ECDSA scalar flow is all
//! crossings: per signature it performs exactly two useful products
//! (`u1 = z·s⁻¹`, `u2 = r·s⁻¹`) but five conversions around them.
//!
//! [`Fq256`] instead reduces the 512-bit schoolbook product directly
//! with a precomputed Barrett constant `µ = ⌊2^512 / n⌋`:
//!
//! ```text
//! q̂ = x_hi + ⌊x_hi·µ_lo / 2^256⌋        (µ = 2^256 + µ_lo)
//! r  = x − q̂·n,   then at most three conditional −n
//! ```
//!
//! The quotient estimate is provably within 3 of the true quotient for
//! any `x < n·2^256` (which every product of reduced operands
//! satisfies), so the correction loop is tiny and the whole reduction is
//! two extra 256×256 multiplies through the same [`addmul_row`] carry
//! chains the rest of the crate uses — no division, no per-element
//! domain conversions. A canonical-in/canonical-out modular multiply is
//! one Barrett reduction versus the Montgomery path's three REDC
//! crossings (`to_mont`, `to_mont`, `from_mont`) around its one.
//!
//! The backend dispatch that lets the curve layer run the scalar field
//! on either this module or the Montgomery oracle lives in
//! [`crate::scalar`]; the differential harness
//! (`tests/tests/crypto_differential.rs`) pins every operation here
//! against [`crate::mont::MontgomeryDomain`] and plain long division on
//! random, boundary, and near-`n` inputs.
//!
//! Like the rest of this crate, the implementation favours clarity and
//! auditability over side-channel hardening (the correction loop is
//! input-dependent); the library signs only synthetic benchmark
//! identities.

use crate::bigint::{inv_mod_odd, sbb, U256, U512};

/// The P-256 scalar field (integers mod the group order `n`) with
/// Barrett reduction on canonical residues.
///
/// Stateless: the order and the Barrett constant are compile-time
/// constants.
///
/// ```
/// use fabric_crypto::bigint::U256;
/// use fabric_crypto::fq256::Fq256;
/// let f = Fq256;
/// let a = U256::from_u64(1234);
/// let b = U256::from_u64(5678);
/// assert_eq!(f.mul(&a, &b), U256::from_u64(1234 * 5678));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fq256;

impl Fq256 {
    /// The P-256 group order `n`.
    pub const N: U256 = U256([
        0xf3b9_cac2_fc63_2551,
        0xbce6_faad_a717_9e84,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_0000_0000,
    ]);

    /// Low 256 bits of the Barrett constant: `µ_lo = ⌊2^512 / n⌋ − 2^256`
    /// (`µ` itself is 257 bits; its top bit is handled symbolically in
    /// [`reduce_wide_scalar`]).
    const MU_LO: U256 = U256([
        0x012f_fd85_eedf_9bfe,
        0x4319_0552_df1a_6c21,
        0xffff_fffe_ffff_ffff,
        0x0000_0000_ffff_ffff,
    ]);

    /// `2^256 − n`, the fold constant for pre-reducing inputs at or
    /// above `n·2^256` (a 224-bit value).
    const C: U256 = U256([
        0x0c46_353d_039c_daaf,
        0x4319_0552_58e8_617b,
        0x0000_0000_0000_0000,
        0x0000_0000_ffff_ffff,
    ]);

    /// The field modulus (the group order).
    pub fn modulus(&self) -> &'static U256 {
        &Self::N
    }

    /// The multiplicative identity (canonical residues: just `1`).
    pub fn one(&self) -> U256 {
        U256::ONE
    }

    /// Modular multiplication: schoolbook 256×256 multiply followed by
    /// the Barrett fold.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        debug_assert!(a < &Self::N && b < &Self::N);
        barrett_reduce(&a.widening_mul(b))
    }

    /// Modular squaring, on the dedicated squaring kernel (cross
    /// products computed once and doubled).
    pub fn sqr(&self, a: &U256) -> U256 {
        debug_assert!(a < &Self::N);
        barrett_reduce(&a.widening_sqr())
    }

    /// Modular addition.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        a.add_mod(b, &Self::N)
    }

    /// Modular subtraction.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        a.sub_mod(b, &Self::N)
    }

    /// Modular negation.
    pub fn neg(&self, a: &U256) -> U256 {
        debug_assert!(a < &Self::N);
        if a.is_zero() {
            U256::ZERO
        } else {
            Self::N.wrapping_sub(a)
        }
    }

    /// Exponentiation by a plain integer exponent, left-to-right binary.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let mut acc = U256::ONE;
        for i in (0..exp.bit_len()).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`a^(n-2)`).
    /// Returns `None` for zero. Kept for API parity with the Montgomery
    /// oracle; [`Self::inv`] is several times faster.
    pub fn inv_prime(&self, a: &U256) -> Option<U256> {
        if a.is_zero() {
            return None;
        }
        let exp = Self::N.wrapping_sub(&U256::from_u64(2));
        Some(self.pow(a, &exp))
    }

    /// Multiplicative inverse via the shared binary extended Euclid
    /// ([`crate::bigint::inv_mod_odd`]). Returns `None` for zero.
    ///
    /// Unlike the Montgomery path, no domain conversions bracket the
    /// Euclidean core: canonical residues go straight in and out.
    pub fn inv(&self, a: &U256) -> Option<U256> {
        inv_mod_odd(a, &Self::N)
    }

    /// Montgomery-trick batch inversion on the shared prime-field core
    /// ([`crate::bigint::batch_inv_prime_field`]): every invertible
    /// element in `values` is replaced by its inverse at the cost of a
    /// single inversion plus `3(n-1)` multiplications; the mask is
    /// `true` where an inverse was written.
    pub fn batch_inv(&self, values: &mut [U256]) -> Vec<bool> {
        crate::bigint::batch_inv_prime_field(values, |a, b| self.mul(a, b), |a| self.inv(a))
    }
}

/// Barrett reduction of `x < n·2^256` modulo the group order.
///
/// `q̂ = x_hi + hi(x_hi·µ_lo)` underestimates the true quotient by at
/// most 3 (standard Barrett error analysis with the shift split at
/// 2^256 on both sides), so `x − q̂·n < 4n` and the correction loop runs
/// at most three times.
fn barrett_reduce(x: &U512) -> U256 {
    let x_hi = U256([x.0[4], x.0[5], x.0[6], x.0[7]]);
    // q̂ = x_hi·µ / 2^256 with µ = 2^256 + µ_lo: the 2^256 term is x_hi
    // itself, the rest is the high half of a 256×256 product.
    let t = x_hi.widening_mul(&Fq256::MU_LO);
    let t_hi = U256([t.0[4], t.0[5], t.0[6], t.0[7]]);
    let (qhat, overflow) = x_hi.overflowing_add(&t_hi);
    debug_assert!(!overflow, "q̂ < 2^256 for x < n·2^256");
    // r = x − q̂·n across the full 512 bits (no borrow-out since q̂ ≤ q).
    let qn = qhat.widening_mul(&Fq256::N);
    let mut r = [0u64; 8];
    let mut borrow = 0u64;
    #[allow(clippy::needless_range_loop)] // lock-step borrow propagation
    for i in 0..8 {
        (r[i], borrow) = sbb(x.0[i], qn.0[i], borrow);
    }
    debug_assert_eq!(borrow, 0, "q̂ never exceeds the true quotient");
    debug_assert!(r[5] == 0 && r[6] == 0 && r[7] == 0 && r[4] <= 3, "r < 4n");
    let mut hi = r[4];
    let mut lo = U256([r[0], r[1], r[2], r[3]]);
    while hi > 0 || lo >= Fq256::N {
        let (diff, b) = lo.overflowing_sub(&Fq256::N);
        lo = diff;
        hi -= b as u64;
    }
    lo
}

/// Barrett reduction of an arbitrary 512-bit value modulo the group
/// order (the scalar-field analogue of [`crate::fp256::reduce_wide`]).
///
/// General inputs can reach `2^512 − 1 > n·2^256`, outside the core
/// estimate's proven range, so one fold through `2^256 ≡ 2^256 − n
/// (mod n)` shrinks the value below `2^481 ≪ n·2^256` first; the
/// Barrett step then finishes. Hot paths (products of reduced
/// operands) skip the pre-fold via [`Fq256::mul`]/[`Fq256::sqr`].
pub fn reduce_wide_scalar(x: &U512) -> U256 {
    let x_hi = U256([x.0[4], x.0[5], x.0[6], x.0[7]]);
    let x_lo = U256([x.0[0], x.0[1], x.0[2], x.0[3]]);
    // x ≡ x_hi·(2^256 − n) + x_lo (mod n); the sum stays < 2^481.
    let mut folded = x_hi.widening_mul(&Fq256::C);
    let mut carry = 0u64;
    for i in 0..4 {
        let (sum, c) = crate::bigint::adc(folded.0[i], x_lo.0[i], carry);
        folded.0[i] = sum;
        carry = c;
    }
    // The carry must actually propagate in every build — a
    // side-effecting call may never live inside a debug_assert!.
    let overflow = crate::bigint::propagate_carry(&mut folded.0[4..], carry);
    debug_assert_eq!(overflow, 0, "fold result fits in 512 bits");
    barrett_reduce(&folded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> U256 {
        U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551").unwrap()
    }

    #[test]
    fn order_constant_matches_hex_literal() {
        assert_eq!(Fq256::N, n());
        // C is 2^256 − n by construction.
        let (sum, carry) = Fq256::C.overflowing_add(&Fq256::N);
        assert!(sum.is_zero() && carry, "C + N = 2^256");
    }

    #[test]
    fn barrett_constant_matches_division() {
        // µ = ⌊2^512 / n⌋: check n·µ ≤ 2^512 < n·(µ + 1) with µ =
        // 2^256 + µ_lo, using only 512-bit pieces: n·µ = n·2^256 +
        // n·µ_lo must have the form 2^512 − rem with rem < n.
        // Equivalently 2^512 − n·2^256 − n·µ_lo < n. Compute
        // 2^512 − n·2^256 = (2^256 − n)·2^256 = C·2^256, then subtract
        // n·µ_lo and check the remainder is < n.
        let n_mu_lo = Fq256::N.widening_mul(&Fq256::MU_LO);
        let mut c_shift = U512::default();
        c_shift.0[4..8].copy_from_slice(&Fq256::C.0);
        let mut rem = [0u64; 8];
        let mut borrow = 0u64;
        #[allow(clippy::needless_range_loop)] // lock-step borrow propagation
        for i in 0..8 {
            (rem[i], borrow) = sbb(c_shift.0[i], n_mu_lo.0[i], borrow);
        }
        assert_eq!(borrow, 0, "µ does not overshoot");
        assert_eq!(&rem[4..], &[0, 0, 0, 0], "remainder fits in 256 bits");
        assert!(
            U256([rem[0], rem[1], rem[2], rem[3]]) < Fq256::N,
            "µ is the exact floor"
        );
    }

    #[test]
    fn reduce_matches_long_division_on_structured_inputs() {
        let m = n();
        let cases: Vec<U512> = vec![
            U512::default(),
            U512::from_u256(&U256::ONE),
            U512::from_u256(&m),                          // exactly n
            U512::from_u256(&m.wrapping_sub(&U256::ONE)), // n − 1
            U512([0, 0, 0, 0, 1, 0, 0, 0]),               // 2^256
            U512([u64::MAX; 8]),                          // 2^512 − 1
            U512([0, 0, 0, 0, 0, 0, 0, u64::MAX]),        // high-limb only
            m.widening_mul(&m),                           // n² ≡ 0
            m.wrapping_sub(&U256::ONE)
                .widening_mul(&m.wrapping_sub(&U256::ONE)), // (n−1)²
        ];
        for (i, c) in cases.iter().enumerate() {
            assert_eq!(reduce_wide_scalar(c), c.rem(&m), "case {i}");
        }
    }

    #[test]
    fn mul_matches_widening_rem() {
        let f = Fq256;
        let m = n();
        let vals = [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(u64::MAX),
            m.wrapping_sub(&U256::ONE),
            m.wrapping_sub(&U256::from_u64(12345)),
            U256([0, 0, 1 << 63, 0]),
            U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
                .unwrap()
                .rem(&m),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(f.mul(a, b), a.widening_mul(b).rem(&m), "a={a:?} b={b:?}");
                assert_eq!(f.sqr(a), a.widening_sqr().rem(&m), "a={a:?}");
            }
        }
    }

    #[test]
    fn inverse_agrees_with_fermat() {
        let f = Fq256;
        for v in [1u64, 2, 3, 0xdead_beef, u64::MAX] {
            let a = U256::from_u64(v);
            let inv = f.inv(&a).unwrap();
            assert_eq!(f.mul(&a, &inv), U256::ONE, "v={v}");
            assert_eq!(Some(inv), f.inv_prime(&a), "v={v}");
        }
        assert_eq!(f.inv(&U256::ZERO), None);
        assert_eq!(f.inv_prime(&U256::ZERO), None);
        let nm1 = n().wrapping_sub(&U256::ONE); // −1 is its own inverse
        assert_eq!(f.inv(&nm1), Some(nm1));
    }

    #[test]
    fn batch_inversion_matches_individual() {
        let f = Fq256;
        let mut values: Vec<U256> = [7u64, 11, 0, 13, 0, 99]
            .iter()
            .map(|&v| U256::from_u64(v))
            .collect();
        let originals = values.clone();
        let mask = f.batch_inv(&mut values);
        assert_eq!(mask, vec![true, true, false, true, false, true]);
        for i in 0..values.len() {
            if mask[i] {
                assert_eq!(Some(values[i]), f.inv(&originals[i]), "i={i}");
            } else {
                assert!(values[i].is_zero());
            }
        }
        let mut zeros = vec![U256::ZERO; 3];
        assert_eq!(f.batch_inv(&mut zeros), vec![false; 3]);
    }

    #[test]
    fn add_sub_neg_wrap_correctly() {
        let f = Fq256;
        let nm1 = n().wrapping_sub(&U256::ONE);
        assert_eq!(f.add(&nm1, &U256::ONE), U256::ZERO);
        assert_eq!(f.sub(&U256::ZERO, &U256::ONE), nm1);
        assert_eq!(f.neg(&U256::ONE), nm1);
        assert_eq!(f.neg(&U256::ZERO), U256::ZERO);
        assert_eq!(f.add(&f.neg(&nm1), &nm1), U256::ZERO);
    }

    #[test]
    fn pow_small_exponents() {
        let f = Fq256;
        let three = U256::from_u64(3);
        assert_eq!(f.pow(&three, &U256::ZERO), U256::ONE);
        assert_eq!(f.pow(&three, &U256::from_u64(5)), U256::from_u64(243));
    }
}
