//! Fixed-width 256-bit unsigned integer arithmetic.
//!
//! [`U256`] is the scalar/coordinate type underlying the P-256
//! implementation in [`crate::curve`] and [`crate::ecdsa`]. It is a plain
//! little-endian 4×`u64` limb vector with the usual carry-propagating
//! arithmetic, plus the widening multiply and 512-by-256-bit remainder
//! needed by modular reduction.
//!
//! The type is deliberately minimal: it implements only the operations the
//! cryptographic stack needs, and every operation is checked (no implicit
//! wrap-around except where the method name says so).

use std::cmp::Ordering;
use std::fmt;

/// Adds `a + b + carry_in`, returning the low 64 bits and the carry-out.
///
/// The building block of every carry chain in this crate (generic
/// Montgomery arithmetic in [`crate::mont`] and the Solinas-form P-256
/// field in [`crate::fp256`] share it). `carry_in` may be any `u64`; the
/// carry-out is at most `1` when `carry_in <= 1`.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry_in: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry_in as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtracts `a - b - borrow_in` (with `borrow_in` in `{0, 1}`),
/// returning the low 64 bits and the borrow-out (`0` or `1`).
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow_in: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow_in as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Multiply-accumulate: `acc + a·b + carry_in`, returning the low 64
/// bits and the high 64 bits. Never overflows: the result of
/// `2^64-1 + (2^64-1)² + 2^64-1` still fits in 128 bits.
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry_in: u64) -> (u64, u64) {
    let t = acc as u128 + (a as u128) * (b as u128) + carry_in as u128;
    (t as u64, (t >> 64) as u64)
}

/// Whole-row multiply-accumulate: `acc[..a.len()] += a·b`, returning the
/// carry-out limb. This is the widened form of [`mac`] — one straight
/// lane-wise carry chain instead of per-call-site loops — shared by the
/// schoolbook multiply ([`U256::widening_mul`]), Montgomery REDC
/// ([`crate::mont`]) and the Barrett fold for the scalar field
/// ([`crate::fq256`]), and shaped so a vectorizing backend can treat the
/// row as one fused operation.
///
/// # Panics
///
/// Debug-asserts `acc.len() >= a.len()`.
#[inline(always)]
pub fn addmul_row(acc: &mut [u64], a: &[u64], b: u64) -> u64 {
    debug_assert!(acc.len() >= a.len());
    let mut carry = 0u64;
    for (dst, &src) in acc.iter_mut().zip(a.iter()) {
        (*dst, carry) = mac(*dst, src, b, carry);
    }
    carry
}

/// Propagates a carry limb into `acc`, returning the final carry-out
/// (nonzero only if the chain overflows `acc`). The tail step of
/// [`addmul_row`] when the row lands mid-array.
#[inline(always)]
pub fn propagate_carry(acc: &mut [u64], mut carry: u64) -> u64 {
    for limb in acc.iter_mut() {
        if carry == 0 {
            break;
        }
        let (sum, c) = limb.overflowing_add(carry);
        *limb = sum;
        carry = c as u64;
    }
    carry
}

/// Modular inverse of `a` for an **odd** modulus `m`, via the binary
/// extended Euclidean algorithm (shift/add only — no division, no
/// exponentiation). `a` is reduced modulo `m` first; returns `None`
/// when `a ≡ 0` or `gcd(a, m) ≠ 1`.
///
/// This is the plain-integer inverse shared by the scalar field
/// ([`crate::mont::MontgomeryDomain::inv`]) and the Solinas-form base
/// field ([`crate::fp256::Fp256::inv`]).
///
/// # Panics
///
/// Debug-asserts that `m` is odd (the halving step requires it).
pub fn inv_mod_odd(a: &U256, m: &U256) -> Option<U256> {
    debug_assert!(m.is_odd(), "inv_mod_odd requires an odd modulus");
    let a = a.rem(m);
    if a.is_zero() {
        return None;
    }
    let mut u = a;
    let mut v = *m;
    let mut x1 = U256::ONE;
    let mut x2 = U256::ZERO;
    while !u.is_zero() && u != U256::ONE && v != U256::ONE {
        while !u.is_odd() {
            u = u.shr_small(1);
            x1 = half_mod(&x1, m);
        }
        while !v.is_odd() {
            v = v.shr_small(1);
            x2 = half_mod(&x2, m);
        }
        if u >= v {
            u = u.wrapping_sub(&v);
            x1 = x1.sub_mod(&x2, m);
        } else {
            v = v.wrapping_sub(&u);
            x2 = x2.sub_mod(&x1, m);
        }
    }
    if u == U256::ONE {
        Some(x1)
    } else if v == U256::ONE {
        Some(x2)
    } else {
        // gcd(a, m) != 1: not invertible.
        None
    }
}

/// Montgomery-trick batch inversion over canonical residues of a
/// *prime* modulus, parameterized by the field's multiply and invert:
/// every invertible element in `values` is replaced by its inverse at
/// the cost of a single inversion plus `3(n-1)` multiplications. The
/// returned mask is `true` where `values[i]` now holds an inverse;
/// zeros are left zero and reported `false` (with a prime modulus every
/// nonzero element is invertible).
///
/// Shared by the Solinas base field ([`crate::fp256::Fp256::batch_inv`])
/// and the Barrett scalar field ([`crate::fq256::Fq256::batch_inv`]) so
/// the prefix-product bookkeeping lives in exactly one place. (The
/// Montgomery domain keeps its own variant: it must also handle
/// non-coprime residues under composite moduli.)
pub fn batch_inv_prime_field(
    values: &mut [U256],
    mul: impl Fn(&U256, &U256) -> U256,
    inv: impl Fn(&U256) -> Option<U256>,
) -> Vec<bool> {
    let mask: Vec<bool> = values.iter().map(|v| !v.is_zero()).collect();
    if !mask.iter().any(|&ok| ok) {
        return mask; // all zero: nothing to invert
    }
    // prefix[i] = product of nonzero values[0..=i].
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = U256::ONE;
    for (v, &ok) in values.iter().zip(&mask) {
        if ok {
            acc = mul(&acc, v);
        }
        prefix.push(acc);
    }
    let mut inv_acc = inv(&acc).expect("product of nonzero elements mod a prime");
    for i in (0..values.len()).rev() {
        if !mask[i] {
            continue;
        }
        let prev = if i == 0 { U256::ONE } else { prefix[i - 1] };
        let inv_i = mul(&inv_acc, &prev);
        inv_acc = mul(&inv_acc, &values[i]);
        values[i] = inv_i;
    }
    mask
}

/// Halves `x` modulo an odd `m`: `x/2` when even, `(x+m)/2` otherwise
/// (tracking the possible 257th carry bit of the addition).
fn half_mod(x: &U256, m: &U256) -> U256 {
    debug_assert!(x < m);
    if !x.is_odd() {
        x.shr_small(1)
    } else {
        let (sum, carry) = x.overflowing_add(m);
        let mut half = sum.shr_small(1);
        if carry {
            half.0[3] |= 1 << 63;
        }
        half
    }
}

/// A 256-bit unsigned integer stored as four little-endian `u64` limbs.
///
/// ```
/// use fabric_crypto::bigint::U256;
/// let a = U256::from_u64(7);
/// let b = U256::from_u64(5);
/// assert_eq!(a.wrapping_add(&b), U256::from_u64(12));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

/// A 512-bit product of two [`U256`] values, little-endian 8×`u64` limbs.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U512(pub [u64; 8]);

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a `U256` from a single `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a `U256` from big-endian bytes.
    ///
    /// Accepts up to 32 bytes; shorter slices are treated as left-padded
    /// with zeros (matching the interpretation of DER integers and hash
    /// outputs).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 32`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "U256::from_be_bytes: more than 32 bytes");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let off = 32 - 8 * (i + 1);
            *limb = u64::from_be_bytes(buf[off..off + 8].try_into().expect("8-byte slice"));
        }
        U256(limbs)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            let off = 32 - 8 * (i + 1);
            out[off..off + 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, up to 64 digits).
    ///
    /// # Errors
    ///
    /// Returns [`ParseUintError`] when the input is empty, longer than 64
    /// digits, or contains a non-hex character.
    pub fn from_hex(s: &str) -> Result<Self, ParseUintError> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        if s.is_empty() || s.len() > 64 {
            return Err(ParseUintError { input_len: s.len() });
        }
        let mut v = U256::ZERO;
        for c in s.chars() {
            let d = c
                .to_digit(16)
                .ok_or(ParseUintError { input_len: s.len() })? as u64;
            v = v.shl_small(4);
            v.0[0] |= d;
        }
        Ok(v)
    }

    /// Formats as a 64-digit lowercase hex string.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.to_be_bytes() {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Returns the value of bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Addition returning the sum and the carry-out.
    #[allow(clippy::needless_range_loop)] // lock-step carry propagation
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            (out[i], carry) = adc(self.0[i], rhs.0[i], carry);
        }
        (U256(out), carry != 0)
    }

    /// Wrapping (mod `2^256`) addition.
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Subtraction returning the difference and the borrow-out.
    #[allow(clippy::needless_range_loop)] // lock-step carry propagation
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for i in 0..4 {
            (out[i], borrow) = sbb(self.0[i], rhs.0[i], borrow);
        }
        (U256(out), borrow != 0)
    }

    /// Wrapping (mod `2^256`) subtraction.
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Full 256×256 → 512-bit schoolbook multiplication, one
    /// [`addmul_row`] carry chain per multiplier limb.
    pub fn widening_mul(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..4 {
            out[i + 4] = addmul_row(&mut out[i..i + 4], &rhs.0, self.0[i]);
        }
        U512(out)
    }

    /// Full 256-bit squaring, ~35% cheaper than [`Self::widening_mul`]
    /// with itself: each cross product `a_i·a_j` (`i < j`) is computed
    /// once and doubled instead of twice.
    pub fn widening_sqr(&self) -> U512 {
        let a = &self.0;
        let mut out = [0u64; 8];
        // Off-diagonal products, each taken once.
        for i in 0..4 {
            let mut carry = 0u128;
            for j in (i + 1)..4 {
                let cur = out[i + j] as u128 + (a[i] as u128) * (a[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        // Double them (shift left by one across the full 512 bits).
        let mut carry = 0u64;
        for limb in out.iter_mut() {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        // Add the diagonal squares.
        let mut carry = 0u128;
        for i in 0..4 {
            let sq = (a[i] as u128) * (a[i] as u128);
            let lo = out[2 * i] as u128 + (sq as u64 as u128) + carry;
            out[2 * i] = lo as u64;
            let hi = out[2 * i + 1] as u128 + (sq >> 64) + (lo >> 64);
            out[2 * i + 1] = hi as u64;
            carry = hi >> 64;
        }
        debug_assert_eq!(carry, 0);
        U512(out)
    }

    /// Reduction modulo `m` for values known to be `< 2m`: at most one
    /// conditional subtraction, instead of the bit-serial long division
    /// in [`Self::rem`]. This covers the ECDSA hot cases — a 256-bit
    /// digest or field element reduced modulo `n` (`n > 2^255`, so any
    /// 256-bit value is `< 2n`).
    pub fn reduce_once(&self, m: &U256) -> U256 {
        debug_assert!(!m.is_zero());
        if self >= m {
            self.wrapping_sub(m)
        } else {
            *self
        }
    }

    /// Left shift by `k < 64` bits, discarding overflow.
    pub fn shl_small(&self, k: u32) -> U256 {
        if k == 0 {
            return *self;
        }
        debug_assert!(k < 64);
        let mut out = [0u64; 4];
        for i in (0..4).rev() {
            out[i] = self.0[i] << k;
            if i > 0 {
                out[i] |= self.0[i - 1] >> (64 - k);
            }
        }
        U256(out)
    }

    /// Right shift by `k < 64` bits.
    #[allow(clippy::needless_range_loop)] // lock-step carry propagation
    pub fn shr_small(&self, k: u32) -> U256 {
        if k == 0 {
            return *self;
        }
        debug_assert!(k < 64);
        let mut out = [0u64; 4];
        for i in 0..4 {
            out[i] = self.0[i] >> k;
            if i < 3 {
                out[i] |= self.0[i + 1] << (64 - k);
            }
        }
        U256(out)
    }

    /// Modular addition: `(self + rhs) mod m`.
    ///
    /// Requires `self < m` and `rhs < m`.
    pub fn add_mod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || &sum >= m {
            sum.wrapping_sub(m)
        } else {
            sum
        }
    }

    /// Modular subtraction: `(self - rhs) mod m`.
    ///
    /// Requires `self < m` and `rhs < m`.
    pub fn sub_mod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m);
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.wrapping_add(m)
        } else {
            diff
        }
    }

    /// Remainder of `self` divided by `m` via binary long division.
    ///
    /// Used only on cold paths (reduction of hash outputs, Montgomery
    /// constant setup); hot-path modular multiplication lives in
    /// [`crate::mont`].
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        assert!(!m.is_zero(), "division by zero");
        if self < m {
            return *self;
        }
        U512::from_u256(self).rem(m)
    }
}

impl U512 {
    /// Widens a [`U256`] into the low half of a [`U512`].
    pub fn from_u256(v: &U256) -> Self {
        U512([v.0[0], v.0[1], v.0[2], v.0[3], 0, 0, 0, 0])
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&l| l == 0)
    }

    /// Returns the value of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 512`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 512, "bit index out of range");
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return 64 * i + (64 - self.0[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Remainder of `self` divided by a 256-bit modulus, by shift-subtract
    /// long division. `O(bits)` but only used on cold paths.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        assert!(!m.is_zero(), "division by zero");
        let mlen = m.bit_len();
        let len = self.bit_len();
        if len == 0 {
            return U256::ZERO;
        }
        let mut r = U256::ZERO;
        for i in (0..len).rev() {
            // r = r*2 + bit(i); r always < 2m <= 2^257 so track the carry.
            let carry_out = r.bit(255);
            r = r.shl_small(1);
            if self.bit(i) {
                r.0[0] |= 1;
            }
            if carry_out || &r >= m {
                r = r.wrapping_sub(m);
            }
            debug_assert!(&r < m || mlen == 256);
        }
        r
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{})", self.to_hex())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(")?;
        for l in self.0.iter().rev() {
            write!(f, "{l:016x}")?;
        }
        write!(f, ")")
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

/// Error returned when parsing a hex string into a [`U256`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUintError {
    input_len: usize,
}

impl fmt::Display for ParseUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid 256-bit hex integer (length {} after whitespace removal)",
            self.input_len
        )
    }
}

impl std::error::Error for ParseUintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_hex() {
        let v = U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .unwrap();
        assert_eq!(
            v.to_hex(),
            "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
        );
    }

    #[test]
    fn hex_rejects_garbage() {
        assert!(U256::from_hex("").is_err());
        assert!(U256::from_hex("zz").is_err());
        assert!(U256::from_hex(&"f".repeat(65)).is_err());
    }

    #[test]
    fn be_bytes_roundtrip_short_input() {
        let v = U256::from_be_bytes(&[0x12, 0x34]);
        assert_eq!(v, U256::from_u64(0x1234));
        let be = v.to_be_bytes();
        assert_eq!(&be[30..], &[0x12, 0x34]);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = U256([u64::MAX, u64::MAX, 0, 0]);
        let b = U256::ONE;
        let (s, c) = a.overflowing_add(&b);
        assert!(!c);
        assert_eq!(s, U256([0, 0, 1, 0]));
    }

    #[test]
    fn add_overflow_is_reported() {
        let (s, c) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(c);
        assert!(s.is_zero());
    }

    #[test]
    fn sub_with_borrow() {
        let a = U256([0, 0, 1, 0]);
        let b = U256::ONE;
        let (d, bor) = a.overflowing_sub(&b);
        assert!(!bor);
        assert_eq!(d, U256([u64::MAX, u64::MAX, 0, 0]));
        let (_, bor) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(bor);
    }

    #[test]
    fn widening_mul_simple() {
        let a = U256::from_u64(u64::MAX);
        let prod = a.widening_mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(prod.0[0], 1);
        assert_eq!(prod.0[1], u64::MAX - 1);
        assert_eq!(prod.0[2], 0);
    }

    #[test]
    fn rem_matches_small_values() {
        let a = U256::from_u64(1_000_000_007);
        let m = U256::from_u64(97);
        assert_eq!(a.rem(&m), U256::from_u64(1_000_000_007 % 97));
    }

    #[test]
    fn rem_512() {
        // (2^256) mod 97: compute via U512
        let mut v = U512::default();
        v.0[4] = 1; // 2^256
        let m = U256::from_u64(97);
        // 2^256 mod 97 == pow_mod(2,256,97)
        let mut expect = 1u64;
        for _ in 0..256 {
            expect = expect * 2 % 97;
        }
        assert_eq!(v.rem(&m), U256::from_u64(expect));
    }

    #[test]
    fn bit_len_and_bits() {
        assert_eq!(U256::ZERO.bit_len(), 0);
        assert_eq!(U256::ONE.bit_len(), 1);
        assert_eq!(U256::from_u64(0x8000_0000_0000_0000).bit_len(), 64);
        let v = U256([0, 0, 0, 1]);
        assert_eq!(v.bit_len(), 193);
        assert!(v.bit(192));
        assert!(!v.bit(191));
    }

    #[test]
    fn shifts() {
        let v = U256::from_u64(0xff);
        assert_eq!(v.shl_small(8), U256::from_u64(0xff00));
        assert_eq!(v.shl_small(8).shr_small(8), v);
        // shift across limb boundary
        let v = U256([1 << 63, 0, 0, 0]);
        assert_eq!(v.shl_small(1), U256([0, 1, 0, 0]));
    }

    #[test]
    fn mod_add_sub() {
        let m = U256::from_u64(1000);
        let a = U256::from_u64(700);
        let b = U256::from_u64(600);
        assert_eq!(a.add_mod(&b, &m), U256::from_u64(300));
        assert_eq!(b.sub_mod(&a, &m), U256::from_u64(900));
    }

    #[test]
    fn carry_chain_helpers() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        // mac at the extreme: acc + a*b + carry fits in 128 bits.
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        let expect = u64::MAX as u128 + (u64::MAX as u128) * (u64::MAX as u128) + u64::MAX as u128;
        assert_eq!(lo, expect as u64);
        assert_eq!(hi, (expect >> 64) as u64);
    }

    #[test]
    fn inv_mod_odd_small_cases() {
        let m = U256::from_u64(97);
        for a in 1u64..97 {
            let inv = inv_mod_odd(&U256::from_u64(a), &m).unwrap();
            let prod = U256::from_u64(a).widening_mul(&inv).rem(&m);
            assert_eq!(prod, U256::ONE, "a={a}");
        }
        assert_eq!(inv_mod_odd(&U256::ZERO, &m), None);
        // Composite modulus: shared factors are not invertible.
        let m = U256::from_u64(105);
        assert_eq!(inv_mod_odd(&U256::from_u64(21), &m), None);
        assert!(inv_mod_odd(&U256::from_u64(11), &m).is_some());
    }

    #[test]
    fn ordering() {
        let a = U256([0, 0, 0, 1]);
        let b = U256([u64::MAX, u64::MAX, u64::MAX, 0]);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
