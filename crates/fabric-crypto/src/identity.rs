//! X.509-lite certificates, node identities and the membership service.
//!
//! Every Fabric node has an identity issued by its organization's
//! certificate authority; each identity is "essentially an X.509
//! certificate with a size of ∼860 bytes" (paper §3.2), and these
//! certificates make up at least 73% of a marshaled block — the redundancy
//! the BMac protocol removes. This module provides:
//!
//! * [`Certificate`] — a self-describing certificate of the same size
//!   class as Fabric's PEM-encoded X.509 material, carrying a real P-256
//!   public key and a real CA signature chain;
//! * [`NodeId`] — the paper's 16-bit encoded id (8-bit org, 4-bit role,
//!   4-bit sequence number), the compressed stand-in used on the wire;
//! * [`Identity`] / [`SigningIdentity`] — certificate + key material;
//! * [`Msp`] — the membership service provider: per-org CAs, identity
//!   issuance and certificate validation.

use std::collections::HashMap;
use std::fmt;

use crate::ecdsa::{EcdsaError, Signature, SigningKey, VerifyingKey};
use crate::sha256::sha256;

/// The predefined Fabric roles encoded in the 4-bit role field of a
/// [`NodeId`] (paper §3.2: "orderer, admin, peer or client").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// Ordering service node.
    Orderer,
    /// Organization administrator.
    Admin,
    /// Peer node (endorser or validator).
    Peer,
    /// Application client.
    Client,
}

impl Role {
    /// The 4-bit wire encoding.
    pub fn code(self) -> u8 {
        match self {
            Role::Orderer => 0,
            Role::Admin => 1,
            Role::Peer => 2,
            Role::Client => 3,
        }
    }

    /// Decodes the 4-bit wire value.
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::UnknownRole`] for values above 3.
    pub fn from_code(code: u8) -> Result<Self, IdentityError> {
        match code {
            0 => Ok(Role::Orderer),
            1 => Ok(Role::Admin),
            2 => Ok(Role::Peer),
            3 => Ok(Role::Client),
            other => Err(IdentityError::UnknownRole(other)),
        }
    }

    /// All roles, in wire-code order.
    pub const ALL: [Role; 4] = [Role::Orderer, Role::Admin, Role::Peer, Role::Client];
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Orderer => write!(f, "orderer"),
            Role::Admin => write!(f, "admin"),
            Role::Peer => write!(f, "peer"),
            Role::Client => write!(f, "client"),
        }
    }
}

/// The paper's 16-bit encoded identity: 8-bit organization index, 4-bit
/// role, 4-bit per-org node sequence number. "This scheme results in
/// unique ids across all the nodes of a Fabric network" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Organization index (0-based).
    pub org: u8,
    /// Node role.
    pub role: Role,
    /// Sequence number of the node within its organization and role
    /// (e.g. 0 for `Org1.Peer0`). Must fit in 4 bits.
    pub seq: u8,
}

impl NodeId {
    /// Builds an id, checking the 4-bit sequence constraint.
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::SequenceOverflow`] if `seq > 15`.
    pub fn new(org: u8, role: Role, seq: u8) -> Result<Self, IdentityError> {
        if seq > 0x0f {
            return Err(IdentityError::SequenceOverflow(seq));
        }
        Ok(NodeId { org, role, seq })
    }

    /// The 16-bit wire encoding: `org << 8 | role << 4 | seq`.
    pub fn encode(&self) -> u16 {
        ((self.org as u16) << 8) | ((self.role.code() as u16) << 4) | (self.seq as u16)
    }

    /// Decodes the 16-bit wire form.
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::UnknownRole`] for a bad role nibble.
    pub fn decode(raw: u16) -> Result<Self, IdentityError> {
        Ok(NodeId {
            org: (raw >> 8) as u8,
            role: Role::from_code(((raw >> 4) & 0x0f) as u8)?,
            seq: (raw & 0x0f) as u8,
        })
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Org{}.{}{}",
            self.org + 1,
            capitalized(self.role),
            self.seq
        )
    }
}

fn capitalized(role: Role) -> &'static str {
    match role {
        Role::Orderer => "Orderer",
        Role::Admin => "Admin",
        Role::Peer => "Peer",
        Role::Client => "Client",
    }
}

/// An X.509-lite certificate.
///
/// Structure: subject (org name + node id + common name), issuer name,
/// serial, validity window, SEC1 public key, an extensions blob (padding
/// the encoding into the ~860-byte class of real Fabric PEM certificates),
/// and the issuing CA's ECDSA signature over everything above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Organization name, e.g. `"Org1MSP"`.
    pub org_name: String,
    /// The subject's compact node id.
    pub node_id: NodeId,
    /// Subject common name, e.g. `"peer0.org1.example.com"`.
    pub common_name: String,
    /// Issuer common name, e.g. `"ca.org1.example.com"`.
    pub issuer: String,
    /// Certificate serial number.
    pub serial: u64,
    /// Not-before timestamp (seconds).
    pub not_before: u64,
    /// Not-after timestamp (seconds).
    pub not_after: u64,
    /// Subject public key, SEC1 uncompressed.
    pub public_key: VerifyingKey,
    /// Opaque extensions (key usage, SAN, authority key id in real X.509).
    pub extensions: Vec<u8>,
    /// CA signature over the TBS ("to-be-signed") encoding.
    pub signature: Signature,
}

/// Default extensions-blob size chosen so that [`Certificate::to_bytes`]
/// lands near the ~860-byte certificate size the paper measured.
pub const DEFAULT_EXTENSIONS_LEN: usize = 600;

impl Certificate {
    /// The to-be-signed serialization (everything except the signature).
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.extensions.len());
        write_str(&mut out, &self.org_name);
        out.extend_from_slice(&self.node_id.encode().to_be_bytes());
        write_str(&mut out, &self.common_name);
        write_str(&mut out, &self.issuer);
        out.extend_from_slice(&self.serial.to_be_bytes());
        out.extend_from_slice(&self.not_before.to_be_bytes());
        out.extend_from_slice(&self.not_after.to_be_bytes());
        out.extend_from_slice(&self.public_key.to_sec1_bytes());
        write_bytes(&mut out, &self.extensions);
        out
    }

    /// The full wire serialization (TBS + DER signature).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.tbs_bytes();
        let der = crate::der::encode_signature(&self.signature);
        write_bytes(&mut out, &der);
        out
    }

    /// Parses the wire serialization.
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::Malformed`] on structural problems and the
    /// underlying key/signature errors otherwise.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IdentityError> {
        let mut cur = Reader { bytes, pos: 0 };
        let org_name = cur.read_str()?;
        let node_id = NodeId::decode(cur.read_u16()?)?;
        let common_name = cur.read_str()?;
        let issuer = cur.read_str()?;
        let serial = cur.read_u64()?;
        let not_before = cur.read_u64()?;
        let not_after = cur.read_u64()?;
        let key_bytes = cur.read_exact(65)?;
        let public_key = VerifyingKey::from_sec1_bytes(key_bytes).map_err(IdentityError::BadKey)?;
        let extensions = cur.read_bytes()?.to_vec();
        let der = cur.read_bytes()?;
        let signature = crate::der::decode_signature(der)
            .map_err(|_| IdentityError::Malformed("bad DER signature"))?;
        if cur.pos != bytes.len() {
            return Err(IdentityError::Malformed("trailing bytes"));
        }
        Ok(Certificate {
            org_name,
            node_id,
            common_name,
            issuer,
            serial,
            not_before,
            not_after,
            public_key,
            extensions,
            signature,
        })
    }

    /// A stable digest identifying this certificate (used as the identity
    /// cache key by the BMac protocol).
    pub fn fingerprint(&self) -> [u8; 32] {
        sha256(&self.to_bytes())
    }

    /// Verifies the CA signature with the given CA public key.
    ///
    /// # Errors
    ///
    /// Propagates [`EcdsaError::InvalidSignature`] when the chain check
    /// fails.
    pub fn verify_issued_by(&self, ca: &VerifyingKey) -> Result<(), EcdsaError> {
        ca.verify(&self.tbs_bytes(), &self.signature)
    }
}

/// A verifiable identity: a certificate whose private key is *not* held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identity {
    /// The identity's certificate.
    pub certificate: Certificate,
}

impl Identity {
    /// The compact node id.
    pub fn node_id(&self) -> NodeId {
        self.certificate.node_id
    }

    /// Verifies a signature made by this identity.
    ///
    /// # Errors
    ///
    /// Propagates verification failure from [`VerifyingKey::verify`].
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), EcdsaError> {
        self.certificate.public_key.verify(message, signature)
    }
}

/// An identity plus its private key: can sign.
#[derive(Debug, Clone)]
pub struct SigningIdentity {
    /// The public identity.
    pub identity: Identity,
    key: SigningKey,
}

impl SigningIdentity {
    /// Signs a message with this identity's key.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.key.sign(message)
    }

    /// The compact node id.
    pub fn node_id(&self) -> NodeId {
        self.identity.node_id()
    }

    /// The certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.identity.certificate
    }
}

/// A per-organization certificate authority.
#[derive(Debug)]
pub struct CertificateAuthority {
    org_index: u8,
    org_name: String,
    key: SigningKey,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Creates the CA for organization `org_index` (0-based) with a
    /// deterministic key derived from the org name.
    pub fn new(org_index: u8) -> Self {
        let org_name = format!("Org{}MSP", org_index + 1);
        let key = SigningKey::from_seed(format!("ca.{org_name}").as_bytes());
        CertificateAuthority {
            org_index,
            org_name,
            key,
            next_serial: 1,
        }
    }

    /// The CA's verification key (trust anchor for the org).
    pub fn public_key(&self) -> &VerifyingKey {
        self.key.verifying_key()
    }

    /// The organization name, e.g. `"Org1MSP"`.
    pub fn org_name(&self) -> &str {
        &self.org_name
    }

    /// Issues a signing identity for a node of this organization.
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::SequenceOverflow`] for `seq > 15` and
    /// [`IdentityError::WrongOrg`] if the caller passes a mismatched org.
    pub fn issue(&mut self, role: Role, seq: u8) -> Result<SigningIdentity, IdentityError> {
        let node_id = NodeId::new(self.org_index, role, seq)?;
        let key = SigningKey::from_seed(format!("{}.{}{}", self.org_name, role, seq).as_bytes());
        let common_name = format!("{}{}.org{}.example.com", role, seq, self.org_index + 1);
        // Deterministic pseudo-random extensions blob: same identity always
        // serializes identically, so certificate fingerprints are stable.
        let mut extensions = Vec::with_capacity(DEFAULT_EXTENSIONS_LEN);
        let mut state = sha256(common_name.as_bytes());
        while extensions.len() < DEFAULT_EXTENSIONS_LEN {
            extensions.extend_from_slice(&state);
            state = sha256(&state);
        }
        extensions.truncate(DEFAULT_EXTENSIONS_LEN);
        let mut cert = Certificate {
            org_name: self.org_name.clone(),
            node_id,
            common_name,
            issuer: format!("ca.org{}.example.com", self.org_index + 1),
            serial: self.next_serial,
            not_before: 1_600_000_000,
            not_after: 1_900_000_000,
            public_key: key.verifying_key().clone(),
            extensions,
            signature: Signature {
                r: crate::bigint::U256::ONE,
                s: crate::bigint::U256::ONE,
            },
        };
        self.next_serial += 1;
        cert.signature = self.key.sign(&cert.tbs_bytes());
        Ok(SigningIdentity {
            identity: Identity { certificate: cert },
            key,
        })
    }
}

/// The membership service provider: all organizations' CAs plus a registry
/// of issued identities, as configured from the BMac YAML file (§3.5).
#[derive(Debug, Default)]
pub struct Msp {
    cas: Vec<CertificateAuthority>,
    by_id: HashMap<NodeId, Identity>,
}

impl Msp {
    /// Creates an MSP with `num_orgs` organizations.
    pub fn new(num_orgs: u8) -> Self {
        let cas = (0..num_orgs).map(CertificateAuthority::new).collect();
        Msp {
            cas,
            by_id: HashMap::new(),
        }
    }

    /// Number of organizations.
    pub fn num_orgs(&self) -> u8 {
        self.cas.len() as u8
    }

    /// Issues (and registers) an identity.
    ///
    /// # Errors
    ///
    /// [`IdentityError::WrongOrg`] for an unknown org, plus the
    /// [`CertificateAuthority::issue`] error cases.
    pub fn issue(
        &mut self,
        org: u8,
        role: Role,
        seq: u8,
    ) -> Result<SigningIdentity, IdentityError> {
        let ca = self
            .cas
            .get_mut(org as usize)
            .ok_or(IdentityError::WrongOrg(org))?;
        let signing = ca.issue(role, seq)?;
        self.by_id
            .insert(signing.node_id(), signing.identity.clone());
        Ok(signing)
    }

    /// Looks up a registered identity by compact id.
    pub fn identity(&self, id: NodeId) -> Option<&Identity> {
        self.by_id.get(&id)
    }

    /// Validates that a certificate chains to the CA of its organization.
    ///
    /// # Errors
    ///
    /// [`IdentityError::WrongOrg`] for an unknown org index, or
    /// [`IdentityError::BadChain`] when the CA signature fails.
    pub fn validate(&self, cert: &Certificate) -> Result<(), IdentityError> {
        let ca = self
            .cas
            .get(cert.node_id.org as usize)
            .ok_or(IdentityError::WrongOrg(cert.node_id.org))?;
        cert.verify_issued_by(ca.public_key())
            .map_err(|_| IdentityError::BadChain)
    }

    /// All registered identities.
    pub fn identities(&self) -> impl Iterator<Item = &Identity> {
        self.by_id.values()
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_bytes(out, s.as_bytes());
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn read_exact(&mut self, n: usize) -> Result<&'a [u8], IdentityError> {
        if self.pos + n > self.bytes.len() {
            return Err(IdentityError::Malformed("truncated"));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn read_u16(&mut self) -> Result<u16, IdentityError> {
        let b = self.read_exact(2)?;
        Ok(u16::from_be_bytes(
            b.try_into().expect("read_exact(2) returned 2 bytes"),
        ))
    }

    fn read_u64(&mut self) -> Result<u64, IdentityError> {
        let b = self.read_exact(8)?;
        Ok(u64::from_be_bytes(
            b.try_into().expect("read_exact(8) returned 8 bytes"),
        ))
    }

    fn read_bytes(&mut self) -> Result<&'a [u8], IdentityError> {
        let len = u32::from_be_bytes(
            self.read_exact(4)?
                .try_into()
                .expect("read_exact(4) returned 4 bytes"),
        ) as usize;
        self.read_exact(len)
    }

    fn read_str(&mut self) -> Result<String, IdentityError> {
        let b = self.read_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| IdentityError::Malformed("bad utf-8"))
    }
}

/// Errors from identity handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentityError {
    /// Role nibble outside 0..=3.
    UnknownRole(u8),
    /// Node sequence number does not fit in 4 bits.
    SequenceOverflow(u8),
    /// Organization index not present in the MSP.
    WrongOrg(u8),
    /// Certificate failed to chain to its org CA.
    BadChain,
    /// Embedded public key was invalid.
    BadKey(EcdsaError),
    /// Structural decoding failure.
    Malformed(&'static str),
}

impl fmt::Display for IdentityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentityError::UnknownRole(c) => write!(f, "unknown role code {c}"),
            IdentityError::SequenceOverflow(s) => {
                write!(f, "node sequence {s} does not fit in 4 bits")
            }
            IdentityError::WrongOrg(o) => write!(f, "organization index {o} not in MSP"),
            IdentityError::BadChain => write!(f, "certificate does not chain to its org CA"),
            IdentityError::BadKey(e) => write!(f, "invalid certificate key: {e}"),
            IdentityError::Malformed(why) => write!(f, "malformed certificate encoding: {why}"),
        }
    }
}

impl std::error::Error for IdentityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_encoding_matches_paper_scheme() {
        // Org1.Peer0 => org index 0, role peer (2), seq 0
        let id = NodeId::new(0, Role::Peer, 0).unwrap();
        assert_eq!(id.encode(), 0x0020);
        let id = NodeId::new(3, Role::Client, 5).unwrap();
        assert_eq!(id.encode(), 0x0335);
        assert_eq!(NodeId::decode(0x0335).unwrap(), id);
    }

    #[test]
    fn node_id_rejects_wide_seq() {
        assert_eq!(
            NodeId::new(0, Role::Peer, 16).unwrap_err(),
            IdentityError::SequenceOverflow(16)
        );
    }

    #[test]
    fn node_id_display() {
        let id = NodeId::new(0, Role::Peer, 0).unwrap();
        assert_eq!(id.to_string(), "Org1.Peer0");
    }

    #[test]
    fn certificate_size_is_in_the_860_byte_class() {
        let mut ca = CertificateAuthority::new(0);
        let ident = ca.issue(Role::Peer, 0).unwrap();
        let size = ident.certificate().to_bytes().len();
        assert!(
            (800..=920).contains(&size),
            "expected ~860-byte certificate, got {size}"
        );
    }

    #[test]
    fn certificate_roundtrip() {
        let mut ca = CertificateAuthority::new(1);
        let ident = ca.issue(Role::Orderer, 0).unwrap();
        let bytes = ident.certificate().to_bytes();
        let parsed = Certificate::from_bytes(&bytes).unwrap();
        assert_eq!(&parsed, ident.certificate());
    }

    #[test]
    fn certificate_rejects_corruption() {
        let mut ca = CertificateAuthority::new(0);
        let ident = ca.issue(Role::Peer, 1).unwrap();
        let bytes = ident.certificate().to_bytes();
        // Truncations must all fail cleanly.
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(Certificate::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn chain_verification() {
        let mut ca = CertificateAuthority::new(0);
        let ident = ca.issue(Role::Peer, 0).unwrap();
        assert!(ident
            .certificate()
            .verify_issued_by(ca.public_key())
            .is_ok());
        let mut other = CertificateAuthority::new(1);
        let _ = other.issue(Role::Peer, 0);
        assert!(ident
            .certificate()
            .verify_issued_by(other.public_key())
            .is_err());
    }

    #[test]
    fn msp_issue_and_validate() {
        let mut msp = Msp::new(2);
        let peer = msp.issue(0, Role::Peer, 0).unwrap();
        assert!(msp.validate(peer.certificate()).is_ok());
        assert!(msp.identity(peer.node_id()).is_some());
        assert!(msp.issue(5, Role::Peer, 0).is_err());
    }

    #[test]
    fn msp_detects_forged_certificates() {
        let mut msp = Msp::new(2);
        let peer = msp.issue(0, Role::Peer, 0).unwrap();
        let mut forged = peer.certificate().clone();
        forged.common_name = "evil.example.com".into();
        assert_eq!(msp.validate(&forged), Err(IdentityError::BadChain));
    }

    #[test]
    fn signing_identity_signs_verifiably() {
        let mut msp = Msp::new(1);
        let client = msp.issue(0, Role::Client, 0).unwrap();
        let sig = client.sign(b"proposal");
        assert!(client.identity.verify(b"proposal", &sig).is_ok());
        assert!(client.identity.verify(b"other", &sig).is_err());
    }

    #[test]
    fn deterministic_issuance() {
        let mut msp1 = Msp::new(1);
        let mut msp2 = Msp::new(1);
        let a = msp1.issue(0, Role::Peer, 0).unwrap();
        let b = msp2.issue(0, Role::Peer, 0).unwrap();
        assert_eq!(a.certificate().fingerprint(), b.certificate().fingerprint());
    }

    #[test]
    fn fingerprints_unique_across_nodes() {
        let mut msp = Msp::new(2);
        let a = msp.issue(0, Role::Peer, 0).unwrap();
        let b = msp.issue(0, Role::Peer, 1).unwrap();
        let c = msp.issue(1, Role::Peer, 0).unwrap();
        let fps = [
            a.certificate().fingerprint(),
            b.certificate().fingerprint(),
            c.certificate().fingerprint(),
        ];
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[0], fps[2]);
        assert_ne!(fps[1], fps[2]);
    }
}
