//! Montgomery-domain modular arithmetic for odd 256-bit moduli.
//!
//! Both the P-256 field prime `p` and the group order `n` are odd, so a
//! single generic Montgomery implementation serves field arithmetic (point
//! operations) and scalar arithmetic (ECDSA). Montgomery multiplication is
//! self-contained — no precomputed reduction identities to mistranscribe —
//! and runs in a few dozen nanoseconds per multiply.
//!
//! The only non-trivial setup constants, `R mod m` and `R² mod m`
//! (`R = 2^256`), are derived at construction time with the slow-but-sure
//! binary division from [`crate::bigint`], so a [`MontgomeryDomain`] can be
//! built for any odd modulus without external tables.

use crate::bigint::{U256, U512};

/// Precomputed context for Montgomery arithmetic modulo an odd `m < 2^256`.
///
/// Values handled by [`MontgomeryDomain::mul`]/[`MontgomeryDomain::pow`]
/// are *Montgomery residues* (`x·R mod m`); convert with
/// [`to_mont`](Self::to_mont) / [`from_mont`](Self::from_mont).
///
/// ```
/// use fabric_crypto::bigint::U256;
/// use fabric_crypto::mont::MontgomeryDomain;
/// let m = U256::from_u64(1_000_003);
/// let dom = MontgomeryDomain::new(m);
/// let a = dom.to_mont(&U256::from_u64(1234));
/// let b = dom.to_mont(&U256::from_u64(5678));
/// let ab = dom.from_mont(&dom.mul(&a, &b));
/// assert_eq!(ab, U256::from_u64(1234 * 5678 % 1_000_003));
/// ```
#[derive(Debug, Clone)]
pub struct MontgomeryDomain {
    m: U256,
    /// `-m^-1 mod 2^64`, the REDC constant.
    n0: u64,
    /// `R mod m` — the Montgomery form of 1.
    r1: U256,
    /// `R² mod m` — multiplier to enter the domain.
    r2: U256,
}

impl MontgomeryDomain {
    /// Builds a domain for the odd modulus `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is even or zero (Montgomery reduction requires
    /// `gcd(m, 2^256) = 1`).
    pub fn new(m: U256) -> Self {
        assert!(m.is_odd(), "Montgomery modulus must be odd");
        // n0 = -m^{-1} mod 2^64 via Newton iteration on the low limb:
        // x_{k+1} = x_k * (2 - m*x_k), doubling correct bits each step.
        let m0 = m.0[0];
        let mut inv = m0; // correct to 3 bits for odd m
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0 = inv.wrapping_neg();

        // R mod m = (2^256 - m) mod m because 2^255 < m is not guaranteed;
        // use the generic 512-bit remainder instead (cold path, fine).
        let mut r = U512::default();
        r.0[4] = 1; // 2^256
        let r1 = r.rem(&m);
        // R^2 mod m by doubling R mod m 256 times.
        let mut r2 = r1;
        for _ in 0..256 {
            r2 = r2.add_mod(&r2, &m);
        }
        MontgomeryDomain { m, n0, r1, r2 }
    }

    /// The modulus this domain reduces by.
    pub fn modulus(&self) -> &U256 {
        &self.m
    }

    /// Montgomery form of `1`.
    pub fn one(&self) -> U256 {
        self.r1
    }

    /// Converts `x < m` into the Montgomery domain (`x·R mod m`).
    pub fn to_mont(&self, x: &U256) -> U256 {
        debug_assert!(x < &self.m);
        self.mul(x, &self.r2)
    }

    /// Converts a Montgomery residue back to a normal integer.
    pub fn from_mont(&self, x: &U256) -> U256 {
        self.redc(&U512::from_u256(x))
    }

    /// Montgomery multiplication: returns `a·b·R^-1 mod m`.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        self.redc(&a.widening_mul(b))
    }

    /// Montgomery squaring.
    pub fn sqr(&self, a: &U256) -> U256 {
        self.mul(a, a)
    }

    /// Modular addition of two residues.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        a.add_mod(b, &self.m)
    }

    /// Modular subtraction of two residues.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        a.sub_mod(b, &self.m)
    }

    /// Modular negation of a residue.
    pub fn neg(&self, a: &U256) -> U256 {
        if a.is_zero() {
            U256::ZERO
        } else {
            self.m.wrapping_sub(a)
        }
    }

    /// Exponentiation of a Montgomery residue by a plain integer exponent,
    /// left-to-right binary.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let mut acc = self.one();
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Multiplicative inverse of a residue for a *prime* modulus, via
    /// Fermat's little theorem (`a^(m-2)`).
    ///
    /// Returns `None` for the zero residue.
    pub fn inv_prime(&self, a: &U256) -> Option<U256> {
        if a.is_zero() {
            return None;
        }
        let exp = self.m.wrapping_sub(&U256::from_u64(2));
        Some(self.pow(a, &exp))
    }

    /// Montgomery reduction (REDC) of a 512-bit value `t < m·R`:
    /// returns `t·R^-1 mod m`.
    fn redc(&self, t: &U512) -> U256 {
        let m = &self.m.0;
        // Work array with one extra carry slot.
        let mut a = [0u64; 9];
        a[..8].copy_from_slice(&t.0);
        for i in 0..4 {
            let u = a[i].wrapping_mul(self.n0);
            // a += u * m << (64*i)
            let mut carry = 0u128;
            for j in 0..4 {
                let cur = a[i + j] as u128 + (u as u128) * (m[j] as u128) + carry;
                a[i + j] = cur as u64;
                carry = cur >> 64;
            }
            // propagate carry upward
            let mut k = i + 4;
            while carry != 0 {
                let cur = a[k] as u128 + carry;
                a[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut out = U256([a[4], a[5], a[6], a[7]]);
        // At most one final subtraction (a[8] can hold a carry bit).
        if a[8] != 0 || out >= self.m {
            out = out.wrapping_sub(&self.m);
        }
        debug_assert!(out < self.m);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p256_prime() -> U256 {
        U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .unwrap()
    }

    #[test]
    fn roundtrip_small_modulus() {
        let dom = MontgomeryDomain::new(U256::from_u64(1_000_003));
        for x in [0u64, 1, 2, 999_999, 1_000_002] {
            let v = U256::from_u64(x);
            assert_eq!(dom.from_mont(&dom.to_mont(&v)), v, "x={x}");
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let m = 0xffff_ffff_ffff_fc5fu64; // odd 64-bit modulus
        let dom = MontgomeryDomain::new(U256::from_u64(m));
        let cases = [(3u64, 5u64), (m - 1, m - 1), (12345, 987654321), (1, m - 2)];
        for (a, b) in cases {
            let am = dom.to_mont(&U256::from_u64(a));
            let bm = dom.to_mont(&U256::from_u64(b));
            let got = dom.from_mont(&dom.mul(&am, &bm));
            let expect = ((a as u128 * b as u128) % m as u128) as u64;
            assert_eq!(got, U256::from_u64(expect), "{a}*{b} mod {m}");
        }
    }

    #[test]
    fn pow_matches_reference() {
        let m = 1_000_003u64;
        let dom = MontgomeryDomain::new(U256::from_u64(m));
        let base = dom.to_mont(&U256::from_u64(7));
        let got = dom.from_mont(&dom.pow(&base, &U256::from_u64(100)));
        let mut expect = 1u64;
        for _ in 0..100 {
            expect = expect * 7 % m;
        }
        assert_eq!(got, U256::from_u64(expect));
    }

    #[test]
    fn inverse_on_p256_prime() {
        let dom = MontgomeryDomain::new(p256_prime());
        let x = dom.to_mont(&U256::from_u64(0xdead_beef));
        let xi = dom.inv_prime(&x).unwrap();
        assert_eq!(dom.from_mont(&dom.mul(&x, &xi)), U256::ONE);
        assert_eq!(dom.inv_prime(&U256::ZERO), None);
    }

    #[test]
    fn one_is_identity() {
        let dom = MontgomeryDomain::new(p256_prime());
        let x = dom.to_mont(&U256::from_u64(42));
        assert_eq!(dom.mul(&x, &dom.one()), x);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        MontgomeryDomain::new(U256::from_u64(100));
    }

    #[test]
    fn neg_and_sub() {
        let dom = MontgomeryDomain::new(U256::from_u64(97));
        let a = dom.to_mont(&U256::from_u64(10));
        let na = dom.neg(&a);
        assert!(dom.from_mont(&dom.add(&a, &na)).is_zero());
        assert_eq!(dom.neg(&U256::ZERO), U256::ZERO);
    }
}
