//! Montgomery-domain modular arithmetic for odd 256-bit moduli.
//!
//! Both the P-256 field prime `p` and the group order `n` are odd, so a
//! single generic Montgomery implementation serves field arithmetic (point
//! operations) and scalar arithmetic (ECDSA). Montgomery multiplication is
//! self-contained — no precomputed reduction identities to mistranscribe —
//! and runs in a few dozen nanoseconds per multiply. The hot paths have
//! since moved to specialized kernels ([`crate::fp256`] for the base
//! field, [`crate::fq256`] for the scalar field); this module remains
//! fully compiled as the differential-test oracle and A/B baseline for
//! both.
//!
//! The only non-trivial setup constants, `R mod m` and `R² mod m`
//! (`R = 2^256`), are derived at construction time with the slow-but-sure
//! binary division from [`crate::bigint`], so a [`MontgomeryDomain`] can be
//! built for any odd modulus without external tables.

use crate::bigint::{addmul_row, inv_mod_odd, propagate_carry, U256, U512};

/// Precomputed context for Montgomery arithmetic modulo an odd `m < 2^256`.
///
/// Values handled by [`MontgomeryDomain::mul`]/[`MontgomeryDomain::pow`]
/// are *Montgomery residues* (`x·R mod m`); convert with
/// [`to_mont`](Self::to_mont) / [`from_mont`](Self::from_mont).
///
/// ```
/// use fabric_crypto::bigint::U256;
/// use fabric_crypto::mont::MontgomeryDomain;
/// let m = U256::from_u64(1_000_003);
/// let dom = MontgomeryDomain::new(m);
/// let a = dom.to_mont(&U256::from_u64(1234));
/// let b = dom.to_mont(&U256::from_u64(5678));
/// let ab = dom.from_mont(&dom.mul(&a, &b));
/// assert_eq!(ab, U256::from_u64(1234 * 5678 % 1_000_003));
/// ```
#[derive(Debug, Clone)]
pub struct MontgomeryDomain {
    m: U256,
    /// `-m^-1 mod 2^64`, the REDC constant.
    n0: u64,
    /// `R mod m` — the Montgomery form of 1.
    r1: U256,
    /// `R² mod m` — multiplier to enter the domain.
    r2: U256,
}

impl MontgomeryDomain {
    /// Builds a domain for the odd modulus `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is even or zero (Montgomery reduction requires
    /// `gcd(m, 2^256) = 1`).
    pub fn new(m: U256) -> Self {
        assert!(m.is_odd(), "Montgomery modulus must be odd");
        // n0 = -m^{-1} mod 2^64 via Newton iteration on the low limb:
        // x_{k+1} = x_k * (2 - m*x_k), doubling correct bits each step.
        let m0 = m.0[0];
        let mut inv = m0; // correct to 3 bits for odd m
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0 = inv.wrapping_neg();

        // R mod m = (2^256 - m) mod m because 2^255 < m is not guaranteed;
        // use the generic 512-bit remainder instead (cold path, fine).
        let mut r = U512::default();
        r.0[4] = 1; // 2^256
        let r1 = r.rem(&m);
        // R^2 mod m by doubling R mod m 256 times.
        let mut r2 = r1;
        for _ in 0..256 {
            r2 = r2.add_mod(&r2, &m);
        }
        MontgomeryDomain { m, n0, r1, r2 }
    }

    /// The modulus this domain reduces by.
    pub fn modulus(&self) -> &U256 {
        &self.m
    }

    /// Montgomery form of `1`.
    pub fn one(&self) -> U256 {
        self.r1
    }

    /// Converts `x < m` into the Montgomery domain (`x·R mod m`).
    pub fn to_mont(&self, x: &U256) -> U256 {
        debug_assert!(x < &self.m);
        self.mul(x, &self.r2)
    }

    /// Converts a Montgomery residue back to a normal integer.
    pub fn from_mont(&self, x: &U256) -> U256 {
        self.redc(&U512::from_u256(x))
    }

    /// Montgomery multiplication: returns `a·b·R^-1 mod m`.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        self.redc(&a.widening_mul(b))
    }

    /// Montgomery squaring, using the dedicated squaring kernel (each
    /// cross limb product computed once and doubled).
    pub fn sqr(&self, a: &U256) -> U256 {
        self.redc(&a.widening_sqr())
    }

    /// Modular addition of two residues.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        a.add_mod(b, &self.m)
    }

    /// Modular subtraction of two residues.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        a.sub_mod(b, &self.m)
    }

    /// Modular negation of a residue.
    pub fn neg(&self, a: &U256) -> U256 {
        if a.is_zero() {
            U256::ZERO
        } else {
            self.m.wrapping_sub(a)
        }
    }

    /// Exponentiation of a Montgomery residue by a plain integer exponent,
    /// left-to-right binary.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let mut acc = self.one();
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Multiplicative inverse of a residue for a *prime* modulus, via
    /// Fermat's little theorem (`a^(m-2)`).
    ///
    /// Returns `None` for the zero residue.
    pub fn inv_prime(&self, a: &U256) -> Option<U256> {
        if a.is_zero() {
            return None;
        }
        let exp = self.m.wrapping_sub(&U256::from_u64(2));
        Some(self.pow(a, &exp))
    }

    /// Multiplicative inverse of a residue via the binary extended
    /// Euclidean algorithm — shift/add only, several times faster than
    /// the Fermat ladder in [`Self::inv_prime`], and correct for any odd
    /// modulus (not just primes).
    ///
    /// Returns `None` for the zero residue or when the value is not
    /// coprime with the modulus.
    pub fn inv(&self, a: &U256) -> Option<U256> {
        let plain = self.from_mont(a);
        let inv_plain = self.inv_euclid_plain(&plain)?;
        Some(self.to_mont(&inv_plain))
    }

    /// Binary extended GCD inverse on plain (non-Montgomery) integers:
    /// returns `x` with `a·x ≡ 1 (mod m)`, or `None` when no inverse
    /// exists. `m` must be odd, which `new` already guarantees. The
    /// Euclidean core is [`inv_mod_odd`], shared with the Solinas base
    /// field in [`crate::fp256`].
    fn inv_euclid_plain(&self, a: &U256) -> Option<U256> {
        inv_mod_odd(a, &self.m)
    }

    /// Montgomery batch inversion: inverts every invertible residue in
    /// `values` at the cost of a *single* field inversion plus `3(n-1)`
    /// multiplications (Montgomery's trick), writing results in place.
    /// The returned mask is `true` exactly where `values[i]` now holds a
    /// verified inverse; zero residues (and, under a composite modulus,
    /// residues sharing a factor with it) are zeroed and reported
    /// `false`.
    ///
    /// This is the block-level amortization the validator uses for the
    /// `1/s` of every signature in a block.
    pub fn batch_inv(&self, values: &mut [U256]) -> Vec<bool> {
        let mut mask: Vec<bool> = values.iter().map(|v| !v.is_zero()).collect();
        // prefix[i] = product of nonzero values[0..=i].
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = self.one();
        for (v, &ok) in values.iter().zip(&mask) {
            if ok {
                acc = self.mul(&acc, v);
            }
            prefix.push(acc);
        }
        let mut inv_acc = match self.inv(&acc) {
            Some(inv) => inv,
            None => {
                // Degenerate (all zero, or a non-coprime residue under a
                // composite modulus): fall back to per-element inversion,
                // downgrading the mask where no inverse exists.
                for (v, ok) in values.iter_mut().zip(mask.iter_mut()) {
                    if *ok {
                        match self.inv(v) {
                            Some(inv) => *v = inv,
                            None => {
                                *v = U256::ZERO;
                                *ok = false;
                            }
                        }
                    }
                }
                return mask;
            }
        };
        for i in (0..values.len()).rev() {
            if !mask[i] {
                continue;
            }
            let prev = if i == 0 { self.one() } else { prefix[i - 1] };
            let inv_i = self.mul(&inv_acc, &prev);
            inv_acc = self.mul(&inv_acc, &values[i]);
            values[i] = inv_i;
        }
        mask
    }

    /// Montgomery reduction (REDC) of a 512-bit value `t < m·R`:
    /// returns `t·R^-1 mod m`.
    fn redc(&self, t: &U512) -> U256 {
        let m = &self.m.0;
        // Work array with one extra carry slot.
        let mut a = [0u64; 9];
        a[..8].copy_from_slice(&t.0);
        for i in 0..4 {
            let u = a[i].wrapping_mul(self.n0);
            // a += u * m << (64*i), one shared row carry chain.
            let carry = addmul_row(&mut a[i..i + 4], m, u);
            propagate_carry(&mut a[i + 4..], carry);
        }
        let mut out = U256([a[4], a[5], a[6], a[7]]);
        // At most one final subtraction (a[8] can hold a carry bit).
        if a[8] != 0 || out >= self.m {
            out = out.wrapping_sub(&self.m);
        }
        debug_assert!(out < self.m);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p256_prime() -> U256 {
        U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff").unwrap()
    }

    #[test]
    fn roundtrip_small_modulus() {
        let dom = MontgomeryDomain::new(U256::from_u64(1_000_003));
        for x in [0u64, 1, 2, 999_999, 1_000_002] {
            let v = U256::from_u64(x);
            assert_eq!(dom.from_mont(&dom.to_mont(&v)), v, "x={x}");
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let m = 0xffff_ffff_ffff_fc5fu64; // odd 64-bit modulus
        let dom = MontgomeryDomain::new(U256::from_u64(m));
        let cases = [(3u64, 5u64), (m - 1, m - 1), (12345, 987654321), (1, m - 2)];
        for (a, b) in cases {
            let am = dom.to_mont(&U256::from_u64(a));
            let bm = dom.to_mont(&U256::from_u64(b));
            let got = dom.from_mont(&dom.mul(&am, &bm));
            let expect = ((a as u128 * b as u128) % m as u128) as u64;
            assert_eq!(got, U256::from_u64(expect), "{a}*{b} mod {m}");
        }
    }

    #[test]
    fn pow_matches_reference() {
        let m = 1_000_003u64;
        let dom = MontgomeryDomain::new(U256::from_u64(m));
        let base = dom.to_mont(&U256::from_u64(7));
        let got = dom.from_mont(&dom.pow(&base, &U256::from_u64(100)));
        let mut expect = 1u64;
        for _ in 0..100 {
            expect = expect * 7 % m;
        }
        assert_eq!(got, U256::from_u64(expect));
    }

    #[test]
    fn inverse_on_p256_prime() {
        let dom = MontgomeryDomain::new(p256_prime());
        let x = dom.to_mont(&U256::from_u64(0xdead_beef));
        let xi = dom.inv_prime(&x).unwrap();
        assert_eq!(dom.from_mont(&dom.mul(&x, &xi)), U256::ONE);
        assert_eq!(dom.inv_prime(&U256::ZERO), None);
    }

    #[test]
    fn one_is_identity() {
        let dom = MontgomeryDomain::new(p256_prime());
        let x = dom.to_mont(&U256::from_u64(42));
        assert_eq!(dom.mul(&x, &dom.one()), x);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        MontgomeryDomain::new(U256::from_u64(100));
    }

    #[test]
    fn euclid_inverse_matches_fermat() {
        let dom = MontgomeryDomain::new(p256_prime());
        for v in [1u64, 2, 3, 0xdead_beef, u64::MAX] {
            let x = dom.to_mont(&U256::from_u64(v));
            assert_eq!(dom.inv(&x), dom.inv_prime(&x), "v={v}");
        }
        assert_eq!(dom.inv(&U256::ZERO), None);
    }

    #[test]
    fn euclid_inverse_detects_common_factor() {
        // Composite modulus 3 * 5 * 7 = 105: multiples of 3 have no inverse.
        let dom = MontgomeryDomain::new(U256::from_u64(105));
        let x = dom.to_mont(&U256::from_u64(21));
        assert_eq!(dom.inv(&x), None);
        let y = dom.to_mont(&U256::from_u64(11));
        let yi = dom.inv(&y).unwrap();
        assert_eq!(dom.from_mont(&dom.mul(&y, &yi)), U256::ONE);
    }

    #[test]
    fn batch_inversion_matches_individual() {
        let dom = MontgomeryDomain::new(p256_prime());
        let mut values: Vec<U256> = [7u64, 11, 13, 0, 12345, 0, 99]
            .iter()
            .map(|&v| {
                if v == 0 {
                    U256::ZERO
                } else {
                    dom.to_mont(&U256::from_u64(v))
                }
            })
            .collect();
        let originals = values.clone();
        let mask = dom.batch_inv(&mut values);
        assert_eq!(mask, vec![true, true, true, false, true, false, true]);
        for i in 0..values.len() {
            if mask[i] {
                assert_eq!(Some(values[i]), dom.inv_prime(&originals[i]), "i={i}");
            } else {
                assert!(values[i].is_zero());
            }
        }
    }

    #[test]
    fn batch_inversion_all_zero() {
        let dom = MontgomeryDomain::new(p256_prime());
        let mut values = vec![U256::ZERO; 3];
        let mask = dom.batch_inv(&mut values);
        assert_eq!(mask, vec![false; 3]);
    }

    #[test]
    fn batch_inversion_composite_modulus_flags_non_invertible() {
        // 105 = 3·5·7: residues sharing a factor have no inverse and
        // must come back masked false and zeroed, not left in place.
        let dom = MontgomeryDomain::new(U256::from_u64(105));
        let mut values = vec![
            dom.to_mont(&U256::from_u64(3)),
            dom.to_mont(&U256::from_u64(11)),
            U256::ZERO,
        ];
        let mask = dom.batch_inv(&mut values);
        assert_eq!(mask, vec![false, true, false]);
        assert!(values[0].is_zero());
        assert!(values[2].is_zero());
        let eleven = dom.to_mont(&U256::from_u64(11));
        assert_eq!(dom.from_mont(&dom.mul(&eleven, &values[1])), U256::ONE);
    }

    #[test]
    fn dedicated_squaring_matches_mul() {
        let dom = MontgomeryDomain::new(p256_prime());
        for v in [0u64, 1, 3, u64::MAX, 0x1234_5678_9abc_def0] {
            let x = dom.to_mont(&U256::from_u64(v));
            assert_eq!(dom.sqr(&x), dom.mul(&x, &x), "v={v}");
        }
    }

    #[test]
    fn neg_and_sub() {
        let dom = MontgomeryDomain::new(U256::from_u64(97));
        let a = dom.to_mont(&U256::from_u64(10));
        let na = dom.neg(&a);
        assert!(dom.from_mont(&dom.add(&a, &na)).is_zero());
        assert_eq!(dom.neg(&U256::ZERO), U256::ZERO);
    }
}
