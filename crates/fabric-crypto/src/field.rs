//! Backend-selectable P-256 base-field arithmetic.
//!
//! The curve layer ([`crate::curve`], [`crate::ecdsa`]) does all of its
//! coordinate arithmetic through [`FieldDomain`], which dispatches to
//! one of two interchangeable implementations:
//!
//! * **Solinas** ([`crate::fp256`]) — the default: NIST fast reduction
//!   specialized to the P-256 prime, operating on canonical residues
//!   (entering/leaving the representation is free);
//! * **Montgomery** ([`crate::mont`]) — the generic REDC arithmetic the
//!   seed shipped with, operating on Montgomery residues. Kept fully
//!   compiled and selectable so it serves as the *oracle* for the
//!   differential test harness and as the A/B baseline in
//!   `BENCH_validation.json`.
//!
//! # Selecting a backend
//!
//! The active backend is chosen once, when [`crate::curve::p256`] first
//! initializes (the process-wide tables are built in that backend's
//! representation, so it cannot change mid-process):
//!
//! 1. the `FABRIC_FIELD_BACKEND` environment variable
//!    (`solinas` | `montgomery`) decides at startup — this is how the
//!    CI matrix and the benchmark's A/B re-exec drive both backends;
//! 2. otherwise the `montgomery-field-default` cargo feature makes
//!    Montgomery the fallback for builds that want the oracle without
//!    touching the environment;
//! 3. otherwise Solinas.
//!
//! Values handled by a [`FieldDomain`] are *representation residues*:
//! canonical integers under Solinas, Montgomery residues under
//! Montgomery. Convert at the boundary with
//! [`to_repr`](FieldDomain::to_repr) / [`from_repr`](FieldDomain::from_repr)
//! and never mix residues produced by different domains. All byte-level
//! encodings (SEC1 points, signature cache keys, DER) go through
//! `from_repr` first and are therefore backend-independent.

use std::fmt;

use crate::bigint::U256;
use crate::fp256::Fp256;
use crate::mont::MontgomeryDomain;

/// Which base-field implementation a [`FieldDomain`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldBackend {
    /// Solinas (NIST fast-reduction) arithmetic on canonical residues.
    Solinas,
    /// Generic Montgomery (REDC) arithmetic on Montgomery residues.
    Montgomery,
}

impl FieldBackend {
    /// Stable lowercase name, as used by `FABRIC_FIELD_BACKEND` and the
    /// benchmark JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FieldBackend::Solinas => "solinas",
            FieldBackend::Montgomery => "montgomery",
        }
    }
}

impl fmt::Display for FieldBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Resolves the backend the process should default to (see the module
/// docs for precedence). An explicit `FABRIC_FIELD_BACKEND` always
/// wins — the benchmark's A/B re-exec relies on the env var flipping
/// the child's backend regardless of how the binary was built — and
/// the `montgomery-field-default` feature only changes the fallback
/// when the env var is unset.
///
/// # Panics
///
/// Panics when `FABRIC_FIELD_BACKEND` is set to an unknown value —
/// silently falling back would make an A/B run measure the wrong thing.
pub fn default_field_backend() -> FieldBackend {
    match std::env::var("FABRIC_FIELD_BACKEND") {
        Ok(v) if v.eq_ignore_ascii_case("solinas") => FieldBackend::Solinas,
        Ok(v) if v.eq_ignore_ascii_case("montgomery") => FieldBackend::Montgomery,
        Ok(other) => {
            panic!("FABRIC_FIELD_BACKEND must be \"solinas\" or \"montgomery\", got {other:?}")
        }
        Err(_) if cfg!(feature = "montgomery-field-default") => FieldBackend::Montgomery,
        Err(_) => FieldBackend::Solinas,
    }
}

/// P-256 base-field arithmetic behind a backend switch.
///
/// The API mirrors [`MontgomeryDomain`] except that the representation
/// conversions are named `to_repr`/`from_repr`: they are REDC
/// conversions under the Montgomery backend and (checked) no-ops under
/// Solinas.
#[derive(Debug, Clone)]
pub enum FieldDomain {
    /// Solinas fast-reduction arithmetic (canonical residues).
    Solinas(Fp256),
    /// Montgomery REDC arithmetic (Montgomery residues).
    Montgomery(MontgomeryDomain),
}

impl FieldDomain {
    /// Builds the P-256 base field on the given backend.
    pub fn p256(backend: FieldBackend) -> Self {
        match backend {
            FieldBackend::Solinas => FieldDomain::Solinas(Fp256),
            FieldBackend::Montgomery => FieldDomain::Montgomery(MontgomeryDomain::new(Fp256::P)),
        }
    }

    /// The backend this domain dispatches to.
    pub fn backend(&self) -> FieldBackend {
        match self {
            FieldDomain::Solinas(_) => FieldBackend::Solinas,
            FieldDomain::Montgomery(_) => FieldBackend::Montgomery,
        }
    }

    /// The field modulus (the P-256 prime).
    pub fn modulus(&self) -> &U256 {
        match self {
            FieldDomain::Solinas(f) => f.modulus(),
            FieldDomain::Montgomery(m) => m.modulus(),
        }
    }

    /// The representation of `1`.
    pub fn one(&self) -> U256 {
        match self {
            FieldDomain::Solinas(f) => f.one(),
            FieldDomain::Montgomery(m) => m.one(),
        }
    }

    /// Converts a canonical integer `x < p` into the domain
    /// representation (Montgomery form, or a checked pass-through).
    pub fn to_repr(&self, x: &U256) -> U256 {
        match self {
            FieldDomain::Solinas(f) => {
                debug_assert!(x < f.modulus());
                *x
            }
            FieldDomain::Montgomery(m) => m.to_mont(x),
        }
    }

    /// Converts a representation residue back to a canonical integer.
    pub fn from_repr(&self, x: &U256) -> U256 {
        match self {
            FieldDomain::Solinas(_) => *x,
            FieldDomain::Montgomery(m) => m.from_mont(x),
        }
    }

    /// Field multiplication of two residues.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        match self {
            FieldDomain::Solinas(f) => f.mul(a, b),
            FieldDomain::Montgomery(m) => m.mul(a, b),
        }
    }

    /// Field squaring of a residue.
    pub fn sqr(&self, a: &U256) -> U256 {
        match self {
            FieldDomain::Solinas(f) => f.sqr(a),
            FieldDomain::Montgomery(m) => m.sqr(a),
        }
    }

    /// Field addition.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        match self {
            FieldDomain::Solinas(f) => f.add(a, b),
            FieldDomain::Montgomery(m) => m.add(a, b),
        }
    }

    /// Field subtraction.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        match self {
            FieldDomain::Solinas(f) => f.sub(a, b),
            FieldDomain::Montgomery(m) => m.sub(a, b),
        }
    }

    /// Field negation.
    pub fn neg(&self, a: &U256) -> U256 {
        match self {
            FieldDomain::Solinas(f) => f.neg(a),
            FieldDomain::Montgomery(m) => m.neg(a),
        }
    }

    /// Exponentiation of a residue by a plain integer exponent.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        match self {
            FieldDomain::Solinas(f) => f.pow(base, exp),
            FieldDomain::Montgomery(m) => m.pow(base, exp),
        }
    }

    /// Fermat inverse (`a^(p-2)`); `None` for zero.
    pub fn inv_prime(&self, a: &U256) -> Option<U256> {
        match self {
            FieldDomain::Solinas(f) => f.inv_prime(a),
            FieldDomain::Montgomery(m) => m.inv_prime(a),
        }
    }

    /// Binary-Euclid inverse; `None` for zero.
    pub fn inv(&self, a: &U256) -> Option<U256> {
        match self {
            FieldDomain::Solinas(f) => f.inv(a),
            FieldDomain::Montgomery(m) => m.inv(a),
        }
    }

    /// Montgomery-trick batch inversion, in place; the mask is `true`
    /// where an inverse was written (see the backend docs).
    pub fn batch_inv(&self, values: &mut [U256]) -> Vec<bool> {
        match self {
            FieldDomain::Solinas(f) => f.batch_inv(values),
            FieldDomain::Montgomery(m) => m.batch_inv(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends compute the same canonical results through the
    /// uniform API (the exhaustive differential suite lives in
    /// `tests/tests/crypto_differential.rs`).
    #[test]
    fn backends_agree_through_the_uniform_api() {
        let sol = FieldDomain::p256(FieldBackend::Solinas);
        let mon = FieldDomain::p256(FieldBackend::Montgomery);
        let a = U256::from_u64(0xdead_beef);
        let b = mon.modulus().wrapping_sub(&U256::from_u64(7));
        for (x, y) in [(&a, &b), (&b, &a), (&a, &a), (&b, &b)] {
            let via_sol = sol.from_repr(&sol.mul(&sol.to_repr(x), &sol.to_repr(y)));
            let via_mon = mon.from_repr(&mon.mul(&mon.to_repr(x), &mon.to_repr(y)));
            assert_eq!(via_sol, via_mon);
        }
        let inv_sol = sol.from_repr(&sol.inv(&sol.to_repr(&a)).unwrap());
        let inv_mon = mon.from_repr(&mon.inv(&mon.to_repr(&a)).unwrap());
        assert_eq!(inv_sol, inv_mon);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(FieldBackend::Solinas.name(), "solinas");
        assert_eq!(FieldBackend::Montgomery.name(), "montgomery");
        assert_eq!(
            FieldDomain::p256(FieldBackend::Solinas).backend(),
            FieldBackend::Solinas
        );
    }
}
