//! Cryptographic substrate for the Blockchain Machine reproduction.
//!
//! Hyperledger Fabric's validation phase is dominated by 256-bit ECDSA
//! verification and SHA-256 hashing (paper §2.1.3, Figure 3a: ~40% and
//! ~10% of validator time respectively). This crate implements that stack
//! from scratch in pure Rust:
//!
//! * [`bigint`] — fixed-width 256-bit integers, with a dedicated
//!   squaring kernel, single-subtraction reduction for `< 2m` values,
//!   and the shared carry-chain primitives (`adc`/`sbb`/`mac`) and
//!   binary-Euclid modular inverse used by both field backends;
//! * [`mont`] — Montgomery modular arithmetic for odd 256-bit moduli:
//!   REDC multiply/square, Fermat and binary-Euclid inversion, and
//!   Montgomery-trick *batch* inversion (one field inversion per block
//!   of signatures). The differential-test oracle and A/B baseline for
//!   both the base field and the scalar field;
//! * [`fp256`] — Solinas-form (NIST fast-reduction) arithmetic
//!   specialized to the P-256 prime: reduction is a fixed nine-term
//!   word shuffle with no multiplications, on canonical residues;
//! * [`fq256`] — Barrett-folded arithmetic in the scalar field (mod
//!   the group order `n`): a precomputed `⌊2^512/n⌋` constant reduces
//!   the 512-bit product on canonical residues, eliminating the REDC
//!   domain crossings the ECDSA scalar flow is dominated by;
//! * [`field`] — the backend switch wiring [`fp256`] (default) or
//!   [`mont`] under the curve layer, selected by the
//!   `FABRIC_FIELD_BACKEND` environment variable or the
//!   `montgomery-field-default` cargo feature;
//! * [`scalar`] — the analogous switch for the scalar field, wiring
//!   [`fq256`] (default) or [`mont`] under the ECDSA layer
//!   (`FABRIC_SCALAR_BACKEND` / `montgomery-scalar-default`);
//! * [`curve`] — NIST P-256 group operations: Jacobian/mixed addition,
//!   windowed and width-5 wNAF scalar multiplication, Shamir
//!   double-scalar multiplication, a lazily built fixed-base comb table
//!   for `k·G` (zero doublings per multiplication), batched affine
//!   normalization, and a projective x-coordinate check that removes
//!   the final inversion from ECDSA verification;
//! * [`ecdsa`] — ECDSA sign/verify with RFC 6979 deterministic nonces.
//!   Verification is the validator's hottest operation and runs on the
//!   fixed-base + per-key split-wNAF fast path (see the module docs);
//!   the seed's Shamir/Fermat path is preserved for cross-checking and
//!   before/after benchmarking;
//! * [`sha256`](mod@sha256) — FIPS 180-4 SHA-256 and HMAC-SHA-256;
//! * [`der`] — strict DER encoding of `ECDSA-Sig-Value`;
//! * [`identity`] — X.509-lite certificates (~860-byte class, like the
//!   certificates whose redundancy the BMac protocol removes), the 16-bit
//!   encoded node ids of paper §3.2, and a membership service provider.
//!
//! # Example
//!
//! ```
//! use fabric_crypto::identity::{Msp, Role};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut msp = Msp::new(2);
//! let endorser = msp.issue(0, Role::Peer, 0)?;
//! let sig = endorser.sign(b"endorsement payload");
//! endorser.identity.verify(b"endorsement payload", &sig)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bigint;
pub mod curve;
pub mod der;
pub mod ecdsa;
pub mod field;
pub mod fp256;
pub mod fq256;
pub mod identity;
pub mod mont;
pub mod scalar;
pub mod sha256;

pub use bigint::U256;
pub use ecdsa::{EcdsaError, Signature, SigningKey, VerifyingKey};
pub use field::{default_field_backend, FieldBackend, FieldDomain};
pub use identity::{Certificate, Identity, Msp, NodeId, Role, SigningIdentity};
pub use scalar::{default_scalar_backend, ScalarBackend, ScalarDomain};
pub use sha256::{sha256, Sha256};
