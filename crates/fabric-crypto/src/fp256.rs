//! Solinas-form arithmetic in the NIST P-256 base field.
//!
//! The P-256 prime is a *generalized Mersenne* (Solinas) prime,
//!
//! ```text
//! p = 2^256 − 2^224 + 2^192 + 2^96 − 1
//! ```
//!
//! chosen by NIST precisely so that reduction of a 512-bit product needs
//! no multiplications at all: the high 256 bits fold back into the low
//! half as a fixed schedule of nine 32-bit-word shuffles added and
//! subtracted with carry chains (FIPS 186-4 §D.2 / Guide to ECC
//! Algorithm 2.29). Compared with the generic Montgomery REDC in
//! [`crate::mont`] — which spends sixteen extra 64×64 multiplies per
//! reduction — the Solinas path does a plain schoolbook multiply
//! followed by shift/add folding, and it works on *canonical* residues,
//! so entering and leaving the field representation is free.
//!
//! [`Fp256`] implements the full field API the curve layer needs (mul,
//! square, add, sub, neg, pow, Fermat and binary-Euclid inversion,
//! Montgomery-trick batch inversion) on plain integers `< p`. The
//! backend dispatch that lets the curve run on either this module or the
//! Montgomery oracle lives in [`crate::field`]; the differential test
//! harness (`tests/tests/crypto_differential.rs`) pins every operation
//! here against [`crate::mont::MontgomeryDomain`] on random, boundary,
//! and near-`p` inputs.
//!
//! Like the rest of this crate, the implementation favours clarity and
//! auditability over side-channel hardening (the reduction's final
//! correction loop is input-dependent); the library signs only
//! synthetic benchmark identities.

use crate::bigint::{inv_mod_odd, U256, U512};

/// The NIST P-256 base field with Solinas fast reduction.
///
/// Stateless: the prime is a compile-time constant, so the type is a
/// unit struct and all precomputation is in the word schedule itself.
///
/// ```
/// use fabric_crypto::bigint::U256;
/// use fabric_crypto::fp256::Fp256;
/// let f = Fp256;
/// let a = U256::from_u64(1234);
/// let b = U256::from_u64(5678);
/// assert_eq!(f.mul(&a, &b), U256::from_u64(1234 * 5678));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fp256;

impl Fp256 {
    /// The P-256 prime `p = 2^256 − 2^224 + 2^192 + 2^96 − 1`
    /// (`ffffffff00000001 0000000000000000 00000000ffffffff ffffffffffffffff`).
    pub const P: U256 = U256([
        0xffff_ffff_ffff_ffff,
        0x0000_0000_ffff_ffff,
        0x0000_0000_0000_0000,
        0xffff_ffff_0000_0001,
    ]);

    /// The field modulus.
    pub fn modulus(&self) -> &'static U256 {
        &Self::P
    }

    /// The multiplicative identity (canonical residues: just `1`).
    pub fn one(&self) -> U256 {
        U256::ONE
    }

    /// Field multiplication: schoolbook 256×256 multiply followed by
    /// the Solinas fold.
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        debug_assert!(a < &Self::P && b < &Self::P);
        reduce_wide(&a.widening_mul(b))
    }

    /// Field squaring, on the dedicated squaring kernel (cross products
    /// computed once and doubled).
    pub fn sqr(&self, a: &U256) -> U256 {
        debug_assert!(a < &Self::P);
        reduce_wide(&a.widening_sqr())
    }

    /// Field addition.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        a.add_mod(b, &Self::P)
    }

    /// Field subtraction.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        a.sub_mod(b, &Self::P)
    }

    /// Field negation.
    pub fn neg(&self, a: &U256) -> U256 {
        debug_assert!(a < &Self::P);
        if a.is_zero() {
            U256::ZERO
        } else {
            Self::P.wrapping_sub(a)
        }
    }

    /// Exponentiation by a plain integer exponent, left-to-right binary.
    pub fn pow(&self, base: &U256, exp: &U256) -> U256 {
        let mut acc = U256::ONE;
        for i in (0..exp.bit_len()).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`a^(p-2)`).
    /// Returns `None` for zero. Kept for API parity with the Montgomery
    /// oracle; [`Self::inv`] is several times faster.
    pub fn inv_prime(&self, a: &U256) -> Option<U256> {
        if a.is_zero() {
            return None;
        }
        let exp = Self::P.wrapping_sub(&U256::from_u64(2));
        Some(self.pow(a, &exp))
    }

    /// Multiplicative inverse via the shared binary extended Euclid
    /// ([`crate::bigint::inv_mod_odd`]). Returns `None` for zero.
    ///
    /// Unlike the Montgomery path, no domain conversions bracket the
    /// Euclidean core: canonical residues go straight in and out.
    pub fn inv(&self, a: &U256) -> Option<U256> {
        inv_mod_odd(a, &Self::P)
    }

    /// Montgomery-trick batch inversion on the shared prime-field core
    /// ([`crate::bigint::batch_inv_prime_field`]): every invertible
    /// element in `values` is replaced by its inverse at the cost of a
    /// single field inversion plus `3(n-1)` multiplications; the mask
    /// is `true` where an inverse was written.
    pub fn batch_inv(&self, values: &mut [U256]) -> Vec<bool> {
        crate::bigint::batch_inv_prime_field(values, |a, b| self.mul(a, b), |a| self.inv(a))
    }
}

/// Solinas fast reduction of a full 512-bit value modulo the P-256
/// prime.
///
/// Splits the input into sixteen 32-bit words `c0..c15` and folds the
/// high half back with the nine-term add/sub schedule
///
/// ```text
/// r = s1 + 2·s2 + 2·s3 + s4 + s5 − s6 − s7 − s8 − s9  (mod p)
/// ```
///
/// where each `sᵢ` is a fixed permutation of the words (FIPS 186-4
/// §D.2.3). The per-limb sums are accumulated in signed 128-bit
/// arithmetic and carry-propagated once; the small residual carry `t`
/// (in roughly `−4..7`) is folded back in a single pass using
/// `2^256 ≡ 2^224 − 2^192 − 2^96 + 1 (mod p)`, leaving at most one
/// conditional addition and one conditional subtraction of `p`.
#[inline]
pub fn reduce_wide(c: &U512) -> U256 {
    let p = &Fp256::P;
    // 32-bit word view, little-endian: c[i] = a[2i] | a[2i+1] << 32.
    let a = [
        c.0[0] as u32,
        (c.0[0] >> 32) as u32,
        c.0[1] as u32,
        (c.0[1] >> 32) as u32,
        c.0[2] as u32,
        (c.0[2] >> 32) as u32,
        c.0[3] as u32,
        (c.0[3] >> 32) as u32,
        c.0[4] as u32,
        (c.0[4] >> 32) as u32,
        c.0[5] as u32,
        (c.0[5] >> 32) as u32,
        c.0[6] as u32,
        (c.0[6] >> 32) as u32,
        c.0[7] as u32,
        (c.0[7] >> 32) as u32,
    ];

    // Word-lane signed sums of the nine-term schedule. Against the
    // big-endian word tuples of the standard algorithm —
    //   s1 = (c7,  c6,  c5,  c4,  c3,  c2,  c1,  c0)
    //   s2 = (c15, c14, c13, c12, c11, 0,   0,   0 )   ×2
    //   s3 = (0,   c15, c14, c13, c12, 0,   0,   0 )   ×2
    //   s4 = (c15, c14, 0,   0,   0,   c10, c9,  c8)
    //   s5 = (c8,  c13, c15, c14, c13, c11, c10, c9)
    //   s6 = (c10, c8,  0,   0,   0,   c13, c12, c11)  −
    //   s7 = (c11, c9,  0,   0,   c15, c14, c13, c12)  −
    //   s8 = (c12, 0,   c10, c9,  c8,  c15, c14, c13)  −
    //   s9 = (c13, 0,   c11, c10, c9,  0,   c15, c14)  −
    // — each output word collapses to a short independent sum with
    // coefficients in −1..3 (|wᵢ| < 2^35, comfortably inside i64).
    let v = |i: usize| a[i] as i64;
    let w0 = v(0) + v(8) + v(9) - v(11) - v(12) - v(13) - v(14);
    let w1 = v(1) + v(9) + v(10) - v(12) - v(13) - v(14) - v(15);
    let w2 = v(2) + v(10) + v(11) - v(13) - v(14) - v(15);
    let w3 = v(3) + 2 * (v(11) + v(12)) + v(13) - v(15) - v(8) - v(9);
    let w4 = v(4) + 2 * (v(12) + v(13)) + v(14) - v(9) - v(10);
    let w5 = v(5) + 2 * (v(13) + v(14)) + v(15) - v(10) - v(11);
    let w6 = v(6) + v(13) + 3 * v(14) + 2 * v(15) - v(8) - v(9);
    let w7 = v(7) + 3 * v(15) + v(8) - v(10) - v(11) - v(12) - v(13);

    // Compose word pairs into 64-bit limbs with a signed carry chain;
    // |wᵢ| < 2^35 so each partial sum fits easily in i128.
    let mut out = [0u64; 4];
    let mut carry: i128 = 0;
    for (j, (lo, hi)) in [(w0, w1), (w2, w3), (w4, w5), (w6, w7)]
        .into_iter()
        .enumerate()
    {
        let s = lo as i128 + ((hi as i128) << 32) + carry;
        out[j] = s as u64; // s mod 2^64 (two's complement)
        carry = s >> 64; // arithmetic shift: floor(s / 2^64)
    }

    // Fold the residual carry t (|t| ≤ ~7) back in one pass:
    // t·2^256 ≡ t·(2^224 − 2^192 − 2^96 + 1) (mod p), i.e.
    //   limb0 += t, limb1 −= t·2^32, limb3 += t·2^32 − t.
    let t = carry;
    let mut carry: i128 = 0;
    let v = out[0] as i128 + t;
    let r0 = v as u64;
    carry += v >> 64;
    let v = out[1] as i128 - (t << 32) + carry;
    let r1 = v as u64;
    carry = v >> 64;
    let v = out[2] as i128 + carry;
    let r2 = v as u64;
    carry = v >> 64;
    let v = out[3] as i128 + (t << 32) - t + carry;
    let r3 = v as u64;
    carry = v >> 64;

    // The folded value is carry·2^256 + r with carry ∈ {−1, 0, 1}
    // (|t·(2^224 − …)| < 2^228 ≪ 2^256): one conditional ±p retires
    // it, and one more conditional −p canonicalizes.
    let mut r = U256([r0, r1, r2, r3]);
    debug_assert!((-1..=1).contains(&carry));
    if carry < 0 {
        let (sum, _) = r.overflowing_add(p);
        r = sum;
    } else if carry > 0 {
        let (diff, _) = r.overflowing_sub(p);
        r = diff;
    }
    if &r >= p {
        r = r.wrapping_sub(p);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> U256 {
        U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff").unwrap()
    }

    #[test]
    fn prime_constant_matches_hex_literal() {
        assert_eq!(Fp256::P, p());
        // p = 2^256 − 2^224 + 2^192 + 2^96 − 1, rebuilt from powers.
        let mut v = U256::ZERO;
        // 2^256 − 2^224 = (2^32 − 1)·2^224
        v.0[3] = 0xffff_ffff_0000_0000;
        let (v, _) = v.overflowing_add(&U256([0, 0, 0, 1])); // + 2^192
        let (v, _) = v.overflowing_add(&U256([0, 1 << 32, 0, 0])); // + 2^96
        let (v, _) = v.overflowing_sub(&U256::ONE);
        assert_eq!(v, Fp256::P);
    }

    #[test]
    fn reduce_matches_long_division_on_structured_inputs() {
        let f = Fp256;
        let m = p();
        let cases: Vec<U512> = vec![
            U512::default(),
            U512::from_u256(&U256::ONE),
            U512::from_u256(&m),                          // exactly p
            U512::from_u256(&m.wrapping_sub(&U256::ONE)), // p − 1
            U512([0, 0, 0, 0, 1, 0, 0, 0]),               // 2^256
            U512([u64::MAX; 8]),                          // 2^512 − 1
            U512([0, 0, 0, 0, 0, 0, 0, u64::MAX]),        // high-limb only
            m.widening_mul(&m),                           // p² ≡ 0
            m.wrapping_sub(&U256::ONE)
                .widening_mul(&m.wrapping_sub(&U256::ONE)), // (p−1)²
        ];
        for (i, c) in cases.iter().enumerate() {
            assert_eq!(reduce_wide(c), c.rem(&m), "case {i}");
        }
        let _ = f;
    }

    #[test]
    fn mul_matches_widening_rem() {
        let f = Fp256;
        let m = p();
        let vals = [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(u64::MAX),
            m.wrapping_sub(&U256::ONE),
            m.wrapping_sub(&U256::from_u64(12345)),
            U256([0, 0, 1 << 63, 0]),
            U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
                .unwrap()
                .rem(&m),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(f.mul(a, b), a.widening_mul(b).rem(&m), "a={a:?} b={b:?}");
                assert_eq!(f.sqr(a), a.widening_sqr().rem(&m), "a={a:?}");
            }
        }
    }

    #[test]
    fn inverse_agrees_with_fermat() {
        let f = Fp256;
        for v in [1u64, 2, 3, 0xdead_beef, u64::MAX] {
            let a = U256::from_u64(v);
            let inv = f.inv(&a).unwrap();
            assert_eq!(f.mul(&a, &inv), U256::ONE, "v={v}");
            assert_eq!(Some(inv), f.inv_prime(&a), "v={v}");
        }
        assert_eq!(f.inv(&U256::ZERO), None);
        assert_eq!(f.inv_prime(&U256::ZERO), None);
        let pm1 = p().wrapping_sub(&U256::ONE); // −1 is its own inverse
        assert_eq!(f.inv(&pm1), Some(pm1));
    }

    #[test]
    fn batch_inversion_matches_individual() {
        let f = Fp256;
        let mut values: Vec<U256> = [7u64, 11, 0, 13, 0, 99]
            .iter()
            .map(|&v| U256::from_u64(v))
            .collect();
        let originals = values.clone();
        let mask = f.batch_inv(&mut values);
        assert_eq!(mask, vec![true, true, false, true, false, true]);
        for i in 0..values.len() {
            if mask[i] {
                assert_eq!(Some(values[i]), f.inv(&originals[i]), "i={i}");
            } else {
                assert!(values[i].is_zero());
            }
        }
        let mut zeros = vec![U256::ZERO; 3];
        assert_eq!(f.batch_inv(&mut zeros), vec![false; 3]);
    }

    #[test]
    fn add_sub_neg_wrap_correctly() {
        let f = Fp256;
        let pm1 = p().wrapping_sub(&U256::ONE);
        assert_eq!(f.add(&pm1, &U256::ONE), U256::ZERO);
        assert_eq!(f.sub(&U256::ZERO, &U256::ONE), pm1);
        assert_eq!(f.neg(&U256::ONE), pm1);
        assert_eq!(f.neg(&U256::ZERO), U256::ZERO);
        assert_eq!(f.add(&f.neg(&pm1), &pm1), U256::ZERO);
    }

    #[test]
    fn pow_small_exponents() {
        let f = Fp256;
        let three = U256::from_u64(3);
        assert_eq!(f.pow(&three, &U256::ZERO), U256::ONE);
        assert_eq!(f.pow(&three, &U256::from_u64(5)), U256::from_u64(243));
    }
}
