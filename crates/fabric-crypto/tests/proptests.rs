//! Property-based tests for the cryptographic substrate.

use fabric_crypto::bigint::{U256, U512};
use fabric_crypto::curve::{p256, AffinePoint, JacobianPoint};
use fabric_crypto::der::{decode_signature, encode_signature};
use fabric_crypto::ecdsa::{Signature, SigningKey};
use fabric_crypto::mont::MontgomeryDomain;
use fabric_crypto::sha256::{sha256, Sha256};
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256)
}

/// A scalar guaranteed to be a valid, nonzero value mod n.
fn arb_scalar() -> impl Strategy<Value = U256> {
    arb_u256().prop_map(|v| {
        let n = p256().order;
        let r = v.rem(&n);
        if r.is_zero() {
            U256::ONE
        } else {
            r
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn u256_add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn u256_add_sub_inverse(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn u256_be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn u256_hex_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn u256_mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.widening_mul(&b).0, b.widening_mul(&a).0);
    }

    #[test]
    fn u512_rem_is_canonical(a in any::<[u64; 8]>(), m in arb_u256()) {
        prop_assume!(!m.is_zero());
        let r = U512(a).rem(&m);
        prop_assert!(r < m);
    }

    #[test]
    fn field_mul_matches_schoolbook(a in arb_u256(), b in arb_u256()) {
        // modulus: the P-256 prime, on whichever backend is active
        let dom = &p256().fp;
        let m = *dom.modulus();
        let ar = a.rem(&m);
        let br = b.rem(&m);
        let got = dom.from_repr(&dom.mul(&dom.to_repr(&ar), &dom.to_repr(&br)));
        let expect = ar.widening_mul(&br).rem(&m);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn solinas_reduction_matches_long_division(limbs in any::<[u64; 8]>()) {
        let wide = U512(limbs);
        prop_assert_eq!(
            fabric_crypto::fp256::reduce_wide(&wide),
            wide.rem(&fabric_crypto::fp256::Fp256::P)
        );
    }

    #[test]
    fn scalar_inverse_is_inverse(a in arb_scalar()) {
        let dom = &p256().fn_;
        let am = dom.to_repr(&a);
        let inv = dom.inv_prime(&am).unwrap();
        prop_assert_eq!(dom.from_repr(&dom.mul(&am, &inv)), U256::ONE);
    }

    #[test]
    fn generic_domain_roundtrip(mut m in arb_u256(), x in arb_u256()) {
        m.0[0] |= 1; // force odd
        prop_assume!(m > U256::ONE);
        let dom = MontgomeryDomain::new(m);
        let xr = x.rem(&m);
        prop_assert_eq!(dom.from_mont(&dom.to_mont(&xr)), xr);
    }

    #[test]
    fn scalar_mul_distributes_over_addition(k1 in 1u64..1000, k2 in 1u64..1000) {
        let g = AffinePoint::generator().to_jacobian();
        let lhs = g.mul_scalar(&U256::from_u64(k1 + k2)).to_affine();
        let rhs = g
            .mul_scalar(&U256::from_u64(k1))
            .add(&g.mul_scalar(&U256::from_u64(k2)))
            .to_affine();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn scalar_mul_stays_on_curve(k in arb_scalar()) {
        let p = AffinePoint::generator().mul_scalar(&k);
        prop_assert!(p.is_on_curve());
    }

    #[test]
    fn shamir_matches_naive(u1 in arb_scalar(), u2 in arb_scalar(), q in 2u64..500) {
        let g = AffinePoint::generator().to_jacobian();
        let qp = g.mul_scalar(&U256::from_u64(q));
        let fast = JacobianPoint::shamir(&u1, &g, &u2, &qp).to_affine();
        let slow = g.mul_scalar(&u1).add(&qp.mul_scalar(&u2)).to_affine();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn sha256_streaming_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn ecdsa_roundtrip(seed in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn ecdsa_rejects_bit_flips(seed in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 1..128), flip in 0usize..1024) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        let mut tampered = msg.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 1 << (flip % 8);
        prop_assert!(key.verifying_key().verify(&tampered, &sig).is_err());
    }

    #[test]
    fn fixed_base_comb_matches_windowed_mul(k in arb_scalar()) {
        let g = AffinePoint::generator().to_jacobian();
        prop_assert_eq!(
            fabric_crypto::curve::mul_fixed_base(&k).to_affine(),
            g.mul_scalar(&k).to_affine()
        );
    }

    #[test]
    fn wnaf_matches_windowed_mul(k in arb_scalar(), q in 2u64..100_000) {
        let base = AffinePoint::generator().to_jacobian().mul_scalar(&U256::from_u64(q));
        prop_assert_eq!(
            base.mul_scalar_wnaf(&k).to_affine(),
            base.mul_scalar(&k).to_affine()
        );
    }

    #[test]
    fn batch_inversion_matches_individual(values in proptest::collection::vec(arb_u256(), 1..24)) {
        // Mix of arbitrary residues including zeros (arb_u256 hits zero
        // via its edge bias; force one in as well).
        let dom = &p256().fn_;
        let m = *dom.modulus();
        let mut residues: Vec<U256> = values.iter().map(|v| v.rem(&m)).collect();
        residues.push(U256::ZERO);
        let originals = residues.clone();
        let mask = dom.batch_inv(&mut residues);
        for i in 0..originals.len() {
            if originals[i].is_zero() {
                prop_assert!(!mask[i]);
                prop_assert!(residues[i].is_zero());
            } else {
                prop_assert!(mask[i]);
                prop_assert_eq!(Some(residues[i]), dom.inv_prime(&originals[i]));
            }
        }
    }

    #[test]
    fn euclid_inverse_matches_fermat(a in arb_scalar()) {
        let dom = &p256().fn_;
        let am = dom.to_repr(&a);
        prop_assert_eq!(dom.inv(&am), dom.inv_prime(&am));
    }

    #[test]
    fn barrett_scalar_reduction_matches_long_division(limbs in any::<[u64; 8]>()) {
        let wide = U512(limbs);
        prop_assert_eq!(
            fabric_crypto::fq256::reduce_wide_scalar(&wide),
            wide.rem(&fabric_crypto::fq256::Fq256::N)
        );
    }

    #[test]
    fn dedicated_squaring_matches_mul(a in arb_u256()) {
        prop_assert_eq!(a.widening_sqr().0, a.widening_mul(&a).0);
    }

    #[test]
    fn reduce_once_matches_rem_for_digests(bytes in any::<[u8; 32]>()) {
        // Any 256-bit value is < 2n for the P-256 order.
        let n = p256().order;
        let v = U256::from_be_bytes(&bytes);
        prop_assert_eq!(v.reduce_once(&n), v.rem(&n));
    }

    #[test]
    fn verify_paths_agree(seed in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..128), corrupt in any::<bool>(), flip in 0u8..255) {
        let key = SigningKey::from_seed(&seed);
        let digest = sha256(&msg);
        let mut sig = key.sign_prehashed(&digest);
        if corrupt {
            // Bit-flip somewhere in (r, s).
            let mut raw = sig.to_raw_bytes();
            raw[(flip as usize) % 64] ^= 1 << (flip % 8);
            match Signature::from_raw_bytes(&raw) {
                Ok(s) => sig = s,
                Err(_) => return Ok(()), // out-of-range: both paths reject by range check
            }
        }
        let vk = key.verifying_key();
        prop_assert_eq!(
            vk.verify_prehashed(&digest, &sig).is_ok(),
            vk.verify_prehashed_shamir(&digest, &sig).is_ok()
        );
    }

    #[test]
    fn batch_sinv_matches_single(count in 1usize..8, seed in any::<[u8; 16]>()) {
        let keys: Vec<SigningKey> = (0..count)
            .map(|i| {
                let mut s = seed.to_vec();
                s.push(i as u8);
                SigningKey::from_seed(&s)
            })
            .collect();
        let digests: Vec<[u8; 32]> = (0..count).map(|i| sha256(&[i as u8])).collect();
        let sigs: Vec<_> = keys.iter().zip(&digests).map(|(k, d)| k.sign_prehashed(d)).collect();
        let sinvs = fabric_crypto::ecdsa::batch_s_inverses(&sigs);
        for i in 0..count {
            prop_assert!(keys[i]
                .verifying_key()
                .verify_prehashed_with_sinv(&digests[i], &sigs[i], &sinvs[i])
                .is_ok());
        }
    }

    #[test]
    fn der_roundtrip(r in arb_scalar(), s in arb_scalar()) {
        let sig = Signature { r, s };
        let der = encode_signature(&sig);
        prop_assert_eq!(decode_signature(&der).unwrap(), sig);
    }

    #[test]
    fn der_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let _ = decode_signature(&bytes);
    }
}
