//! Mempool-fed ordering: the cluster's block stream produced by the
//! admission front-end instead of taken verbatim from the scenario.
//!
//! The pregenerated mode transmits `scenario.generate()`'s blocks as-is
//! — including the injected duplicate tx ids and corrupted client
//! signatures, which the *validators* then flag. A real Fabric network
//! never orders most of that traffic: the ordering service sits behind
//! an admission front-end that deduplicates and signature-checks first.
//! [`mempool_feed_blocks`] reproduces that path: every envelope of the
//! generated stream is submitted to a [`Mempool`], verified by its
//! worker pool, and the survivors are drained — in admission order —
//! into a single-orderer [`OrderingService`] that cuts fresh blocks
//! signed by the scenario's deterministic orderer identity.
//!
//! The output is deterministic (admission order is the generated-stream
//! order; the verify pool never reorders), so the cluster can audit a
//! mempool-fed run against [`SerialOracle::from_blocks`] of the same
//! stream, bit-identically, exactly as it audits a pregenerated run.

use std::sync::Arc;

use fabric_mempool::{AdmitOutcome, Mempool, MempoolConfig, MempoolStats, SignatureCache};
use fabric_node::orderer::{OrdererConfig, OrderingService};
use fabric_protos::messages::Block;
use workload::StreamScenario;

/// Shape of the admission front-end feeding the orderer.
#[derive(Debug, Clone, Copy)]
pub struct MempoolFeed {
    /// The mempool's tuning (shards, TTL, workers, backpressure bound).
    pub mempool: MempoolConfig,
    /// Every `resubmit_every`-th envelope is submitted twice, modelling
    /// impatient clients; the dedup window must strip the copies
    /// without disturbing the stream. `0` disables resubmission.
    pub resubmit_every: usize,
    /// Admissions between verify-pool/drain cycles (the feed's batching
    /// granularity; any positive value yields the same blocks).
    pub verify_batch: usize,
    /// Signature-cache capacity of the admission-side shared cache.
    pub sig_cache: usize,
}

impl Default for MempoolFeed {
    fn default() -> Self {
        MempoolFeed {
            mempool: MempoolConfig::default(),
            resubmit_every: 3,
            verify_batch: 8,
            sig_cache: 8192,
        }
    }
}

/// How the cluster's block stream is produced.
#[derive(Debug, Clone)]
pub enum OrderingMode {
    /// Transmit the scenario's generated blocks verbatim (the original
    /// harness path: validators see every injected fault).
    Pregenerated,
    /// Push the generated envelopes through an admission mempool and
    /// let a fresh ordering service cut the blocks that survive.
    MempoolFed(MempoolFeed),
}

/// What the admission front-end produced for one scenario.
#[derive(Debug)]
pub struct FeedOutcome {
    /// The blocks the orderer cut from mempool drains.
    pub blocks: Vec<Block>,
    /// Mempool counters at the end of the feed (dedup hits = the
    /// scenario's duplicates plus resubmissions; invalid = its
    /// corrupted signatures).
    pub stats: MempoolStats,
}

/// Feeds every envelope of `scenario`'s generated stream through an
/// admission mempool into a single-orderer ordering service and
/// returns the blocks that result.
///
/// # Panics
///
/// Panics if the feed sheds (its purpose is a complete, deterministic
/// stream — pick `mempool.max_pending ≥ verify_batch + 1`), or on
/// mempool/orderer misconfiguration.
pub fn mempool_feed_blocks(scenario: &StreamScenario, feed: &MempoolFeed) -> FeedOutcome {
    assert!(feed.verify_batch > 0, "verify_batch must be positive");
    let generated = scenario.generate();
    let mempool = Mempool::with_msp(
        feed.mempool,
        Arc::new(SignatureCache::new(feed.sig_cache)),
        Some(scenario.validator_msp()),
    );
    let mut orderer = OrderingService::new(
        scenario.orderer(),
        OrdererConfig {
            block_size: scenario.block_size,
            cluster_size: 1,
            seed: scenario.seed,
        },
    );
    let mut blocks = Vec::new();
    let mut submitted = 0usize;
    let cycle = |mempool: &Mempool, orderer: &mut OrderingService, blocks: &mut Vec<Block>| {
        mempool.verify_pending();
        blocks.extend(
            orderer
                .ingest_mempool(mempool)
                .expect("single-orderer mode cannot lose its leader"),
        );
    };
    for envelope in generated.blocks.iter().flat_map(|b| &b.data.data) {
        let outcome = mempool.admit(envelope);
        assert_ne!(
            outcome,
            AdmitOutcome::Shed,
            "feed shed at submission {submitted}: raise max_pending above verify_batch"
        );
        submitted += 1;
        if feed.resubmit_every > 0 && submitted.is_multiple_of(feed.resubmit_every) {
            // The impatient client: the dedup window absorbs the copy
            // whatever state (pending/ready/recorded) the original is in.
            let dup = mempool.admit(envelope);
            assert!(
                matches!(dup, AdmitOutcome::Duplicate | AdmitOutcome::Malformed),
                "resubmitted envelope was {dup:?}, not deduplicated"
            );
        }
        if submitted.is_multiple_of(feed.verify_batch) {
            cycle(&mempool, &mut orderer, &mut blocks);
        }
    }
    cycle(&mempool, &mut orderer, &mut blocks);
    blocks.extend(orderer.cut_partial_block());
    FeedOutcome {
        blocks,
        stats: mempool.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> StreamScenario {
        StreamScenario {
            accounts: 3,
            block_size: 2,
            num_blocks: 4,
            stale_commit_pct: 25,
            corrupt_sigs: 2,
            duplicate_txs: 2,
            seed: 21,
            ..StreamScenario::default()
        }
    }

    #[test]
    fn feed_strips_duplicates_and_bad_signatures() {
        let scenario = scenario();
        let generated = scenario.generate();
        let submitted: usize = generated.blocks.iter().map(|b| b.data.data.len()).sum();
        let outcome = mempool_feed_blocks(&scenario, &MempoolFeed::default());
        let ordered: usize = outcome.blocks.iter().map(|b| b.data.data.len()).sum();
        // Exactly the distinct, validly-signed envelopes get ordered.
        assert_eq!(
            ordered as u64,
            outcome.stats.admitted - outcome.stats.invalid,
            "ordered = admitted − invalid"
        );
        assert!(
            outcome.stats.duplicates >= scenario.duplicate_txs as u64,
            "scenario duplicates deduplicated at admission"
        );
        assert_eq!(
            outcome.stats.invalid, scenario.corrupt_sigs as u64,
            "corrupted client signatures rejected by the verify pool"
        );
        assert!(ordered < submitted, "something was actually stripped");
        assert_eq!(outcome.stats.shed, 0);
        // Blocks chain from genesis (fresh orderer, fresh numbering).
        for (i, b) in outcome.blocks.iter().enumerate() {
            assert_eq!(b.header.number, i as u64);
        }
    }

    #[test]
    fn feed_is_deterministic_across_batching_and_workers() {
        let scenario = scenario();
        let base = mempool_feed_blocks(&scenario, &MempoolFeed::default());
        for (verify_batch, workers) in [(1, 1), (5, 8), (64, 3)] {
            let alt = mempool_feed_blocks(
                &scenario,
                &MempoolFeed {
                    verify_batch,
                    mempool: MempoolConfig {
                        verify_workers: workers,
                        ..MempoolConfig::default()
                    },
                    ..MempoolFeed::default()
                },
            );
            assert_eq!(
                base.blocks.len(),
                alt.blocks.len(),
                "batch={verify_batch} workers={workers}"
            );
            for (a, b) in base.blocks.iter().zip(&alt.blocks) {
                assert_eq!(
                    a.marshal(),
                    b.marshal(),
                    "batch={verify_batch} workers={workers}"
                );
            }
        }
    }
}
