//! A lossy, reordering, corrupting point-to-point link.
//!
//! Wraps a [`NetLink`] (bandwidth + latency + queueing) with the fault
//! model of a [`LinkFaults`]: per-packet loss, duplication, reordering
//! and corruption, each rolled from a deterministic per-link RNG.
//!
//! Every transmitted packet is framed with a 4-byte FCS trailer and the
//! trailer is verified (and stripped) at delivery — the Ethernet-NIC
//! behaviour. This matters for protocol correctness, not just realism:
//! without it, a corrupted packet whose Go-Back-N trailer happened to
//! survive would be *acknowledged* by the ARQ layer and then fail BMac
//! reassembly, losing the block despite a positive ack. With the FCS,
//! corruption degenerates to loss and retransmission recovers it.

use fabric_sim::{NetLink, SimTime};

use crate::faults::LinkFaults;

/// FCS trailer length (FNV-1a 32-bit).
pub const FCS_LEN: usize = 4;

fn fcs32(bytes: &[u8]) -> [u8; 4] {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h.to_be_bytes()
}

/// Counters of what the fault plane actually did to this link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkTally {
    /// Packets handed to the link for transmission (before faults).
    pub sent: u64,
    /// Packets dropped in flight.
    pub lost: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Packets delayed past their successors.
    pub reordered: u64,
    /// Packets corrupted in flight (delivered mangled; the receiver's
    /// FCS check turns them into drops).
    pub corrupted: u64,
    /// Deliveries rejected by the receiver-side FCS check.
    pub fcs_drops: u64,
    /// Feedback (ack/nack) messages lost on the reverse path.
    pub feedback_lost: u64,
}

/// A faulty data link plus its clean-but-lossy feedback path.
#[derive(Debug)]
pub struct LossyLink {
    data: NetLink,
    feedback: NetLink,
    faults: LinkFaults,
    rng: u64,
    tally: LinkTally,
}

impl LossyLink {
    /// Builds a link: `data` carries framed packets forward, `feedback`
    /// carries acks/nacks back (small and fixed-size, so only loss and
    /// latency apply to it).
    pub fn new(data: NetLink, feedback: NetLink, faults: LinkFaults) -> Self {
        LossyLink {
            data,
            feedback,
            rng: faults.seed.wrapping_mul(2).wrapping_add(1),
            faults,
            tally: Default::default(),
        }
    }

    /// SplitMix64 stream; returns a roll in `0..100`.
    fn roll(&mut self) -> u8 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.rng;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((x ^ (x >> 31)) % 100) as u8
    }

    /// Transmits one wire packet at `ready`: frames it with the FCS,
    /// occupies the link, applies the fault rolls, and returns the
    /// surviving deliveries as `(arrival_time, framed_bytes)`. Zero
    /// deliveries = the packet was lost; two = it was duplicated.
    pub fn transmit(&mut self, ready: SimTime, wire: &[u8]) -> Vec<(SimTime, Vec<u8>)> {
        self.tally.sent += 1;
        let mut framed = Vec::with_capacity(wire.len() + FCS_LEN);
        framed.extend_from_slice(wire);
        framed.extend_from_slice(&fcs32(wire));

        let copies = if self.roll() < self.faults.dup_pct {
            self.tally.duplicated += 1;
            2
        } else {
            1
        };
        let mut out = Vec::new();
        for _ in 0..copies {
            // Loss consumes link time too: the bits were sent, the drop
            // happens in flight.
            let mut arrival = self.data.transmit(ready, framed.len());
            if self.roll() < self.faults.loss_pct {
                self.tally.lost += 1;
                continue;
            }
            let mut bytes = framed.clone();
            if self.roll() < self.faults.corrupt_pct {
                let idx = (self.rng % bytes.len() as u64) as usize;
                bytes[idx] ^= 0x20;
                self.tally.corrupted += 1;
            }
            if self.roll() < self.faults.reorder_pct {
                arrival += self.faults.reorder_extra;
                self.tally.reordered += 1;
            }
            out.push((arrival, bytes));
        }
        out
    }

    /// Receiver-side FCS check: strips the trailer and returns the inner
    /// wire packet, or `None` (counted) when the frame was mangled —
    /// the NIC drops it and the ARQ layer never sees it.
    pub fn deliver(&mut self, framed: &[u8]) -> Option<Vec<u8>> {
        if framed.len() < FCS_LEN {
            self.tally.fcs_drops += 1;
            return None;
        }
        let (inner, fcs) = framed.split_at(framed.len() - FCS_LEN);
        if fcs != fcs32(inner) {
            self.tally.fcs_drops += 1;
            return None;
        }
        Some(inner.to_vec())
    }

    /// Sends one feedback message back at `ready`; returns its arrival
    /// time, or `None` when the reverse path loses it.
    pub fn transmit_feedback(&mut self, ready: SimTime) -> Option<SimTime> {
        // Acks are ~16 bytes on the wire.
        let arrival = self.feedback.transmit(ready, 16);
        if self.roll() < self.faults.feedback_loss_pct {
            self.tally.feedback_lost += 1;
            return None;
        }
        Some(arrival)
    }

    /// What the fault plane did so far.
    pub fn tally(&self) -> LinkTally {
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_link(faults: LinkFaults) -> LossyLink {
        LossyLink::new(NetLink::gigabit(), NetLink::gigabit(), faults)
    }

    #[test]
    fn clean_link_roundtrips_framed_packets() {
        let mut link = clean_link(LinkFaults::default());
        let deliveries = link.transmit(0, b"hello");
        assert_eq!(deliveries.len(), 1);
        let (at, framed) = &deliveries[0];
        assert!(*at > 0, "bandwidth + latency consumed");
        assert_eq!(framed.len(), 5 + FCS_LEN);
        assert_eq!(link.deliver(framed).as_deref(), Some(&b"hello"[..]));
        assert_eq!(link.tally().fcs_drops, 0);
    }

    #[test]
    fn corruption_is_caught_by_the_fcs() {
        let mut link = clean_link(LinkFaults {
            corrupt_pct: 100,
            ..LinkFaults::default()
        });
        let deliveries = link.transmit(0, b"payload");
        assert_eq!(deliveries.len(), 1);
        assert!(link.deliver(&deliveries[0].1).is_none());
        assert_eq!(link.tally().corrupted, 1);
        assert_eq!(link.tally().fcs_drops, 1);
    }

    #[test]
    fn loss_and_duplication_change_the_delivery_count() {
        let mut lossy = clean_link(LinkFaults {
            loss_pct: 100,
            ..LinkFaults::default()
        });
        assert!(lossy.transmit(0, b"x").is_empty());
        assert_eq!(lossy.tally().lost, 1);

        let mut dupy = clean_link(LinkFaults {
            dup_pct: 100,
            ..LinkFaults::default()
        });
        let out = dupy.transmit(0, b"x");
        assert_eq!(out.len(), 2);
        // The duplicate queues behind the original on the same link.
        assert!(out[1].0 > out[0].0);
    }

    #[test]
    fn reordering_pushes_a_packet_past_its_successor() {
        let mut link = clean_link(LinkFaults {
            reorder_pct: 100,
            reorder_extra: 1_000_000_000,
            ..LinkFaults::default()
        });
        let first = link.transmit(0, b"a").remove(0).0;
        let mut clean = clean_link(LinkFaults::default());
        let base = clean.transmit(0, b"a").remove(0).0;
        assert_eq!(first, base + 1_000_000_000);
    }

    #[test]
    fn fault_rolls_are_deterministic() {
        let faults = LinkFaults::lossy(30, 42);
        let run = |mut link: LossyLink| -> Vec<usize> {
            (0..50).map(|_| link.transmit(0, b"p").len()).collect()
        };
        let a = run(clean_link(faults));
        let b = run(clean_link(faults));
        assert_eq!(a, b);
        assert!(a.contains(&0), "some packets lost");
        assert!(a.contains(&1), "some packets survive");
    }

    #[test]
    fn feedback_loss_is_rolled_independently() {
        let mut link = clean_link(LinkFaults {
            feedback_loss_pct: 100,
            ..LinkFaults::default()
        });
        assert!(link.transmit_feedback(0).is_none());
        assert_eq!(link.tally().feedback_lost, 1);
        let mut clean = clean_link(LinkFaults::default());
        assert!(clean.transmit_feedback(0).is_some());
    }
}
