//! The serial-replay oracle and the divergence audit.
//!
//! A correct cluster, however many faults it absorbed, must end with
//! every surviving peer holding *exactly* the chain and state a single
//! serial `validate_and_commit` replay produces — bit-identical
//! validation flags, commit hashes, chain links, and state-database
//! contents. [`SerialOracle`] computes that ground truth once per
//! scenario; [`SerialOracle::audit`] compares one peer's recovered
//! storage against it.

use fabric_ledger::Ledger;
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_peer::TxValidationCode;
use fabric_protos::messages::Block;
use fabric_statedb::{StateDb, VersionedValue};
use workload::StreamScenario;

/// Ground truth for one scenario: the blocks and, after each prefix,
/// the flags/hashes/state a correct peer must hold.
#[derive(Debug)]
pub struct SerialOracle {
    /// The ordered block stream (setup blocks included).
    pub blocks: Vec<Block>,
    /// `codes[n]` = per-tx validation flags of block `n`.
    pub codes: Vec<Vec<TxValidationCode>>,
    /// `commit_hashes[n]` = commit hash of block `n`.
    pub commit_hashes: Vec<[u8; 32]>,
    /// `snapshots[k]` = full state after committing blocks `0..k`.
    pub snapshots: Vec<Vec<(String, VersionedValue)>>,
}

impl SerialOracle {
    /// Replays `scenario` through a fresh in-memory serial validator and
    /// records the reference after every block.
    pub fn build(scenario: &StreamScenario) -> Self {
        let blocks = scenario.generate().blocks;
        Self::from_blocks(scenario, blocks)
    }

    /// Builds the oracle for an arbitrary ordered block stream validated
    /// under `scenario`'s MSP and policies — the mempool-fed mode cuts
    /// its own blocks, and they need the same serial ground truth as a
    /// pregenerated stream.
    pub fn from_blocks(scenario: &StreamScenario, blocks: Vec<Block>) -> Self {
        // The oracle's replay is pinned to the *legacy* state backend
        // while the audited peers run the process default (sharded
        // unless overridden) — every audit whose state comparison
        // passes is therefore also a cross-backend differential check,
        // the same convention the fp256/fq256 oracles follow.
        let serial = ValidatorPipeline::with_state_backend(
            scenario.validator_msp(),
            scenario.policies(),
            2,
            fabric_statedb::StateBackend::Legacy,
        );
        let mut codes = Vec::new();
        let mut commit_hashes = Vec::new();
        let mut snapshots = vec![serial.state_db().snapshot()];
        for block in &blocks {
            let r = serial
                .validate_and_commit(block)
                .expect("serial replay of a generated scenario cannot fail");
            codes.push(r.codes.clone());
            commit_hashes.push(r.commit_hash);
            snapshots.push(serial.state_db().snapshot());
        }
        SerialOracle {
            blocks,
            codes,
            commit_hashes,
            snapshots,
        }
    }

    /// Chain length of the full scenario.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Audits one peer's storage against the oracle. When `require_full`
    /// (a surviving peer), the peer must hold the *whole* chain; a dead
    /// peer's store only has to be a serial *prefix*. Returns the
    /// audited height, or a description of the first divergence.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first divergence found.
    pub fn audit(
        &self,
        ledger: &Ledger,
        state_db: &StateDb,
        require_full: bool,
    ) -> Result<u64, String> {
        let h = ledger.height();
        if h > self.height() {
            return Err(format!(
                "peer holds {h} blocks but the scenario only has {}",
                self.height()
            ));
        }
        if require_full && h != self.height() {
            return Err(format!(
                "surviving peer stopped at height {h}, expected {}",
                self.height()
            ));
        }
        for n in 0..h {
            let cb = ledger
                .block(n)
                .ok_or_else(|| format!("block {n} unreadable below height {h}"))?;
            if cb.tx_filter != self.codes[n as usize] {
                return Err(format!(
                    "block {n} validation flags diverge: {:?} != {:?}",
                    cb.tx_filter, self.codes[n as usize]
                ));
            }
            if cb.commit_hash != self.commit_hashes[n as usize] {
                return Err(format!("block {n} commit hash diverges"));
            }
        }
        if let Err(e) = ledger.verify_chain() {
            return Err(format!("recovered chain fails verification: {e}"));
        }
        if state_db.snapshot() != self.snapshots[h as usize] {
            return Err(format!("state database diverges at height {h}"));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> StreamScenario {
        StreamScenario {
            accounts: 3,
            block_size: 2,
            num_blocks: 3,
            stale_commit_pct: 30,
            corrupt_sigs: 1,
            seed: 11,
            ..StreamScenario::default()
        }
    }

    #[test]
    fn serial_replay_passes_its_own_audit() {
        let scenario = scenario();
        let oracle = SerialOracle::build(&scenario);
        let replay = ValidatorPipeline::new(scenario.validator_msp(), scenario.policies(), 2);
        for block in &oracle.blocks {
            replay.validate_and_commit(block).unwrap();
        }
        let h = oracle
            .audit(&replay.ledger(), &replay.state_db(), true)
            .expect("serial replay is the reference");
        assert_eq!(h, oracle.height());
    }

    #[test]
    fn a_prefix_passes_only_the_prefix_audit() {
        let scenario = scenario();
        let oracle = SerialOracle::build(&scenario);
        let replay = ValidatorPipeline::new(scenario.validator_msp(), scenario.policies(), 2);
        for block in &oracle.blocks[..oracle.blocks.len() - 1] {
            replay.validate_and_commit(block).unwrap();
        }
        let err = oracle
            .audit(&replay.ledger(), &replay.state_db(), true)
            .unwrap_err();
        assert!(err.contains("stopped at height"), "{err}");
        let h = oracle
            .audit(&replay.ledger(), &replay.state_db(), false)
            .expect("a serial prefix audits clean for a dead peer");
        assert_eq!(h, oracle.height() - 1);
    }

    #[test]
    fn divergent_state_is_reported() {
        let scenario = scenario();
        let oracle = SerialOracle::build(&scenario);
        let replay = ValidatorPipeline::new(scenario.validator_msp(), scenario.policies(), 2);
        for block in &oracle.blocks {
            replay.validate_and_commit(block).unwrap();
        }
        // Tamper with one state key behind the validator's back.
        let db = replay.state_db();
        let mut batch = fabric_statedb::WriteBatch::new();
        batch.put("rogue_key", b"rogue".to_vec());
        db.apply(&batch, fabric_statedb::Height::new(999, 0));
        let err = oracle
            .audit(&replay.ledger(), &replay.state_db(), true)
            .unwrap_err();
        assert!(err.contains("state database diverges"), "{err}");
    }
}
