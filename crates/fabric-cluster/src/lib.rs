//! Closed-loop multi-peer cluster harness with fault injection.
//!
//! The rest of the workspace proves each layer of the Blockchain
//! Machine reproduction in isolation: the BMac wire protocol round
//! trips, the Go-Back-N layer survives loss, the streaming validator is
//! serially equivalent, the durable store recovers from any crash
//! point. This crate closes the loop and proves they compose: an
//! orderer drives sustained smallbank/DRM load over per-peer lossy
//! links into N durable validating peers while a declarative fault
//! plane kills nodes under load, stalls slow followers, and mangles
//! packets — and a divergence auditor then holds every surviving peer
//! to *bit-identical* agreement with a serial-replay oracle.
//!
//! * [`faults`] — the declarative fault plane ([`FaultPlan`]):
//!   per-link loss/duplication/reordering/corruption rates, peer kills
//!   at arbitrary packet boundaries, slow-follower stalls;
//! * [`link`] — [`LossyLink`]: bandwidth/latency/queueing plus the
//!   fault rolls, with FCS framing so corruption degrades to loss
//!   instead of poisoning the ARQ layer;
//! * [`cluster`] — the deterministic event-driven loop
//!   ([`run`]/[`run_with_oracle`]) wiring orderer → supervisor → link →
//!   peer stacks, with crash-rejoin via store recovery and
//!   `BmacReceiver::resuming_from`;
//! * [`oracle`] — [`SerialOracle`], the serial-replay ground truth and
//!   the audit that defines convergence;
//! * [`admission`] — the mempool-fed ordering mode
//!   ([`OrderingMode::MempoolFed`]): the scenario's envelopes pass
//!   through `fabric-mempool`'s admission front-end (dedup, pre-order
//!   signature verification, shedding) and a fresh ordering service
//!   cuts the surviving stream, which is then audited bit-identically
//!   like any other.
//!
//! See `README.md` for the topology diagram, the fault-plane knobs and
//! the scenario catalog exercised by `tests/tests/cluster_faults.rs`.

#![warn(missing_docs)]

pub mod admission;
pub mod cluster;
pub mod faults;
pub mod link;
pub mod oracle;

pub use admission::{mempool_feed_blocks, FeedOutcome, MempoolFeed, OrderingMode};
pub use cluster::{run, run_with_oracle, ClusterConfig, ClusterReport, LinkReport, PeerOutcome};
pub use faults::{FaultPlan, KillPoint, LinkFaults, StallSpec};
pub use link::{LinkTally, LossyLink};
pub use oracle::SerialOracle;
