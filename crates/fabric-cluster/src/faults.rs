//! The fault-injection plane: what can go wrong, where, and when.
//!
//! A [`FaultPlan`] is a declarative description of every fault a cluster
//! run injects — per-link packet faults ([`LinkFaults`]), peer kills at
//! arbitrary packet boundaries ([`KillPoint`]), and slow-follower stalls
//! ([`StallSpec`]). The plan is pure data: the same plan over the same
//! [`crate::ClusterConfig`] replays the same fault schedule, which is
//! what lets the proptest scenario matrix in
//! `tests/tests/cluster_faults.rs` shrink a failure to a reproducible
//! tuple.

use fabric_sim::{SimTime, MICROS};

/// Per-link packet-fault rates. All percentages are `0..=100` and are
/// rolled independently per packet from a deterministic per-link RNG
/// stream ([`LinkFaults::seed`]), so two links with the same rates still
/// fault at different packets.
#[derive(Debug, Clone, Copy)]
pub struct LinkFaults {
    /// Probability (%) a data packet is dropped in flight.
    pub loss_pct: u8,
    /// Probability (%) a data packet is delivered twice.
    pub dup_pct: u8,
    /// Probability (%) a data packet is delayed past its successors
    /// (reordering): its arrival is pushed back by
    /// [`LinkFaults::reorder_extra`].
    pub reorder_pct: u8,
    /// Probability (%) a data packet is corrupted in flight. The link
    /// frames every packet with an FCS trailer, so corruption is
    /// *detected at the NIC* and the packet dropped — the Go-Back-N
    /// layer never acks bytes the BMac receiver cannot decode.
    pub corrupt_pct: u8,
    /// Probability (%) an ack/nack on the reverse path is lost.
    pub feedback_loss_pct: u8,
    /// Extra delay applied to reordered packets.
    pub reorder_extra: SimTime,
    /// Seed of this link's fault RNG stream.
    pub seed: u64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            loss_pct: 0,
            dup_pct: 0,
            reorder_pct: 0,
            corrupt_pct: 0,
            feedback_loss_pct: 0,
            reorder_extra: 400 * MICROS,
            seed: 1,
        }
    }
}

impl LinkFaults {
    /// A uniformly lossy link: `pct`% loss, everything else clean.
    pub fn lossy(pct: u8, seed: u64) -> Self {
        LinkFaults {
            loss_pct: pct,
            seed,
            ..LinkFaults::default()
        }
    }
}

/// Kill a peer after it has processed `after_packets` packets *in its
/// current life*. Multiple kill points for the same peer apply to
/// successive lives (the second entry arms only after the first rejoin),
/// which is how the double-kill and kill-during-recovery scenarios are
/// written.
#[derive(Debug, Clone, Copy)]
pub struct KillPoint {
    /// Which peer dies.
    pub peer: usize,
    /// Packets the peer processes before the crash — the kill lands at
    /// an arbitrary packet boundary, mid-block more often than not.
    pub after_packets: u64,
    /// Delay from the crash to the rejoin (store recovery + catch-up).
    /// `None` means the peer stays dead: the divergence audit then
    /// requires only that its on-disk store recovers to a serial
    /// *prefix*, while the survivors must reach the full chain.
    pub rejoin_after: Option<SimTime>,
}

/// Freeze a peer's ingest between `from` and `until` (a GC pause, a
/// noisy neighbor): packets arriving inside the window are held and
/// processed at `until` in arrival order. The sender keeps timing out
/// and retransmitting into the stall, which is exactly the
/// retransmission-storm regime the supervisor's cap bounds.
#[derive(Debug, Clone, Copy)]
pub struct StallSpec {
    /// Which peer stalls.
    pub peer: usize,
    /// Stall window start (absolute sim time).
    pub from: SimTime,
    /// Stall window end (absolute sim time).
    pub until: SimTime,
}

/// The full fault schedule of one cluster run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Faults applied to every orderer→peer link unless overridden.
    pub default_link: LinkFaults,
    /// Per-peer overrides of [`FaultPlan::default_link`].
    pub link_overrides: Vec<(usize, LinkFaults)>,
    /// Peer kills, in per-peer life order.
    pub kills: Vec<KillPoint>,
    /// Slow-follower stalls.
    pub stalls: Vec<StallSpec>,
}

impl FaultPlan {
    /// A plan with the same faults on every link and no kills/stalls.
    pub fn uniform(link: LinkFaults) -> Self {
        FaultPlan {
            default_link: link,
            ..FaultPlan::default()
        }
    }

    /// The faults of peer `peer`'s link, with the per-link seed
    /// decorrelated by peer index so identical rates still fault at
    /// different packets on different links.
    pub fn link_for(&self, peer: usize) -> LinkFaults {
        let mut faults = self
            .link_overrides
            .iter()
            .rev()
            .find(|(p, _)| *p == peer)
            .map(|(_, f)| *f)
            .unwrap_or(self.default_link);
        faults.seed = faults.seed.wrapping_add(0x9E37 * (peer as u64 + 1));
        faults
    }

    /// Kill points for `peer`, in the order they arm (life order).
    pub fn kills_for(&self, peer: usize) -> Vec<KillPoint> {
        self.kills
            .iter()
            .filter(|k| k.peer == peer)
            .copied()
            .collect()
    }

    /// The stall window covering `peer` at time `at`, if any.
    pub fn stall_at(&self, peer: usize, at: SimTime) -> Option<&StallSpec> {
        self.stalls
            .iter()
            .find(|s| s.peer == peer && s.from <= at && at < s.until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_overrides_win_and_seeds_decorrelate() {
        let plan = FaultPlan {
            default_link: LinkFaults::lossy(5, 7),
            link_overrides: vec![(1, LinkFaults::lossy(50, 7))],
            ..FaultPlan::default()
        };
        assert_eq!(plan.link_for(0).loss_pct, 5);
        assert_eq!(plan.link_for(1).loss_pct, 50);
        assert_ne!(plan.link_for(0).seed, plan.link_for(2).seed);
    }

    #[test]
    fn stall_window_is_half_open() {
        let plan = FaultPlan {
            stalls: vec![StallSpec {
                peer: 0,
                from: 10,
                until: 20,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.stall_at(0, 10).is_some());
        assert!(plan.stall_at(0, 19).is_some());
        assert!(plan.stall_at(0, 20).is_none());
        assert!(plan.stall_at(1, 15).is_none());
    }

    #[test]
    fn kills_arm_in_listed_order() {
        let plan = FaultPlan {
            kills: vec![
                KillPoint {
                    peer: 2,
                    after_packets: 9,
                    rejoin_after: Some(5),
                },
                KillPoint {
                    peer: 2,
                    after_packets: 3,
                    rejoin_after: None,
                },
            ],
            ..FaultPlan::default()
        };
        let kills = plan.kills_for(2);
        assert_eq!(kills.len(), 2);
        assert_eq!(kills[0].after_packets, 9);
        assert_eq!(kills[1].rejoin_after, None);
        assert!(plan.kills_for(0).is_empty());
    }
}
