//! The closed-loop cluster: one orderer, N validating peers, faulty
//! links, and a deterministic event-driven clock.
//!
//! Topology and flow:
//!
//! 1. The **orderer** releases the scenario's blocks on a pacing
//!    schedule ([`ClusterConfig::block_interval`], optionally in
//!    [`ClusterConfig::burst`]-sized groups), encodes each through a
//!    per-peer [`BmacSender`] and hands the wire packets to that peer's
//!    [`RetransmitSupervisor`] (Go-Back-N window + adaptive RTO).
//! 2. Each packet crosses a [`LossyLink`] — bandwidth, latency,
//!    queueing, plus the [`FaultPlan`]'s loss/duplication/reordering/
//!    corruption rolls — framed with an FCS so corruption is dropped at
//!    the NIC instead of being acked and then failing reassembly.
//! 3. Each **peer** runs the full receive stack: [`GoBackNReceiver`]
//!    (ARQ, feedback generation) → [`BmacReceiver`] (block reassembly)
//!    → a durable [`StreamValidator`] over a [`FabricStore`]
//!    (write-ahead journal + block store).
//! 4. The fault plane can **kill** any peer at an arbitrary packet
//!    boundary (dropping its validator mid-flight leaves the store tail
//!    torn-but-recoverable), **rejoin** it after a delay
//!    (`FabricStore::open` recovery + `BmacReceiver::resuming_from`
//!    catch-up on a fresh connection generation), and **stall** a slow
//!    follower.
//! 5. When the event queue drains, every surviving peer is audited
//!    against the [`SerialOracle`]: bit-identical validation flags,
//!    commit hashes, chain links and state. Dead peers must still
//!    recover to a serial *prefix*.
//!
//! Time is [`fabric_sim`] virtual nanoseconds end to end — the same
//! run replays the same packet schedule, which is what makes the
//! proptest fault matrix in `tests/tests/cluster_faults.rs` viable.
//! (The *recovered height* after a kill does depend on OS thread timing
//! inside the killed validator, so rejoin traffic varies run to run;
//! the audit outcome — convergence — does not.)

use std::path::PathBuf;
use std::sync::Arc;

use bmac_protocol::{
    BmacReceiver, BmacSender, Feedback, GoBackNReceiver, RetransmitError, RetransmitSupervisor,
    RtoPolicy,
};
use fabric_peer::pipeline::ValidatorPipeline;
use fabric_peer::{StreamConfig, StreamValidator};
use fabric_sim::{as_millis, EventQueue, NetLink, Samples, SimTime, MICROS};
use fabric_store::{FabricStore, StoreConfig};
use workload::StreamScenario;

use crate::admission::{mempool_feed_blocks, OrderingMode};
use crate::faults::{FaultPlan, KillPoint};
use crate::link::{LinkTally, LossyLink};
use crate::oracle::SerialOracle;

/// Signature-cache capacity of every peer validator.
const SIG_CACHE: usize = 8192;
/// vscc workers per peer validator.
const WORKERS: usize = 2;

/// Static shape of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of validating peers.
    pub peers: usize,
    /// The workload scenario every peer must agree on.
    pub scenario: StreamScenario,
    /// Directory holding one durable store per peer (`peer-<i>/`).
    pub root: PathBuf,
    /// Go-Back-N window (packets) per orderer→peer connection.
    pub window: usize,
    /// Retransmission timer policy (shared by every link).
    pub rto: RtoPolicy,
    /// Durable-store tuning of every peer.
    pub store: StoreConfig,
    /// Streaming-validator shape of every peer.
    pub stream: StreamConfig,
    /// Pacing between block releases at the orderer.
    pub block_interval: SimTime,
    /// Blocks released per interval (burst traffic when > 1).
    pub burst: usize,
    /// Backpressure cap: when a peer's supervisor backlog (packets
    /// queued behind the window) reaches this, the orderer defers that
    /// peer's next block instead of queueing more (counted as shed).
    pub max_backlog: usize,
    /// Data/feedback link bandwidth (bits per second).
    pub bandwidth_bps: u64,
    /// Data/feedback link propagation latency.
    pub link_latency: SimTime,
    /// How the block stream is produced: the scenario's pregenerated
    /// blocks verbatim, or re-cut by a mempool-fed ordering service.
    pub ordering: OrderingMode,
}

impl ClusterConfig {
    /// A 3-peer gigabit cluster over `scenario`, stores under `root`.
    pub fn new(root: impl Into<PathBuf>, scenario: StreamScenario) -> Self {
        ClusterConfig {
            peers: 3,
            scenario,
            root: root.into(),
            window: 8,
            rto: RtoPolicy::default(),
            store: StoreConfig {
                group_commit: 1,
                ..StoreConfig::default()
            },
            stream: StreamConfig::default(),
            block_interval: 500 * MICROS,
            burst: 1,
            max_backlog: 64,
            bandwidth_bps: 1_000_000_000,
            link_latency: 100 * MICROS,
            ordering: OrderingMode::Pregenerated,
        }
    }
}

/// Events of the cluster simulation. Data and feedback deliveries carry
/// the connection generation they were sent on; events from a
/// connection that died in the meantime are discarded on arrival.
#[derive(Debug)]
enum Ev {
    /// The orderer has released blocks `..hi`.
    Release(usize),
    /// A framed data packet arrives at a peer.
    Deliver {
        peer: usize,
        conn: u64,
        framed: Vec<u8>,
    },
    /// An ack/nack arrives back at the orderer.
    Feedback {
        peer: usize,
        conn: u64,
        fb: Feedback,
    },
    /// A retransmission-timer wakeup for one connection.
    Timer { peer: usize, conn: u64 },
    /// A killed peer comes back.
    Rejoin { peer: usize },
}

/// One peer's receive stack and durable storage.
struct PeerNode {
    dir: PathBuf,
    conn: u64,
    alive: bool,
    gbn: GoBackNReceiver,
    bmac: BmacReceiver,
    store: Option<FabricStore>,
    validator: Option<StreamValidator>,
    delivered_in_life: u64,
    /// Remaining kill points, front = next to arm.
    kills: Vec<KillPoint>,
    rejoins: u32,
    rejoined_at: Option<SimTime>,
}

/// The orderer's per-peer send stack.
struct Uplink {
    sender: BmacSender,
    sup: RetransmitSupervisor,
    link: LossyLink,
    /// Next block index to hand to the sender.
    cursor: usize,
    /// The breaker tripped (or the peer died): stop transmitting until
    /// the connection is replaced at rejoin.
    down: bool,
    shed: u64,
    unreachable_events: u32,
    // Stats carried over from connection generations torn down at
    // rejoin (the supervisor is replaced wholesale).
    acc_retrans: u64,
    acc_timeouts: u64,
    acc_suppressed: u64,
    acc_max_episode: u64,
}

/// Final state of one peer after the audit.
#[derive(Debug)]
pub struct PeerOutcome {
    /// The peer survived to the end of the run.
    pub alive: bool,
    /// Audited chain height.
    pub height: u64,
    /// Crash-rejoin cycles the peer went through.
    pub rejoins: u32,
    /// `None` when the peer is bit-identical to the oracle (full chain
    /// for survivors, a serial prefix for dead peers); otherwise the
    /// first divergence found.
    pub divergence: Option<String>,
}

/// Per-link transport statistics.
#[derive(Debug)]
pub struct LinkReport {
    /// What the fault plane injected.
    pub tally: LinkTally,
    /// Packets retransmitted (all connection generations).
    pub retransmissions: u64,
    /// Retransmission-timer expiries.
    pub timeouts: u64,
    /// NACKs suppressed by the storm control.
    pub suppressed_nacks: u64,
    /// Worst single stuck-base episode, across generations.
    pub max_episode_retransmissions: u64,
    /// The policy's cap that episode must stay under.
    pub storm_cap: u64,
    /// Blocks deferred by backpressure at the orderer.
    pub shed: u64,
    /// Times the circuit breaker declared the peer unreachable.
    pub unreachable_events: u32,
}

/// Everything a cluster run produced.
#[derive(Debug)]
pub struct ClusterReport {
    /// Per-peer audit outcomes.
    pub peers: Vec<PeerOutcome>,
    /// Per-link transport statistics.
    pub links: Vec<LinkReport>,
    /// End-to-end block latency samples (ms of sim time): orderer
    /// release → complete delivery into the peer's validator.
    pub delivery_latency_ms: Samples,
    /// Sim time from each rejoin to that peer's full catch-up.
    pub catchup: Vec<SimTime>,
    /// Sim time when the last event fired.
    pub sim_duration: SimTime,
    /// Blocks in the scenario.
    pub blocks: u64,
    /// Events processed.
    pub events: u64,
}

impl ClusterReport {
    /// All peers audited clean.
    pub fn converged(&self) -> bool {
        self.peers.iter().all(|p| p.divergence.is_none())
    }

    /// Panics with every divergence when the cluster did not converge.
    pub fn assert_converged(&self) {
        let diverged: Vec<String> = self
            .peers
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                p.divergence
                    .as_ref()
                    .map(|d| format!("peer {i} (alive={}, h={}): {d}", p.alive, p.height))
            })
            .collect();
        assert!(
            diverged.is_empty(),
            "cluster diverged:\n{}",
            diverged.join("\n")
        );
    }

    /// No stuck-base episode on any link exceeded the storm cap.
    pub fn within_storm_cap(&self) -> bool {
        self.links
            .iter()
            .all(|l| l.max_episode_retransmissions <= l.storm_cap)
    }

    /// Total retransmitted packets across all links and generations.
    pub fn total_retransmissions(&self) -> u64 {
        self.links.iter().map(|l| l.retransmissions).sum()
    }
}

/// Runs the cluster described by `config` under `plan`, building the
/// serial oracle first — from the scenario's pregenerated blocks, or
/// from the blocks a mempool-fed ordering service cuts, per
/// [`ClusterConfig::ordering`]. Prefer [`run_with_oracle`] when several
/// runs share a scenario — the oracle replay is the expensive part.
pub fn run(config: &ClusterConfig, plan: &FaultPlan) -> ClusterReport {
    let oracle = match &config.ordering {
        OrderingMode::Pregenerated => SerialOracle::build(&config.scenario),
        OrderingMode::MempoolFed(feed) => {
            let outcome = mempool_feed_blocks(&config.scenario, feed);
            SerialOracle::from_blocks(&config.scenario, outcome.blocks)
        }
    };
    run_with_oracle(config, plan, &oracle)
}

/// Runs the cluster against a pre-built oracle.
///
/// # Panics
///
/// Panics on harness bugs (undeliverable event budget, store-open
/// failure at rejoin) — *divergence* is reported, not panicked, so the
/// proptest matrix can shrink it.
pub fn run_with_oracle(
    config: &ClusterConfig,
    plan: &FaultPlan,
    oracle: &SerialOracle,
) -> ClusterReport {
    assert!(config.peers > 0, "a cluster needs at least one peer");
    assert!(config.burst > 0, "burst must be positive");
    let mut sim = Sim::new(config, plan, oracle);
    sim.schedule_releases();
    sim.drain();
    sim.into_report()
}

struct Sim<'a> {
    cfg: &'a ClusterConfig,
    plan: &'a FaultPlan,
    oracle: &'a SerialOracle,
    q: EventQueue<Ev>,
    peers: Vec<PeerNode>,
    uplinks: Vec<Uplink>,
    /// Blocks `..released` have been released by the orderer.
    released: usize,
    release_time: Vec<SimTime>,
    latency: Samples,
    catchup: Vec<SimTime>,
    events: u64,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a ClusterConfig, plan: &'a FaultPlan, oracle: &'a SerialOracle) -> Self {
        let peers = (0..cfg.peers)
            .map(|i| {
                let dir = cfg.root.join(format!("peer-{i}"));
                std::fs::create_dir_all(&dir).expect("create peer store dir");
                let store = FabricStore::open(&dir, cfg.store).expect("open fresh peer store");
                let validator = make_validator(&cfg.scenario, &store, cfg.stream);
                PeerNode {
                    dir,
                    conn: 0,
                    alive: true,
                    gbn: GoBackNReceiver::new(),
                    bmac: BmacReceiver::new(),
                    store: Some(store),
                    validator: Some(validator),
                    delivered_in_life: 0,
                    kills: plan.kills_for(i),
                    rejoins: 0,
                    rejoined_at: None,
                }
            })
            .collect();
        let uplinks = (0..cfg.peers)
            .map(|i| {
                let faults = plan.link_for(i);
                Uplink {
                    sender: BmacSender::new(),
                    sup: RetransmitSupervisor::new(cfg.window, cfg.rto),
                    link: LossyLink::new(
                        NetLink::new(cfg.bandwidth_bps, cfg.link_latency),
                        NetLink::new(cfg.bandwidth_bps, cfg.link_latency),
                        faults,
                    ),
                    cursor: 0,
                    down: false,
                    shed: 0,
                    unreachable_events: 0,
                    acc_retrans: 0,
                    acc_timeouts: 0,
                    acc_suppressed: 0,
                    acc_max_episode: 0,
                }
            })
            .collect();
        let n = oracle.blocks.len();
        Sim {
            cfg,
            plan,
            oracle,
            q: EventQueue::new(),
            peers,
            uplinks,
            released: 0,
            release_time: vec![0; n],
            latency: Samples::new(),
            catchup: Vec::new(),
            events: 0,
        }
    }

    fn schedule_releases(&mut self) {
        let n = self.oracle.blocks.len();
        let mut t = 0;
        let mut i = 0;
        while i < n {
            let hi = (i + self.cfg.burst).min(n);
            for b in i..hi {
                self.release_time[b] = t;
            }
            self.q.schedule_at(t, Ev::Release(hi));
            i = hi;
            t += self.cfg.block_interval;
        }
    }

    fn drain(&mut self) {
        // Convergence budget: far above anything a working cluster
        // needs, so exhausting it means the protocol livelocked.
        let cap = 500_000 + self.oracle.blocks.len() as u64 * self.cfg.peers as u64 * 10_000;
        while let Some((now, ev)) = self.q.pop() {
            self.events += 1;
            assert!(
                self.events < cap,
                "cluster failed to converge: event budget exhausted at t={now}"
            );
            match ev {
                Ev::Release(hi) => {
                    self.released = self.released.max(hi);
                    for p in 0..self.peers.len() {
                        self.pump(p, now);
                    }
                }
                Ev::Deliver { peer, conn, framed } => self.on_deliver(peer, conn, framed, now),
                Ev::Feedback { peer, conn, fb } => self.on_feedback(peer, conn, fb, now),
                Ev::Timer { peer, conn } => self.on_timer(peer, conn, now),
                Ev::Rejoin { peer } => self.rejoin(peer, now),
            }
        }
    }

    /// Hands released blocks to `p`'s send stack until the release
    /// horizon or the backpressure cap stops it.
    fn pump(&mut self, p: usize, now: SimTime) {
        loop {
            if self.uplinks[p].down || !self.peers[p].alive {
                return;
            }
            if self.uplinks[p].cursor >= self.released {
                return;
            }
            if self.uplinks[p].sup.backlog() >= self.cfg.max_backlog {
                // Shed at the source: the block stays unsent until
                // feedback drains the backlog (counted per deferral).
                self.uplinks[p].shed += 1;
                return;
            }
            let cursor = self.uplinks[p].cursor;
            self.uplinks[p].cursor += 1;
            let packets = self.uplinks[p]
                .sender
                .send_block(&self.oracle.blocks[cursor])
                .expect("generated blocks encode");
            let mut wires = Vec::new();
            for packet in packets {
                let wire = packet.encode().expect("BMac packets encode");
                wires.extend(self.uplinks[p].sup.send(now, wire));
            }
            self.transmit(p, now, wires);
        }
    }

    /// Pushes wire packets through `p`'s lossy link and schedules the
    /// surviving deliveries; re-arms the retransmission timer.
    fn transmit(&mut self, p: usize, now: SimTime, wires: Vec<Vec<u8>>) {
        let conn = self.peers[p].conn;
        for wire in wires {
            for (at, framed) in self.uplinks[p].link.transmit(now, &wire) {
                self.q.schedule_at(
                    at,
                    Ev::Deliver {
                        peer: p,
                        conn,
                        framed,
                    },
                );
            }
        }
        self.arm_timer(p);
    }

    /// Schedules a timer wakeup at the supervisor's current deadline.
    /// Stale wakeups (the deadline moved) are no-ops at pop time.
    fn arm_timer(&mut self, p: usize) {
        if self.uplinks[p].down {
            return;
        }
        if let Some(dl) = self.uplinks[p].sup.next_deadline() {
            let conn = self.peers[p].conn;
            self.q.schedule_at(dl, Ev::Timer { peer: p, conn });
        }
    }

    fn on_deliver(&mut self, p: usize, conn: u64, framed: Vec<u8>, now: SimTime) {
        if !self.peers[p].alive || self.peers[p].conn != conn {
            return; // stale: sent to a connection that died
        }
        if let Some(stall) = self.plan.stall_at(p, now) {
            // Slow follower: hold the packet until the stall ends
            // (stable queue order keeps arrivals in order).
            let until = stall.until;
            self.q.schedule_at(
                until,
                Ev::Deliver {
                    peer: p,
                    conn,
                    framed,
                },
            );
            return;
        }
        if let Some(k) = self.peers[p].kills.first().copied() {
            if self.peers[p].delivered_in_life >= k.after_packets {
                self.kill(p, now, k);
                return;
            }
        }
        self.peers[p].delivered_in_life += 1;
        // NIC-level FCS check: mangled frames are dropped here, before
        // the ARQ layer can acknowledge them.
        let Some(wire) = self.uplinks[p].link.deliver(&framed) else {
            return;
        };
        let (inner, fb) = match self.peers[p].gbn.on_wire(&wire) {
            Ok(x) => x,
            Err(_) => return, // unframeable; treat as loss
        };
        if let Some(at) = self.uplinks[p].link.transmit_feedback(now) {
            self.q.schedule_at(at, Ev::Feedback { peer: p, conn, fb });
        }
        let Some(data) = inner else { return };
        let received = self.peers[p]
            .bmac
            .ingest(&data)
            .expect("FCS-clean in-order packets reassemble");
        for rb in received {
            let number = rb.block.header.number;
            self.latency.add(as_millis(
                now.saturating_sub(self.release_time[number as usize]),
            ));
            self.peers[p]
                .validator
                .as_ref()
                .expect("alive peer has a stream session")
                .push(rb.block)
                .expect("Go-Back-N delivers each block exactly once");
            if number + 1 == self.oracle.height() {
                if let Some(rj) = self.peers[p].rejoined_at.take() {
                    self.catchup.push(now - rj);
                }
            }
        }
    }

    fn on_feedback(&mut self, p: usize, conn: u64, fb: Feedback, now: SimTime) {
        if self.peers[p].conn != conn || self.uplinks[p].down {
            return;
        }
        let wires = self.uplinks[p].sup.on_feedback(now, fb);
        self.transmit(p, now, wires);
        // Acks may have drained the backlog below the cap.
        self.pump(p, now);
    }

    fn on_timer(&mut self, p: usize, conn: u64, now: SimTime) {
        if self.peers[p].conn != conn || self.uplinks[p].down {
            return;
        }
        match self.uplinks[p].sup.poll(now) {
            Ok(wires) => {
                if wires.is_empty() {
                    self.arm_timer(p); // deadline moved; chase it
                } else {
                    self.transmit(p, now, wires);
                }
            }
            Err(RetransmitError::PeerUnreachable { .. }) => {
                // The breaker tripped: the orderer declares the peer
                // down and stops transmitting until a rejoin replaces
                // the connection.
                self.uplinks[p].down = true;
                self.uplinks[p].unreachable_events += 1;
            }
        }
    }

    /// Crashes peer `p`: the validator session is aborted mid-flight
    /// (storage deliberately not flushed — the on-disk tail is torn at
    /// whatever group-commit boundaries the OS already has) and every
    /// handle is dropped. Packets already in flight to the old
    /// connection will be discarded on arrival.
    fn kill(&mut self, p: usize, now: SimTime, k: KillPoint) {
        let peer = &mut self.peers[p];
        peer.kills.remove(0);
        peer.alive = false;
        peer.rejoined_at = None;
        if let Some(v) = peer.validator.take() {
            v.abort();
        }
        peer.store = None;
        if let Some(delay) = k.rejoin_after {
            self.q.schedule_at(now + delay, Ev::Rejoin { peer: p });
        }
    }

    /// Rejoins peer `p`: recover the durable store (min-rule over the
    /// journal and block store), resume the stream at the recovered
    /// height, and replace the whole connection — fresh identity-cache
    /// sender, fresh ARQ pair, next generation number — with the
    /// orderer's cursor reset to the recovered height.
    fn rejoin(&mut self, p: usize, now: SimTime) {
        let store = FabricStore::open(&self.peers[p].dir, self.cfg.store)
            .expect("crash recovery must reopen the store");
        let k = store.ledger().height();
        let validator = make_validator(&self.cfg.scenario, &store, self.cfg.stream);
        let peer = &mut self.peers[p];
        peer.validator = Some(validator);
        peer.bmac = BmacReceiver::resuming_from(k);
        peer.gbn = GoBackNReceiver::new();
        peer.store = Some(store);
        peer.conn += 1;
        peer.alive = true;
        peer.delivered_in_life = 0;
        peer.rejoined_at = Some(now);
        peer.rejoins += 1;
        let up = &mut self.uplinks[p];
        up.acc_retrans += up.sup.retransmissions();
        up.acc_timeouts += up.sup.timeouts();
        up.acc_suppressed += up.sup.suppressed_nacks();
        up.acc_max_episode = up.acc_max_episode.max(up.sup.max_episode_retransmissions());
        up.sender = BmacSender::new();
        up.sup = RetransmitSupervisor::new(self.cfg.window, self.cfg.rto);
        up.down = false;
        up.cursor = k as usize;
        self.pump(p, now);
    }

    /// Final audit: close every surviving session (flushing storage),
    /// then compare each peer against the oracle.
    fn into_report(mut self) -> ClusterReport {
        let sim_duration = self.q.now();
        let mut outcomes = Vec::with_capacity(self.peers.len());
        for peer in &mut self.peers {
            if peer.alive {
                let session = peer.validator.take().expect("alive peer has a session");
                let finish_err = match session.finish() {
                    Ok(_) => None,
                    Err(e) => Some(format!("stream close failed: {e}")),
                };
                let store = peer.store.as_ref().expect("alive peer holds its store");
                let (height, divergence) = match finish_err {
                    Some(d) => (store.ledger().height(), Some(d)),
                    None => match self.oracle.audit(&store.ledger(), &store.state_db(), true) {
                        Ok(h) => (h, None),
                        Err(d) => (store.ledger().height(), Some(d)),
                    },
                };
                outcomes.push(PeerOutcome {
                    alive: true,
                    height,
                    rejoins: peer.rejoins,
                    divergence,
                });
            } else {
                // A peer that never rejoined: its torn store must still
                // recover to a serial prefix.
                let (height, divergence) = match FabricStore::open(&peer.dir, self.cfg.store) {
                    Ok(store) => {
                        match self.oracle.audit(&store.ledger(), &store.state_db(), false) {
                            Ok(h) => (h, None),
                            Err(d) => (store.ledger().height(), Some(d)),
                        }
                    }
                    Err(e) => (0, Some(format!("dead peer store failed recovery: {e}"))),
                };
                outcomes.push(PeerOutcome {
                    alive: false,
                    height,
                    rejoins: peer.rejoins,
                    divergence,
                });
            }
        }
        let links = self
            .uplinks
            .iter()
            .map(|up| LinkReport {
                tally: up.link.tally(),
                retransmissions: up.acc_retrans + up.sup.retransmissions(),
                timeouts: up.acc_timeouts + up.sup.timeouts(),
                suppressed_nacks: up.acc_suppressed + up.sup.suppressed_nacks(),
                max_episode_retransmissions: up
                    .acc_max_episode
                    .max(up.sup.max_episode_retransmissions()),
                storm_cap: up.sup.storm_cap(),
                shed: up.shed,
                unreachable_events: up.unreachable_events,
            })
            .collect();
        ClusterReport {
            peers: outcomes,
            links,
            delivery_latency_ms: self.latency,
            catchup: self.catchup,
            sim_duration,
            blocks: self.oracle.height(),
            events: self.events,
        }
    }
}

fn make_validator(
    scenario: &StreamScenario,
    store: &FabricStore,
    stream: StreamConfig,
) -> StreamValidator {
    let pipeline = ValidatorPipeline::with_storage(
        scenario.validator_msp(),
        scenario.policies(),
        WORKERS,
        SIG_CACHE,
        store.state_db(),
        store.ledger(),
    );
    StreamValidator::new(Arc::new(pipeline), stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::LinkFaults;

    fn tempdir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("bmac-cluster-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_scenario() -> StreamScenario {
        StreamScenario {
            accounts: 3,
            block_size: 2,
            num_blocks: 4,
            stale_commit_pct: 25,
            corrupt_sigs: 1,
            duplicate_txs: 1,
            seed: 21,
            ..StreamScenario::default()
        }
    }

    #[test]
    fn clean_cluster_converges_bit_identically() {
        let dir = tempdir("clean");
        let cfg = ClusterConfig {
            peers: 2,
            ..ClusterConfig::new(&dir, small_scenario())
        };
        let report = run(&cfg, &FaultPlan::default());
        report.assert_converged();
        assert!(report.within_storm_cap());
        assert_eq!(report.total_retransmissions(), 0, "clean links");
        assert_eq!(report.peers.len(), 2);
        for p in &report.peers {
            assert!(p.alive);
            assert_eq!(p.height, report.blocks);
        }
        assert_eq!(
            report.delivery_latency_ms.len() as u64,
            report.blocks * 2,
            "every block sampled on every peer"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The ISSUE's acceptance gate: a mempool-fed cluster run — dedup,
    /// pre-ordering verification, re-cut blocks — must stay
    /// bit-identical to the serial oracle of the stream it produced.
    #[test]
    fn mempool_fed_cluster_matches_its_serial_oracle() {
        use crate::admission::MempoolFeed;
        let dir = tempdir("mempool-fed");
        let cfg = ClusterConfig {
            peers: 2,
            ordering: OrderingMode::MempoolFed(MempoolFeed::default()),
            ..ClusterConfig::new(&dir, small_scenario())
        };
        let report = run(&cfg, &FaultPlan::default());
        report.assert_converged();
        assert!(report.blocks > 0, "the feed produced a stream");
        for p in &report.peers {
            assert!(p.alive);
            assert_eq!(p.height, report.blocks);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lossy_links_recover_through_retransmission() {
        let dir = tempdir("lossy");
        let cfg = ClusterConfig {
            peers: 2,
            ..ClusterConfig::new(&dir, small_scenario())
        };
        let plan = FaultPlan::uniform(LinkFaults {
            loss_pct: 10,
            dup_pct: 5,
            reorder_pct: 5,
            corrupt_pct: 5,
            feedback_loss_pct: 5,
            ..LinkFaults::default()
        });
        let report = run(&cfg, &plan);
        report.assert_converged();
        assert!(report.within_storm_cap());
        assert!(report.total_retransmissions() > 0, "loss exercised the ARQ");
        let injected: u64 = report
            .links
            .iter()
            .map(|l| l.tally.lost + l.tally.corrupted)
            .sum();
        assert!(injected > 0, "the fault plane actually fired");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
