//! Protobuf wire format and Hyperledger Fabric message layering.
//!
//! Fabric stores blocks as deeply nested marshaled protobufs — "there
//! could be up to 23 layers in the marshaled block protobuf" (paper §3.2)
//! — and the software validator pays ~10% of its time unmarshaling them
//! (Figure 3a). This crate rebuilds that stack from scratch:
//!
//! * [`wire`] — the varint/length-delimited protobuf wire format with a
//!   decode-effort meter;
//! * [`messages`] — Fabric's message types with the real field numbers
//!   (`Envelope`, `Payload`, `Transaction`, endorsements, rwsets, blocks);
//! * [`txflow`] — building complete endorsed transactions and signed
//!   blocks, and fully decoding them for validation.
//!
//! # Example
//!
//! ```
//! use fabric_crypto::identity::{Msp, Role};
//! use fabric_protos::txflow::{build_transaction, decode_transaction, TxParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut msp = Msp::new(1);
//! let client = msp.issue(0, Role::Client, 0)?;
//! let endorser = msp.issue(0, Role::Peer, 0)?;
//! let built = build_transaction(&client, &[&endorser], &TxParams {
//!     channel_id: "mychannel",
//!     chaincode: "smallbank",
//!     reads: vec![],
//!     writes: vec![("k".into(), b"v".to_vec())],
//!     nonce: vec![1, 2, 3],
//!     timestamp: 0,
//! });
//! let decoded = decode_transaction(&built.envelope)?;
//! assert_eq!(decoded.chaincode, "smallbank");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod messages;
pub mod txflow;
pub mod wire;

pub use messages::{Block, BlockHeader, Envelope, Version};
pub use txflow::{
    build_block, build_transaction, decode_block, decode_transaction, BuiltTransaction,
    DecodedBlock, DecodedTransaction, TxParams,
};
