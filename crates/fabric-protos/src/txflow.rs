//! Building and decoding complete Fabric transactions and blocks.
//!
//! These helpers assemble the full nested message stack from
//! [`crate::messages`] — the same layering a real Fabric client, endorser
//! and orderer produce — and decode it back for validation. The decode
//! path is deliberately faithful to Fabric's recursive unmarshaling: every
//! layer is parsed, which is exactly the cost the BMac protocol avoids in
//! hardware (paper §3.2 reason 1).

use fabric_crypto::identity::{Certificate, SigningIdentity};
use fabric_crypto::sha256::sha256;
use fabric_crypto::Signature;

use crate::messages::*;
use crate::wire::WireError;

/// A read of `key` at an expected [`Version`].
pub type ReadEntry = (String, Option<Version>);
/// A write of `key` to a new value.
pub type WriteEntry = (String, Vec<u8>);

/// Inputs to [`build_transaction`].
#[derive(Debug, Clone)]
pub struct TxParams<'a> {
    /// Channel name.
    pub channel_id: &'a str,
    /// Chaincode invoked by this transaction.
    pub chaincode: &'a str,
    /// Keys read during endorsement simulation.
    pub reads: Vec<ReadEntry>,
    /// Keys written.
    pub writes: Vec<WriteEntry>,
    /// Uniquifying nonce (normally random; deterministic in tests).
    pub nonce: Vec<u8>,
    /// Wall-clock seconds for the channel header.
    pub timestamp: u64,
}

/// A fully built transaction: the marshaled envelope plus its id.
#[derive(Debug, Clone)]
pub struct BuiltTransaction {
    /// Hex transaction id (`sha256(nonce ++ creator)`).
    pub tx_id: String,
    /// The marshaled [`Envelope`] ready for ordering.
    pub envelope: Vec<u8>,
}

/// Builds a complete endorsed transaction envelope.
///
/// The construction mirrors the real flow: the client assembles the
/// proposal, each endorser signs `proposal_response_payload ++
/// endorser-identity`, and the client signs the final payload.
pub fn build_transaction(
    client: &SigningIdentity,
    endorsers: &[&SigningIdentity],
    params: &TxParams<'_>,
) -> BuiltTransaction {
    let creator = serialize_identity(client);
    let tx_id = compute_tx_id(&params.nonce, &creator);

    // Layer: KVRWSet -> NsReadWriteSet -> TxReadWriteSet
    let kv = KvRwSet {
        reads: params
            .reads
            .iter()
            .map(|(k, v)| KvRead {
                key: k.clone(),
                version: *v,
            })
            .collect(),
        writes: params
            .writes
            .iter()
            .map(|(k, v)| KvWrite {
                key: k.clone(),
                is_delete: false,
                value: v.clone(),
            })
            .collect(),
    };
    let txrw = TxReadWriteSet {
        data_model: 0,
        ns_rwset: vec![NsReadWriteSet {
            namespace: params.chaincode.to_string(),
            rwset: kv.marshal(),
        }],
    };

    // Layer: ChaincodeAction -> ProposalResponsePayload
    let cc_action = ChaincodeAction {
        results: txrw.marshal(),
        events: Vec::new(),
        response_status: 200,
        chaincode_id: ChaincodeId {
            path: String::new(),
            name: params.chaincode.to_string(),
            version: "1.0".into(),
        },
    };
    let prp = ProposalResponsePayload {
        proposal_hash: sha256(&params.nonce).to_vec(),
        extension: cc_action.marshal(),
    };
    let prp_bytes = prp.marshal();

    // Endorsements: sign prp ++ endorser identity (Fabric semantics).
    let endorsements: Vec<Endorsement> = endorsers
        .iter()
        .map(|e| {
            let endorser_bytes = serialize_identity(e);
            let mut msg = prp_bytes.clone();
            msg.extend_from_slice(&endorser_bytes);
            let sig = e.sign(&msg);
            Endorsement {
                endorser: endorser_bytes,
                signature: fabric_crypto::der::encode_signature(&sig),
            }
        })
        .collect();

    // Layer: ChaincodeEndorsedAction -> ChaincodeActionPayload ->
    // TransactionAction -> Transaction
    let cap = ChaincodeActionPayload {
        chaincode_proposal_payload: params.nonce.clone(),
        action: ChaincodeEndorsedAction {
            proposal_response_payload: prp_bytes,
            endorsements,
        },
    };
    let sig_header = SignatureHeader {
        creator: creator.clone(),
        nonce: params.nonce.clone(),
    };
    let tx = Transaction {
        actions: vec![TransactionAction {
            header: sig_header.marshal(),
            payload: cap.marshal(),
        }],
    };

    // Layer: ChannelHeader/SignatureHeader -> Header -> Payload -> Envelope
    let ch = ChannelHeader {
        header_type: header_type::ENDORSER_TRANSACTION,
        version: 1,
        timestamp: params.timestamp,
        channel_id: params.channel_id.to_string(),
        tx_id: tx_id.clone(),
        epoch: 0,
    };
    let payload = Payload {
        header: Header {
            channel_header: ch.marshal(),
            signature_header: sig_header.marshal(),
        },
        data: tx.marshal(),
    };
    let payload_bytes = payload.marshal();
    let client_sig = client.sign(&payload_bytes);
    let envelope = Envelope {
        payload: payload_bytes,
        signature: fabric_crypto::der::encode_signature(&client_sig),
    };
    BuiltTransaction {
        tx_id,
        envelope: envelope.marshal(),
    }
}

/// Fabric's transaction id: hex of `sha256(nonce ++ creator)`.
pub fn compute_tx_id(nonce: &[u8], creator: &[u8]) -> String {
    let mut material = nonce.to_vec();
    material.extend_from_slice(creator);
    to_hex(&sha256(&material))
}

/// Serializes a node identity as a marshaled [`SerializedIdentity`].
pub fn serialize_identity(identity: &SigningIdentity) -> Vec<u8> {
    SerializedIdentity {
        mspid: identity.certificate().org_name.clone(),
        id_bytes: identity.certificate().to_bytes(),
    }
    .marshal()
}

/// One endorsement, decoded for verification.
#[derive(Debug, Clone)]
pub struct DecodedEndorsement {
    /// The endorser's certificate.
    pub endorser_cert: Certificate,
    /// DER signature bytes as transmitted.
    pub signature_der: Vec<u8>,
    /// Parsed signature.
    pub signature: Signature,
    /// The message the endorser signed (`prp ++ endorser-identity`).
    pub signed_message: Vec<u8>,
}

/// A fully decoded endorser transaction, ready for verify/vscc/mvcc.
#[derive(Debug, Clone)]
pub struct DecodedTransaction {
    /// Hex transaction id from the channel header.
    pub tx_id: String,
    /// Channel name.
    pub channel_id: String,
    /// Invoked chaincode (namespace of the rwset).
    pub chaincode: String,
    /// Creator (client) certificate.
    pub creator_cert: Certificate,
    /// The client's parsed envelope signature.
    pub client_signature: Signature,
    /// Bytes covered by the client signature (marshaled payload).
    pub signed_payload: Vec<u8>,
    /// Decoded reads.
    pub reads: Vec<ReadEntry>,
    /// Decoded writes.
    pub writes: Vec<WriteEntry>,
    /// Decoded endorsements.
    pub endorsements: Vec<DecodedEndorsement>,
    /// Size of the marshaled envelope in bytes.
    pub envelope_len: usize,
}

/// Fully decodes a marshaled envelope, walking every nested layer.
///
/// # Errors
///
/// Returns [`WireError`] when any layer is structurally malformed — a
/// missing action, unparsable certificate, or invalid DER signature.
pub fn decode_transaction(envelope_bytes: &[u8]) -> Result<DecodedTransaction, WireError> {
    let envelope = Envelope::unmarshal(envelope_bytes)?;
    let payload = Payload::unmarshal(&envelope.payload)?;
    let ch = ChannelHeader::unmarshal(&payload.header.channel_header)?;
    let sig_header = SignatureHeader::unmarshal(&payload.header.signature_header)?;
    let creator = SerializedIdentity::unmarshal(&sig_header.creator)?;
    let creator_cert = Certificate::from_bytes(&creator.id_bytes)
        .map_err(|_| WireError::Semantic("bad creator certificate"))?;
    let client_signature = fabric_crypto::der::decode_signature(&envelope.signature)
        .map_err(|_| WireError::Semantic("bad client signature DER"))?;

    let tx = Transaction::unmarshal(&payload.data)?;
    let action = tx
        .actions
        .first()
        .ok_or(WireError::Semantic("transaction has no actions"))?;
    let cap = ChaincodeActionPayload::unmarshal(&action.payload)?;
    let prp_bytes = &cap.action.proposal_response_payload;
    let prp = ProposalResponsePayload::unmarshal(prp_bytes)?;
    let cc_action = ChaincodeAction::unmarshal(&prp.extension)?;
    let txrw = TxReadWriteSet::unmarshal(&cc_action.results)?;

    let mut chaincode = cc_action.chaincode_id.name.clone();
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for ns in &txrw.ns_rwset {
        if chaincode.is_empty() {
            chaincode = ns.namespace.clone();
        }
        let kv = KvRwSet::unmarshal(&ns.rwset)?;
        for r in kv.reads {
            reads.push((r.key, r.version));
        }
        for w in kv.writes {
            if !w.is_delete {
                writes.push((w.key, w.value));
            }
        }
    }

    let mut endorsements = Vec::with_capacity(cap.action.endorsements.len());
    for e in &cap.action.endorsements {
        let ident = SerializedIdentity::unmarshal(&e.endorser)?;
        let endorser_cert = Certificate::from_bytes(&ident.id_bytes)
            .map_err(|_| WireError::Semantic("bad endorser certificate"))?;
        let signature = fabric_crypto::der::decode_signature(&e.signature)
            .map_err(|_| WireError::Semantic("bad endorsement DER"))?;
        let mut signed_message = prp_bytes.clone();
        signed_message.extend_from_slice(&e.endorser);
        endorsements.push(DecodedEndorsement {
            endorser_cert,
            signature_der: e.signature.clone(),
            signature,
            signed_message,
        });
    }

    Ok(DecodedTransaction {
        tx_id: ch.tx_id,
        channel_id: ch.channel_id,
        chaincode,
        creator_cert,
        client_signature,
        signed_payload: envelope.payload,
        reads,
        writes,
        endorsements,
        envelope_len: envelope_bytes.len(),
    })
}

/// Builds a block from ordered envelopes, with the orderer's signature in
/// the metadata (paper Figure 1 step 2 / §2.1.2 step 1).
pub fn build_block(
    number: u64,
    previous_hash: &[u8],
    envelopes: Vec<Vec<u8>>,
    orderer: &SigningIdentity,
) -> Block {
    let data = BlockData { data: envelopes };
    let data_hash = hash_block_data(&data);
    let header = BlockHeader {
        number,
        previous_hash: previous_hash.to_vec(),
        data_hash: data_hash.to_vec(),
    };
    let mut metadata = BlockMetadata::default();
    metadata.metadata[metadata_index::TRANSACTIONS_FILTER] = vec![0u8; data.data.len()];
    let sig_header = SignatureHeader {
        creator: serialize_identity(orderer),
        nonce: number.to_be_bytes().to_vec(),
    };
    let signed = block_signature_message(&sig_header.marshal(), &header);
    let sig = orderer.sign(&signed);
    let md_sig = MetadataSignature {
        signature_header: sig_header.marshal(),
        signature: fabric_crypto::der::encode_signature(&sig),
    };
    metadata.metadata[metadata_index::SIGNATURES] = md_sig.marshal();
    Block {
        header,
        data,
        metadata,
    }
}

/// The bytes covered by the orderer's block signature.
pub fn block_signature_message(sig_header_bytes: &[u8], header: &BlockHeader) -> Vec<u8> {
    let mut msg = sig_header_bytes.to_vec();
    msg.extend_from_slice(&header.marshal());
    msg
}

/// SHA-256 over the serialized block data (Fabric's `data_hash`).
pub fn hash_block_data(data: &BlockData) -> [u8; 32] {
    let mut h = fabric_crypto::Sha256::new();
    for env in &data.data {
        h.update(env);
    }
    h.finalize()
}

/// SHA-256 of the marshaled block header — the block hash chained into the
/// next block's `previous_hash`.
pub fn block_header_hash(header: &BlockHeader) -> [u8; 32] {
    sha256(&header.marshal())
}

/// A decoded block: header facts plus every transaction decoded.
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    /// Block number.
    pub number: u64,
    /// Header hash (chains to the next block).
    pub header_hash: [u8; 32],
    /// `previous_hash` from the header.
    pub previous_hash: Vec<u8>,
    /// `data_hash` from the header.
    pub data_hash: Vec<u8>,
    /// Orderer certificate recovered from the signature metadata.
    pub orderer_cert: Certificate,
    /// Parsed orderer signature.
    pub orderer_signature: Signature,
    /// Bytes the orderer signed.
    pub orderer_signed_message: Vec<u8>,
    /// Every transaction, fully decoded in order.
    pub txs: Vec<DecodedTransaction>,
    /// Size of the marshaled block.
    pub block_len: usize,
}

/// Fully decodes a marshaled block: header, orderer signature and all
/// transactions. This is the software peer's "retrieve block and
/// transaction data" step (paper §2.1.3 bottleneck 1).
///
/// # Errors
///
/// Returns [`WireError`] when any layer of any transaction is malformed.
pub fn decode_block(block_bytes: &[u8]) -> Result<DecodedBlock, WireError> {
    let block = Block::unmarshal(block_bytes)?;
    decode_block_struct(&block, block_bytes.len())
}

/// Decodes an already-unmarshaled [`Block`] structure.
///
/// # Errors
///
/// Returns [`WireError`] when any nested layer is malformed.
pub fn decode_block_struct(block: &Block, block_len: usize) -> Result<DecodedBlock, WireError> {
    let md_sig_bytes = &block.metadata.metadata[metadata_index::SIGNATURES];
    let md_sig = MetadataSignature::unmarshal(md_sig_bytes)?;
    let sig_header = SignatureHeader::unmarshal(&md_sig.signature_header)?;
    let orderer_ident = SerializedIdentity::unmarshal(&sig_header.creator)?;
    let orderer_cert = Certificate::from_bytes(&orderer_ident.id_bytes)
        .map_err(|_| WireError::Semantic("bad orderer certificate"))?;
    let orderer_signature = fabric_crypto::der::decode_signature(&md_sig.signature)
        .map_err(|_| WireError::Semantic("bad orderer signature DER"))?;
    let orderer_signed_message = block_signature_message(&md_sig.signature_header, &block.header);

    let mut txs = Vec::with_capacity(block.data.data.len());
    for env in &block.data.data {
        txs.push(decode_transaction(env)?);
    }
    Ok(DecodedBlock {
        number: block.header.number,
        header_hash: block_header_hash(&block.header),
        previous_hash: block.header.previous_hash.clone(),
        data_hash: block.header.data_hash.clone(),
        orderer_cert,
        orderer_signature,
        orderer_signed_message,
        txs,
        block_len,
    })
}

/// Counts the deepest chain of nested protobuf messages in a marshaled
/// envelope — documentation for the paper's "up to 23 layers" claim.
pub fn envelope_nesting_depth() -> usize {
    // Envelope > Payload > Header > SignatureHeader > SerializedIdentity >
    // certificate — counted structurally on the transaction path:
    // Envelope(1) Payload(2) data->Transaction(3) TransactionAction(4)
    // ChaincodeActionPayload(5) ChaincodeEndorsedAction(6)
    // ProposalResponsePayload(7) ChaincodeAction(8) TxReadWriteSet(9)
    // NsReadWriteSet(10) KvRwSet(11) KvRead/KvWrite(12) Version(13)
    // plus the header path: Header, ChannelHeader/SignatureHeader,
    // SerializedIdentity, endorsement identities... Fabric counts ~23
    // including the identity and certificate layers.
    13
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::identity::{Msp, Role};

    fn test_identities() -> (
        SigningIdentity,
        SigningIdentity,
        SigningIdentity,
        SigningIdentity,
    ) {
        let mut msp = Msp::new(2);
        let client = msp.issue(0, Role::Client, 0).unwrap();
        let e1 = msp.issue(0, Role::Peer, 0).unwrap();
        let e2 = msp.issue(1, Role::Peer, 0).unwrap();
        let orderer = msp.issue(0, Role::Orderer, 0).unwrap();
        (client, e1, e2, orderer)
    }

    fn sample_params() -> TxParams<'static> {
        TxParams {
            channel_id: "mychannel",
            chaincode: "smallbank",
            reads: vec![(
                "acc1".into(),
                Some(Version {
                    block_num: 1,
                    tx_num: 0,
                }),
            )],
            writes: vec![("acc1".into(), b"950".to_vec())],
            nonce: vec![1, 2, 3, 4, 5, 6, 7, 8],
            timestamp: 1_700_000_000,
        }
    }

    #[test]
    fn build_and_decode_transaction() {
        let (client, e1, e2, _) = test_identities();
        let built = build_transaction(&client, &[&e1, &e2], &sample_params());
        let decoded = decode_transaction(&built.envelope).unwrap();
        assert_eq!(decoded.tx_id, built.tx_id);
        assert_eq!(decoded.chaincode, "smallbank");
        assert_eq!(decoded.reads.len(), 1);
        assert_eq!(decoded.writes.len(), 1);
        assert_eq!(decoded.endorsements.len(), 2);
        assert_eq!(decoded.creator_cert, *client.certificate());
    }

    #[test]
    fn client_signature_verifies() {
        let (client, e1, _, _) = test_identities();
        let built = build_transaction(&client, &[&e1], &sample_params());
        let decoded = decode_transaction(&built.envelope).unwrap();
        assert!(decoded
            .creator_cert
            .public_key
            .verify(&decoded.signed_payload, &decoded.client_signature)
            .is_ok());
    }

    #[test]
    fn endorsement_signatures_verify() {
        let (client, e1, e2, _) = test_identities();
        let built = build_transaction(&client, &[&e1, &e2], &sample_params());
        let decoded = decode_transaction(&built.envelope).unwrap();
        for e in &decoded.endorsements {
            assert!(e
                .endorser_cert
                .public_key
                .verify(&e.signed_message, &e.signature)
                .is_ok());
        }
    }

    #[test]
    fn tampered_payload_fails_client_signature() {
        let (client, e1, _, _) = test_identities();
        let built = build_transaction(&client, &[&e1], &sample_params());
        let mut env = Envelope::unmarshal(&built.envelope).unwrap();
        // Flip a byte inside the signed payload.
        let n = env.payload.len() / 2;
        env.payload[n] ^= 0xff;
        let decoded = decode_transaction(&env.marshal()).unwrap();
        assert!(decoded
            .creator_cert
            .public_key
            .verify(&decoded.signed_payload, &decoded.client_signature)
            .is_err());
    }

    #[test]
    fn block_build_and_decode() {
        let (client, e1, e2, orderer) = test_identities();
        let envs: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                let mut p = sample_params();
                p.nonce = vec![i as u8; 8];
                build_transaction(&client, &[&e1, &e2], &p).envelope
            })
            .collect();
        let block = build_block(7, &[0u8; 32], envs, &orderer);
        let bytes = block.marshal();
        let decoded = decode_block(&bytes).unwrap();
        assert_eq!(decoded.number, 7);
        assert_eq!(decoded.txs.len(), 4);
        assert_eq!(decoded.orderer_cert, *orderer.certificate());
        // Orderer signature verifies.
        assert!(decoded
            .orderer_cert
            .public_key
            .verify(&decoded.orderer_signed_message, &decoded.orderer_signature)
            .is_ok());
    }

    #[test]
    fn tampered_block_header_fails_orderer_signature() {
        let (client, e1, _, orderer) = test_identities();
        let env = build_transaction(&client, &[&e1], &sample_params()).envelope;
        let mut block = build_block(1, &[0u8; 32], vec![env], &orderer);
        block.header.number = 99; // forge
        let decoded = decode_block(&block.marshal()).unwrap();
        assert!(decoded
            .orderer_cert
            .public_key
            .verify(&decoded.orderer_signed_message, &decoded.orderer_signature)
            .is_err());
    }

    #[test]
    fn data_hash_matches_contents() {
        let (client, e1, _, orderer) = test_identities();
        let env = build_transaction(&client, &[&e1], &sample_params()).envelope;
        let block = build_block(1, &[0u8; 32], vec![env], &orderer);
        assert_eq!(
            block.header.data_hash,
            hash_block_data(&block.data).to_vec()
        );
    }

    #[test]
    fn tx_id_is_deterministic_in_nonce_and_creator() {
        let (client, e1, _, _) = test_identities();
        let a = build_transaction(&client, &[&e1], &sample_params());
        let b = build_transaction(&client, &[&e1], &sample_params());
        assert_eq!(a.tx_id, b.tx_id);
        let mut p2 = sample_params();
        p2.nonce = vec![9; 8];
        let c = build_transaction(&client, &[&e1], &p2);
        assert_ne!(a.tx_id, c.tx_id);
    }

    #[test]
    fn decode_rejects_actionless_transaction() {
        let (client, _, _, _) = test_identities();
        // Build a payload with an empty Transaction.
        let sig_header = SignatureHeader {
            creator: serialize_identity(&client),
            nonce: vec![1],
        };
        let payload = Payload {
            header: Header {
                channel_header: ChannelHeader::default().marshal(),
                signature_header: sig_header.marshal(),
            },
            data: Transaction::default().marshal(),
        };
        let pb = payload.marshal();
        let sig = client.sign(&pb);
        let env = Envelope {
            payload: pb,
            signature: fabric_crypto::der::encode_signature(&sig),
        };
        assert!(decode_transaction(&env.marshal()).is_err());
    }

    #[test]
    fn envelope_size_is_dominated_by_certificates() {
        // The paper: "at least 73% size of a block is attributed to
        // repetitive appearance of the same identities".
        let (client, e1, e2, _) = test_identities();
        let built = build_transaction(&client, &[&e1, &e2], &sample_params());
        // The client identity appears twice (payload signature header and
        // transaction action header), plus one certificate per endorser.
        let cert_len = 2 * client.certificate().to_bytes().len()
            + e1.certificate().to_bytes().len()
            + e2.certificate().to_bytes().len();
        let frac = cert_len as f64 / built.envelope.len() as f64;
        assert!(
            frac > 0.7,
            "certificates are {:.0}% of the envelope",
            frac * 100.0
        );
    }
}
